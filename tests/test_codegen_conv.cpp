// Tests for the CONV parameterization: implicit-GEMM lowering, validity,
// analysis, and the functional executor against the naive direct reference.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/conv.hpp"
#include "codegen/conv_executor.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"

namespace isaac::codegen {
namespace {

ConvTuning tiny_tuning() {
  ConvTuning t;
  t.tk = 2;
  t.tp = 1;
  t.tq = 1;
  t.tn = 2;
  t.bk = 8;
  t.bp = 2;
  t.bq = 2;
  t.bn = 4;
  t.u = 4;
  return t;
}

// ---------------------------------------------------------------- shapes --
TEST(ConvShape, DerivedDims) {
  ConvShape s;
  s.h = 8;
  s.w = 10;
  s.r = 3;
  s.s = 3;
  EXPECT_EQ(s.p(), 6);
  EXPECT_EQ(s.q(), 8);
  s.pad_h = s.pad_w = 1;
  EXPECT_EQ(s.p(), 8);
  EXPECT_EQ(s.q(), 10);
  s.stride_h = s.stride_w = 2;
  EXPECT_EQ(s.p(), 4);
  EXPECT_EQ(s.q(), 5);
}

TEST(ConvShape, FromNpqMatchesTable5Convention) {
  // Conv5 of Table 5: N=8, P=Q=54, K=64, C=64, R=S=3.
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  EXPECT_EQ(s.p(), 54);
  EXPECT_EQ(s.q(), 54);
  EXPECT_EQ(s.npq(), 8 * 54 * 54);
  EXPECT_EQ(s.crs(), 64 * 3 * 3);
}

TEST(ConvShape, FlopsMatchImplicitGemm) {
  const auto s = ConvShape::from_npq(16, 7, 7, 512, 512, 3, 3);
  const auto g = conv_gemm_shape(s);
  EXPECT_DOUBLE_EQ(s.flops(), g.flops());
  EXPECT_EQ(g.m, s.npq());
  EXPECT_EQ(g.n, s.k);
  EXPECT_EQ(g.k, s.crs());
}

// -------------------------------------------------------------- validity --
TEST(ConvValidity, TypicalConfigLegal) {
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  std::string why;
  EXPECT_TRUE(validate(s, tiny_tuning(), gpusim::gtx980ti(), &why)) << why;
}

TEST(ConvValidity, ThreadTileMustDivideBlockTile) {
  auto t = tiny_tuning();
  t.tk = 4;
  t.bk = 2;
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  EXPECT_FALSE(validate(s, t, gpusim::gtx980ti()));
}

TEST(ConvValidity, OversizedSpatialTileRejected) {
  auto t = tiny_tuning();
  t.bp = 8;
  t.bq = 8;  // output is 3x3: hopeless tile
  ConvShape s = ConvShape::from_npq(4, 3, 3, 16, 16, 3, 3);
  std::string why;
  EXPECT_FALSE(validate(s, t, gpusim::gtx980ti(), &why));
  EXPECT_NE(why.find("exceeds output"), std::string::npos);
}

TEST(ConvValidity, GemmConstraintsPropagate) {
  auto t = tiny_tuning();
  t.cg = 64;  // CRS = 576 < ... fine; but make it beyond: use small filter
  ConvShape s = ConvShape::from_npq(8, 54, 54, 64, 2, 1, 1);  // CRS = 2
  EXPECT_FALSE(validate(s, t, gpusim::gtx980ti()));
}

// --------------------------------------------------------------- analysis --
TEST(ConvAnalyze, ProfileLowersToGemm) {
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  const auto p = analyze(s, tiny_tuning(), gpusim::gtx980ti());
  const auto gt = conv_gemm_tuning(tiny_tuning());
  EXPECT_EQ(p.threads_per_block, gt.threads_per_block());
  EXPECT_DOUBLE_EQ(p.useful_flops, s.flops());
  EXPECT_GT(p.fma_insts, 0.0);
  // Indirection table adds integer and load traffic over the plain GEMM.
  const auto plain = analyze(conv_gemm_shape(s), gt, gpusim::gtx980ti());
  EXPECT_GT(p.ld_global_insts, plain.ld_global_insts);
  EXPECT_GT(p.int_insts, plain.int_insts);
}

TEST(ConvAnalyze, CompulsoryTrafficUsesUniqueInput) {
  // 3x3 filter: implicit-GEMM A would be ~9x the input; compulsory traffic
  // must reflect the unique C*H*W*N input instead.
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  const auto p = analyze(s, tiny_tuning(), gpusim::gtx980ti());
  const double unique = 64.0 * s.h * s.w * 8 * 4;
  const double implicit_a = static_cast<double>(s.npq()) * s.crs() * 4;
  EXPECT_LT(p.dram_read_bytes, implicit_a);
  EXPECT_GE(p.dram_read_bytes, unique);
}

TEST(ConvAnalyze, DeepReductionCanSplit) {
  // Conv8-like: tiny NPQ, huge CRS — the regime where CG/CL wins (paper §7.4).
  const auto s = ConvShape::from_npq(16, 7, 7, 128, 832, 5, 5);
  auto t = tiny_tuning();
  t.cg = 8;
  t.cl = 2;
  std::string why;
  ASSERT_TRUE(validate(s, t, gpusim::tesla_p100(), &why)) << why;
  const auto p = analyze(s, t, gpusim::tesla_p100());
  EXPECT_GT(p.atom_global_insts, 0.0);
  EXPECT_EQ(p.extra_launches, 1);
}

TEST(ConvAnalyze, IllegalThrows) {
  auto t = tiny_tuning();
  t.bk = 4;  // tk=2 ok, but make block tiny and thread tile not dividing
  t.tk = 8;
  const auto s = ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  EXPECT_THROW(analyze(s, t, gpusim::gtx980ti()), std::invalid_argument);
}

// --------------------------------------------------------------- executor --
struct ConvCase {
  ConvShape shape;
  ConvTuning tuning;
};

class ConvExecutorMatchesReference : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvExecutorMatchesReference, Float) {
  const ConvShape& s = GetParam().shape;
  const ConvTuning& t = GetParam().tuning;
  Rng rng(static_cast<std::uint64_t>(s.c * 7 + s.k * 3 + s.n));

  std::vector<float> input(static_cast<std::size_t>(s.c * s.h * s.w * s.n));
  std::vector<float> filters(static_cast<std::size_t>(s.c * s.r * s.s * s.k));
  for (auto& x : input) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : filters) x = static_cast<float>(rng.uniform(-1, 1));

  const std::size_t out_size = static_cast<std::size_t>(s.k * s.p() * s.q() * s.n);
  std::vector<float> out(out_size, 0.5f), out_ref(out_size, 0.5f);

  execute_conv(s, t, 1.0f, input.data(), filters.data(), 0.0f, out.data());
  reference_conv(s, 1.0f, input.data(), filters.data(), 0.0f, out_ref.data());

  double max_diff = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(out[i] - out_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-3 * static_cast<double>(s.crs()))
      << s.to_string() << " / " << t.to_string();
}

ConvCase cc(ConvShape s, ConvTuning t) { return ConvCase{s, t}; }

ConvShape strided_padded() {
  ConvShape s;
  s.n = 2;
  s.c = 3;
  s.h = 11;
  s.w = 9;
  s.k = 4;
  s.r = 3;
  s.s = 3;
  s.pad_h = 1;
  s.pad_w = 1;
  s.stride_h = 2;
  s.stride_w = 2;
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSplits, ConvExecutorMatchesReference,
    ::testing::Values(
        // Basic 3x3, exact-ish tiles.
        cc(ConvShape::from_npq(4, 8, 8, 8, 4, 3, 3), tiny_tuning()),
        // 1x1 "pointwise" (degenerates to plain GEMM).
        cc(ConvShape::from_npq(4, 6, 6, 16, 8, 1, 1), tiny_tuning()),
        // Single-image single-filter signal processing case (N=C=K=1, §3.3).
        cc(ConvShape::from_npq(1, 16, 16, 1, 1, 5, 5),
           [] {
             auto t = tiny_tuning();
             t.bk = 8;
             t.tk = 1;
             t.bn = 1;
             t.tn = 1;
             t.bp = 4;
             t.bq = 4;
             t.tp = 2;
             t.tq = 2;
             return t;
           }()),
        // Ragged spatial extents.
        cc(ConvShape::from_npq(3, 7, 5, 6, 5, 3, 3), tiny_tuning()),
        // Split reduction along C (CL and CG).
        cc(ConvShape::from_npq(4, 8, 8, 8, 32, 3, 3),
           [] {
             auto t = tiny_tuning();
             t.cl = 2;
             t.cg = 4;
             return t;
           }()),
        // Padding + stride.
        cc(strided_padded(), [] {
          auto t = tiny_tuning();
          t.bk = 4;
          t.bn = 2;
          return t;
        }())));

TEST(ConvExecutor, BetaScalesExistingOutput) {
  const auto s = ConvShape::from_npq(2, 4, 4, 2, 2, 3, 3);
  std::vector<float> input(static_cast<std::size_t>(s.c * s.h * s.w * s.n), 0.0f);
  std::vector<float> filters(static_cast<std::size_t>(s.crs() * s.k), 0.0f);
  std::vector<float> out(static_cast<std::size_t>(s.k * s.p() * s.q() * s.n), 2.0f);
  execute_conv(s, tiny_tuning(), 1.0f, input.data(), filters.data(), 0.5f, out.data());
  for (float v : out) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(ConvExecutor, EmptyProblemThrows) {
  ConvShape s;
  s.c = 0;
  std::vector<float> dummy(16);
  EXPECT_THROW(execute_conv(s, tiny_tuning(), 1.0f, dummy.data(), dummy.data(), 0.0f,
                            dummy.data()),
               std::invalid_argument);
}

}  // namespace
}  // namespace isaac::codegen
