// Integration tests for runtime inference, the profile cache, and the public
// ISAAC API end-to-end (train → tune → execute → verify numerics).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "codegen/batched_gemm_executor.hpp"
#include "core/inference.hpp"
#include "core/isaac.hpp"
#include "core/profile_cache.hpp"
#include "gpusim/device.hpp"
#include "tuning/collector.hpp"

namespace isaac::core {
namespace {

/// One small trained model shared by the inference tests (training is the
/// expensive part; the suite budget is single-digit seconds).
const mlp::Regressor& shared_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 2500;
    cfg.seed = 31337;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {48, 48};
    tc.epochs = 10;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

search::SearchConfig fast_inference() {
  search::SearchConfig cfg;
  cfg.budget = 20;  // measured re-timings (the old top-k)
  cfg.reeval_reps = 3;
  cfg.max_candidates = 20000;
  return cfg;
}

// ---------------------------------------------------------------- inference --
TEST(Inference, FindsLegalWinner) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 512;
  const auto result = tune_gemm(shape, shared_model(), sim, fast_inference());
  EXPECT_GT(result.legal, 0u);
  EXPECT_GT(result.enumerated, result.legal);
  EXPECT_GT(result.best.measured_gflops, 0.0);
  EXPECT_TRUE(codegen::validate(shape, result.best.tuning, sim.device()));
}

TEST(Inference, TopKSortedByMeasurement) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::GemmShape shape;
  shape.m = 2560;
  shape.n = 32;
  shape.k = 2560;
  const auto result = tune_gemm(shape, shared_model(), sim, fast_inference());
  ASSERT_GE(result.top.size(), 2u);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].measured_gflops, result.top[i].measured_gflops);
  }
  EXPECT_DOUBLE_EQ(result.best.measured_gflops, result.top.front().measured_gflops);
}

TEST(Inference, SkinnyShapeGetsNarrowTile) {
  // The input-aware property: for N = 16 the tuner must not pick a 64- or
  // 128-wide N tile (the §8.1 failure mode of static libraries).
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::GemmShape shape;
  shape.m = 2560;
  shape.n = 16;
  shape.k = 2560;
  const auto result = tune_gemm(shape, shared_model(), sim, fast_inference());
  EXPECT_LE(result.best.tuning.nl, 32) << result.best.tuning.to_string();
}

TEST(Inference, DeepReductionGetsSplit) {
  // ICA regime: tiny output, K = 60000 — the winner must split the reduction.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::GemmShape shape;
  shape.m = shape.n = 32;
  shape.k = 60000;
  const auto result = tune_gemm(shape, shared_model(), sim, fast_inference());
  EXPECT_GT(result.best.tuning.kg * result.best.tuning.kl, 1)
      << result.best.tuning.to_string();
}

TEST(Inference, ConvTuningWorks) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  const auto shape = codegen::ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  search::SearchConfig cfg = fast_inference();
  cfg.max_candidates = 5000;
  const auto result = tune_conv(shape, shared_model(), sim, cfg);
  EXPECT_GT(result.best.measured_gflops, 0.0);
  EXPECT_TRUE(codegen::validate(shape, result.best.tuning, sim.device()));
}

TEST(Inference, BatchedGemmTuningRespectsConstraints) {
  // The third operation goes through the same generic tune<Op>() as GEMM and
  // CONV; its search space pins the grid-level reduction split to KG = 1.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::BatchedGemmShape shape;
  shape.batch = 32;
  shape.gemm.m = 128;
  shape.gemm.n = 64;
  shape.gemm.k = 256;
  const auto result = tune_batched_gemm(shape, shared_model(), sim, fast_inference());
  EXPECT_GT(result.legal, 0u);
  EXPECT_GT(result.best.measured_gflops, 0.0);
  EXPECT_EQ(result.best.tuning.kg, 1);
  EXPECT_TRUE(codegen::validate(shape, result.best.tuning, sim.device()));
}

TEST(Inference, ImpossibleShapeThrows) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  codegen::GemmShape shape;
  shape.m = shape.n = 64;
  shape.k = 2;  // below the smallest prefetch depth (U >= 4): no legal config
  EXPECT_THROW(tune_gemm(shape, shared_model(), sim, fast_inference()), std::runtime_error);
}

// ------------------------------------------------------------ profile cache --
TEST(ProfileCache, InMemoryRoundTrip) {
  ProfileCache cache;
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 512;
  EXPECT_FALSE(cache.lookup_gemm("p100", shape).has_value());
  codegen::GemmTuning t;
  t.ml = 32;
  cache.store_gemm("p100", shape, t);
  const auto got = cache.lookup_gemm("p100", shape);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->ml, 32);
  // Different device or shape: miss.
  EXPECT_FALSE(cache.lookup_gemm("gtx980ti", shape).has_value());
  shape.trans_a = true;
  EXPECT_FALSE(cache.lookup_gemm("p100", shape).has_value());
}

TEST(ProfileCache, PersistsAcrossInstances) {
  const std::string dir = (std::filesystem::temp_directory_path() / "isaac_cache_test").string();
  std::filesystem::remove_all(dir);
  codegen::GemmShape shape;
  shape.m = 2560;
  shape.n = 16;
  shape.k = 2560;
  codegen::ConvShape cshape = codegen::ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  {
    ProfileCache cache(dir);
    codegen::GemmTuning t;
    t.nl = 16;
    t.kg = 4;
    cache.store_gemm("p100", shape, t);
    codegen::ConvTuning ct;
    ct.bk = 64;
    cache.store_conv("p100", cshape, ct);
  }
  ProfileCache reloaded(dir);
  const auto got = reloaded.lookup_gemm("p100", shape);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->nl, 16);
  EXPECT_EQ(got->kg, 4);
  const auto cgot = reloaded.lookup_conv("p100", cshape);
  ASSERT_TRUE(cgot.has_value());
  EXPECT_EQ(cgot->bk, 64);
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, KeysDistinguishDtypeAndLayout) {
  codegen::GemmShape a, b;
  a.m = b.m = a.n = b.n = a.k = b.k = 128;
  b.dtype = gpusim::DataType::F16;
  EXPECT_NE(ProfileCache::gemm_key("d", a), ProfileCache::gemm_key("d", b));
  b = a;
  b.trans_b = true;
  EXPECT_NE(ProfileCache::gemm_key("d", a), ProfileCache::gemm_key("d", b));
}

TEST(ProfileCache, KeysDistinguishOperations) {
  // A batched problem with batch == 1 matches its plain-GEMM twin shape but
  // must not alias its cache entry (the legal spaces differ).
  codegen::GemmShape g;
  g.m = g.n = g.k = 128;
  codegen::BatchedGemmShape bg;
  bg.batch = 1;
  bg.gemm = g;
  EXPECT_NE(ProfileCache::key<GemmOp>("d", g), ProfileCache::key<BatchedGemmOp>("d", bg));

  ProfileCache cache;
  codegen::GemmTuning t;
  t.ml = 32;
  cache.store<GemmOp>("d", g, t);
  EXPECT_FALSE(cache.lookup<BatchedGemmOp>("d", bg).has_value());
}

TEST(ProfileCache, BatchedGemmPersistsAcrossInstances) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_bgemm_test").string();
  std::filesystem::remove_all(dir);
  codegen::BatchedGemmShape shape;
  shape.batch = 16;
  shape.gemm.m = 64;
  shape.gemm.n = 32;
  shape.gemm.k = 128;
  {
    ProfileCache cache(dir);
    codegen::GemmTuning t;
    t.nl = 16;
    cache.store<BatchedGemmOp>("p100", shape, t);
  }
  ProfileCache reloaded(dir);
  const auto got = reloaded.lookup<BatchedGemmOp>("p100", shape);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->nl, 16);
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, RecordsSearchProvenance) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_meta_test").string();
  std::filesystem::remove_all(dir);
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 384;
  codegen::GemmTuning t;
  t.ml = 32;
  const std::string key = ProfileCache::key<GemmOp>("p100", shape);
  {
    ProfileCache cache(dir);
    cache.store<GemmOp>("p100", shape, t, ProfileCache::provenance("genetic", 64));
    EXPECT_EQ(cache.meta(key), "strategy=genetic;budget=64");
  }
  // The provenance column survives the disk round trip.
  ProfileCache reloaded(dir);
  ASSERT_TRUE(reloaded.lookup<GemmOp>("p100", shape).has_value());
  EXPECT_EQ(reloaded.meta(key), "strategy=genetic;budget=64");
  EXPECT_FALSE(reloaded.meta("no|such|key").has_value());
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, ReadsPreProvenanceSchemas) {
  // Both older on-disk formats must still load: two-column key \t value, and
  // the original three-column kind \t key \t value.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_legacy_test").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  codegen::GemmShape two, three;
  two.m = two.n = two.k = 128;
  three.m = three.n = three.k = 256;
  codegen::GemmTuning t;
  t.nl = 16;
  {
    std::ofstream os(std::filesystem::path(dir) / "isaac_profiles.txt");
    os << ProfileCache::key<GemmOp>("p100", two) << '\t'
       << OperationTraits<GemmOp>::encode_tuning(t) << '\n';
    os << "gemm\t" << ProfileCache::key<GemmOp>("p100", three) << '\t'
       << OperationTraits<GemmOp>::encode_tuning(t) << '\n';
  }
  ProfileCache cache(dir);
  const auto got_two = cache.lookup<GemmOp>("p100", two);
  const auto got_three = cache.lookup<GemmOp>("p100", three);
  ASSERT_TRUE(got_two.has_value());
  ASSERT_TRUE(got_three.has_value());
  EXPECT_EQ(got_two->nl, 16);
  EXPECT_EQ(got_three->nl, 16);
  // Legacy entries carry no provenance.
  EXPECT_EQ(cache.meta(ProfileCache::key<GemmOp>("p100", two)), "");
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, TierRoundTripsAndUpgradesInPlace) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_tier_test").string();
  std::filesystem::remove_all(dir);
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 320;
  const std::string key = ProfileCache::key<GemmOp>("p100", shape);
  codegen::GemmTuning predicted;
  predicted.ml = 32;
  codegen::GemmTuning refined;
  refined.ml = 64;
  {
    ProfileCache cache(dir);
    cache.store<GemmOp>("p100", shape, predicted,
                        ProfileCache::provenance("predict", 0, EntryTier::provisional));
    EXPECT_EQ(cache.tier(key), EntryTier::provisional);

    // Upgrade replaces the provisional entry in place…
    EXPECT_TRUE(cache.upgrade<GemmOp>(
        "p100", shape, refined, ProfileCache::provenance("model_topk", 64, EntryTier::refined)));
    EXPECT_EQ(cache.tier(key), EntryTier::refined);
    EXPECT_EQ(cache.lookup<GemmOp>("p100", shape)->ml, 64);

    // …and never demotes a refined one.
    EXPECT_FALSE(cache.upgrade<GemmOp>(
        "p100", shape, predicted, ProfileCache::provenance("predict", 0, EntryTier::provisional)));
    EXPECT_EQ(cache.lookup<GemmOp>("p100", shape)->ml, 64);
  }
  // The tier survives the disk round trip (last line wins).
  ProfileCache reloaded(dir);
  EXPECT_EQ(reloaded.tier(key), EntryTier::refined);
  EXPECT_EQ(reloaded.lookup<GemmOp>("p100", shape)->ml, 64);

  // Absent tier field (legacy and pre-two-tier lines) parses as refined.
  EXPECT_EQ(ProfileCache::tier_from_meta(""), EntryTier::refined);
  EXPECT_EQ(ProfileCache::tier_from_meta("strategy=genetic;budget=64"), EntryTier::refined);
  EXPECT_EQ(ProfileCache::tier_from_meta("strategy=predict;budget=0;tier=provisional"),
            EntryTier::provisional);
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, CompactsDuplicateHeavyFilesOnLoad) {
  // The append-only file accumulates one dead line per re-store; once
  // duplicates outnumber live entries, load_from_disk rewrites it last-wins.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_compact_test").string();
  std::filesystem::remove_all(dir);
  const auto file = std::filesystem::path(dir) / "isaac_profiles.txt";

  constexpr int kShapes = 6;
  constexpr int kRewrites = 8;
  {
    ProfileCache cache(dir);
    for (int round = 0; round < kRewrites; ++round) {
      for (int i = 0; i < kShapes; ++i) {
        codegen::GemmShape shape;
        shape.m = shape.n = 64 + 16 * i;
        shape.k = 128;
        codegen::GemmTuning t;
        t.ml = 32;
        t.u = 8 * (1 + round % 2);  // alternate so last-wins is observable
        cache.store<GemmOp>("p100", shape, t,
                            ProfileCache::provenance("random", 10 + round));
      }
    }
  }
  // 48 appended lines, 6 live keys.
  std::size_t lines_before = 0;
  {
    std::ifstream is(file);
    for (std::string line; std::getline(is, line);) ++lines_before;
  }
  ASSERT_EQ(lines_before, static_cast<std::size_t>(kShapes * kRewrites));

  // Loading compacts the file down to the live entries, keeping each key's
  // final value and provenance.
  ProfileCache compacted(dir);
  EXPECT_EQ(compacted.size(), static_cast<std::size_t>(kShapes));
  std::size_t lines_after = 0;
  {
    std::ifstream is(file);
    for (std::string line; std::getline(is, line);) ++lines_after;
  }
  EXPECT_EQ(lines_after, static_cast<std::size_t>(kShapes));
  for (int i = 0; i < kShapes; ++i) {
    codegen::GemmShape shape;
    shape.m = shape.n = 64 + 16 * i;
    shape.k = 128;
    const auto got = compacted.lookup<GemmOp>("p100", shape);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->u, 8 * (1 + (kRewrites - 1) % 2));
    EXPECT_EQ(compacted.meta(ProfileCache::key<GemmOp>("p100", shape)),
              ProfileCache::provenance("random", 10 + kRewrites - 1));
  }

  // And the compacted file still round-trips.
  ProfileCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kShapes));
  std::filesystem::remove_all(dir);
}

TEST(ProfileCache, CompactionPreservesLegacySchemaEntries) {
  // A file mixing all three schemas plus enough duplicate lines to trip the
  // compactor: every schema's entry must survive, rewritten in the current
  // format, with last-wins semantics across duplicate keys.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_compact_legacy_test").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto file = std::filesystem::path(dir) / "isaac_profiles.txt";

  codegen::GemmShape two, three, dup;
  two.m = two.n = two.k = 128;
  three.m = three.n = three.k = 256;
  dup.m = dup.n = dup.k = 384;
  codegen::GemmTuning t16, t32;
  t16.nl = 16;
  t32.nl = 32;
  {
    std::ofstream os(file);
    // Legacy two-column and kind-prefixed three-column lines…
    os << ProfileCache::key<GemmOp>("p100", two) << '\t'
       << OperationTraits<GemmOp>::encode_tuning(t16) << '\n';
    os << "gemm\t" << ProfileCache::key<GemmOp>("p100", three) << '\t'
       << OperationTraits<GemmOp>::encode_tuning(t16) << '\n';
    // …plus one key re-stored often enough that duplicates (7) outnumber the
    // three live entries: 9 lines total, 3 live.
    for (int i = 0; i < 7; ++i) {
      const auto& t = (i % 2 == 0) ? t16 : t32;
      os << ProfileCache::key<GemmOp>("p100", dup) << '\t'
         << OperationTraits<GemmOp>::encode_tuning(t) << '\t'
         << ProfileCache::provenance("genetic", i) << '\n';
    }
  }

  ProfileCache cache(dir);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.lookup<GemmOp>("p100", two)->nl, 16);
  EXPECT_EQ(cache.lookup<GemmOp>("p100", three)->nl, 16);
  EXPECT_EQ(cache.lookup<GemmOp>("p100", dup)->nl, 16);  // i = 6 wrote t16 last
  EXPECT_EQ(cache.meta(ProfileCache::key<GemmOp>("p100", dup)),
            ProfileCache::provenance("genetic", 6));
  // Legacy entries keep their empty provenance through the rewrite.
  EXPECT_EQ(cache.meta(ProfileCache::key<GemmOp>("p100", two)), "");

  std::size_t lines_after = 0;
  {
    std::ifstream is(file);
    for (std::string line; std::getline(is, line);) ++lines_after;
  }
  EXPECT_EQ(lines_after, 3u);

  ProfileCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), 3u);
  EXPECT_EQ(reloaded.lookup<GemmOp>("p100", dup)->nl, 16);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------------ context --
TEST(Context, GemmEndToEndProducesCorrectNumerics) {
  ContextOptions opts;
  opts.search = fast_inference();
  Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(shared_model());

  codegen::GemmShape shape;
  shape.m = 96;
  shape.n = 48;
  shape.k = 200;
  shape.trans_b = true;
  Rng rng(5);
  std::vector<float> a(static_cast<std::size_t>(shape.m * shape.k));
  std::vector<float> b(static_cast<std::size_t>(shape.n * shape.k));
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n), 0.0f);
  std::vector<float> c_ref = c;

  const auto info = ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.n, 0.0f, c.data(),
                             shape.m);
  EXPECT_GT(info.gflops, 0.0);
  EXPECT_FALSE(info.from_cache);
  EXPECT_TRUE(info.provisional);  // two-tier: the cold call served tier 1

  codegen::reference_gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.n, 0.0f,
                          c_ref.data(), shape.m);
  double max_diff = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c[i] - c_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-2);

  // Once the background refinement lands, the cache serves the refined
  // selection and still computes correctly.
  ctx.drain_background();
  std::vector<float> c2(c.size(), 0.0f);
  const auto info2 = ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.n, 0.0f,
                              c2.data(), shape.m);
  EXPECT_TRUE(info2.from_cache);
  EXPECT_FALSE(info2.provisional);
  max_diff = 0;
  for (std::size_t i = 0; i < c2.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c2[i] - c_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-2);

  // The refined entry records which strategy and budget produced it.
  const auto meta = ctx.cache().meta(ProfileCache::key<GemmOp>(ctx.device().name, shape));
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(*meta, ProfileCache::provenance("model_topk", 20, EntryTier::refined));
}

TEST(Context, ConvEndToEnd) {
  ContextOptions opts;
  opts.search = fast_inference();
  opts.search.max_candidates = 4000;
  Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(shared_model());

  const auto shape = codegen::ConvShape::from_npq(4, 10, 10, 16, 8, 3, 3);
  Rng rng(6);
  std::vector<float> input(static_cast<std::size_t>(shape.c * shape.h * shape.w * shape.n));
  std::vector<float> filters(static_cast<std::size_t>(shape.crs() * shape.k));
  for (auto& x : input) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : filters) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> out(static_cast<std::size_t>(shape.k * shape.p() * shape.q() * shape.n));
  std::vector<float> out_ref = out;

  const auto info = ctx.conv(shape, 1.0f, input.data(), filters.data(), 0.0f, out.data());
  EXPECT_GT(info.gflops, 0.0);

  codegen::reference_conv(shape, 1.0f, input.data(), filters.data(), 0.0f, out_ref.data());
  double max_diff = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(out[i] - out_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-2);
}

TEST(Context, BatchedGemmEndToEndProducesCorrectNumerics) {
  ContextOptions opts;
  opts.search = fast_inference();
  Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(shared_model());

  codegen::BatchedGemmShape shape;
  shape.batch = 5;
  shape.gemm.m = 48;
  shape.gemm.n = 24;
  shape.gemm.k = 96;
  const std::int64_t stride_a = shape.gemm.m * shape.gemm.k;
  const std::int64_t stride_b = shape.gemm.k * shape.gemm.n;
  const std::int64_t stride_c = shape.gemm.m * shape.gemm.n;

  Rng rng(8);
  std::vector<float> a(static_cast<std::size_t>(stride_a * shape.batch));
  std::vector<float> b(static_cast<std::size_t>(stride_b * shape.batch));
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(stride_c * shape.batch), 0.0f);
  std::vector<float> c_ref = c;

  const auto info = ctx.batched_gemm(shape, 1.0f, a.data(), shape.gemm.m, stride_a, b.data(),
                                     shape.gemm.k, stride_b, 0.0f, c.data(), shape.gemm.m,
                                     stride_c);
  EXPECT_GT(info.gflops, 0.0);
  EXPECT_FALSE(info.from_cache);
  EXPECT_EQ(info.tuning.kg, 1);

  codegen::reference_batched_gemm(shape, 1.0f, a.data(), shape.gemm.m, stride_a, b.data(),
                                  shape.gemm.k, stride_b, 0.0f, c_ref.data(), shape.gemm.m,
                                  stride_c);
  double max_diff = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c[i] - c_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-2);

  // Second call hits the cache (refined once the background search lands —
  // the batched constraint still holds for the refined winner).
  ctx.drain_background();
  const auto info2 = ctx.batched_gemm(shape, 1.0f, a.data(), shape.gemm.m, stride_a, b.data(),
                                      shape.gemm.k, stride_b, 0.0f, c.data(), shape.gemm.m,
                                      stride_c);
  EXPECT_TRUE(info2.from_cache);
  EXPECT_FALSE(info2.provisional);
  EXPECT_EQ(info2.tuning.kg, 1);
}

TEST(Context, RequiresModel) {
  Context ctx(gpusim::gtx980ti());
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 256;
  EXPECT_THROW(ctx.tune_gemm(shape), std::logic_error);
}

TEST(Context, TrainModelProducesUsableModel) {
  ContextOptions opts;
  opts.search = fast_inference();
  Context ctx(gpusim::gtx980ti(), opts);
  ctx.train_model(/*samples=*/1200, /*epochs=*/6);
  EXPECT_TRUE(ctx.has_model());
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 512;
  const auto result = ctx.tune_gemm(shape);
  EXPECT_GT(result.best.measured_gflops, 0.0);
}

}  // namespace
}  // namespace isaac::core
