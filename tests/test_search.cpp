// Tests for the pluggable search subsystem (src/search/): the strategy
// registry, constraint-aware proposals, seeded determinism, exact budget
// semantics, the ModelGuidedTopK ↔ ExhaustiveSearch agreement criterion, and
// strategy-driven adaptive offline collection.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/inference.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "search/driver.hpp"
#include "search/factory.hpp"
#include "tuning/collector.hpp"

namespace isaac {
namespace {

constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

codegen::GemmShape gemm_shape(std::int64_t m, std::int64_t n, std::int64_t k) {
  codegen::GemmShape s;
  s.m = m;
  s.n = n;
  s.k = k;
  return s;
}

/// The shape grid the agreement test (and the shared model's workload-aware
/// training) spans: square LINPACK blocks, skinny DeepBench panels, deep ICA
/// reductions — the regimes the paper's evaluation covers.
const std::vector<codegen::GemmShape>& gemm_grid() {
  static const std::vector<codegen::GemmShape> grid = {
      gemm_shape(512, 512, 512),  gemm_shape(1024, 1024, 1024), gemm_shape(2560, 64, 2560),
      gemm_shape(2560, 32, 2560), gemm_shape(2560, 16, 2560),   gemm_shape(32, 32, 60000),
      gemm_shape(64, 64, 8192),   gemm_shape(896, 896, 896),    gemm_shape(4096, 128, 1024),
      gemm_shape(128, 2048, 1152), gemm_shape(48, 48, 20000),   gemm_shape(256, 256, 4096),
  };
  return grid;
}

const std::vector<codegen::ConvShape>& conv_grid() {
  static const std::vector<codegen::ConvShape> grid = {
      codegen::ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3),
      codegen::ConvShape::from_npq(4, 28, 28, 128, 96, 3, 3),
      codegen::ConvShape::from_npq(16, 14, 14, 256, 128, 1, 1),
      codegen::ConvShape::from_npq(8, 7, 7, 512, 256, 3, 3),
  };
  return grid;
}

codegen::BatchedGemmShape batched_shape(std::int64_t batch, std::int64_t m, std::int64_t n,
                                        std::int64_t k) {
  codegen::BatchedGemmShape s;
  s.batch = batch;
  s.gemm = gemm_shape(m, n, k);
  return s;
}

/// Attention/RNN-style batched products for the ranking parity grid.
const std::vector<codegen::BatchedGemmShape>& batched_grid() {
  static const std::vector<codegen::BatchedGemmShape> grid = {
      batched_shape(16, 512, 64, 512),
      batched_shape(32, 128, 128, 128),
      batched_shape(8, 896, 896, 896),
      batched_shape(64, 64, 64, 1024),
  };
  return grid;
}

/// One trained model shared by every test in this binary (training dominates
/// the suite's runtime). Trained like a production deployment would be: the
/// paper's generic collection, augmented with samples at the workload's own
/// shape grid — the model the agreement test leans on.
const mlp::Regressor& shared_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    const auto& dev = sim.device();
    tuning::CollectorConfig cfg;
    cfg.num_samples = 4000;
    cfg.seed = 31337;
    auto report = tuning::collect_gemm(sim, cfg);

    // Workload-informed augmentation: uniform legal tunings at the grid
    // shapes, measured with the usual noisy median-of-3.
    Rng rng(777);
    const tuning::GemmSearchSpace gemm_space;
    const tuning::ConvSearchSpace conv_space;
    constexpr std::size_t kPerShape = 200;
    const auto add = [&](const auto& shape, const auto& tuning) {
      const auto timed = sim.launch_median(codegen::analyze(shape, tuning, dev), 3);
      if (!timed.valid) return false;
      tuning::Sample s;
      s.x = tuning::features(shape, tuning);
      s.y = timed.tflops * 1000.0;
      report.dataset.add(std::move(s));
      return true;
    };
    for (const auto& shape : gemm_grid()) {
      std::size_t got = 0, guard = 0;
      while (got < kPerShape && ++guard < kPerShape * 2000) {
        const auto t = gemm_space.sample_uniform(rng);
        if (codegen::validate(shape, t, dev) && add(shape, t)) ++got;
      }
    }
    for (const auto& shape : conv_grid()) {
      std::size_t got = 0, guard = 0;
      while (got < kPerShape && ++guard < kPerShape * 2000) {
        const auto t = conv_space.sample_uniform(rng);
        if (codegen::validate(shape, t, dev) && add(shape, t)) ++got;
      }
    }

    mlp::TrainConfig tc;
    tc.net.hidden = {64, 96, 64};
    tc.epochs = 12;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

search::SearchConfig strategy_config(const std::string& name, std::size_t budget,
                                     std::uint64_t seed = 0x5EED5) {
  search::SearchConfig cfg;
  cfg.strategy = name;
  cfg.budget = budget;
  cfg.seed = seed;
  cfg.reeval_reps = 1;
  cfg.max_candidates = 20000;
  return cfg;
}

// ----------------------------------------------------------------- registry --
TEST(SearchRegistry, NamesRoundTripThroughFactory) {
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const auto shape = gemm_shape(512, 512, 512);
  const tuning::GemmSearchSpace space;
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &shared_model();

  ASSERT_FALSE(search::strategy_names().empty());
  for (const auto& name : search::strategy_names()) {
    search::SearchConfig cfg = strategy_config(name, 8);
    const auto strategy = search::make_strategy<core::GemmOp>(problem, cfg);
    EXPECT_EQ(std::string(strategy->name()), name);
  }
}

TEST(SearchRegistry, UnknownStrategyThrows) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  EXPECT_THROW(
      core::tune_gemm(gemm_shape(512, 512, 512), shared_model(), sim,
                      strategy_config("gradient_descent", 8)),
      std::invalid_argument);
}

TEST(SearchRegistry, ModelGuidedStrategyRequiresModel) {
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const auto shape = gemm_shape(512, 512, 512);
  const tuning::GemmSearchSpace space;
  search::SearchProblem<core::GemmOp> problem;  // no model attached
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  EXPECT_THROW(search::make_strategy<core::GemmOp>(problem, strategy_config("model_topk", 8)),
               std::invalid_argument);
  // Every other strategy is model-free and must construct.
  for (const auto& name : search::strategy_names()) {
    if (!search::strategy_is_model_free(name)) continue;
    EXPECT_NO_THROW(search::make_strategy<core::GemmOp>(problem, strategy_config(name, 8)));
  }
}

// ------------------------------------------------------- constraint-aware ----
TEST(SearchStrategies, ProposalsAreLegalBeforeAnyBudgetIsSpent) {
  // Strategies consult codegen::validate while proposing, so everything they
  // hand the driver is already inside the legal space X.
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const auto shape = gemm_shape(2560, 16, 2560);
  const tuning::GemmSearchSpace space;
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &shared_model();

  for (const auto& name : search::strategy_names()) {
    auto strategy = search::make_strategy<core::GemmOp>(problem, strategy_config(name, 16));
    const auto proposals = strategy->propose(16);
    ASSERT_FALSE(proposals.empty()) << name;
    for (const auto& p : proposals) {
      EXPECT_TRUE(codegen::validate(shape, p.tuning, dev)) << name;
    }
    // X̂ traffic is accounted: everything legal was first visited.
    EXPECT_GE(strategy->stats().visited, strategy->stats().legal) << name;
    EXPECT_GE(strategy->stats().legal, proposals.size()) << name;
  }
}

// ------------------------------------------------------------ determinism ----
TEST(SearchStrategies, SeededStochasticStrategiesAreReproducible) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  const auto shape = gemm_shape(896, 128, 1024);
  for (const std::string name : {"random", "genetic", "annealing"}) {
    const auto cfg = strategy_config(name, 48, /*seed=*/0xF00D);
    const auto a = core::tune_gemm(shape, shared_model(), sim, cfg);
    const auto b = core::tune_gemm(shape, shared_model(), sim, cfg);
    EXPECT_EQ(a.best.tuning, b.best.tuning) << name;
    EXPECT_DOUBLE_EQ(a.best.measured_gflops, b.best.measured_gflops) << name;
    EXPECT_EQ(a.measured, b.measured) << name;
    EXPECT_EQ(a.enumerated, b.enumerated) << name;
    // A different seed explores a different trajectory (sanity check that the
    // seed is actually consumed; the *best* config may still coincide).
    auto reseeded = cfg;
    reseeded.seed = 0xBEEF;
    const auto c = core::tune_gemm(shape, shared_model(), sim, reseeded);
    EXPECT_NE(a.enumerated, c.enumerated) << name;
  }
}

// ----------------------------------------------------------------- budgets ----
TEST(SearchStrategies, EveryStrategyRespectsTheBudgetExactly) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  const auto shape = gemm_shape(512, 512, 512);  // legal space ≫ budget
  constexpr std::size_t kBudget = 24;
  for (const auto& name : search::strategy_names()) {
    const auto result =
        core::tune_gemm(shape, shared_model(), sim, strategy_config(name, kBudget));
    EXPECT_EQ(result.measured, kBudget) << name;
    // top is de-duplicated, so re-proposals (annealing revisits) may shrink it.
    EXPECT_LE(result.top.size(), kBudget) << name;
    EXPECT_GE(result.top.size(), kBudget / 2) << name;
    EXPECT_EQ(result.budget, kBudget) << name;
    EXPECT_EQ(result.strategy, name);
    EXPECT_GT(result.best.measured_gflops, 0.0) << name;
  }
}

TEST(SearchStrategies, AnytimeBestIsBestOfMeasuredPrefix) {
  // Doubling the budget can only improve (or tie) the best — the measured
  // prefix of a seeded strategy's trajectory is itself a valid run.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  const auto shape = gemm_shape(2560, 32, 2560);
  const auto small = core::tune_gemm(shape, shared_model(), sim, strategy_config("random", 16));
  const auto large = core::tune_gemm(shape, shared_model(), sim, strategy_config("random", 64));
  EXPECT_GE(large.best.measured_gflops, small.best.measured_gflops);
}

// ------------------------------------------- the paper's recipe, budgeted ----

/// The coarse always-good region every hand-tuned library lives in (the
/// OperationTraits seed grids), expressed as restricted search spaces. This
/// is the comparison universe for the agreement criterion: exhaustive
/// measurement of all of it is tractable, so ExhaustiveSearch provides exact
/// ground truth, and a 64-evaluation budget is a genuine fraction (~30-60%)
/// of its legal space rather than a rounding error of the 10^7-point X̂ —
/// where no regression model could pin down the single global argmax.
struct SeedCoreGemmSpace : tuning::GemmSearchSpace {
  SeedCoreGemmSpace() {
    domains_ = {{"ms", {4, 8}},  {"ns", {4, 8}},      {"ml", {32, 64}},
                {"nl", {16, 32, 64}}, {"u", {8}},     {"ks", {1}},
                {"kl", {1, 4}},  {"kg", {1, 4, 16}},  {"vec", {4}}};
  }
};

struct SeedCoreConvSpace : tuning::ConvSearchSpace {
  SeedCoreConvSpace() {
    domains_ = {{"tk", {4, 8}}, {"tp", {1, 2}}, {"tq", {4}},     {"tn", {4}},
                {"bk", {32, 64}}, {"bp", {1, 2}}, {"bq", {4}},   {"bn", {8, 16}},
                {"u", {8, 16}}, {"cl", {1}},    {"cg", {1, 4, 16}}};
  }
};

/// Drive one strategy over an explicit problem (mirrors core/inference.cpp's
/// loop, including its deterministic tie-break) and return the winner.
template <typename Op>
std::pair<typename core::OperationTraits<Op>::Tuning, std::size_t> run_strategy(
    const search::SearchProblem<Op>& problem, const gpusim::Simulator& sim,
    const search::SearchConfig& config) {
  using Traits = core::OperationTraits<Op>;
  using Tuning = typename Traits::Tuning;
  const auto strategy = search::make_strategy<Op>(problem, config);
  Tuning best{};
  double best_gflops = -1.0;
  const std::size_t measured = search::drive(
      *strategy, config.budget,
      [&](const Tuning& t) {
        const auto timed =
            sim.launch_median(Traits::analyze(*problem.shape, t, sim.device()), 1);
        return timed.valid ? timed.tflops * 1000.0 : 0.0;
      },
      [&](const auto& proposal, double gflops) {
        if (gflops > best_gflops ||
            (gflops == best_gflops &&
             Traits::encode_tuning(proposal.tuning) < Traits::encode_tuning(best))) {
          best = proposal.tuning;
          best_gflops = gflops;
        }
      });
  EXPECT_GT(measured, 0u);
  return {best, measured};
}

TEST(SearchStrategies, UnlimitedBudgetTerminatesAtSpaceSize) {
  // budget = SIZE_MAX means "unlimited", but the driver clamps to |X̂| so
  // even strategies that never return an empty batch (genetic fallbacks,
  // annealing restarts) terminate instead of hanging the dispatch path.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.0, 7);
  const gpusim::DeviceDescriptor& dev = sim.device();
  const auto shape = gemm_shape(512, 512, 512);
  const SeedCoreGemmSpace space;  // |X̂| = a few hundred: cheap to saturate
  for (const auto& name : search::strategy_names()) {
    search::SearchProblem<core::GemmOp> problem;
    problem.shape = &shape;
    problem.device = &dev;
    problem.space = &space;
    problem.model = &shared_model();
    auto cfg = strategy_config(name, kUnlimited);
    const auto [best, measured] = run_strategy<core::GemmOp>(problem, sim, cfg);
    EXPECT_LE(measured, space.size()) << name;
    EXPECT_TRUE(codegen::validate(shape, best, dev)) << name;
  }
}

TEST(SearchStrategies, AnnealingCoolsUnderClampedBudgets) {
  // The cooling schedule must track the *effective* budget the driver will
  // spend (the raw request clamped to |X̂|). Scheduling against a raw
  // SIZE_MAX "unlimited" request kept the chain at kTempHot forever — pure
  // exploration, never a hill-climber.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.0, 7);
  const gpusim::DeviceDescriptor& dev = sim.device();
  const auto shape = gemm_shape(512, 512, 512);
  const SeedCoreGemmSpace space;  // |X̂| small enough to saturate cheaply
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;

  for (const std::size_t raw_budget : {kUnlimited, 100 * space.size()}) {
    search::SimulatedAnnealing<core::GemmOp> annealer(problem,
                                                      strategy_config("annealing", raw_budget));
    EXPECT_DOUBLE_EQ(annealer.temperature(), annealer.kTempHot);
    const std::size_t measured = search::drive(
        annealer, raw_budget,
        [&](const codegen::GemmTuning& t) {
          const auto timed = sim.launch_median(codegen::analyze(shape, t, dev), 1);
          return timed.valid ? timed.tflops * 1000.0 : 0.0;
        },
        [](const auto&, double) {});
    EXPECT_EQ(measured, space.size());  // clamped, so the run terminated
    // …and the schedule ran to completion: the chain ended effectively
    // greedy, not frozen at the hot end.
    EXPECT_LT(annealer.temperature(), annealer.kTempCold * 1.5) << raw_budget;
  }
}

TEST(SearchStrategies, EmptyLegalSpaceProposesNothingEverywhere) {
  // A degenerate shape with no legal configuration: every strategy must let
  // the driver return 0 measured instead of proposing illegal points or
  // spinning. (Over the small seed-core space so the scan-based fallbacks
  // stay cheap; the full-space behavior is identical.)
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const auto shape = gemm_shape(64, 64, 2);  // below the smallest prefetch depth
  const SeedCoreGemmSpace space;
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &shared_model();

  for (const auto& name : search::strategy_names()) {
    auto strategy = search::make_strategy<core::GemmOp>(problem, strategy_config(name, 8));
    std::size_t sunk = 0;
    const std::size_t measured = search::drive(
        *strategy, 8, [](const codegen::GemmTuning&) { return 1.0; },
        [&](const auto&, double) { ++sunk; });
    EXPECT_EQ(measured, 0u) << name;
    EXPECT_EQ(sunk, 0u) << name;
    EXPECT_EQ(strategy->stats().legal, 0u) << name;
  }
}

TEST(SearchStrategies, EmptyLegalSpaceThrowsDescriptively) {
  // …and tune<Op>() turns that empty drive into a loud, descriptive error —
  // not a value-initialized "best".
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 7);
  const auto shape = gemm_shape(64, 64, 2);
  // One sweep-based and one model-ranked strategy; the scan-heavy stochastic
  // fallbacks walk all of X̂ here, which the strategy-level test above
  // already covers cheaply.
  for (const std::string name : {"exhaustive", "model_topk"}) {
    try {
      core::tune_gemm(shape, shared_model(), sim, strategy_config(name, 8));
      FAIL() << name << " did not throw on an empty legal space";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("no legal gemm"), std::string::npos) << what;
      EXPECT_NE(what.find(name), std::string::npos) << what;
      EXPECT_NE(what.find(shape.to_string()), std::string::npos) << what;
    }
  }
}

TEST(SearchDriver, MeasureExceptionPropagatesToCaller) {
  // A measure() throw inside the driver's parallel measurement must reach
  // the caller (not terminate, not get scored as 0.0), and nothing from the
  // failed batch may leak into the sink.
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const auto shape = gemm_shape(512, 512, 512);
  const tuning::GemmSearchSpace space;
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &shared_model();

  for (const auto& name : search::strategy_names()) {
    const auto strategy =
        search::make_strategy<core::GemmOp>(problem, strategy_config(name, 32));
    std::size_t sunk = 0;
    EXPECT_THROW(
        search::drive(
            *strategy, 32,
            [](const codegen::GemmTuning&) -> double {
              throw std::runtime_error("device fault");
            },
            [&](const auto&, double) { ++sunk; }),
        std::runtime_error)
        << name;
    EXPECT_EQ(sunk, 0u) << name;
  }
}

TEST(ModelGuidedTopK, MatchesExhaustiveOnSeedShapeGrid) {
  // Acceptance criterion: with a budget of 64 measured evaluations per shape,
  // ModelGuidedTopK must select the same tuning as an unbudgeted
  // ExhaustiveSearch sweep on ≥ 80% of the GEMM/conv shape grid, over the
  // seed-grid core spaces above. Noise-free simulator: ground truth is the
  // device model's exact argmax, not a lottery over measurement noise.
  gpusim::Simulator sim(gpusim::tesla_p100(), /*noise_sigma=*/0.0, 7);
  const auto& dev = sim.device();

  search::SearchConfig exhaustive;
  exhaustive.strategy = "exhaustive";
  exhaustive.budget = kUnlimited;  // sweep all of X: the ground truth

  search::SearchConfig topk;
  topk.strategy = "model_topk";
  topk.budget = 64;

  const SeedCoreGemmSpace gemm_space;
  const SeedCoreConvSpace conv_space;

  std::size_t total = 0, matched = 0;
  std::string mismatches;
  const auto compare = [&](auto op_tag, const auto& space, const auto& shape) {
    using Op = std::decay_t<decltype(op_tag)>;
    search::SearchProblem<Op> problem;
    problem.shape = &shape;
    problem.device = &dev;
    problem.space = &space;
    problem.model = &shared_model();
    const auto [truth, truth_measured] = run_strategy<Op>(problem, sim, exhaustive);
    const auto [fast, fast_measured] = run_strategy<Op>(problem, sim, topk);
    EXPECT_LE(fast_measured, 64u) << shape.to_string();
    EXPECT_GE(truth_measured, fast_measured) << shape.to_string();  // full sweep ⊇ top-k
    ++total;
    if (truth == fast) {
      ++matched;
    } else {
      mismatches += "  " + shape.to_string() + ": truth " + truth.to_string() + " vs topk " +
                    fast.to_string() + "\n";
    }
  };

  for (const auto& shape : gemm_grid()) compare(core::GemmOp{}, gemm_space, shape);
  for (const auto& shape : conv_grid()) compare(core::ConvOp{}, conv_space, shape);

  EXPECT_GE(static_cast<double>(matched), 0.8 * static_cast<double>(total))
      << matched << "/" << total << " shapes agreed; mismatches:\n"
      << mismatches;
}

// ----------------------------------------- ranking-rewrite determinism ----

/// Pre-rewrite reference ranking: the exact candidate pipeline
/// rank_legal_space ran before the structural-skeleton and FeatureBatch
/// rewrite — serial odometer sweep, stride subsample with seed re-append,
/// vector-of-vectors featurization through the legacy chunked scorer, full
/// partial sort with the shared tie-break. A sibling replica lives in
/// bench/bench_inference_throughput.cpp (legacy_rank) as the bench's
/// before/after baseline — keep the two in sync.
template <typename Op>
search::RankedCandidates<Op> reference_rank(const search::SearchProblem<Op>& problem,
                                            const search::SearchConfig& config,
                                            std::size_t top_k) {
  search::RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();
  search::Choice odometer(domains.size(), 0);
  do {
    ++out.visited;
    if (problem.legal(odometer)) {
      ++out.legal;
      out.candidates.push_back(odometer);
    }
  } while (search::advance_choice(odometer, domains));
  if (out.candidates.empty()) return out;

  const std::size_t cap = config.max_candidates;
  if (cap > 0 && out.candidates.size() > cap) {
    std::vector<search::Choice> kept;
    std::unordered_set<std::uint64_t> in_kept;
    const double step = static_cast<double>(out.candidates.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      search::Choice& c = out.candidates[static_cast<std::size_t>(i * step)];
      if (in_kept.insert(search::choice_hash(c)).second) kept.push_back(std::move(c));
    }
    search::detail::append_seed_grid(problem, kept, in_kept);
    out.candidates = std::move(kept);
  }

  std::vector<std::vector<double>> rows(out.candidates.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i] = problem.featurize(problem.space->decode(out.candidates[i]));
  }
  out.scores = problem.model->predict_gflops_chunked(rows, config.batch);
  out.order.resize(out.candidates.size());
  for (std::size_t i = 0; i < out.order.size(); ++i) out.order[i] = i;
  const std::size_t k = std::min(std::max<std::size_t>(top_k, 1), out.order.size());
  std::partial_sort(out.order.begin(), out.order.begin() + static_cast<std::ptrdiff_t>(k),
                    out.order.end(), [&](std::size_t a, std::size_t b) {
                      if (out.scores[a] != out.scores[b]) return out.scores[a] > out.scores[b];
                      return out.candidates[a] < out.candidates[b];
                    });
  out.order.resize(k);
  return out;
}

TEST(RankLegalSpace, OrderingUnchangedByAllocationFreeRewrite) {
  // Acceptance criterion for both the scoring-pipeline rewrite and the
  // constraint-propagating enumeration: over the agreement test's shape grid
  // plus a batched-GEMM panel (20 shapes across all three op classes), the
  // skeleton-backed, pruned-walk, FeatureBatch-scored rank_legal_space must
  // reproduce the generate-and-test pipeline bit-for-bit — same candidate
  // sequences, same scores, same best-first order, same X̂ accounting.
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const tuning::GemmSearchSpace gemm_space;
  const tuning::ConvSearchSpace conv_space;
  const tuning::BatchedGemmSearchSpace batched_space;
  constexpr std::size_t kTopK = 64;

  const auto compare = [&](auto op_tag, const auto& space, const auto& shape) {
    using Op = std::decay_t<decltype(op_tag)>;
    search::SearchProblem<Op> problem;
    problem.shape = &shape;
    problem.device = &dev;
    problem.space = &space;
    problem.model = &shared_model();
    search::SearchConfig cfg;
    cfg.max_candidates = 20000;
    const auto fast = search::rank_legal_space(problem, cfg, kTopK);
    const auto truth = reference_rank(problem, cfg, kTopK);
    ASSERT_EQ(fast.candidates, truth.candidates) << shape.to_string();
    ASSERT_EQ(fast.scores.size(), truth.scores.size()) << shape.to_string();
    for (std::size_t i = 0; i < truth.scores.size(); ++i) {
      ASSERT_DOUBLE_EQ(fast.scores[i], truth.scores[i]) << shape.to_string() << " row " << i;
    }
    ASSERT_EQ(fast.order, truth.order) << shape.to_string();
    EXPECT_EQ(fast.visited, truth.visited) << shape.to_string();
    EXPECT_EQ(fast.legal, truth.legal) << shape.to_string();
  };

  for (const auto& shape : gemm_grid()) compare(core::GemmOp{}, gemm_space, shape);
  for (const auto& shape : conv_grid()) compare(core::ConvOp{}, conv_space, shape);
  for (const auto& shape : batched_grid()) {
    compare(core::BatchedGemmOp{}, batched_space, shape);
  }
}

// --------------------------------------- constraint-propagating walk ----

TEST(PrunedWalk, ForEachLegalMatchesGenerateAndTest) {
  // Space-level tentpole invariant: for_each_legal must visit exactly the
  // points the generate-and-test sweep (for_each + validate) keeps, in
  // exactly for_each order — including a shape whose legal space is empty.
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const SeedCoreGemmSpace seed_gemm;
  const SeedCoreConvSpace seed_conv;

  auto gemm_shapes = gemm_grid();
  gemm_shapes.push_back(gemm_shape(64, 64, 2));  // empty legal space
  for (const auto& shape : gemm_shapes) {
    std::vector<codegen::GemmTuning> sweep, pruned;
    seed_gemm.for_each([&](const codegen::GemmTuning& t) {
      if (codegen::validate(shape, t, dev)) sweep.push_back(t);
      return true;
    });
    seed_gemm.for_each_legal(shape, dev, [&](const codegen::GemmTuning& t) {
      pruned.push_back(t);
      return true;
    });
    EXPECT_EQ(pruned, sweep) << shape.to_string();
  }

  // One full-space GEMM shape: the production domains, ~20M points swept.
  {
    const tuning::GemmSearchSpace full;
    const auto shape = gemm_shape(2560, 32, 2560);
    std::vector<codegen::GemmTuning> sweep, pruned;
    full.for_each([&](const codegen::GemmTuning& t) {
      if (codegen::validate(shape, t, dev)) sweep.push_back(t);
      return true;
    });
    full.for_each_legal(shape, dev, [&](const codegen::GemmTuning& t) {
      pruned.push_back(t);
      return true;
    });
    EXPECT_EQ(pruned, sweep) << shape.to_string();
    EXPECT_FALSE(pruned.empty());
  }

  for (const auto& shape : conv_grid()) {
    std::vector<codegen::ConvTuning> sweep, pruned;
    seed_conv.for_each([&](const codegen::ConvTuning& t) {
      if (codegen::validate(shape, t, dev)) sweep.push_back(t);
      return true;
    });
    seed_conv.for_each_legal(shape, dev, [&](const codegen::ConvTuning& t) {
      pruned.push_back(t);
      return true;
    });
    EXPECT_EQ(pruned, sweep) << shape.to_string();
  }
}

TEST(PrunedWalk, SkeletonKeyIsolatedAcrossDeviceLimits) {
  // Two descriptors sharing a name but differing in a legality-relevant
  // limit must never share a structural skeleton: each device's ranking has
  // to agree with a reference sweep performed against that same device.
  const gpusim::DeviceDescriptor small = [] {
    gpusim::DeviceDescriptor d = gpusim::tesla_p100();
    d.smem_per_block_bytes /= 4;
    d.smem_per_sm_bytes /= 4;
    return d;
  }();
  const gpusim::DeviceDescriptor full = gpusim::tesla_p100();

  const tuning::GemmSearchSpace space;  // production domains → the real cache
  const auto shape = gemm_shape(512, 512, 512);
  search::SearchConfig cfg;
  cfg.max_candidates = 20000;

  std::vector<std::size_t> legal_counts;
  for (const gpusim::DeviceDescriptor* dev : {&full, &small}) {
    search::SearchProblem<core::GemmOp> problem;
    problem.shape = &shape;
    problem.device = dev;
    problem.space = &space;
    problem.model = &shared_model();
    const auto fast = search::rank_legal_space(problem, cfg, 64);
    const auto truth = reference_rank(problem, cfg, 64);
    ASSERT_EQ(fast.candidates, truth.candidates) << dev->smem_per_block_bytes;
    ASSERT_EQ(fast.order, truth.order) << dev->smem_per_block_bytes;
    EXPECT_EQ(fast.legal, truth.legal);
    legal_counts.push_back(fast.legal);
  }
  // The cut-down device must actually lose candidates — otherwise this test
  // could pass with the two devices silently sharing one skeleton.
  ASSERT_EQ(legal_counts.size(), 2u);
  EXPECT_LT(legal_counts[1], legal_counts[0]);
}

/// A GEMM space inflated past 2^32 points with junk values that can never be
/// legal for a modest shape (KG far beyond K, NL blowing out shared memory).
/// Every flat index above 2^32 would have wrapped the old 32-bit skeleton
/// indices; the space must instead take the lazy pruned-walk ranking path.
struct OversizedGemmSpace : tuning::GemmSearchSpace {
  OversizedGemmSpace() {
    for (auto& d : domains_) {
      if (d.name == "kg") d.values.insert(d.values.end(), 2048, 1 << 20);
      if (d.name == "nl") d.values.insert(d.values.end(), 64, 1 << 20);
    }
  }
};

TEST(PrunedWalk, OversizedSpaceRanksThroughLazyWalk) {
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const tuning::GemmSearchSpace clean;
  const OversizedGemmSpace oversized;
  ASSERT_GT(oversized.size(), std::numeric_limits<std::uint32_t>::max());
  ASSERT_LT(oversized.size(), std::numeric_limits<std::size_t>::max());  // exact, not saturated

  const auto shape = gemm_shape(2560, 32, 2560);
  search::SearchConfig cfg;
  cfg.max_candidates = 20000;
  const auto rank = [&](const tuning::GemmSearchSpace& space) {
    search::SearchProblem<core::GemmOp> problem;
    problem.shape = &shape;
    problem.device = &dev;
    problem.space = &space;
    problem.model = &shared_model();
    return search::rank_legal_space(problem, cfg, 64);
  };
  const auto a = rank(clean);
  const auto b = rank(oversized);

  // The junk values are all illegal, so the decoded candidate sequences,
  // scores and orderings must match the clean space exactly — and the
  // oversized ranking must account the whole inflated X̂ as visited.
  EXPECT_EQ(b.visited, oversized.size());
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    ASSERT_EQ(clean.decode(a.candidates[i]), oversized.decode(b.candidates[i])) << i;
  }
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.scores[i], b.scores[i]) << i;
  }
  ASSERT_EQ(a.order, b.order);
}

TEST(SearchSpaceSize, SaturatesInsteadOfWrapping) {
  // |X̂| beyond 2^64 must clamp to the SIZE_MAX sentinel, not silently wrap.
  struct HugeSpace : tuning::GemmSearchSpace {
    HugeSpace() {
      for (auto& d : domains_) d.values.assign(512, 2);  // 512^9 = 2^81
    }
  };
  EXPECT_EQ(HugeSpace().size(), std::numeric_limits<std::size_t>::max());
  // Ordinary spaces stay exact.
  EXPECT_LT(tuning::GemmSearchSpace().size(), std::numeric_limits<std::size_t>::max());
  EXPECT_LT(tuning::ConvSearchSpace().size(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(SeedCoreGemmSpace().size(), 144u);  // 2·2·2·3·1·1·2·3·1
}

TEST(RankStridedProbe, ReusableOdometerKeepsProbeDeterministic) {
  // The probe's candidate set and ordering must be stable run-to-run (it is
  // the zero-measurement dispatch path) and across the buffer-reuse rewrite.
  const gpusim::DeviceDescriptor& dev = gpusim::tesla_p100();
  const tuning::GemmSearchSpace space;
  const auto shape = gemm_shape(2560, 32, 2560);
  search::SearchProblem<core::GemmOp> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &shared_model();
  search::SearchConfig cfg;
  cfg.max_candidates = 4096;
  const auto a = search::rank_strided_probe(problem, cfg, 8);
  const auto b = search::rank_strided_probe(problem, cfg, 8);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.visited, b.visited);
  ASSERT_FALSE(a.order.empty());
  for (std::size_t i = 0; i < a.order.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scores[a.order[i]], b.scores[b.order[i]]);
  }
}

// ------------------------------------------------- adaptive collection ----
TEST(AdaptiveCollection, StrategyDrivenSamplingFillsQuotaDeterministically) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 11);
  tuning::CollectorConfig cfg;
  cfg.num_samples = 400;
  cfg.seed = 4242;
  cfg.search_strategy = "genetic";
  cfg.search_budget_per_shape = 8;

  const auto a = tuning::collect_gemm(sim, cfg);
  EXPECT_EQ(a.dataset.size(), cfg.num_samples);
  EXPECT_GT(a.generation.attempted, a.generation.accepted);  // rejections counted

  const auto b = tuning::collect_gemm(sim, cfg);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (std::size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.dataset[i].y, b.dataset[i].y);
    EXPECT_EQ(a.dataset[i].x, b.dataset[i].x);
  }
}

TEST(AdaptiveCollection, UnsuitableStrategiesAreRejectedUpfront) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 11);
  tuning::CollectorConfig cfg;
  cfg.num_samples = 10;
  cfg.search_strategy = "model_topk";  // needs a model collection doesn't have
  EXPECT_THROW(tuning::collect_gemm(sim, cfg), std::invalid_argument);
  cfg.search_strategy = "genetci";  // unknown names fail fast, not mid-collection
  EXPECT_THROW(tuning::collect_gemm(sim, cfg), std::invalid_argument);
  cfg.search_strategy = "exhaustive";  // same lexicographic prefix for every shape
  EXPECT_THROW(tuning::collect_gemm(sim, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace isaac
