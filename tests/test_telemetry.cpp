// Tests for the runtime telemetry layer: metric correctness under
// contention, histogram percentiles against stats::percentile, the
// disabled-path no-op contract, per-shard cache accounting, the cold
// two-tier dispatch span tree, and snapshot JSON serialization.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/isaac.hpp"
#include "core/profile_cache.hpp"
#include "gpusim/device.hpp"
#include "mlp/regressor.hpp"
#include "telemetry/telemetry.hpp"
#include "tuning/collector.hpp"

namespace isaac {
namespace {

/// Telemetry is process-global; each test starts from a clean enabled state
/// and leaves the layer off so unrelated suites keep the zero-overhead path.
struct TelemetryGuard {
  TelemetryGuard() {
    telemetry::set_enabled(true);
    telemetry::set_tracing(true);
    telemetry::reset_for_testing();
  }
  ~TelemetryGuard() {
    telemetry::set_enabled(false);
    telemetry::set_tracing(false);
    telemetry::reset_for_testing();
  }
};

/// One small trained model shared by the dispatch tests (same budget as
/// test_core's shared_model: training is the expensive part).
const mlp::Regressor& shared_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 2500;
    cfg.seed = 31337;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {48, 48};
    tc.epochs = 10;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

// ------------------------------------------------------------------ metrics --

TEST(TelemetryMetrics, CounterLosesNoIncrementsUnderContention) {
  TelemetryGuard guard;
  telemetry::Counter& c = telemetry::counter("test.hammer");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(TelemetryMetrics, DisabledRecordsNothing) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  telemetry::counter("test.off_counter").add(5);
  telemetry::gauge("test.off_gauge").set(42);
  telemetry::histogram("test.off_hist").record(123.0);
  ISAAC_TM_COUNT("test.off_macro");
  telemetry::set_enabled(true);
  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter_value("test.off_counter"), 0u);
  EXPECT_EQ(snap.counter_value("test.off_macro"), 0u);
  const auto* h = snap.find_histogram("test.off_hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0u);
}

TEST(TelemetryMetrics, ResetKeepsInstrumentAddressesStable) {
  TelemetryGuard guard;
  telemetry::Counter& before = telemetry::counter("test.stable");
  before.add(7);
  EXPECT_EQ(before.value(), 7u);
  telemetry::reset_for_testing();
  telemetry::Counter& after = telemetry::counter("test.stable");
  EXPECT_EQ(&before, &after);
  EXPECT_EQ(after.value(), 0u);
  after.add(1);
  EXPECT_EQ(before.value(), 1u);
}

TEST(TelemetryMetrics, HistogramPercentilesTrackStatsPercentile) {
  TelemetryGuard guard;
  telemetry::Histogram& h = telemetry::histogram("test.latency_us");
  Rng rng(0xFEED);
  std::vector<double> raw;
  raw.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed like a latency distribution: exp of a uniform exponent.
    const double v = std::floor(std::exp(rng.uniform(0.0, 11.0))) + 1.0;
    raw.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), raw.size());
  // Log-linear buckets with 8 sub-buckets per octave bound the per-sample
  // value error at 1/16; rank selection is exact, so the extracted
  // percentiles must track stats::percentile within that relative error.
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const double expected = stats::percentile(raw, q);
    const double got = h.percentile(q);
    EXPECT_NEAR(got, expected, expected / 16.0 + 1.0)
        << "q=" << q << " expected=" << expected << " got=" << got;
  }
  EXPECT_EQ(h.min(), 2u);  // exp(0)=1 floored + 1
  EXPECT_GE(h.max(), static_cast<std::uint64_t>(stats::max(raw) * 0.9));
}

TEST(TelemetryMetrics, GaugeLastWriterWins) {
  TelemetryGuard guard;
  telemetry::Gauge& g = telemetry::gauge("test.depth");
  g.set(3);
  g.add(2);
  EXPECT_EQ(g.value(), 5);
  g.set(-1);
  EXPECT_EQ(g.value(), -1);
}

// -------------------------------------------------------------------- cache --

TEST(TelemetryCache, ShardStatsCountHitsMissesStoresUpgrades) {
  TelemetryGuard guard;
  core::ProfileCache cache;  // in-memory
  codegen::GemmShape shape;
  shape.m = shape.n = shape.k = 96;
  const std::string dev = "test-device";
  const codegen::GemmTuning tuning{};

  EXPECT_FALSE(cache.lookup<core::GemmOp>(dev, shape).has_value());  // miss
  cache.store<core::GemmOp>(
      dev, shape, tuning,
      core::ProfileCache::provenance("predict", 0, core::EntryTier::provisional));
  EXPECT_TRUE(cache.lookup<core::GemmOp>(dev, shape).has_value());  // provisional hit
  EXPECT_TRUE(cache.upgrade<core::GemmOp>(
      dev, shape, tuning,
      core::ProfileCache::provenance("exhaustive", 10, core::EntryTier::refined)));
  EXPECT_FALSE(cache.upgrade<core::GemmOp>(
      dev, shape, tuning,
      core::ProfileCache::provenance("exhaustive", 10, core::EntryTier::refined)));
  EXPECT_TRUE(cache.lookup<core::GemmOp>(dev, shape).has_value());  // refined hit

  const core::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.provisional_hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.upgrades, 1u);
  EXPECT_EQ(stats.upgrade_rejects, 1u);

  // The same traffic reaches the global registry for exposition.
  const auto snap = telemetry::snapshot(false);
  EXPECT_EQ(snap.counter_value("cache.miss"), 1u);
  EXPECT_EQ(snap.counter_value("cache.hit"), 2u);
  EXPECT_EQ(snap.counter_value("cache.hit_provisional"), 1u);
  EXPECT_EQ(snap.counter_value("cache.upgrade"), 1u);
  EXPECT_EQ(snap.counter_value("cache.upgrade_reject"), 1u);
}

TEST(TelemetryCache, ShardStatsCoherentUnderThreads) {
  TelemetryGuard guard;
  core::ProfileCache cache;
  const std::string dev = "test-device";
  constexpr std::size_t kThreads = 8;
  constexpr std::int64_t kShapes = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &dev] {
      for (std::int64_t i = 0; i < kShapes; ++i) {
        codegen::GemmShape s;
        s.m = s.n = s.k = 16 + i;
        (void)cache.lookup<core::GemmOp>(dev, s);
        cache.store<core::GemmOp>(dev, s, codegen::GemmTuning{});
        (void)cache.lookup<core::GemmOp>(dev, s);
      }
    });
  }
  for (auto& t : threads) t.join();
  const core::CacheStats stats = cache.stats();
  // Every first+second lookup and every store is accounted exactly once.
  EXPECT_EQ(stats.hits + stats.misses, 2 * kThreads * kShapes);
  EXPECT_EQ(stats.stores, kThreads * kShapes);
  // The second lookup of each iteration follows that thread's own store, so
  // at least one hit per (thread, shape) pair is guaranteed.
  EXPECT_GE(stats.hits, kThreads * kShapes);
}

// -------------------------------------------------------------------- spans --

TEST(TelemetryTrace, ColdTwoTierDispatchLinksSelectPredictRefine) {
  const mlp::Regressor& m = shared_model();  // train before clearing the ring
  TelemetryGuard guard;

  core::ContextOptions opts;
  opts.noise_sigma = 0.0;
  opts.search.budget = 10;
  opts.search.reeval_reps = 1;
  opts.search.max_candidates = 4000;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(m);

  codegen::GemmShape shape;
  shape.m = 192;
  shape.n = 48;
  shape.k = 256;
  ctx.select<core::GemmOp>(shape);
  ctx.drain_background();

  const auto snap = telemetry::snapshot();

  // Counters: a cold dispatch is one miss, one tier-1 prediction, one
  // enqueued refinement that lands as an upgrade.
  EXPECT_GE(snap.counter_value("dispatch.select"), 1u);
  EXPECT_GE(snap.counter_value("cache.miss"), 1u);
  EXPECT_GE(snap.counter_value("dispatch.leader_predict"), 1u);
  EXPECT_GE(snap.counter_value("refine.enqueued"), 1u);
  EXPECT_GE(snap.counter_value("refine.upgraded"), 1u);
  EXPECT_GE(snap.counter_value("cache.upgrade"), 1u);
  const auto* select_us = snap.find_histogram("dispatch.select_us");
  ASSERT_NE(select_us, nullptr);
  EXPECT_GE(select_us->count, 1u);

  // Span tree: refine.run (background thread) links through select.predict
  // to the dispatch.select root — the cold dispatch reconstructs end to end
  // from one snapshot.
  std::map<std::uint64_t, const telemetry::SpanRecord*> by_id;
  for (const auto& s : snap.spans) by_id[s.id] = &s;

  const auto root_of = [&](const telemetry::SpanRecord& s) {
    const telemetry::SpanRecord* cur = &s;
    std::vector<std::string> path{cur->name};
    while (cur->parent != 0) {
      const auto it = by_id.find(cur->parent);
      if (it == by_id.end()) break;
      cur = it->second;
      path.push_back(cur->name);
    }
    return path;  // leaf-to-root names
  };

  bool found_refine_chain = false;
  bool found_queue_chain = false;
  for (const auto& s : snap.spans) {
    const std::string name = s.name;
    if (name != "refine.run" && name != "refine.queue") continue;
    const auto path = root_of(s);
    const bool reaches_select = !path.empty() && path.back() == "dispatch.select";
    if (name == "refine.run" && reaches_select) found_refine_chain = true;
    if (name == "refine.queue" && reaches_select) found_queue_chain = true;
    if (name == "refine.run") {
      EXPECT_NE(s.parent, 0u) << "background refinement span must not be a root";
    }
  }
  EXPECT_TRUE(found_refine_chain)
      << "no refine.run span linked back to a dispatch.select root";
  EXPECT_TRUE(found_queue_chain)
      << "no refine.queue span linked back to a dispatch.select root";

  // The select root also directly parents the tier-1 prediction span.
  bool predict_under_select = false;
  for (const auto& s : snap.spans) {
    if (std::string(s.name) != "select.predict") continue;
    const auto it = by_id.find(s.parent);
    if (it != by_id.end() && std::string(it->second->name) == "dispatch.select") {
      predict_under_select = true;
    }
  }
  EXPECT_TRUE(predict_under_select);

  // A second select of the same shape is a pure cache hit: no new leader.
  const std::uint64_t leaders = snap.counter_value("dispatch.leader_predict");
  ctx.select<core::GemmOp>(shape);
  const auto snap2 = telemetry::snapshot(false);
  EXPECT_GE(snap2.counter_value("dispatch.hit"), 1u);
  EXPECT_EQ(snap2.counter_value("dispatch.leader_predict"), leaders);
}

// ----------------------------------------------------------------- snapshot --

/// Minimal recursive-descent JSON syntax checker — enough to prove the
/// serializer emits well-formed JSON (the CI gate re-parses dumps with a real
/// parser; this keeps the contract enforced in-tree).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip();
    if (peek('}')) return true;
    while (true) {
      skip();
      if (!string()) return false;
      skip();
      if (!expect(':')) return false;
      skip();
      if (!value()) return false;
      skip();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip();
    if (peek(']')) return true;
    while (true) {
      skip();
      if (!value()) return false;
      skip();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  void skip() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TelemetrySnapshot, JsonSerializationRoundTrip) {
  TelemetryGuard guard;
  telemetry::counter("test.json_counter").add(42);
  telemetry::gauge("test.json_gauge").set(-7);
  telemetry::Histogram& h = telemetry::histogram("test.json_hist_us");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  { telemetry::Span span("test.json_span"); }

  const auto snap = telemetry::snapshot();
  EXPECT_EQ(snap.counter_value("test.json_counter"), 42u);
  const auto* hs = snap.find_histogram("test.json_hist_us");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100u);
  EXPECT_EQ(hs->min, 1u);
  ASSERT_FALSE(snap.spans.empty());

  const std::string json = telemetry::to_json(snap);
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;

  // The serializer is deterministic (name-sorted sections, fixed field
  // order), so the snapshot's content round-trips as exact substrings.
  EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.find("\"uptime_us\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":-7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_span\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);

  // Serializing a second snapshot of unchanged state yields identical bytes
  // except the uptime stamp — cheap proof the serializer has no hidden
  // nondeterminism (map iteration order, pointer formatting, ...).
  auto strip_uptime = [](std::string s) {
    const auto a = s.find("\"uptime_us\":");
    const auto b = s.find(',', a);
    return s.erase(a, b - a);
  };
  const std::string json2 = telemetry::to_json(telemetry::snapshot());
  EXPECT_EQ(strip_uptime(json), strip_uptime(json2));
}

TEST(TelemetryTrace, RingBoundsMemoryAndCountsDrops) {
  TelemetryGuard guard;
  telemetry::set_trace_capacity(64);
  for (int i = 0; i < 200; ++i) {
    telemetry::Span span("test.flood");
  }
  std::uint64_t dropped = 0;
  const auto spans = telemetry::trace_spans(&dropped);
  EXPECT_LE(spans.size(), 64u);
  EXPECT_EQ(spans.size() + dropped, 200u);
  telemetry::set_trace_capacity(1 << 15);  // restore the default for later tests
}

}  // namespace
}  // namespace isaac
