// Tests for the MLP: forward/backward correctness (finite-difference gradient
// check), optimizer behaviour, the preprocessing pipeline, training on
// learnable synthetic targets, and the log-transform property the paper's
// §5.2 rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "mlp/net.hpp"
#include "mlp/regressor.hpp"
#include "tuning/dataset.hpp"
#include "tuning/feature_batch.hpp"

namespace isaac::mlp {
namespace {

using linalg::Matrix;

MlpConfig tiny_config() {
  MlpConfig cfg;
  cfg.inputs = 4;
  cfg.hidden = {8, 8};
  cfg.seed = 42;
  return cfg;
}

// --------------------------------------------------------------------- net --
TEST(Mlp, OutputShape) {
  Mlp net(tiny_config());
  Matrix x(5, 4, 0.5f);
  const Matrix y = net.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(Mlp, ParameterCount) {
  Mlp net(tiny_config());
  // 4*8 + 8 + 8*8 + 8 + 8*1 + 1 = 121
  EXPECT_EQ(net.num_parameters(), 121u);
}

TEST(Mlp, ArityMismatchThrows) {
  Mlp net(tiny_config());
  Matrix x(5, 3);
  EXPECT_THROW(net.forward(x), std::invalid_argument);
}

TEST(Mlp, DeterministicInit) {
  Mlp a(tiny_config()), b(tiny_config());
  EXPECT_EQ(Matrix::max_abs_diff(a.weights()[0], b.weights()[0]), 0.0);
}

TEST(Mlp, GradientsMatchFiniteDifferences) {
  Mlp net(tiny_config());
  Rng rng(7);
  Matrix x(3, 4);
  x.randomize_uniform(rng, -1, 1);
  Matrix target(3, 1);
  target.randomize_uniform(rng, -1, 1);

  auto loss_value = [&]() {
    const Matrix y = net.forward(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.rows(); ++i) {
      const double d = y(i, 0) - target(i, 0);
      loss += d * d;
    }
    return loss / static_cast<double>(y.rows());
  };

  // Analytic gradients.
  Mlp::Cache cache;
  const Matrix y = net.forward(x, &cache);
  Matrix dLdy(3, 1);
  for (std::size_t i = 0; i < 3; ++i) {
    dLdy(i, 0) = 2.0f * (y(i, 0) - target(i, 0)) / 3.0f;
  }
  std::vector<Matrix> dW, db;
  net.backward(cache, dLdy, dW, db);

  // Spot-check several weights in each layer with central differences.
  const float eps = 1e-3f;
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    for (std::size_t idx : {std::size_t{0}, net.weights()[l].size() / 2}) {
      float& w = net.weights()[l].data()[idx];
      const float orig = w;
      w = orig + eps;
      const double up = loss_value();
      w = orig - eps;
      const double down = loss_value();
      w = orig;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(dW[l].data()[idx], numeric, 5e-2 * std::max(1.0, std::abs(numeric)))
          << "layer " << l << " idx " << idx;
    }
    // And one bias per layer.
    float& bval = net.biases()[l].data()[0];
    const float orig = bval;
    bval = orig + eps;
    const double up = loss_value();
    bval = orig - eps;
    const double down = loss_value();
    bval = orig;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(db[l].data()[0], numeric, 5e-2 * std::max(1.0, std::abs(numeric)));
  }
}

TEST(Adam, ReducesQuadraticLoss) {
  // Minimize ||w - 3||^2 for a single 1x1 "weight matrix".
  Matrix w(1, 1, 0.0f);
  Adam adam(0.1);
  for (int i = 0; i < 300; ++i) {
    Matrix g(1, 1, 2.0f * (w(0, 0) - 3.0f));
    adam.step({&w}, {&g});
  }
  EXPECT_NEAR(w(0, 0), 3.0f, 0.05f);
}

TEST(Adam, ShapeMismatchThrows) {
  Matrix w(2, 2), g(1, 1);
  Adam adam;
  EXPECT_THROW(adam.step({&w}, {&g}), std::invalid_argument);
}

// ------------------------------------------------------------------ scaler --
TEST(Scaler, StandardizesToZeroMeanUnitVar) {
  std::vector<std::vector<double>> rows{{1, 10}, {3, 30}, {5, 50}};
  Scaler s;
  s.fit(rows);
  std::vector<double> r{3, 30};
  s.apply(r);
  EXPECT_NEAR(r[0], 0.0, 1e-12);
  EXPECT_NEAR(r[1], 0.0, 1e-12);
  std::vector<double> hi{5, 50};
  s.apply(hi);
  EXPECT_GT(hi[0], 0.9);
}

TEST(Scaler, ConstantFeaturePassesThrough) {
  std::vector<std::vector<double>> rows{{7, 1}, {7, 2}, {7, 3}};
  Scaler s;
  s.fit(rows);
  std::vector<double> r{7, 2};
  EXPECT_NO_THROW(s.apply(r));
  EXPECT_NEAR(r[0], 0.0, 1e-12);
}

// --------------------------------------------------------------- regressor --

/// Synthetic dataset with a multiplicative performance-like law:
///   y = c * x0^a * x1^b / x2  (+ lognormal noise)
/// — linear in log space, so the log transform should make it easy and its
/// absence should hurt, mirroring the paper's §5.2 observation.
tuning::Dataset synthetic_dataset(std::size_t n, double noise_sigma, std::uint64_t seed) {
  tuning::Dataset data;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    tuning::Sample s;
    s.x.assign(tuning::kNumFeatures, 1.0);
    for (std::size_t f = 0; f < 6; ++f) {
      s.x[f] = std::exp(rng.uniform(0.0, 6.0));  // 1 .. ~400
    }
    const double y = 50.0 * std::pow(s.x[0], 0.7) * std::pow(s.x[1], 0.4) / s.x[2];
    s.y = y * rng.lognormal_factor(noise_sigma);
    data.add(std::move(s));
  }
  return data;
}

TEST(Regressor, LearnsMultiplicativeLaw) {
  auto data = synthetic_dataset(3000, 0.02, 1);
  Rng rng(2);
  data.shuffle(rng);
  const auto [test, train_set] = data.split(500);

  TrainConfig cfg;
  cfg.net.hidden = {32, 32};
  cfg.epochs = 40;
  cfg.learning_rate = 3e-3;
  const Regressor model = train(train_set, cfg);
  const double mse = model.mse(test);
  EXPECT_LT(mse, 0.05) << "validation MSE too high: " << mse;
}

TEST(Regressor, LogTransformBeatsRawFeatures) {
  auto data = synthetic_dataset(2500, 0.02, 3);
  Rng rng(4);
  data.shuffle(rng);
  const auto [test, train_set] = data.split(400);

  TrainConfig with_log;
  with_log.net.hidden = {32, 32};
  with_log.epochs = 25;
  with_log.learning_rate = 3e-3;
  TrainConfig without_log = with_log;
  without_log.log_features = false;

  const double mse_log = train(train_set, with_log).mse(test);
  const double mse_raw = train(train_set, without_log).mse(test);
  EXPECT_LT(mse_log * 2.0, mse_raw)
      << "log " << mse_log << " raw " << mse_raw;  // §5.2: the transform matters
}

TEST(Regressor, MoreDataHelps) {
  // Fig. 5 property: validation MSE decreases with training-set size.
  auto data = synthetic_dataset(4000, 0.05, 9);
  Rng rng(10);
  data.shuffle(rng);
  const auto [test, rest] = data.split(500);

  TrainConfig cfg;
  cfg.net.hidden = {32, 32};
  cfg.epochs = 25;
  cfg.learning_rate = 3e-3;

  const double mse_small = train(rest.take(250), cfg).mse(test);
  const double mse_large = train(rest.take(3000), cfg).mse(test);
  EXPECT_LT(mse_large, mse_small);
}

// ------------------------------------------------ allocation-free forward --
TEST(Mlp, ForwardIntoMatchesForwardBitExact) {
  for (const auto& hidden : std::vector<std::vector<int>>{{8, 8}, {16}, {}}) {
    MlpConfig cfg = tiny_config();
    cfg.hidden = hidden;
    Mlp net(cfg);
    Rng rng(7 + hidden.size());
    Mlp::Workspace ws;
    // Shrinking batches exercise reshape-reuse of the workspace buffers.
    for (const std::size_t batch : {33u, 64u, 5u, 1u}) {
      Matrix x(batch, 4);
      x.randomize_uniform(rng, -2.0f, 2.0f);
      const Matrix legacy = net.forward(x);
      ws.x = x;
      const Matrix& fast = net.forward_into(ws);
      ASSERT_EQ(fast.rows(), legacy.rows());
      ASSERT_EQ(fast.cols(), legacy.cols());
      for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(fast.data()[i], legacy.data()[i]) << "batch " << batch << " idx " << i;
      }
    }
  }
}

TEST(Mlp, ForwardIntoRejectsArityMismatch) {
  Mlp net(tiny_config());
  Mlp::Workspace ws;
  ws.x = Matrix(3, 5);  // net expects 4 inputs
  EXPECT_THROW(net.forward_into(ws), std::invalid_argument);
}

TEST(Regressor, FlatBatchMatchesLegacyRowsBitExact) {
  // The FeatureBatch pipeline (fused encode + thread-local workspaces) must
  // reproduce the legacy vector-of-vectors scores exactly, for every chunk
  // size — rank orderings depend on it.
  auto data = synthetic_dataset(900, 0.05, 17);
  TrainConfig cfg;
  cfg.net.hidden = {16, 8};
  cfg.epochs = 6;
  const Regressor model = train(data, cfg);

  std::vector<std::vector<double>> rows;
  tuning::FeatureBatch batch(tuning::kNumFeatures);
  for (std::size_t i = 0; i < 333; ++i) {
    rows.push_back(data[i].x);
    std::copy(data[i].x.begin(), data[i].x.end(), batch.append_row());
  }
  ASSERT_EQ(batch.rows(), rows.size());
  ASSERT_EQ(model.num_features(), tuning::kNumFeatures);

  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                  std::size_t{128}, std::size_t{1000}}) {
    const auto legacy = model.predict_gflops_chunked(rows, chunk);
    const auto flat = model.predict_gflops_chunked(batch, chunk);
    ASSERT_EQ(legacy.size(), flat.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
      ASSERT_DOUBLE_EQ(legacy[i], flat[i]) << "chunk " << chunk << " row " << i;
    }
  }
}

TEST(Regressor, FlatBatchArityValidatedOnceAtBoundary) {
  auto data = synthetic_dataset(400, 0.05, 19);
  TrainConfig cfg;
  cfg.net.hidden = {8};
  cfg.epochs = 4;
  const Regressor model = train(data, cfg);

  tuning::FeatureBatch wrong(tuning::kNumFeatures - 1, 10);
  for (std::size_t r = 0; r < wrong.rows(); ++r) {
    for (std::size_t c = 0; c < wrong.arity(); ++c) wrong.row(r)[c] = 2.0;
  }
  EXPECT_THROW(model.predict_gflops_chunked(wrong, 4), std::invalid_argument);
}

TEST(Regressor, PredictBatchMatchesScalar) {
  auto data = synthetic_dataset(800, 0.02, 5);
  TrainConfig cfg;
  cfg.net.hidden = {16};
  cfg.epochs = 10;
  const Regressor model = train(data, cfg);

  std::vector<std::vector<double>> rows{data[0].x, data[1].x, data[2].x};
  const auto batch = model.predict_gflops_batch(rows);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(batch[i], model.predict_gflops(rows[i]), 1e-6 * std::abs(batch[i]));
  }
}

TEST(Regressor, PredictionsArePositive) {
  auto data = synthetic_dataset(500, 0.1, 6);
  TrainConfig cfg;
  cfg.net.hidden = {16};
  cfg.epochs = 8;
  const Regressor model = train(data, cfg);
  for (int i = 0; i < 20; ++i) {
    EXPECT_GT(model.predict_gflops(data[static_cast<std::size_t>(i)].x), 0.0);
  }
}

TEST(Regressor, SaveLoadRoundTrip) {
  auto data = synthetic_dataset(600, 0.05, 7);
  TrainConfig cfg;
  cfg.net.hidden = {16, 8};
  cfg.epochs = 6;
  const Regressor model = train(data, cfg);

  std::stringstream ss;
  model.save(ss);
  const Regressor back = Regressor::load(ss);

  for (int i = 0; i < 10; ++i) {
    const auto& x = data[static_cast<std::size_t>(i)].x;
    EXPECT_NEAR(back.predict_gflops(x), model.predict_gflops(x),
                1e-4 * std::abs(model.predict_gflops(x)));
  }
}

TEST(Regressor, SaveLoadRoundTripIsBitIdentical) {
  // The serialized artifact is the unit of model exchange in the online
  // lifecycle, so a loaded model must not merely approximate the original —
  // every prediction must be the exact same double, through both the legacy
  // rows path and the flat FeatureBatch hot path.
  auto data = synthetic_dataset(800, 0.05, 21);
  TrainConfig cfg;
  cfg.net.hidden = {24, 16};
  cfg.epochs = 5;
  cfg.seed = 77;
  const Regressor model = train(data, cfg);

  std::stringstream ss;
  model.save(ss);
  const Regressor back = Regressor::load(ss);

  // Scaler statistics and target scale survive exactly.
  ASSERT_EQ(back.num_features(), model.num_features());
  for (std::size_t f = 0; f < model.num_features(); ++f) {
    EXPECT_EQ(back.feature_scaler().mean[f], model.feature_scaler().mean[f]);
    EXPECT_EQ(back.feature_scaler().stddev[f], model.feature_scaler().stddev[f]);
  }
  EXPECT_EQ(back.y_mean(), model.y_mean());
  EXPECT_EQ(back.y_std(), model.y_std());
  EXPECT_EQ(back.log_features(), model.log_features());

  std::vector<std::vector<double>> rows;
  tuning::FeatureBatch batch(tuning::kNumFeatures);
  for (std::size_t i = 0; i < 64; ++i) {
    rows.push_back(data[i].x);
    double* dst = batch.append_row();
    for (std::size_t c = 0; c < tuning::kNumFeatures; ++c) dst[c] = data[i].x[c];
  }

  const auto expected_rows = model.predict_gflops_chunked(rows, 16);
  const auto loaded_rows = back.predict_gflops_chunked(rows, 16);
  const auto expected_flat = model.predict_gflops_chunked(batch, 16);
  const auto loaded_flat = back.predict_gflops_chunked(batch, 16);
  ASSERT_EQ(loaded_rows.size(), expected_rows.size());
  ASSERT_EQ(loaded_flat.size(), expected_flat.size());
  for (std::size_t i = 0; i < expected_rows.size(); ++i) {
    EXPECT_EQ(loaded_rows[i], expected_rows[i]) << "rows path diverged at " << i;
    EXPECT_EQ(loaded_flat[i], expected_flat[i]) << "flat path diverged at " << i;
  }
}

TEST(Regressor, WarmStartKeepsEncodingAndImprovesOnShiftedData) {
  // Base model fits the synthetic law; the "device" then halves: same
  // features, targets scaled by 0.5. Warm-start training on the shifted
  // delta must (a) freeze the preprocessing so both versions share one
  // encode, and (b) cut the prediction error on the shifted distribution.
  auto base_data = synthetic_dataset(2000, 0.02, 31);
  TrainConfig cfg;
  cfg.net.hidden = {32, 16};
  cfg.epochs = 10;
  cfg.seed = 5;
  const Regressor base = train(base_data, cfg);

  tuning::Dataset shifted;
  auto delta_source = synthetic_dataset(400, 0.02, 37);
  for (const auto& s : delta_source.samples()) {
    tuning::Sample d = s;
    d.y *= 0.5;
    shifted.add(std::move(d));
  }

  TrainConfig warm_cfg;
  warm_cfg.epochs = 30;
  warm_cfg.batch_size = 32;
  warm_cfg.learning_rate = 2e-3;
  warm_cfg.seed = 11;
  const Regressor warmed = train_warm_start(base, shifted, warm_cfg);

  // Frozen preprocessing: identical scaler and target statistics.
  for (std::size_t f = 0; f < base.num_features(); ++f) {
    EXPECT_EQ(warmed.feature_scaler().mean[f], base.feature_scaler().mean[f]);
    EXPECT_EQ(warmed.feature_scaler().stddev[f], base.feature_scaler().stddev[f]);
  }
  EXPECT_EQ(warmed.y_mean(), base.y_mean());
  EXPECT_EQ(warmed.y_std(), base.y_std());

  // Error on the shifted distribution: the stale model over-predicts ~2×,
  // the warmed one should track it far better.
  auto mean_rel_error = [&](const Regressor& m) {
    double acc = 0.0;
    for (const auto& s : shifted.samples()) {
      acc += std::abs(m.predict_gflops(s.x) - s.y) / s.y;
    }
    return acc / static_cast<double>(shifted.size());
  };
  const double stale = mean_rel_error(base);
  const double fresh = mean_rel_error(warmed);
  EXPECT_GT(stale, 0.5);           // the shift is real
  EXPECT_LT(fresh, stale * 0.5);   // warm start recovered ≥2×
}

TEST(Regressor, WarmStartOnEmptyDeltaThrows) {
  auto data = synthetic_dataset(400, 0.05, 19);
  TrainConfig cfg;
  cfg.net.hidden = {8};
  cfg.epochs = 2;
  const Regressor base = train(data, cfg);
  tuning::Dataset empty;
  EXPECT_THROW(train_warm_start(base, empty, TrainConfig{}), std::invalid_argument);
}

TEST(Regressor, LoadRejectsGarbage) {
  std::stringstream ss("not a model at all");
  EXPECT_THROW(Regressor::load(ss), std::runtime_error);
}

TEST(Regressor, EmptyTrainingThrows) {
  tuning::Dataset empty;
  EXPECT_THROW(train(empty, TrainConfig{}), std::invalid_argument);
}

TEST(Regressor, EpochCallbackReportsDecreasingLoss) {
  auto data = synthetic_dataset(1500, 0.02, 8);
  TrainConfig cfg;
  cfg.net.hidden = {32};
  cfg.epochs = 15;
  cfg.learning_rate = 3e-3;
  std::vector<double> losses;
  cfg.on_epoch = [&](int, double loss) { losses.push_back(loss); };
  train(data, cfg);
  ASSERT_EQ(losses.size(), 15u);
  EXPECT_LT(losses.back(), losses.front() * 0.5);
}

}  // namespace
}  // namespace isaac::mlp
