// Concurrent dispatch runtime tests: a shared Context hammered from many
// threads must (a) produce numerics identical to the serial reference,
// (b) lead each distinct cold shape exactly once (single-flight) and refine
// it exactly once in the background (two-tier dispatch), and (c) keep the
// profile cache consistent under concurrent writers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "codegen/batched_gemm_executor.hpp"
#include "codegen/gemm_executor.hpp"
#include "common/thread_pool.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "tuning/collector.hpp"

namespace isaac::core {
namespace {

constexpr int kThreads = 8;

/// One small trained model shared by every test in this binary (training is
/// the expensive part; the suite budget is single-digit seconds).
const mlp::Regressor& shared_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 2000;
    cfg.seed = 424242;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {48, 48};
    tc.epochs = 8;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

ContextOptions fast_options() {
  ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 3;
  opts.search.max_candidates = 8000;
  return opts;
}

/// Distinct small GEMM shapes (distinct cache keys) sized so the functional
/// executor stays cheap under thousands of calls.
std::vector<codegen::GemmShape> stress_shapes() {
  std::vector<codegen::GemmShape> shapes;
  for (const auto& [m, n, k] : {std::tuple{48, 32, 96}, std::tuple{64, 16, 128},
                               std::tuple{32, 48, 64}, std::tuple{96, 24, 80},
                               std::tuple{40, 40, 120}, std::tuple{56, 8, 144}}) {
    codegen::GemmShape s;
    s.m = m;
    s.n = n;
    s.k = k;
    s.trans_b = (n % 16) == 0;
    shapes.push_back(s);
  }
  return shapes;
}

struct GemmProblem {
  codegen::GemmShape shape;
  std::vector<float> a, b, c_ref;
};

GemmProblem make_problem(const codegen::GemmShape& shape, std::uint64_t seed) {
  GemmProblem p;
  p.shape = shape;
  Rng rng(seed);
  p.a.resize(static_cast<std::size_t>(shape.m * shape.k));
  p.b.resize(static_cast<std::size_t>(shape.n * shape.k));
  for (auto& x : p.a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : p.b) x = static_cast<float>(rng.uniform(-1, 1));
  p.c_ref.assign(static_cast<std::size_t>(shape.m * shape.n), 0.0f);
  const std::int64_t ldb = shape.trans_b ? shape.n : shape.k;
  codegen::reference_gemm(shape, 1.0f, p.a.data(), shape.m, p.b.data(), ldb, 0.0f,
                          p.c_ref.data(), shape.m);
  return p;
}

double max_abs_diff(const std::vector<float>& got, const std::vector<float>& want) {
  double max_diff = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(got[i] - want[i])));
  }
  return max_diff;
}

TEST(ConcurrentDispatch, StressMatchesSerialReferenceAndTunesOnce) {
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());

  const auto shapes = stress_shapes();
  std::vector<GemmProblem> problems;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    problems.push_back(make_problem(shapes[i], 100 + i));
  }

  // Pre-warm a subset so the mix has hot and cold shapes from the start.
  for (std::size_t i = 0; i < 2; ++i) {
    auto& p = problems[i];
    std::vector<float> c(p.c_ref.size(), 0.0f);
    const std::int64_t ldb = p.shape.trans_b ? p.shape.n : p.shape.k;
    ctx.gemm(p.shape, 1.0f, p.a.data(), p.shape.m, p.b.data(), ldb, 0.0f, c.data(), p.shape.m);
  }
  ctx.drain_background();  // let the two pre-warm refinements land
  ASSERT_EQ(ctx.tuning_runs(), 2u);

  constexpr int kItersPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int it = 0; it < kItersPerThread; ++it) {
        // Each thread walks the shape list with its own offset, so every
        // cold shape sees several concurrent first-callers.
        const auto& p = problems[(t + it) % problems.size()];
        std::vector<float> c(p.c_ref.size(), 0.0f);
        const std::int64_t ldb = p.shape.trans_b ? p.shape.n : p.shape.k;
        const auto info = ctx.gemm(p.shape, 1.0f, p.a.data(), p.shape.m, p.b.data(), ldb, 0.0f,
                                   c.data(), p.shape.m);
        if (info.gflops <= 0.0 || max_abs_diff(c, p.c_ref) > 1e-2) {
          if (failures.fetch_add(1) == 0) {
            errors[t] = "mismatch on " + p.shape.to_string();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0) << errors[0];
  // Single-flight + exactly-once refinement: each distinct shape was led
  // once and refined once, no matter how many threads raced on its cold
  // start. (Four shapes went cold under two-tier dispatch: one prediction
  // each; the refinement is what tuning_runs counts.)
  ctx.drain_background();
  EXPECT_EQ(ctx.tuning_runs(), problems.size());
  EXPECT_EQ(ctx.predictions(), problems.size());
}

TEST(ConcurrentDispatch, ColdShapeBurstPredictsOnceRefinesOnce) {
  // The two-tier stress case: N threads race one cold shape. Exactly one
  // leader serves the provisional model prediction (zero measurements on its
  // thread), exactly one background refinement runs, and the cache entry
  // ends refined.
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());

  codegen::GemmShape shape;
  shape.m = 72;
  shape.n = 40;
  shape.k = 112;

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> cold_calls{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      bool from_cache = false;
      const auto tuning = ctx.select<GemmOp>(shape, &from_cache);
      EXPECT_TRUE(codegen::validate(shape, tuning, ctx.device()));
      if (!from_cache) cold_calls.fetch_add(1);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();

  EXPECT_EQ(ctx.predictions(), 1u);  // exactly one provisional prediction
  EXPECT_EQ(cold_calls.load(), 1);   // exactly one leader paid for it

  ctx.drain_background();
  EXPECT_EQ(ctx.refinements(), 1u);  // exactly one background refinement
  EXPECT_EQ(ctx.tuning_runs(), 1u);
  EntryTier tier = EntryTier::provisional;
  const auto final_entry = ctx.cache().lookup<GemmOp>(ctx.device().name, shape, &tier);
  ASSERT_TRUE(final_entry.has_value());
  EXPECT_EQ(tier, EntryTier::refined);
  EXPECT_TRUE(codegen::validate(shape, *final_entry, ctx.device()));
}

TEST(ConcurrentDispatch, ColdSelectIsMeasurementFreeAndRefinementMatchesBlocking) {
  // Tier 1 answers without a single simulated measurement on the calling
  // thread, and the background refinement converges to the same selection a
  // blocking search would have made.
  auto opts = fast_options();
  opts.noise_sigma = 0.0;  // deterministic measurements: selections comparable
  Context two_tier(gpusim::tesla_p100(), opts);
  two_tier.set_model(shared_model());
  auto blocking_opts = opts;
  blocking_opts.two_tier = false;
  Context blocking(gpusim::tesla_p100(), blocking_opts);
  blocking.set_model(shared_model());

  codegen::GemmShape shape;
  shape.m = 80;
  shape.n = 56;
  shape.k = 128;

  // Park every pool worker on a latch so the background refinement cannot
  // start until the counter has been read: any launch observed between here
  // and the release would have come from the calling thread. (The fast path
  // itself stays live — parallel_for's calling thread drains its own chunks.)
  std::atomic<bool> release{false};
  for (std::size_t i = 0; i < ThreadPool::global().size(); ++i) {
    ThreadPool::global().submit([&release] {
      while (!release.load()) std::this_thread::yield();
    });
  }
  const std::uint64_t launches_before = two_tier.simulator().launches();
  bool from_cache = true;
  EntryTier tier = EntryTier::refined;
  const auto predicted = two_tier.select<GemmOp>(shape, &from_cache, &tier);
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(tier, EntryTier::provisional);
  EXPECT_TRUE(codegen::validate(shape, predicted, two_tier.device()));
  // Tier 1 ran no simulated measurement on the calling thread.
  EXPECT_EQ(two_tier.simulator().launches(), launches_before);
  release.store(true);

  const auto truth = blocking.select<GemmOp>(shape);
  two_tier.drain_background();
  const auto refined = two_tier.cache().lookup<GemmOp>(two_tier.device().name, shape, &tier);
  ASSERT_TRUE(refined.has_value());
  EXPECT_EQ(tier, EntryTier::refined);
  EXPECT_EQ(*refined, truth);  // same search config, noise-free: same winner
}

TEST(ConcurrentDispatch, WarmupPreTunesAsynchronously) {
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());

  auto shapes = stress_shapes();
  shapes.resize(3);
  auto done = ctx.warmup(shapes);
  done.wait();
  // The warmup future resolves once every shape is cached (provisionally at
  // least); draining also lands the refinements.
  EXPECT_EQ(ctx.predictions(), shapes.size());
  ctx.drain_background();
  EXPECT_EQ(ctx.tuning_runs(), shapes.size());

  // Every warmed shape dispatches straight from the (refined) cache.
  for (const auto& shape : shapes) {
    bool from_cache = false;
    EntryTier tier = EntryTier::provisional;
    ctx.select<GemmOp>(shape, &from_cache, &tier);
    EXPECT_TRUE(from_cache) << shape.to_string();
    EXPECT_EQ(tier, EntryTier::refined) << shape.to_string();
  }
  EXPECT_EQ(ctx.tuning_runs(), shapes.size());
}

TEST(ConcurrentDispatch, AbandonedWarmupFutureIsSafe) {
  // Warmup tasks capture the Context; dropping the future and destroying the
  // Context immediately must not leave tasks running against freed state
  // (~Context blocks until the queue drains).
  auto shapes = stress_shapes();
  shapes.resize(2);
  {
    Context ctx(gpusim::tesla_p100(), fast_options());
    ctx.set_model(shared_model());
    ctx.warmup(shapes);  // future discarded on purpose
  }                      // ~Context waits for both tasks here
  SUCCEED();
}

TEST(ConcurrentDispatch, BatchedGemmSingleFlight) {
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());

  codegen::BatchedGemmShape shape;
  shape.batch = 6;
  shape.gemm.m = 40;
  shape.gemm.n = 24;
  shape.gemm.k = 64;

  const std::int64_t stride_a = shape.gemm.m * shape.gemm.k;
  const std::int64_t stride_b = shape.gemm.k * shape.gemm.n;
  const std::int64_t stride_c = shape.gemm.m * shape.gemm.n;
  Rng rng(9);
  std::vector<float> a(static_cast<std::size_t>(stride_a * shape.batch));
  std::vector<float> b(static_cast<std::size_t>(stride_b * shape.batch));
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c_ref(static_cast<std::size_t>(stride_c * shape.batch), 0.0f);
  codegen::reference_batched_gemm(shape, 1.0f, a.data(), shape.gemm.m, stride_a, b.data(),
                                  shape.gemm.k, stride_b, 0.0f, c_ref.data(), shape.gemm.m,
                                  stride_c);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<float> c(c_ref.size(), 0.0f);
      const auto info =
          ctx.batched_gemm(shape, 1.0f, a.data(), shape.gemm.m, stride_a, b.data(),
                           shape.gemm.k, stride_b, 0.0f, c.data(), shape.gemm.m, stride_c);
      if (info.tuning.kg != 1 || max_abs_diff(c, c_ref) > 1e-2) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ctx.predictions(), 1u);
  ctx.drain_background();
  EXPECT_EQ(ctx.tuning_runs(), 1u);
}

TEST(ConcurrentDispatch, DiskLoadedProvisionalEntryIsRefinedOnHit) {
  // A process that dies between its tier-1 prediction and the refinement
  // landing leaves `tier=provisional` on disk. The next process to hit that
  // entry serves it instantly but re-arms the background refinement.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_two_tier_test").string();
  std::filesystem::remove_all(dir);

  codegen::GemmShape shape;
  shape.m = 64;
  shape.n = 32;
  shape.k = 96;
  const std::string dev = gpusim::tesla_p100().name;
  {
    ProfileCache stale(dir);
    const auto pred = predict<GemmOp>(shape, shared_model(), gpusim::tesla_p100());
    stale.store<GemmOp>(dev, shape, pred.tuning,
                        ProfileCache::provenance("predict", 0, EntryTier::provisional));
  }

  auto opts = fast_options();
  opts.cache_dir = dir;
  Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(shared_model());

  bool from_cache = false;
  EntryTier tier = EntryTier::refined;
  ctx.select<GemmOp>(shape, &from_cache, &tier);
  EXPECT_TRUE(from_cache);  // served instantly from the stale entry
  EXPECT_EQ(tier, EntryTier::provisional);

  ctx.drain_background();
  EXPECT_EQ(ctx.predictions(), 0u);  // no new prediction, just the re-armed refinement
  EXPECT_EQ(ctx.refinements(), 1u);
  EXPECT_EQ(ctx.cache().tier(ProfileCache::key<GemmOp>(dev, shape)), EntryTier::refined);
  std::filesystem::remove_all(dir);
}

TEST(ProfileCacheConcurrency, ParallelStoresAndLookupsStayConsistent) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "isaac_cache_mt_test").string();
  std::filesystem::remove_all(dir);

  constexpr int kShapesPerThread = 24;
  {
    ProfileCache cache(dir);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, t] {
        for (int i = 0; i < kShapesPerThread; ++i) {
          codegen::GemmShape shape;
          shape.m = 16 + t;
          shape.n = 16 + i;
          shape.k = 64;
          codegen::GemmTuning tuning;
          tuning.ml = 32;
          tuning.nl = 16 << (i % 3);
          cache.store<GemmOp>("p100", shape, tuning);
          const auto got = cache.lookup<GemmOp>("p100", shape);
          if (!got || got->nl != tuning.nl) {
            ADD_FAILURE() << "lost store for " << shape.to_string();
            return;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kThreads * kShapesPerThread));
  }

  // The flocked append never tears lines: a fresh instance reloads every
  // entry the writers produced.
  ProfileCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), static_cast<std::size_t>(kThreads * kShapesPerThread));
  std::filesystem::remove_all(dir);
}

TEST(ConcurrentDispatch, TuningFailurePropagatesToAllWaiters) {
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());

  codegen::GemmShape shape;
  shape.m = shape.n = 64;
  shape.k = 2;  // below the smallest prefetch depth: no legal config

  std::atomic<int> throws{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        ctx.select<GemmOp>(shape);
      } catch (const std::runtime_error&) {
        throws.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(throws.load(), kThreads);  // nobody hangs, everybody sees the error
  // A failed flight leaves no cache entry and no stuck in-flight record: a
  // later caller retries (and fails) cleanly.
  EXPECT_THROW(ctx.select<GemmOp>(shape), std::runtime_error);
}

TEST(ConcurrentDispatch, HotSwapDuringDispatchIsRaceFree) {
  // The latent set_model() race this PR closes: swapping the model while
  // readers rank with it used to hand dispatchers a reference into an object
  // being destroyed. Under the snapshot API every reader pins one
  // shared_ptr<const VersionedModel> per operation, so a writer thread
  // hammering set_model() while kThreads dispatch cold shapes must be clean
  // under TSan and never wrong: each select still returns a legal tuning.
  Context ctx(gpusim::tesla_p100(), fast_options());
  ctx.set_model(shared_model());
  const std::uint64_t first_version = ctx.model_snapshot()->version();

  std::atomic<bool> stop{false};
  std::atomic<int> swaps{0};
  std::thread writer([&] {
    while (!stop.load()) {
      ctx.set_model(mlp::Regressor(shared_model()));  // fresh copy each swap
      swaps.fetch_add(1);
      std::this_thread::yield();
    }
  });

  const auto shapes = stress_shapes();
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int it = 0; it < 16; ++it) {
        const auto& shape = shapes[(t + it) % shapes.size()];
        const auto tuning = ctx.select<GemmOp>(shape);
        if (!codegen::validate(shape, tuning, ctx.device())) failures.fetch_add(1);
        // Pinned snapshots stay valid even while the writer churns versions.
        const auto snap = ctx.model_snapshot();
        if (!snap || snap->version() < first_version) failures.fetch_add(1);
        (void)snap->regressor().num_features();
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  writer.join();
  ctx.drain_background();  // refinements pinned their own snapshots; all land

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(swaps.load(), 0);
  // Every install bumped the monotonic version; swaps of a live model count.
  EXPECT_EQ(ctx.model_snapshot()->version(),
            first_version + static_cast<std::uint64_t>(swaps.load()));
  EXPECT_EQ(ctx.model_swaps(), static_cast<std::size_t>(swaps.load()));
}

}  // namespace
}  // namespace isaac::core
