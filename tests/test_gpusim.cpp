// Unit + property tests for the GPU simulator substrate: device descriptors,
// occupancy rules, the analytical performance model, and the noisy simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/perf_model.hpp"
#include "gpusim/simulator.hpp"

namespace isaac::gpusim {
namespace {

// ----------------------------------------------------------------- device --
TEST(Device, Table3Identities) {
  const auto& m = gtx980ti();
  EXPECT_EQ(m.num_sms * m.cuda_cores_per_sm, 2816);  // paper: 2816 CUDA cores
  EXPECT_NEAR(m.boost_clock_ghz, 1.075, 1e-9);
  EXPECT_NEAR(m.peak_sp_tflops, 5.8, 1e-9);
  EXPECT_NEAR(m.dram_bandwidth_gbs, 336.0, 1e-9);
  EXPECT_EQ(m.memory_type, "GDDR5");

  const auto& p = tesla_p100();
  EXPECT_EQ(p.num_sms * p.cuda_cores_per_sm, 3584);  // paper: 3584 CUDA cores
  EXPECT_NEAR(p.boost_clock_ghz, 1.353, 1e-9);
  EXPECT_NEAR(p.peak_sp_tflops, 9.7, 1e-9);
  EXPECT_NEAR(p.dram_bandwidth_gbs, 732.0, 1e-9);
  EXPECT_EQ(p.memory_type, "HBM2");
}

TEST(Device, DtypePeaks) {
  const auto& p = tesla_p100();
  // GP100: half precision 2x, double precision 0.5x of single precision.
  EXPECT_NEAR(p.peak_tflops(DataType::F16), 2.0 * 9.7, 1e-9);
  EXPECT_NEAR(p.peak_tflops(DataType::F64), 0.5 * 9.7, 1e-9);
  const auto& m = gtx980ti();
  // GM200: no fast fp16x2, fp64 at 1/32.
  EXPECT_NEAR(m.peak_tflops(DataType::F16), 5.8, 1e-9);
  EXPECT_NEAR(m.peak_tflops(DataType::F64), 5.8 / 32.0, 1e-9);
}

TEST(Device, FindDeviceAliases) {
  EXPECT_EQ(find_device("gtx980ti"), &gtx980ti());
  EXPECT_EQ(find_device("Maxwell"), &gtx980ti());
  EXPECT_EQ(find_device("P100"), &tesla_p100());
  EXPECT_EQ(find_device("pascal"), &tesla_p100());
  EXPECT_EQ(find_device("volta"), nullptr);
}

TEST(Device, ParseDtype) {
  DataType dt;
  EXPECT_TRUE(parse_dtype("f16", dt));
  EXPECT_EQ(dt, DataType::F16);
  EXPECT_TRUE(parse_dtype("DOUBLE", dt));
  EXPECT_EQ(dt, DataType::F64);
  EXPECT_FALSE(parse_dtype("int8", dt));
}

TEST(Device, DtypeSizes) {
  EXPECT_EQ(dtype_size(DataType::F16), 2u);
  EXPECT_EQ(dtype_size(DataType::F32), 4u);
  EXPECT_EQ(dtype_size(DataType::F64), 8u);
}

// -------------------------------------------------------------- occupancy --
TEST(Occupancy, UnconstrainedKernelHitsWarpLimit) {
  const auto& dev = tesla_p100();
  // 256 threads (8 warps), tiny resources: warp slots should bind at 8 blocks.
  const auto r = occupancy(dev, 256, 16, 0);
  EXPECT_EQ(r.blocks_per_sm, 8);
  EXPECT_EQ(r.warps_per_sm, 64);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
  EXPECT_STREQ(r.limiter, "warps");
}

TEST(Occupancy, RegisterPressureReducesOccupancy) {
  const auto& dev = tesla_p100();
  const auto lo = occupancy(dev, 256, 32, 0);
  const auto hi = occupancy(dev, 256, 200, 0);
  EXPECT_GT(lo.warps_per_sm, hi.warps_per_sm);
  EXPECT_STREQ(hi.limiter, "registers");
}

TEST(Occupancy, SmemPressureReducesOccupancy) {
  const auto& dev = tesla_p100();  // 64 KiB smem per SM
  const auto lo = occupancy(dev, 128, 32, 8 * 1024);
  const auto hi = occupancy(dev, 128, 32, 32 * 1024);
  EXPECT_GT(lo.blocks_per_sm, hi.blocks_per_sm);
  EXPECT_EQ(hi.blocks_per_sm, 2);  // 64 KiB / 32 KiB
  EXPECT_STREQ(hi.limiter, "smem");
}

TEST(Occupancy, IllegalBlocksReported) {
  const auto& dev = tesla_p100();
  EXPECT_EQ(occupancy(dev, 2048, 32, 0).blocks_per_sm, 0);    // > 1024 threads
  EXPECT_EQ(occupancy(dev, 256, 300, 0).blocks_per_sm, 0);    // > 255 regs
  EXPECT_EQ(occupancy(dev, 256, 32, 64 * 1024).blocks_per_sm, 0);  // > 48 KiB
  EXPECT_EQ(occupancy(dev, 0, 32, 0).blocks_per_sm, 0);
}

// Property: occupancy is monotone non-increasing in both register count and
// shared memory usage (DESIGN.md invariant).
class OccupancyMonotone : public ::testing::TestWithParam<int> {};

TEST_P(OccupancyMonotone, InRegisters) {
  const auto& dev = gtx980ti();
  const int threads = GetParam();
  int prev = 1 << 30;
  for (int regs = 16; regs <= 255; regs += 8) {
    const auto r = occupancy(dev, threads, regs, 4096);
    EXPECT_LE(r.warps_per_sm, prev) << "regs=" << regs;
    EXPECT_LE(r.warps_per_sm, dev.max_warps_per_sm);
    prev = r.warps_per_sm;
  }
}

TEST_P(OccupancyMonotone, InSharedMemory) {
  const auto& dev = gtx980ti();
  const int threads = GetParam();
  int prev = 1 << 30;
  for (int smem = 0; smem <= dev.smem_per_block_bytes; smem += 2048) {
    const auto r = occupancy(dev, threads, 32, smem);
    EXPECT_LE(r.warps_per_sm, prev) << "smem=" << smem;
    prev = r.warps_per_sm;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, OccupancyMonotone, ::testing::Values(32, 64, 128, 256, 512));

// ------------------------------------------------------------- perf model --

// A hand-built profile resembling a healthy 64x64-tile SGEMM block on a
// 2048^3 problem; used as the "reasonable kernel" fixture.
KernelProfile square_gemm_profile() {
  KernelProfile p;
  p.label = "sgemm-64x64";
  const double m = 2048, n = 2048, k = 2048;
  const double ml = 64, nl = 64, u = 8;
  p.grid_blocks = static_cast<std::int64_t>((m / ml) * (n / nl));
  p.threads_per_block = 64;  // 8x8 threads of 8x8 micro-tiles
  p.regs_per_thread = 120;
  p.smem_bytes_per_block = static_cast<int>((ml * u + u * nl) * 4 * 2);
  p.fma_insts = k * 8 * 8;   // K * MS * NS
  p.int_insts = k / u * 16;
  p.ld_global_insts = (ml * u + u * nl) / 64 * (k / u) / 4;  // vectorized x4
  p.st_global_insts = 64 / 4;
  p.ld_shared_insts = k * (8 + 8) / 4;
  p.st_shared_insts = (ml * u + u * nl) / 64 * (k / u) / 4;
  p.bar_syncs = 2 * k / u;
  p.ilp_arith = 8;
  p.mlp_mem = 4;
  p.ilp_smem = 4;
  p.dram_read_bytes = (m * k + k * n) * 4;
  p.requested_read_bytes = p.grid_blocks * (ml + nl) * k * 4;
  p.dram_write_bytes = m * n * 4;
  p.wave_unique_bytes_hint = (6 * ml + 32 * nl) * k * 4;
  p.slice_working_set_bytes = (6 * ml + 32 * nl) * u * 4;
  p.useful_flops = 2.0 * m * n * k;
  p.dtype = DataType::F32;
  return p;
}

TEST(PerfModel, HealthyKernelIsValidAndFast) {
  const auto r = evaluate(gtx980ti(), square_gemm_profile());
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_TRUE(std::isfinite(r.seconds));
  // A good square-matrix kernel should land in the vicinity of peak
  // (the paper reports >90% of peak for cuBLAS on Maxwell).
  EXPECT_GT(r.achieved_tflops, 0.5 * gtx980ti().peak_sp_tflops);
}

TEST(PerfModel, NeverExceedsDevicePeak) {
  const auto& dev = gtx980ti();
  const auto r = evaluate(dev, square_gemm_profile());
  ASSERT_TRUE(r.valid);
  // Advertised peak has ~4% headroom over cores*2*clock on this card; allow
  // a hair of slack for the rounding in the descriptor.
  EXPECT_LT(r.achieved_tflops, dev.peak_sp_tflops * 1.10);
}

TEST(PerfModel, EmptyLaunchInvalid) {
  KernelProfile p;
  const auto r = evaluate(gtx980ti(), p);
  EXPECT_FALSE(r.valid);
}

TEST(PerfModel, OverBudgetKernelInvalid) {
  KernelProfile p = square_gemm_profile();
  p.smem_bytes_per_block = 1 << 20;  // 1 MiB: cannot launch
  const auto r = evaluate(gtx980ti(), p);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.invalid_reason.find("smem"), std::string::npos);
}

TEST(PerfModel, MoreWavesTakeLonger) {
  KernelProfile p = square_gemm_profile();
  const auto r1 = evaluate(gtx980ti(), p);
  p.grid_blocks *= 4;  // 4x the blocks, same per-block work
  p.useful_flops *= 4;
  p.requested_read_bytes *= 4;
  const auto r4 = evaluate(gtx980ti(), p);
  ASSERT_TRUE(r1.valid);
  ASSERT_TRUE(r4.valid);
  EXPECT_GT(r4.seconds, r1.seconds * 2.0);
}

TEST(PerfModel, LowOccupancyHurtsLatencyHiding) {
  KernelProfile p = square_gemm_profile();
  const auto good = evaluate(gtx980ti(), p);
  KernelProfile q = p;
  q.regs_per_thread = 255;          // crush occupancy
  q.smem_bytes_per_block = 40960;   // and smem
  q.ilp_arith = 1;                  // no ILP to compensate
  q.ilp_smem = 1;
  q.mlp_mem = 1;
  const auto bad = evaluate(gtx980ti(), q);
  ASSERT_TRUE(good.valid);
  ASSERT_TRUE(bad.valid);
  EXPECT_LT(bad.occ.occupancy, good.occ.occupancy);
  EXPECT_GT(bad.seconds, good.seconds);
}

TEST(PerfModel, Fp64RunsSlowerThanFp32) {
  KernelProfile p = square_gemm_profile();
  const auto f32 = evaluate(tesla_p100(), p);
  p.dtype = DataType::F64;
  const auto f64 = evaluate(tesla_p100(), p);
  ASSERT_TRUE(f32.valid);
  ASSERT_TRUE(f64.valid);
  EXPECT_GT(f64.seconds, f32.seconds * 1.5);
}

TEST(PerfModel, Fp16x2DoublesThroughputOnPascal) {
  KernelProfile p = square_gemm_profile();
  p.dtype = DataType::F16;
  p.uses_fp16x2 = true;
  p.fma_insts /= 2.0;  // pairing halves the instruction count
  const auto paired = evaluate(tesla_p100(), p);
  KernelProfile q = square_gemm_profile();
  q.dtype = DataType::F16;
  q.uses_fp16x2 = false;
  const auto scalar = evaluate(tesla_p100(), q);
  ASSERT_TRUE(paired.valid);
  ASSERT_TRUE(scalar.valid);
  EXPECT_GT(paired.achieved_tflops, scalar.achieved_tflops * 1.5);
}

TEST(PerfModel, AtomicsAreSlowerThanStores) {
  KernelProfile p = square_gemm_profile();
  const auto st = evaluate(gtx980ti(), p);
  KernelProfile q = p;
  q.atom_global_insts = q.st_global_insts * 64;  // force atomics to matter
  q.st_global_insts = 0;
  const auto at = evaluate(gtx980ti(), q);
  ASSERT_TRUE(st.valid);
  ASSERT_TRUE(at.valid);
  EXPECT_GE(at.seconds, st.seconds);
}

TEST(PerfModel, BoundsOverheadScalesTime) {
  KernelProfile p = square_gemm_profile();
  const auto clean = evaluate(gtx980ti(), p);
  p.bounds_overhead_factor = 1.18;
  const auto branchy = evaluate(gtx980ti(), p);
  ASSERT_TRUE(clean.valid);
  ASSERT_TRUE(branchy.valid);
  // Compute-bound kernel: the overhead shows up nearly in full.
  EXPECT_NEAR(branchy.time_sm_s / clean.time_sm_s, 1.18, 0.02);
}

TEST(PerfModel, DramBoundKernelReportsDramBottleneck) {
  KernelProfile p = square_gemm_profile();
  p.fma_insts = 1;  // almost no compute; pure streaming
  p.int_insts = 16;
  p.ld_shared_insts = 0;
  p.st_shared_insts = 0;
  p.bar_syncs = 0;                // streaming kernels do not synchronize
  p.mlp_mem = 16;                 // deep load pipelining
  p.coalescing_efficiency = 0.5;  // strided: traffic doubles
  const auto r = evaluate(gtx980ti(), p);
  ASSERT_TRUE(r.valid);
  EXPECT_STREQ(r.bottleneck, "dram");
}

TEST(PerfModel, L2HitRateWithinUnitInterval) {
  const auto r = evaluate(gtx980ti(), square_gemm_profile());
  ASSERT_TRUE(r.valid);
  EXPECT_GE(r.l2_hit_rate, 0.0);
  EXPECT_LE(r.l2_hit_rate, 1.0);
  EXPECT_GE(r.dram_read_bytes, 0.0);
}

TEST(PerfModel, TimeMonotoneInWorkPerThread) {
  // DESIGN.md invariant: time is monotone in K for a fixed tuning config.
  const auto& dev = tesla_p100();
  double prev = 0.0;
  for (double k = 256; k <= 8192; k *= 2) {
    KernelProfile p = square_gemm_profile();
    const double scale = k / 2048.0;
    p.fma_insts *= scale;
    p.ld_shared_insts *= scale;
    p.st_shared_insts *= scale;
    p.ld_global_insts *= scale;
    p.bar_syncs *= scale;
    p.useful_flops *= scale;
    p.dram_read_bytes *= scale;
    p.requested_read_bytes *= scale;
    const auto r = evaluate(dev, p);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.seconds, prev) << "k=" << k;
    prev = r.seconds;
  }
}

// -------------------------------------------------------------- simulator --
TEST(Simulator, NoiseIsMultiplicativeAndBounded) {
  Simulator sim(gtx980ti(), 0.05, 42);
  const auto truth = sim.evaluate(square_gemm_profile());
  ASSERT_TRUE(truth.valid);
  for (int rep = 0; rep < 50; ++rep) {
    const auto r = sim.launch(square_gemm_profile(), rep);
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.seconds, truth.seconds * 0.7);
    EXPECT_LT(r.seconds, truth.seconds * 1.4);
  }
}

TEST(Simulator, DifferentRepsDrawDifferentNoise) {
  Simulator sim(gtx980ti(), 0.05, 42);
  const auto r0 = sim.launch(square_gemm_profile(), 0);
  const auto r1 = sim.launch(square_gemm_profile(), 1);
  ASSERT_TRUE(r0.valid);
  ASSERT_TRUE(r1.valid);
  EXPECT_NE(r0.seconds, r1.seconds);
}

TEST(Simulator, ZeroNoiseMatchesModelExactly) {
  Simulator sim(gtx980ti(), 0.0, 42);
  const auto truth = sim.evaluate(square_gemm_profile());
  const auto r = sim.launch(square_gemm_profile());
  ASSERT_TRUE(r.valid);
  EXPECT_DOUBLE_EQ(r.seconds, truth.seconds);
}

TEST(Simulator, SameSeedSameMeasurement) {
  Simulator a(gtx980ti(), 0.05, 7);
  Simulator b(gtx980ti(), 0.05, 7);
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_DOUBLE_EQ(a.launch(square_gemm_profile(), rep).seconds,
                     b.launch(square_gemm_profile(), rep).seconds);
  }
}

TEST(Simulator, DifferentSeedsDifferentNoise) {
  Simulator a(gtx980ti(), 0.05, 7);
  Simulator b(gtx980ti(), 0.05, 8);
  EXPECT_NE(a.launch(square_gemm_profile()).seconds, b.launch(square_gemm_profile()).seconds);
}

TEST(Simulator, MedianTightensNoise) {
  Simulator sim(tesla_p100(), 0.10, 3);
  const auto truth = sim.evaluate(square_gemm_profile());
  const auto med = sim.launch_median(square_gemm_profile(), 15);
  ASSERT_TRUE(med.valid);
  EXPECT_NEAR(med.seconds / truth.seconds, 1.0, 0.08);
}

TEST(Simulator, InvalidKernelStaysInvalid) {
  Simulator sim(gtx980ti());
  KernelProfile p;  // empty
  const auto r = sim.launch(p);
  EXPECT_FALSE(r.valid);
  EXPECT_FALSE(sim.launch_median(p, 5).valid);
}

}  // namespace
}  // namespace isaac::gpusim
