// Unit tests for src/common: strings, stats, rng, thread pool, table, cli.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace isaac {
namespace {

// ---------------------------------------------------------------- strings --
TEST(Strings, ToLowerUpper) {
  EXPECT_EQ(strings::to_lower("GeMM f32"), "gemm f32");
  EXPECT_EQ(strings::to_upper("conv"), "CONV");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = strings::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = strings::split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  x y \t\n"), "x y");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim(""), "");
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(strings::starts_with("bench_fig6", "bench_"));
  EXPECT_FALSE(strings::starts_with("x", "bench_"));
  EXPECT_TRUE(strings::ends_with("kernel.ptx", ".ptx"));
  EXPECT_FALSE(strings::ends_with("ptx", "kernel.ptx"));
}

TEST(Strings, Format) {
  EXPECT_EQ(strings::format("%d x %d", 64, 32), "64 x 32");
  EXPECT_EQ(strings::format("%.2f", 3.14159), "3.14");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(strings::with_commas(0), "0");
  EXPECT_EQ(strings::with_commas(999), "999");
  EXPECT_EQ(strings::with_commas(1000), "1,000");
  EXPECT_EQ(strings::with_commas(1234567), "1,234,567");
  EXPECT_EQ(strings::with_commas(-1234567), "-1,234,567");
}

// ------------------------------------------------------------------ stats --
TEST(Stats, MeanVarStd) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
  EXPECT_NEAR(stats::variance(xs), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(stats::stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(stats::median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(stats::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(stats::percentile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile({1, 2, 3, 4, 5}, 1.0), 5.0);
}

TEST(Stats, Geomean) {
  EXPECT_NEAR(stats::geomean({2, 8}), 4.0, 1e-12);
  EXPECT_THROW(stats::geomean({1, 0}), std::invalid_argument);
}

TEST(Stats, Mse) {
  EXPECT_DOUBLE_EQ(stats::mse({1, 2}, {1, 4}), 2.0);
  EXPECT_THROW(stats::mse({1}, {1, 2}), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(stats::pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(stats::pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, EmptyInputThrows) {
  EXPECT_THROW(stats::mean({}), std::invalid_argument);
  EXPECT_THROW(stats::percentile({}, 0.5), std::invalid_argument);
}

// -------------------------------------------------------------------- rng --
TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(7);
  Rng s0 = base.fork(0);
  Rng s1 = base.fork(1);
  EXPECT_NE(s0.next_u64(), s1.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(5);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 1u);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, CategoricalFrequencies) {
  Rng rng(11);
  std::vector<double> w{1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.categorical(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, LognormalFactorPositive) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.lognormal_factor(0.1), 0.0);
}

// ------------------------------------------------------------ thread pool --
TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_each(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_each(100,
                                      [&](std::size_t i) {
                                        if (i == 57) throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexError) {
  // First-error-wins is deterministic by *index order*, not by which worker
  // happened to fault first: with every chunk throwing, the caller must see
  // chunk 0's exception on every run.
  ThreadPool pool(4);
  for (int trial = 0; trial < 16; ++trial) {
    try {
      pool.parallel_for(1024, [](std::size_t begin, std::size_t) -> void {
        throw std::runtime_error("chunk@" + std::to_string(begin));
      });
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk@0");
    }
  }
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for_each(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for_each(4, [&](std::size_t) {
    ThreadPool::global().parallel_for_each(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

// ------------------------------------------------------------------ table --
TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "tflops"});
  t.add_row({"isaac", "3.73"});
  t.add_row({"cublas", "2.56"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("cublas"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.num_cols(), 3u);
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_double(2.0, 0), "2");
}

// -------------------------------------------------------------------- cli --
TEST(Cli, ParsesAllKinds) {
  CliParser cli("prog", "test");
  cli.add_flag("full", "run at paper scale", false);
  cli.add_int("samples", "sample count", 1000);
  cli.add_double("sigma", "noise", 0.03);
  cli.add_string("device", "target", "p100");
  const char* argv[] = {"prog", "--full", "--samples", "5000", "--sigma=0.1",
                        "--device", "gtx980ti"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_TRUE(cli.get_flag("full"));
  EXPECT_EQ(cli.get_int("samples"), 5000);
  EXPECT_DOUBLE_EQ(cli.get_double("sigma"), 0.1);
  EXPECT_EQ(cli.get_string("device"), "gtx980ti");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "test");
  cli.add_int("n", "count", 7);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 7);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_int("n", "count", 1);
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), std::invalid_argument);
}

TEST(Cli, BadIntegerThrows) {
  CliParser cli("prog", "test");
  cli.add_int("n", "count", 1);
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.get_int("n"), std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BooleanWithExplicitValue) {
  CliParser cli("prog", "test");
  cli.add_flag("x", "x", true);
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_flag("x"));
}

}  // namespace
}  // namespace isaac
