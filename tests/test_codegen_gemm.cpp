// Tests for the GEMM parameterization: validity (legal space X), static
// analysis (KernelProfile), and the functional executor against the naive
// reference across shapes, layouts, and reduction splits.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/gemm.hpp"
#include "codegen/gemm_executor.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"

namespace isaac::codegen {
namespace {

using gpusim::DataType;

GemmShape make_shape(std::int64_t m, std::int64_t n, std::int64_t k,
                     DataType dt = DataType::F32, bool ta = false, bool tb = false) {
  GemmShape s;
  s.m = m;
  s.n = n;
  s.k = k;
  s.dtype = dt;
  s.trans_a = ta;
  s.trans_b = tb;
  return s;
}

GemmTuning make_tuning(int ms, int ns, int ml, int nl, int u, int kl = 1, int kg = 1,
                       int vec = 1) {
  GemmTuning t;
  t.ms = ms;
  t.ns = ns;
  t.ml = ml;
  t.nl = nl;
  t.u = u;
  t.kl = kl;
  t.kg = kg;
  t.vec = vec;
  return t;
}

// --------------------------------------------------------------- validity --
TEST(GemmValidity, TypicalConfigIsLegal) {
  std::string why;
  EXPECT_TRUE(validate(make_shape(1024, 1024, 1024), make_tuning(8, 8, 64, 64, 8),
                       gpusim::gtx980ti(), &why))
      << why;
}

TEST(GemmValidity, NonPowerOfTwoRejected) {
  GemmTuning t = make_tuning(8, 8, 64, 64, 8);
  t.u = 6;
  std::string why;
  EXPECT_FALSE(validate(make_shape(512, 512, 512), t, gpusim::gtx980ti(), &why));
  EXPECT_NE(why.find("powers of two"), std::string::npos);
}

TEST(GemmValidity, TileDivisibilityRequired) {
  GemmTuning t = make_tuning(8, 8, 64, 64, 8);
  t.ms = 16;
  t.ml = 8;  // ML < MS
  EXPECT_FALSE(validate(make_shape(512, 512, 512), t, gpusim::gtx980ti()));
}

TEST(GemmValidity, OversizedBlockRejected) {
  // 128/1 * 128/1 = 16384 threads.
  std::string why;
  EXPECT_FALSE(
      validate(make_shape(512, 512, 512), make_tuning(1, 1, 128, 128, 8), gpusim::gtx980ti(), &why));
  EXPECT_NE(why.find("threads"), std::string::npos);
}

TEST(GemmValidity, SmemBudgetEnforced) {
  // (128+128)*32*2*4B*2 = 128 KiB of staging: far over the 48 KiB limit.
  GemmTuning t = make_tuning(8, 8, 128, 128, 32, 2);
  std::string why;
  EXPECT_FALSE(validate(make_shape(4096, 4096, 4096), t, gpusim::gtx980ti(), &why));
  EXPECT_NE(why.find("hared memory"), std::string::npos);
}

TEST(GemmValidity, KgBeyondKRejected) {
  GemmTuning t = make_tuning(4, 4, 32, 32, 4);
  t.kg = 64;
  EXPECT_FALSE(validate(make_shape(128, 128, 32), t, gpusim::gtx980ti()));
}

TEST(GemmValidity, DeepSplitNeedsDepth) {
  // U*KL = 64 > K/KG = 16.
  GemmTuning t = make_tuning(4, 4, 32, 32, 16, 4);
  t.kg = 4;
  std::string why;
  EXPECT_FALSE(validate(make_shape(128, 128, 64), t, gpusim::gtx980ti(), &why));
}

TEST(GemmValidity, F16AtomicsRejected) {
  GemmTuning t = make_tuning(4, 4, 32, 32, 8);
  t.kg = 2;
  std::string why;
  EXPECT_FALSE(
      validate(make_shape(512, 512, 4096, DataType::F16), t, gpusim::tesla_p100(), &why));
  EXPECT_NE(why.find("f16"), std::string::npos);
  t.kg = 1;
  EXPECT_TRUE(validate(make_shape(512, 512, 4096, DataType::F16), t, gpusim::tesla_p100()));
}

TEST(GemmValidity, PrefetchMustDivideAmongThreads) {
  // threads = (8/1)*(8/8) = 8... choose tile where (ml*u*kl) % threads != 0.
  GemmTuning t = make_tuning(1, 8, 8, 64, 4);  // threads = 8*8=64; elems_a=8*4=32 < 64
  std::string why;
  EXPECT_FALSE(validate(make_shape(512, 512, 512), t, gpusim::gtx980ti(), &why));
  EXPECT_NE(why.find("divide"), std::string::npos);
}

// --------------------------------------------------------------- analysis --
TEST(GemmAnalyze, ProfileBasics) {
  const auto shape = make_shape(2048, 2048, 2048);
  const auto tuning = make_tuning(8, 8, 64, 64, 8);
  const auto p = analyze(shape, tuning, gpusim::gtx980ti());
  EXPECT_EQ(p.grid_blocks, 32 * 32);
  EXPECT_EQ(p.threads_per_block, 64);
  EXPECT_DOUBLE_EQ(p.useful_flops, 2.0 * 2048 * 2048 * 2048);
  // fma per thread = K * MS * NS.
  EXPECT_DOUBLE_EQ(p.fma_insts, 2048.0 * 8 * 8);
  EXPECT_GT(p.regs_per_thread, 64);  // 64 accumulators + staging
  EXPECT_EQ(p.st_global_insts, 64.0);
  EXPECT_EQ(p.atom_global_insts, 0.0);
  EXPECT_EQ(p.extra_launches, 0);
  EXPECT_DOUBLE_EQ(p.bounds_overhead_factor, 1.0);  // tiles divide exactly
}

TEST(GemmAnalyze, EdgePredicationOverheadOnlyWhenRagged) {
  const auto tuning = make_tuning(8, 8, 64, 64, 8);
  const auto clean = analyze(make_shape(2048, 2048, 2048), tuning, gpusim::gtx980ti());
  const auto ragged = analyze(make_shape(2000, 2000, 2000), tuning, gpusim::gtx980ti());
  EXPECT_DOUBLE_EQ(clean.bounds_overhead_factor, 1.0);
  EXPECT_NEAR(ragged.bounds_overhead_factor, 1.02, 1e-9);
}

TEST(GemmAnalyze, BranchyBoundsCostMore) {
  GemmTuning t = make_tuning(8, 8, 64, 64, 8);
  t.bounds = gpusim::BoundsMode::Branchy;
  const auto p = analyze(make_shape(2000, 2000, 2000), t, gpusim::gtx980ti());
  EXPECT_NEAR(p.bounds_overhead_factor, 1.18, 1e-9);
}

TEST(GemmAnalyze, PaddedModeInflatesWork) {
  GemmTuning t = make_tuning(8, 8, 64, 64, 8);
  t.bounds = gpusim::BoundsMode::Padded;
  const auto p = analyze(make_shape(2000, 2000, 2000), t, gpusim::gtx980ti());
  // Grid covers the padded extent.
  EXPECT_EQ(p.grid_blocks, 32 * 32);
  EXPECT_DOUBLE_EQ(p.bounds_overhead_factor, 1.0);
  EXPECT_GT(p.extra_launches, 0);  // pad/unpad pass
}

TEST(GemmAnalyze, SplitReductionUsesAtomics) {
  GemmTuning t = make_tuning(4, 4, 32, 32, 8);
  t.kg = 8;
  const auto p = analyze(make_shape(64, 64, 60000), t, gpusim::tesla_p100());
  EXPECT_GT(p.atom_global_insts, 0.0);
  EXPECT_EQ(p.st_global_insts, 0.0);
  EXPECT_EQ(p.extra_launches, 1);
  EXPECT_EQ(p.grid_blocks, 2 * 2 * 8);
}

TEST(GemmAnalyze, KlAddsWarpsAndSmem) {
  const auto shape = make_shape(64, 64, 60000);
  const auto base = analyze(shape, make_tuning(4, 4, 32, 32, 8, 1), gpusim::tesla_p100());
  const auto split = analyze(shape, make_tuning(4, 4, 32, 32, 8, 4), gpusim::tesla_p100());
  EXPECT_EQ(split.threads_per_block, base.threads_per_block * 4);
  EXPECT_GT(split.smem_bytes_per_block, base.smem_bytes_per_block);
  // Same FLOPs, split across 4x the threads.
  EXPECT_LT(split.fma_insts, base.fma_insts);
}

TEST(GemmAnalyze, Fp16PairingHalvesInstructions) {
  const auto f32 = analyze(make_shape(2048, 2048, 2048, DataType::F32),
                           make_tuning(8, 8, 64, 64, 8), gpusim::tesla_p100());
  const auto f16 = analyze(make_shape(2048, 2048, 2048, DataType::F16),
                           make_tuning(8, 8, 64, 64, 8), gpusim::tesla_p100());
  EXPECT_TRUE(f16.uses_fp16x2);
  EXPECT_DOUBLE_EQ(f16.fma_insts * 2.0, f32.fma_insts);
}

TEST(GemmAnalyze, TransposeLayoutsRaiseSmemCost) {
  // (N,T) — LINPACK — needs no smem transposes; (T,N) needs both. In-flight
  // transposition scalarizes the vectorized staging stores.
  const auto nt = analyze(make_shape(1024, 1024, 1024, DataType::F32, false, true),
                          make_tuning(8, 8, 64, 64, 8, 1, 1, 4), gpusim::gtx980ti());
  const auto tn = analyze(make_shape(1024, 1024, 1024, DataType::F32, true, false),
                          make_tuning(8, 8, 64, 64, 8, 1, 1, 4), gpusim::gtx980ti());
  EXPECT_LT(nt.smem_conflict_ways, tn.smem_conflict_ways);
  EXPECT_LT(nt.st_shared_insts, tn.st_shared_insts);
}

TEST(GemmAnalyze, IllegalConfigThrows) {
  GemmTuning t = make_tuning(1, 1, 128, 128, 8);
  EXPECT_THROW(analyze(make_shape(512, 512, 512), t, gpusim::gtx980ti()),
               std::invalid_argument);
}

TEST(GemmAnalyze, RequestedTrafficScalesWithGrid) {
  const auto small = analyze(make_shape(512, 512, 512), make_tuning(8, 8, 64, 64, 8),
                             gpusim::gtx980ti());
  const auto large = analyze(make_shape(2048, 2048, 512), make_tuning(8, 8, 64, 64, 8),
                             gpusim::gtx980ti());
  EXPECT_GT(large.requested_read_bytes, small.requested_read_bytes * 10);
}

// --------------------------------------------------------------- executor --
struct ExecCase {
  std::int64_t m, n, k;
  bool ta, tb;
  GemmTuning tuning;
};

class GemmExecutorMatchesReference : public ::testing::TestWithParam<ExecCase> {};

TEST_P(GemmExecutorMatchesReference, Float) {
  const ExecCase& ec = GetParam();
  const GemmShape shape =
      make_shape(ec.m, ec.n, ec.k, DataType::F32, ec.ta, ec.tb);
  Rng rng(static_cast<std::uint64_t>(ec.m * 7 + ec.n * 3 + ec.k));

  const std::int64_t lda = ec.ta ? ec.k : ec.m;
  const std::int64_t ldb = ec.tb ? ec.n : ec.k;
  std::vector<float> a(static_cast<std::size_t>(lda * (ec.ta ? ec.m : ec.k)));
  std::vector<float> b(static_cast<std::size_t>(ldb * (ec.tb ? ec.k : ec.n)));
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c(static_cast<std::size_t>(ec.m * ec.n));
  for (auto& x : c) x = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c_ref = c;

  execute_gemm(shape, ec.tuning, 1.5f, a.data(), lda, b.data(), ldb, 0.5f, c.data(), ec.m);
  reference_gemm(shape, 1.5f, a.data(), lda, b.data(), ldb, 0.5f, c_ref.data(), ec.m);

  double max_diff = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c[i] - c_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-3 * static_cast<double>(ec.k))
      << "shape " << shape.to_string() << " tuning " << ec.tuning.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    ShapesLayoutsSplits, GemmExecutorMatchesReference,
    ::testing::Values(
        // Exact tiles, all four layouts.
        ExecCase{64, 64, 64, false, false, make_tuning(4, 4, 32, 32, 8)},
        ExecCase{64, 64, 64, false, true, make_tuning(4, 4, 32, 32, 8)},
        ExecCase{64, 64, 64, true, false, make_tuning(4, 4, 32, 32, 8)},
        ExecCase{64, 64, 64, true, true, make_tuning(4, 4, 32, 32, 8)},
        // Ragged edges in every dimension (predication paths).
        ExecCase{61, 67, 53, false, false, make_tuning(4, 4, 32, 32, 8)},
        ExecCase{33, 31, 17, false, true, make_tuning(4, 4, 32, 32, 8)},
        ExecCase{7, 100, 129, true, false, make_tuning(2, 4, 16, 32, 4)},
        // Skinny shapes (the paper's DeepBench/ICA regimes).
        ExecCase{256, 16, 256, false, false, make_tuning(4, 2, 64, 16, 8)},
        ExecCase{32, 32, 4096, false, true, make_tuning(4, 4, 32, 32, 8)},
        // Split reductions: KL, KG, and both.
        ExecCase{64, 64, 512, false, false, make_tuning(4, 4, 32, 32, 8, 2, 1)},
        ExecCase{64, 64, 512, false, true, make_tuning(4, 4, 32, 32, 8, 1, 4)},
        ExecCase{48, 48, 1000, true, false, make_tuning(4, 4, 32, 32, 4, 2, 8)},
        // K not divisible by KG (empty tail slices).
        ExecCase{32, 32, 100, false, false, make_tuning(4, 4, 32, 32, 4, 1, 8)},
        // Single-element micro-tiles.
        ExecCase{16, 16, 32, false, false, make_tuning(1, 1, 8, 8, 4)}));

TEST(GemmExecutor, DoublePrecision) {
  const GemmShape shape = make_shape(40, 40, 200, DataType::F64, false, true);
  Rng rng(9);
  std::vector<double> a(40 * 200), b(40 * 200), c(40 * 40, 0.0), c_ref(40 * 40, 0.0);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  execute_gemm(shape, make_tuning(4, 4, 8, 8, 4, 1, 4), 1.0, a.data(), 40, b.data(), 40, 0.0,
               c.data(), 40);
  reference_gemm(shape, 1.0, a.data(), 40, b.data(), 40, 0.0, c_ref.data(), 40);
  double max_diff = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(c[i] - c_ref[i]));
  }
  EXPECT_LT(max_diff, 1e-9);
}

TEST(GemmExecutor, BetaZeroIgnoresGarbage) {
  const GemmShape shape = make_shape(8, 8, 8);
  std::vector<float> a(64, 1.0f), b(64, 1.0f);
  std::vector<float> c(64, std::numeric_limits<float>::quiet_NaN());
  execute_gemm(shape, make_tuning(2, 2, 8, 8, 4), 1.0f, a.data(), 8, b.data(), 8, 0.0f,
               c.data(), 8);
  for (float v : c) EXPECT_FLOAT_EQ(v, 8.0f);
}

TEST(GemmExecutor, LeadingDimensionValidated) {
  const GemmShape shape = make_shape(16, 16, 16);
  std::vector<float> a(256), b(256), c(256);
  EXPECT_THROW(execute_gemm(shape, make_tuning(2, 2, 8, 8, 4), 1.0f, a.data(), 8, b.data(), 16,
                            0.0f, c.data(), 16),
               std::invalid_argument);
}

TEST(GemmExecutor, EmptyProblemThrows) {
  const GemmShape shape = make_shape(0, 8, 8);
  std::vector<float> dummy(64);
  EXPECT_THROW(execute_gemm(shape, make_tuning(2, 2, 8, 8, 4), 1.0f, dummy.data(), 8,
                            dummy.data(), 8, 0.0f, dummy.data(), 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace isaac::codegen
