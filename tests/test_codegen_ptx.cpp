// End-to-end semantic validation of the generated PTX GEMM kernels: the
// emitted kernel, run through the interpreter, must match the functional
// executor and the naive reference — across layouts, ragged edges, and
// reduction splits. Also cross-checks the static analyzer's instruction
// counts against the interpreter's dynamic counts.
#include <gtest/gtest.h>

#include <vector>

#include "codegen/gemm.hpp"
#include "codegen/gemm_executor.hpp"
#include "codegen/gemm_ptx.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "ptx/emitter.hpp"
#include "ptx/verifier.hpp"

namespace isaac::codegen {
namespace {

using gpusim::DataType;

struct PtxCase {
  std::int64_t m, n, k;
  bool ta, tb;
  GemmTuning tuning;
};

GemmTuning tun(int ms, int ns, int ml, int nl, int u, int kl = 1, int kg = 1) {
  GemmTuning t;
  t.ms = ms;
  t.ns = ns;
  t.ml = ml;
  t.nl = nl;
  t.u = u;
  t.kl = kl;
  t.kg = kg;
  return t;
}

class PtxGemmMatchesReference : public ::testing::TestWithParam<PtxCase> {};

TEST_P(PtxGemmMatchesReference, InterpreterAgreesWithReference) {
  const PtxCase& pc = GetParam();
  GemmShape shape;
  shape.m = pc.m;
  shape.n = pc.n;
  shape.k = pc.k;
  shape.trans_a = pc.ta;
  shape.trans_b = pc.tb;

  // Generate + statically verify.
  ptx::Kernel kernel = generate_gemm_ptx(shape, pc.tuning);
  const auto v = ptx::verify(kernel);
  ASSERT_TRUE(v.ok) << v.summary();

  // Set up memory.
  Rng rng(static_cast<std::uint64_t>(pc.m * 131 + pc.n * 13 + pc.k));
  const std::int64_t lda = pc.ta ? pc.k : pc.m;
  const std::int64_t ldb = pc.tb ? pc.n : pc.k;
  std::vector<float> a(static_cast<std::size_t>(lda * (pc.ta ? pc.m : pc.k)));
  std::vector<float> b(static_cast<std::size_t>(ldb * (pc.tb ? pc.k : pc.n)));
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));

  ptx::GlobalMemory mem;
  const auto pa = mem.alloc(a.size() * 4);
  const auto pb = mem.alloc(b.size() * 4);
  const auto pcaddr = mem.alloc(static_cast<std::size_t>(pc.m * pc.n) * 4);
  mem.write_f32(pa, a);
  mem.write_f32(pb, b);

  // Run through the interpreter.
  const auto dims = gemm_launch_dims(shape, pc.tuning);
  const auto params = gemm_params(shape, pc.tuning, pa, pb, pcaddr);
  const auto run_result = ptx::run(kernel, dims, params, mem);
  ASSERT_TRUE(run_result.ok) << run_result.error;

  // Reference.
  std::vector<float> c_ref(static_cast<std::size_t>(pc.m * pc.n), 0.0f);
  reference_gemm(shape, 1.0f, a.data(), lda, b.data(), ldb, 0.0f, c_ref.data(), pc.m);

  const auto c_ptx = mem.read_f32(pcaddr, static_cast<std::size_t>(pc.m * pc.n));
  double max_diff = 0;
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c_ptx[i] - c_ref[i])));
  }
  EXPECT_LT(max_diff, 1e-3 * static_cast<double>(pc.k))
      << shape.to_string() << " / " << pc.tuning.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    TinyProblems, PtxGemmMatchesReference,
    ::testing::Values(
        // Exact tiles, all four layouts.
        PtxCase{16, 16, 16, false, false, tun(2, 2, 8, 8, 4)},
        PtxCase{16, 16, 16, false, true, tun(2, 2, 8, 8, 4)},
        PtxCase{16, 16, 16, true, false, tun(2, 2, 8, 8, 4)},
        PtxCase{16, 16, 16, true, true, tun(2, 2, 8, 8, 4)},
        // Ragged edges (predication).
        PtxCase{13, 11, 9, false, false, tun(2, 2, 8, 8, 4)},
        PtxCase{7, 19, 23, false, true, tun(2, 2, 8, 8, 4)},
        PtxCase{9, 5, 33, true, false, tun(2, 2, 8, 8, 4)},
        // K_L split (shared-memory reduction epilogue).
        PtxCase{16, 16, 64, false, false, tun(2, 2, 8, 8, 4, 2)},
        PtxCase{10, 12, 50, false, true, tun(2, 2, 8, 8, 4, 2)},
        // K_G split (atomics accumulation) incl. non-dividing K.
        PtxCase{16, 16, 64, false, false, tun(2, 2, 8, 8, 4, 1, 2)},
        PtxCase{12, 14, 100, false, true, tun(2, 2, 8, 8, 4, 1, 4)},
        // K_L and K_G together.
        PtxCase{16, 16, 128, false, true, tun(2, 2, 8, 8, 4, 2, 2)},
        // Wider micro-tiles.
        PtxCase{32, 24, 40, false, true, tun(4, 4, 16, 8, 4)},
        PtxCase{24, 32, 31, true, true, tun(2, 4, 8, 16, 4)}));

TEST(PtxGemm, F64KernelMatchesReference) {
  GemmShape shape;
  shape.m = 12;
  shape.n = 10;
  shape.k = 30;
  shape.dtype = DataType::F64;
  shape.trans_b = true;
  const GemmTuning t = tun(2, 2, 4, 4, 4, 1, 2);

  ptx::Kernel kernel = generate_gemm_ptx(shape, t);
  ASSERT_TRUE(ptx::verify(kernel).ok);

  Rng rng(3);
  std::vector<double> a(static_cast<std::size_t>(shape.m * shape.k));
  std::vector<double> b(static_cast<std::size_t>(shape.n * shape.k));
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);

  ptx::GlobalMemory mem;
  const auto pa = mem.alloc(a.size() * 8);
  const auto pb = mem.alloc(b.size() * 8);
  const auto pcaddr = mem.alloc(static_cast<std::size_t>(shape.m * shape.n) * 8);
  mem.write_f64(pa, a);
  mem.write_f64(pb, b);

  const auto r = ptx::run(kernel, gemm_launch_dims(shape, t),
                          gemm_params(shape, t, pa, pb, pcaddr), mem);
  ASSERT_TRUE(r.ok) << r.error;

  std::vector<double> c_ref(static_cast<std::size_t>(shape.m * shape.n), 0.0);
  reference_gemm(shape, 1.0, a.data(), shape.m, b.data(), shape.n, 0.0, c_ref.data(), shape.m);
  const auto c_ptx = mem.read_f64(pcaddr, c_ref.size());
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_NEAR(c_ptx[i], c_ref[i], 1e-9);
  }
}

TEST(PtxGemm, F16GenerationRejected) {
  GemmShape shape;
  shape.m = shape.n = shape.k = 16;
  shape.dtype = DataType::F16;
  EXPECT_THROW(generate_gemm_ptx(shape, tun(2, 2, 8, 8, 4)), std::invalid_argument);
}

TEST(PtxGemm, EmittedTextLooksLikeGemm) {
  GemmShape shape;
  shape.m = shape.n = shape.k = 16;
  const auto kernel = generate_gemm_ptx(shape, tun(2, 2, 8, 8, 4));
  const std::string text = ptx::emit(kernel);
  EXPECT_NE(text.find("fma.rn.f32"), std::string::npos);
  EXPECT_NE(text.find("bar.sync"), std::string::npos);
  EXPECT_NE(text.find("ld.shared.f32"), std::string::npos);
  EXPECT_NE(text.find("LOOP_K"), std::string::npos);
  EXPECT_NE(text.find(".shared"), std::string::npos);
}

TEST(PtxGemm, AtomicsOnlyWhenKgSplit) {
  GemmShape shape;
  shape.m = shape.n = 16;
  shape.k = 64;
  const auto plain = generate_gemm_ptx(shape, tun(2, 2, 8, 8, 4, 1, 1));
  const auto split = generate_gemm_ptx(shape, tun(2, 2, 8, 8, 4, 1, 2));
  EXPECT_EQ(ptx::emit(plain).find("red.global.add"), std::string::npos);
  EXPECT_NE(ptx::emit(split).find("red.global.add"), std::string::npos);
}

// The static analyzer's per-thread FMA count must agree with the dynamic
// count observed by the interpreter (for shapes where tiles divide evenly, so
// no predication-waste ambiguity).
TEST(PtxGemm, AnalyzerFmaCountMatchesInterpreter) {
  GemmShape shape;
  shape.m = 16;
  shape.n = 16;
  shape.k = 32;
  shape.trans_b = true;
  const GemmTuning t = tun(2, 2, 8, 16, 4);  // 32 threads: warp-aligned, legal

  const auto kernel = generate_gemm_ptx(shape, t);
  ptx::GlobalMemory mem;
  const auto pa = mem.alloc(static_cast<std::size_t>(shape.m * shape.k) * 4);
  const auto pb = mem.alloc(static_cast<std::size_t>(shape.n * shape.k) * 4);
  const auto pcaddr = mem.alloc(static_cast<std::size_t>(shape.m * shape.n) * 4);
  const auto r = ptx::run(kernel, gemm_launch_dims(shape, t),
                          gemm_params(shape, t, pa, pb, pcaddr), mem);
  ASSERT_TRUE(r.ok) << r.error;

  const auto profile = analyze(shape, t, gpusim::gtx980ti());
  const double threads_total =
      static_cast<double>(profile.grid_blocks) * profile.threads_per_block;
  const double dynamic_fma_per_thread =
      static_cast<double>(r.stats.fma_executed) / threads_total;
  EXPECT_NEAR(dynamic_fma_per_thread, profile.fma_insts, 1e-9);
}

TEST(PtxGemm, AnalyzerBarrierCountMatchesInterpreter) {
  GemmShape shape;
  shape.m = 16;
  shape.n = 16;
  shape.k = 32;
  const GemmTuning t = tun(2, 2, 8, 16, 4);  // 32 threads: warp-aligned, legal
  const auto kernel = generate_gemm_ptx(shape, t);
  ptx::GlobalMemory mem;
  const auto pa = mem.alloc(static_cast<std::size_t>(shape.m * shape.k) * 4);
  const auto pb = mem.alloc(static_cast<std::size_t>(shape.k * shape.n) * 4);
  const auto pcaddr = mem.alloc(static_cast<std::size_t>(shape.m * shape.n) * 4);
  const auto r = ptx::run(kernel, gemm_launch_dims(shape, t),
                          gemm_params(shape, t, pa, pb, pcaddr), mem);
  ASSERT_TRUE(r.ok) << r.error;

  const auto profile = analyze(shape, t, gpusim::gtx980ti());
  const double per_block_bars =
      static_cast<double>(r.stats.barriers) / static_cast<double>(profile.grid_blocks);
  EXPECT_NEAR(per_block_bars, profile.bar_syncs, 1e-9);
}

}  // namespace
}  // namespace isaac::codegen
