// Fault-injected hardening of the dispatch runtime (DESIGN.md, "Failure
// domains"): corrupt-cache quarantine, the fallback tier, the circuit
// breaker, measurement retry, refinement admission control and retry-then-
// drop, disk-write degradation with re-probe, retrain backoff, and the
// constructor-time option validation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "mlp/regressor.hpp"
#include "search/config.hpp"
#include "tuning/dataset.hpp"
#include "tuning/observation_log.hpp"

namespace isaac {
namespace {

namespace fp = isaac::failpoint;

/// Every test disarms what it armed, but a crashed expectation must not
/// poison the rest of the binary: sweep on fixture teardown too.
class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }
};

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& tag) {
    path = std::filesystem::temp_directory_path() /
           ("isaac_robust_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// A cheap synthetic-law model: dispatch quality is irrelevant to these
/// tests — only that predict/tune can rank with *a* model.
const mlp::Regressor& unit_model() {
  static const mlp::Regressor model = [] {
    tuning::Dataset data;
    Rng rng(7);
    for (std::size_t i = 0; i < 1200; ++i) {
      tuning::Sample s;
      s.x.assign(tuning::kNumFeatures, 1.0);
      for (std::size_t f = 0; f < 6; ++f) s.x[f] = std::exp(rng.uniform(0.0, 6.0));
      s.y = 50.0 * std::pow(s.x[0], 0.7) * std::pow(s.x[1], 0.4) / s.x[2];
      data.add(std::move(s));
    }
    mlp::TrainConfig cfg;
    cfg.net.hidden = {24, 16};
    cfg.epochs = 6;
    cfg.seed = 99;
    return mlp::train(data, cfg);
  }();
  return model;
}

codegen::GemmShape gemm_shape(std::int64_t m, std::int64_t n, std::int64_t k) {
  codegen::GemmShape s;
  s.m = m;
  s.n = n;
  s.k = k;
  return s;
}

core::ContextOptions fast_options() {
  core::ContextOptions opts;
  opts.search.budget = 6;
  opts.search.reeval_reps = 1;
  opts.search.retry_backoff_ms = 0.0;  // tests should not sleep between retries
  return opts;
}

}  // namespace

// ---- profile cache failure domain --------------------------------------

TEST_F(RobustnessTest, CacheLoadQuarantinesGarbageLines) {
  TempDir dir("garbage");
  const auto shape = gemm_shape(64, 64, 64);
  const auto& tuning = core::OperationTraits<core::GemmOp>::seed_grid().front();
  {
    core::ProfileCache cache(dir.path.string());
    cache.store<core::GemmOp>("devA", shape, tuning,
                              core::ProfileCache::provenance("model_topk", 10,
                                                             core::EntryTier::refined));
  }
  {
    // Foreign garbage, a torn tail, binary junk: every flavor of corruption
    // the append-only file accumulates in the field.
    std::ofstream os(dir.path / "isaac_profiles.txt", std::ios::app);
    os << "complete nonsense without tabs\n";
    os << "one\ttab-but-bad-schema\tno-pipe\textra\n";
    os << "\x01\x02\x03 binary junk\n";
    os << "torn|line|without|value";  // no trailing newline: a torn tail
  }
  core::ProfileCache reloaded(dir.path.string());
  EXPECT_EQ(reloaded.stats().load_corrupt, 4u);
  // The surviving entry is intact and served.
  const auto hit = reloaded.lookup<core::GemmOp>("devA", shape);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(core::OperationTraits<core::GemmOp>::encode_tuning(*hit),
            core::OperationTraits<core::GemmOp>::encode_tuning(tuning));
}

TEST_F(RobustnessTest, FallbackTierRoundTripsAndUpgrades) {
  core::ProfileCache cache;
  const auto shape = gemm_shape(32, 32, 32);
  const auto& grid = core::OperationTraits<core::GemmOp>::seed_grid();
  const std::string meta =
      core::ProfileCache::provenance("fallback", 0, core::EntryTier::fallback);
  EXPECT_NE(meta.find("tier=fallback"), std::string::npos);
  EXPECT_EQ(core::ProfileCache::tier_from_meta(meta), core::EntryTier::fallback);

  cache.store<core::GemmOp>("devA", shape, grid.front(), meta);
  core::EntryTier tier = core::EntryTier::refined;
  ASSERT_TRUE(cache.lookup<core::GemmOp>("devA", shape, &tier).has_value());
  EXPECT_EQ(tier, core::EntryTier::fallback);

  // Fallback sits at the bottom of the ladder: a refinement may replace it…
  EXPECT_TRUE(cache.upgrade<core::GemmOp>(
      "devA", shape, grid.back(),
      core::ProfileCache::provenance("model_topk", 10, core::EntryTier::refined)));
  ASSERT_TRUE(cache.lookup<core::GemmOp>("devA", shape, &tier).has_value());
  EXPECT_EQ(tier, core::EntryTier::refined);
  // …and nothing may demote the refined result back down.
  EXPECT_FALSE(cache.upgrade<core::GemmOp>(
      "devA", shape, grid.front(),
      core::ProfileCache::provenance("fallback", 0, core::EntryTier::fallback)));
}

TEST_F(RobustnessTest, CacheDiskDegradesAndReprobes) {
  TempDir dir("degrade");
  core::ProfileCache cache(dir.path.string());
  cache.set_disk_retry_ms(50.0);
  const auto& grid = core::OperationTraits<core::GemmOp>::seed_grid();

  fp::arm("cache.write_fail", "once");
  cache.store<core::GemmOp>("devA", gemm_shape(32, 32, 32), grid.front());
  EXPECT_TRUE(cache.disk_degraded());
  // Inside the retry window every append is served memory-only.
  cache.store<core::GemmOp>("devA", gemm_shape(48, 48, 48), grid.front());
  EXPECT_GE(cache.disk_writes_skipped(), 1u);
  EXPECT_TRUE(cache.disk_degraded());

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // The failpoint spent its one shot: the re-probe succeeds and disk writes
  // resume.
  cache.store<core::GemmOp>("devA", gemm_shape(64, 64, 64), grid.front());
  EXPECT_FALSE(cache.disk_degraded());

  // Memory never degraded — all three entries serve.
  EXPECT_TRUE(cache.lookup<core::GemmOp>("devA", gemm_shape(32, 32, 32)).has_value());
  EXPECT_TRUE(cache.lookup<core::GemmOp>("devA", gemm_shape(48, 48, 48)).has_value());
  // The disk lost the degraded-window lines but holds the post-recovery one.
  core::ProfileCache reloaded(dir.path.string());
  EXPECT_TRUE(reloaded.lookup<core::GemmOp>("devA", gemm_shape(64, 64, 64)).has_value());
  EXPECT_FALSE(reloaded.lookup<core::GemmOp>("devA", gemm_shape(32, 32, 32)).has_value());
}

TEST_F(RobustnessTest, ObservationLogDiskDegradesAndReprobes) {
  TempDir dir("obslog");
  tuning::ObservationLog log(64, dir.path.string());
  log.set_disk_retry_ms(50.0);
  tuning::Observation obs;
  obs.op = "gemm";
  obs.features.assign(tuning::kNumFeatures, 1.0);
  obs.measured_gflops = 100.0;
  obs.predicted_gflops = 90.0;

  fp::arm("obslog.write_fail", "once");
  log.append(obs);
  EXPECT_TRUE(log.disk_degraded());
  log.append(obs);
  EXPECT_GE(log.disk_writes_skipped(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  log.append(obs);
  EXPECT_FALSE(log.disk_degraded());
  // The ring kept everything regardless of the disk.
  EXPECT_EQ(log.size(), 3u);
}

// ---- circuit breaker state machine -------------------------------------

TEST_F(RobustnessTest, CircuitBreakerStateMachine) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown_ms = 40.0;
  CircuitBreaker breaker(cfg, "test");

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);  // 1 < threshold
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::open);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allow_request());  // cooling down

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(breaker.allow_request());   // the half-open trial
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::half_open);
  EXPECT_FALSE(breaker.allow_request());  // only one trial at a time
  breaker.record_failure();               // trial failed: re-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::open);
  EXPECT_EQ(breaker.opens(), 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(breaker.allow_request());
  breaker.record_success();               // trial passed: close + clear streak
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::closed);  // fresh streak
}

// ---- dispatch runtime under injected faults ----------------------------

TEST_F(RobustnessTest, TransientMeasureFailuresAreRetriedTransparently) {
  auto opts = fast_options();
  opts.two_tier = false;  // leader runs the measuring search on this thread
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(unit_model()));

  // Two transient device failures, then clean: the drive loop's bounded
  // retry (default measure_retries = 2) absorbs both without surfacing
  // anything to the caller or the breaker.
  fp::arm("measure.throw", "count:2");
  core::EntryTier tier = core::EntryTier::provisional;
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(gemm_shape(48, 32, 96), nullptr, &tier));
  EXPECT_EQ(tier, core::EntryTier::refined);
  EXPECT_EQ(ctx.fallbacks_served(), 0u);
  EXPECT_EQ(fp::fires("measure.throw"), 2u);
  EXPECT_EQ(ctx.breaker_state("gemm"), CircuitBreaker::State::closed);
}

TEST_F(RobustnessTest, LeaderFailureServesFallbackThenRefinesBack) {
  auto opts = fast_options();
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(unit_model()));

  const auto shape = gemm_shape(64, 48, 128);
  fp::arm("predict.throw", "once");
  core::EntryTier tier = core::EntryTier::refined;
  bool from_cache = true;
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(shape, &from_cache, &tier));
  EXPECT_FALSE(from_cache);
  EXPECT_EQ(tier, core::EntryTier::fallback);
  EXPECT_EQ(ctx.fallbacks_served(), 1u);
  // One failure < threshold: the breaker never opened.
  EXPECT_EQ(ctx.breaker_state("gemm"), CircuitBreaker::State::closed);

  // The catch path re-armed refinement; once the fault clears the entry
  // converges to refined without any caller doing anything special.
  fp::disarm_all();
  ctx.drain_background();
  ctx.select<core::GemmOp>(shape, &from_cache, &tier);
  EXPECT_TRUE(from_cache);
  EXPECT_EQ(tier, core::EntryTier::refined);
  EXPECT_GE(ctx.refinements(), 1u);
}

TEST_F(RobustnessTest, PersistentFailureOpensBreakerAndShortCircuits) {
  auto opts = fast_options();
  opts.two_tier = false;
  opts.search.measure_retries = 0;  // fail fast: the fault is persistent
  opts.fault.breaker_failure_threshold = 2;
  opts.fault.breaker_cooldown_ms = 60.0;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(unit_model()));

  fp::arm("measure.throw", "prob:1");
  core::EntryTier tier = core::EntryTier::refined;
  // Every select survives: fallback entries, never an exception.
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(gemm_shape(32, 32, 64), nullptr, &tier));
  EXPECT_EQ(tier, core::EntryTier::fallback);
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(gemm_shape(48, 32, 64), nullptr, &tier));
  EXPECT_EQ(ctx.breaker_state("gemm"), CircuitBreaker::State::open);
  // With the breaker open the leader doesn't even attempt the search.
  const auto fires_before = fp::fires("measure.throw");
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(gemm_shape(64, 32, 64), nullptr, &tier));
  EXPECT_EQ(tier, core::EntryTier::fallback);
  EXPECT_GE(ctx.breaker_short_circuits(), 1u);
  EXPECT_EQ(fp::fires("measure.throw"), fires_before);

  // Fault clears; after the cooldown the half-open trial succeeds and the
  // breaker re-closes — fresh shapes get real selections again.
  fp::disarm_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_NO_THROW(ctx.select<core::GemmOp>(gemm_shape(96, 32, 64), nullptr, &tier));
  EXPECT_EQ(tier, core::EntryTier::refined);
  EXPECT_EQ(ctx.breaker_state("gemm"), CircuitBreaker::State::closed);
}

TEST_F(RobustnessTest, RefinementAdmissionControlShedsThenConverges) {
  auto opts = fast_options();
  opts.fault.refine_max_pending = 1;
  opts.fault.refine_deadline_ms = 150.0;  // bounds the injected hang below
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(unit_model()));

  std::vector<codegen::GemmShape> shapes;
  for (std::int64_t m : {32, 48, 64, 96, 128, 160}) shapes.push_back(gemm_shape(m, 32, 64));

  // Every refinement wedges for the full deadline: the queue caps at one
  // pending task and the rest are shed (re-armed, not lost).
  fp::arm("refine.hang", "prob:1");
  for (const auto& shape : shapes) EXPECT_NO_THROW(ctx.select<core::GemmOp>(shape));
  EXPECT_GE(ctx.refinements_shed(), 1u);
  ctx.drain_background();
  EXPECT_EQ(ctx.refinements_pending(), 0u);
  // A hung refinement is a failure, not an open breaker: leaders were fine.
  EXPECT_EQ(ctx.breaker_state("gemm"), CircuitBreaker::State::closed);

  // Storm over: repeated hits re-arm refinement (shed keys and failed keys
  // alike) and the cache converges to all-refined.
  fp::disarm_all();
  bool all_refined = false;
  for (int round = 0; round < 20 && !all_refined; ++round) {
    all_refined = true;
    for (const auto& shape : shapes) {
      core::EntryTier tier = core::EntryTier::refined;
      ctx.select<core::GemmOp>(shape, nullptr, &tier);
      all_refined = all_refined && tier == core::EntryTier::refined;
    }
    ctx.drain_background();
  }
  EXPECT_TRUE(all_refined);
}

TEST_F(RobustnessTest, RetrainFailureBacksOffInsteadOfHotLooping) {
  auto opts = fast_options();
  opts.two_tier = false;
  opts.online.enabled = true;
  opts.online.retrain.min_observations = 4;
  opts.online.retrain.epochs = 2;
  opts.online.retrain.failure_backoff_ms = 10000.0;  // plainly observable
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(unit_model()));
  ctx.select<core::GemmOp>(gemm_shape(48, 32, 96));  // seed the log
  ctx.drain_background();

  fp::arm("retrain.throw", "prob:1");
  EXPECT_FALSE(ctx.retrain_now());  // the injected failure surfaces as false
  EXPECT_FALSE(ctx.retrain_in_flight());
  EXPECT_EQ(ctx.retrains(), 0u);
  // Scheduled retrains now refuse to enqueue until the backoff expires — the
  // trigger storm cannot hot-loop the worker.
  EXPECT_FALSE(ctx.request_retrain());
  fp::disarm_all();
  EXPECT_FALSE(ctx.request_retrain());  // still backing off, fault or not
}

// ---- construction-time validation --------------------------------------

TEST_F(RobustnessTest, SearchConfigValidateRejectsNonsense) {
  search::SearchConfig good;
  EXPECT_NO_THROW(good.validate());

  search::SearchConfig cfg;
  cfg.measure_retries = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.retry_backoff_ms = -0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.timeout_ms = std::nan("");
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.retry_backoff_cap_ms = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST_F(RobustnessTest, ContextOptionsValidateAtConstruction) {
  const auto device = gpusim::tesla_p100();

  core::ContextOptions opts;
  opts.search.measure_retries = -3;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.fault.breaker_failure_threshold = 0;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.fault.breaker_cooldown_ms = std::nan("");
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.online.log_capacity = 0;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.online.drift.threshold = -1.0;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.online.retrain.learning_rate = 0.0;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);

  opts = {};
  opts.noise_sigma = -0.1;
  EXPECT_THROW(core::Context ctx(device, opts), std::invalid_argument);
}

}  // namespace isaac
