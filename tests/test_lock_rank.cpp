// Lock-rank deadlock detector tests (src/common/lock_rank.hpp).
//
// The detector has two layers with different build gates:
//   - the hook machinery in lock_rank.cpp (thread-local held stacks, the
//     violation reporter, the handler slot) is ALWAYS compiled, so the
//     hook-level tests below run in every build type;
//   - the sync::Mutex wrappers only CALL the hooks when
//     ISAAC_LOCK_RANK_CHECKS is on (Debug, or -DISAAC_LOCK_RANK=ON). The
//     wrapper-level tests assert violations when the gate is on and assert
//     *silence* — the compile-out satellite — when it is off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "codegen/gemm_executor.hpp"
#include "common/lock_rank.hpp"
#include "common/thread_annotations.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "tuning/collector.hpp"

namespace isaac {
namespace {

using lock_rank::Rank;

// The violation handler is a plain function pointer, so the recorder state
// lives at namespace scope. Tests that install it are serial within the
// binary (gtest runs tests sequentially) and restore the previous handler.
std::atomic<int> g_violations{0};
std::string g_last_message;  // written only from the test thread's handler

void recording_handler(const char* message) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  g_last_message = message;
  // Returning (instead of aborting) lets the acquisition proceed: the
  // hammer test wants to count violations, not crash on the first one.
}

class RecordingHandler {
 public:
  RecordingHandler() : previous_(lock_rank::set_violation_handler(&recording_handler)) {
    g_violations.store(0, std::memory_order_relaxed);
    g_last_message.clear();
  }
  ~RecordingHandler() { lock_rank::set_violation_handler(previous_); }

 private:
  lock_rank::ViolationHandler previous_;
};

TEST(LockRank, RankNamesAndOrderingMatchTheDocumentedTable) {
  // The DESIGN.md table is outer > inner; spot-check the load-bearing edges.
  EXPECT_LT(static_cast<int>(Rank::cache_shard), static_cast<int>(Rank::inflight));
  EXPECT_LT(static_cast<int>(Rank::inflight), static_cast<int>(Rank::background));
  EXPECT_LT(static_cast<int>(Rank::telemetry_registry), static_cast<int>(Rank::cache_shard));
  EXPECT_LT(static_cast<int>(Rank::logging), static_cast<int>(Rank::failpoint_registry));
  EXPECT_LT(static_cast<int>(Rank::failpoint_registry), static_cast<int>(Rank::cache_shard));
  EXPECT_LT(static_cast<int>(Rank::breaker), static_cast<int>(Rank::breaker_map));
  EXPECT_LT(static_cast<int>(Rank::skeleton), static_cast<int>(Rank::inflight));
  EXPECT_STREQ(lock_rank::name(Rank::inflight), "inflight");
  EXPECT_STREQ(lock_rank::name(Rank::cache_shard), "cache_shard");
  EXPECT_STREQ(lock_rank::name(Rank::background), "background");
  EXPECT_STREQ(lock_rank::name(Rank::skeleton), "skeleton");
}

TEST(LockRank, HeaderGateAndLibraryAgree) {
  // The wrappers (header) and the hook library must see the same gate; a
  // mismatch would be an ODR hazard. checks_compiled_in() is constexpr from
  // the header macro, so this is really a build-system sanity check.
  EXPECT_EQ(lock_rank::checks_compiled_in(), static_cast<bool>(ISAAC_LOCK_RANK_CHECKS));
}

TEST(LockRank, DescendingAcquisitionIsSilent) {
  RecordingHandler guard;
  lock_rank::on_acquire(Rank::background);   // 60
  lock_rank::on_acquire(Rank::inflight);     // 50 < 60: fine
  lock_rank::on_acquire(Rank::cache_shard);  // 30 < 50: fine
  EXPECT_EQ(lock_rank::held_count(), 3u);
  lock_rank::on_release(Rank::cache_shard);
  lock_rank::on_release(Rank::inflight);
  lock_rank::on_release(Rank::background);
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(g_violations.load(), 0);
}

TEST(LockRank, AscendingAcquisitionReportsBothNames) {
  RecordingHandler guard;
  lock_rank::on_acquire(Rank::cache_shard);
  lock_rank::on_acquire(Rank::inflight);  // 50 >= 30 while holding 30: inversion
  EXPECT_EQ(g_violations.load(), 1);
  // The message names both the offending acquisition and the held stack, so
  // a single abort line is actionable without a debugger.
  EXPECT_NE(g_last_message.find("inflight"), std::string::npos) << g_last_message;
  EXPECT_NE(g_last_message.find("cache_shard"), std::string::npos) << g_last_message;
  EXPECT_NE(g_last_message.find("lock-rank violation"), std::string::npos) << g_last_message;
  lock_rank::on_release(Rank::inflight);
  lock_rank::on_release(Rank::cache_shard);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, EqualRankReacquisitionIsAViolation) {
  // Two distinct mutexes at the same rank must never nest (either order
  // deadlocks against a thread nesting them the other way).
  RecordingHandler guard;
  lock_rank::on_acquire(Rank::cache_shard);
  lock_rank::on_acquire(Rank::cache_shard);
  EXPECT_EQ(g_violations.load(), 1);
  lock_rank::on_release(Rank::cache_shard);
  lock_rank::on_release(Rank::cache_shard);
}

TEST(LockRank, TryAcquirePushesWithoutChecking) {
  // try_lock cannot deadlock (it never blocks), so an "ascending" try is
  // legal — but once held, it joins the stack and constrains what a later
  // *blocking* acquisition may take: strictly below the MINIMUM held rank.
  RecordingHandler guard;
  lock_rank::on_acquire(Rank::cache_shard);       // 30, blocking
  lock_rank::on_try_acquire(Rank::background);    // 60, try: silent by design
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_EQ(lock_rank::held_count(), 2u);
  lock_rank::on_acquire(Rank::pool);  // 20 < min(30, 60): fine
  EXPECT_EQ(g_violations.load(), 0);
  lock_rank::on_release(Rank::pool);
  lock_rank::on_acquire(Rank::obslog);  // 44 < 60 but >= 30: violation
  EXPECT_EQ(g_violations.load(), 1);
  lock_rank::on_release(Rank::obslog);
  lock_rank::on_release(Rank::background);
  lock_rank::on_release(Rank::cache_shard);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, OutOfOrderReleaseUnwindsCorrectly) {
  // Releases need not mirror acquisition order (manual unlock patterns);
  // the stack pops the innermost occurrence of the released rank.
  RecordingHandler guard;
  lock_rank::on_acquire(Rank::background);
  lock_rank::on_acquire(Rank::inflight);
  lock_rank::on_release(Rank::background);  // outer released first
  EXPECT_EQ(lock_rank::held_count(), 1u);
  lock_rank::on_acquire(Rank::cache_shard);  // 30 < 50 (only inflight held now)
  EXPECT_EQ(g_violations.load(), 0);
  lock_rank::on_release(Rank::cache_shard);
  lock_rank::on_release(Rank::inflight);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankDeathTest, DefaultHandlerAbortsWithBothStackNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // No handler installed: the default reporter prints to stderr and aborts.
  // This is the production (Debug build) behavior — a deadlock that would
  // have been timing-dependent becomes a deterministic one-line crash.
  EXPECT_DEATH(
      {
        lock_rank::on_acquire(Rank::cache_shard);
        lock_rank::on_acquire(Rank::inflight);
      },
      "lock-rank violation.*'inflight'.*cache_shard");
}

// ---------------------------------------------------------------------------
// Wrapper-level tests: sync::Mutex / sync::MutexLock / sync::CondVar call the
// hooks only when ISAAC_LOCK_RANK_CHECKS is on.

TEST(LockRankWrappers, CompiledOutBuildsAreCompletelySilent) {
  if (lock_rank::checks_compiled_in()) {
    GTEST_SKIP() << "rank checks are compiled in; the inversion tests below cover this build";
  }
  // The compile-out satellite: in Release (tier-1) builds the wrappers are
  // plain std::mutex — even a deliberate inversion reports nothing.
  RecordingHandler guard;
  sync::Mutex inner{Rank::cache_shard};
  sync::Mutex outer{Rank::inflight};
  {
    sync::MutexLock a(inner);
    sync::MutexLock b(outer);  // inverted on purpose
  }
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankWrappers, MutexLockInversionIsDetected) {
  if (!lock_rank::checks_compiled_in()) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandler guard;
  sync::Mutex inner{Rank::cache_shard};
  sync::Mutex outer{Rank::inflight};
  {
    sync::MutexLock a(outer);
    sync::MutexLock b(inner);  // correct order: outer (50) then inner (30)
  }
  EXPECT_EQ(g_violations.load(), 0);
  {
    sync::MutexLock a(inner);
    sync::MutexLock b(outer);  // seeded inversion
  }
  EXPECT_EQ(g_violations.load(), 1);
  EXPECT_NE(g_last_message.find("inflight"), std::string::npos) << g_last_message;
  EXPECT_NE(g_last_message.find("cache_shard"), std::string::npos) << g_last_message;
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankWrappers, SharedMutexReadersParticipate) {
  if (!lock_rank::checks_compiled_in()) GTEST_SKIP() << "rank checks compiled out";
  // Shared (reader) holds can block on writers, so they join deadlock
  // cycles and must obey the same ordering as exclusive holds.
  RecordingHandler guard;
  sync::SharedMutex shard{Rank::cache_shard};
  sync::Mutex inflight{Rank::inflight};
  {
    sync::ReaderMutexLock r(shard);
    sync::MutexLock m(inflight);  // 50 while holding shared 30: violation
  }
  EXPECT_EQ(g_violations.load(), 1);
  {
    sync::MutexLock m(inflight);
    sync::ReaderMutexLock r(shard);  // correct order
  }
  EXPECT_EQ(g_violations.load(), 1);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRankWrappers, CondVarWaitReleasesAndReacquiresTheRank) {
  if (!lock_rank::checks_compiled_in()) GTEST_SKIP() << "rank checks compiled out";
  RecordingHandler guard;
  sync::Mutex mu{Rank::pool};
  sync::CondVar cv;
  {
    sync::MutexLock lock(mu);
    EXPECT_EQ(lock_rank::held_count(), 1u);
    // wait_for pops the rank while blocked and re-pushes on wakeup; after a
    // timeout the stack must look exactly as before the wait.
    (void)cv.wait_for(mu, std::chrono::milliseconds(1));
    EXPECT_EQ(lock_rank::held_count(), 1u);
    sync::Mutex leaf_mu{Rank::leaf};
    sync::MutexLock inner(leaf_mu);  // 2 < 20: still fine after the wait
  }
  EXPECT_EQ(g_violations.load(), 0);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

// ---------------------------------------------------------------------------
// The integration hammer: the real runtime, all subsystems at once, must be
// rank-clean. Dispatch (inflight -> cache_shard -> telemetry), background
// refinement (pool workers, breakers, upgrade), and online retraining
// (obslog, drift, model swap) all run concurrently for several rounds.

const mlp::Regressor& hammer_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 1500;
    cfg.seed = 424242;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {48, 48};
    tc.epochs = 8;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

TEST(LockRankHammer, EightThreadDispatchRefineRetrainIsRankClean) {
  if (!lock_rank::checks_compiled_in()) {
    GTEST_SKIP() << "rank checks compiled out; run with -DISAAC_LOCK_RANK=ON or a Debug build";
  }
  RecordingHandler guard;

  core::ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 2;
  opts.search.max_candidates = 8000;
  opts.online.enabled = true;
  opts.online.drift.threshold = 1e9;  // retrains come from request_retrain below
  opts.online.retrain.min_observations = 8;
  opts.online.retrain.epochs = 2;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(hammer_model()));

  std::vector<codegen::GemmShape> shapes;
  for (const auto& [m, n, k] : {std::tuple{48, 32, 96}, std::tuple{64, 16, 128},
                               std::tuple{32, 48, 64}, std::tuple{96, 24, 80},
                               std::tuple{40, 40, 120}, std::tuple{56, 8, 144}}) {
    codegen::GemmShape s;
    s.m = m;
    s.n = n;
    s.k = k;
    shapes.push_back(s);
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 10;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      for (int it = 0; it < kItersPerThread; ++it) {
        const auto& shape = shapes[(t + it) % shapes.size()];
        const auto tuning = ctx.select<core::GemmOp>(shape);
        EXPECT_TRUE(codegen::validate(shape, tuning, ctx.device()));
        // A couple of threads also poke the retrain path so model swaps and
        // observation-log folds interleave with dispatch and refinement.
        if (t < 2 && it % 4 == 3) (void)ctx.request_retrain();
      }
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  ctx.drain_background();

  EXPECT_EQ(g_violations.load(), 0) << "first violation: " << g_last_message;
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

}  // namespace
}  // namespace isaac
