// Failpoint registry semantics: spec grammar, trigger modes, deterministic
// probabilistic sequences, and exactly-N behavior under concurrency. Sites
// used here are test-local names so arming them cannot perturb other suites
// (each test disarms what it armed anyway).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/failpoint.hpp"

namespace fp = isaac::failpoint;

namespace {

/// Evaluate `name` n times and return the fire decisions in hit order.
std::vector<bool> sequence(const std::string& name, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(fp::site(name).should_fire());
  return out;
}

}  // namespace

TEST(FailpointSpec, ParsesEveryMode) {
  EXPECT_EQ(fp::Spec::parse("off").mode, fp::Spec::Mode::off);

  const auto once = fp::Spec::parse("once");
  EXPECT_EQ(once.mode, fp::Spec::Mode::once);
  EXPECT_EQ(once.count, 1u);

  const auto count = fp::Spec::parse("count:7");
  EXPECT_EQ(count.mode, fp::Spec::Mode::count);
  EXPECT_EQ(count.count, 7u);

  const auto prob = fp::Spec::parse("prob:0.25");
  EXPECT_EQ(prob.mode, fp::Spec::Mode::prob);
  EXPECT_DOUBLE_EQ(prob.probability, 0.25);
  EXPECT_EQ(prob.seed, 0u);

  const auto seeded = fp::Spec::parse(" prob:1:42 ");  // whitespace tolerated
  EXPECT_EQ(seeded.mode, fp::Spec::Mode::prob);
  EXPECT_DOUBLE_EQ(seeded.probability, 1.0);
  EXPECT_EQ(seeded.seed, 42u);
}

TEST(FailpointSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(fp::Spec::parse(""), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("off:1"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("once:1"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("count"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("count:"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("count:x"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("count:-1"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("prob"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("prob:nope"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("prob:1.5"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("prob:-0.1"), std::invalid_argument);
  EXPECT_THROW(fp::Spec::parse("prob:0.5:seed"), std::invalid_argument);
  // The string arm overload goes through the same parser.
  EXPECT_THROW(fp::arm("test.badspec", "nope:1"), std::invalid_argument);
}

TEST(Failpoint, DisarmedSitesNeverFire) {
  const std::string name = "test.disarmed";
  for (const bool fired : sequence(name, 100)) EXPECT_FALSE(fired);
  EXPECT_EQ(fp::fires(name), 0u);
  // Disarmed evaluations do not consume hit indices: the armed sequence
  // below starts at index 0 regardless of the probes above.
  fp::arm(name, "once");
  EXPECT_TRUE(fp::site(name).should_fire());
  fp::disarm(name);
}

TEST(Failpoint, OnceFiresExactlyOnce) {
  const std::string name = "test.once";
  fp::arm(name, "once");
  const auto seq = sequence(name, 50);
  EXPECT_TRUE(seq.front());
  for (std::size_t i = 1; i < seq.size(); ++i) EXPECT_FALSE(seq[i]);
  EXPECT_EQ(fp::fires(name), 1u);
  fp::disarm(name);
}

TEST(Failpoint, CountFiresFirstNThenStops) {
  const std::string name = "test.count";
  fp::arm(name, "count:5");
  int fired = 0;
  for (const bool f : sequence(name, 40)) fired += f ? 1 : 0;
  EXPECT_EQ(fired, 5);
  // Re-arming restarts the sequence from hit index 0.
  fp::arm(name, "count:2");
  const auto seq = sequence(name, 10);
  EXPECT_TRUE(seq[0]);
  EXPECT_TRUE(seq[1]);
  for (std::size_t i = 2; i < seq.size(); ++i) EXPECT_FALSE(seq[i]);
  fp::disarm(name);
}

TEST(Failpoint, ProbabilisticSequenceIsDeterministic) {
  // Same spec + seed ⇒ the identical fire sequence across two arm cycles:
  // the per-hit decision is a pure function of (seed, hit index), not a
  // shared RNG stream.
  const std::string name = "test.prob.deterministic";
  fp::arm(name, "prob:0.3:1234");
  const auto first = sequence(name, 400);
  fp::arm(name, "prob:0.3:1234");
  const auto second = sequence(name, 400);
  EXPECT_EQ(first, second);

  // The sequence is non-trivial (some fires, some non-fires) and roughly
  // tracks p — loose bounds, this is a hash not a coin, but 400 draws at
  // p=0.3 landing outside [60, 180] would mean the decision hash is broken.
  int fired = 0;
  for (const bool f : first) fired += f ? 1 : 0;
  EXPECT_GT(fired, 60);
  EXPECT_LT(fired, 180);

  // A different seed draws a different sequence.
  fp::arm(name, "prob:0.3:99");
  EXPECT_NE(sequence(name, 400), first);
  fp::disarm(name);
}

TEST(Failpoint, ProbabilityEndpointsAreExact) {
  const std::string name = "test.prob.endpoints";
  fp::arm(name, "prob:1");
  for (const bool f : sequence(name, 50)) EXPECT_TRUE(f);
  fp::arm(name, "prob:0");
  for (const bool f : sequence(name, 50)) EXPECT_FALSE(f);
  fp::disarm(name);
}

TEST(Failpoint, ThrowMacroThrowsFailpointErrorWithSiteName) {
  fp::arm("test.macro.throw", "once");
  try {
    ISAAC_FAILPOINT("test.macro.throw");
    FAIL() << "armed failpoint did not throw";
  } catch (const fp::FailpointError& e) {
    EXPECT_EQ(e.name(), "test.macro.throw");
  }
  // Spent its one shot: the next pass is clean.
  EXPECT_NO_THROW(ISAAC_FAILPOINT("test.macro.throw"));
  fp::disarm("test.macro.throw");
}

TEST(Failpoint, ExpressionMacroReportsFires) {
  fp::arm("test.macro.fired", "count:2");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (ISAAC_FAILPOINT_FIRED("test.macro.fired")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  fp::disarm("test.macro.fired");
}

TEST(Failpoint, DisarmAllLeavesNothingArmed) {
  fp::arm("test.sweep.a", "once");
  fp::arm("test.sweep.b", "prob:1");
  EXPECT_TRUE(fp::any_armed());
  fp::disarm_all();
  EXPECT_FALSE(fp::site("test.sweep.a").should_fire());
  EXPECT_FALSE(fp::site("test.sweep.b").should_fire());
}

TEST(Failpoint, CountFiresExactlyNAcrossThreads) {
  // Hit indices are claimed with one fetch_add, so count:N fires exactly N
  // times no matter how many threads race the site. (This test is the
  // TSan-coverage entry point for the registry.)
  const std::string name = "test.count.mt";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  constexpr int kLimit = 64;
  fp::arm(name, "count:64");
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (fp::site(name).should_fire()) fired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(fired.load(), kLimit);
  EXPECT_EQ(fp::fires(name), static_cast<std::uint64_t>(kLimit));
  EXPECT_EQ(fp::hits(name), static_cast<std::uint64_t>(kThreads * kPerThread));
  fp::disarm(name);
}
