// Tests for the tuning module: search spaces, the categorical generative
// model (Dirichlet prior, acceptance behaviour — the machinery behind
// Table 1), datasets, and the data collector.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "tuning/collector.hpp"
#include "tuning/dataset.hpp"
#include "tuning/feature_batch.hpp"
#include "tuning/generative.hpp"
#include "tuning/search_space.hpp"

namespace isaac::tuning {
namespace {

// ----------------------------------------------------------- search space --
TEST(SearchSpace, GemmSizeIsDomainProduct) {
  const GemmSearchSpace space;
  std::size_t expect = 1;
  for (const auto& d : space.domains()) expect *= d.values.size();
  EXPECT_EQ(space.size(), expect);
  EXPECT_EQ(space.num_parameters(), 9u);
}

TEST(SearchSpace, Cap16RestrictsDomains) {
  const GemmSearchSpace space(/*cap16=*/true);
  for (const auto& d : space.domains()) {
    for (int v : d.values) {
      EXPECT_GE(v, 1);
      EXPECT_LE(v, 16);
    }
  }
  EXPECT_LT(space.size(), GemmSearchSpace(false).size());
}

TEST(SearchSpace, DecodeRoundTrip) {
  const GemmSearchSpace space;
  std::vector<std::size_t> choice(space.num_parameters(), 0);
  const auto t = space.decode(choice);
  EXPECT_EQ(t.ms, codegen::GemmTuning::candidates_ms().front());
  EXPECT_EQ(t.kg, codegen::GemmTuning::candidates_kg().front());
  EXPECT_THROW(space.decode({0, 1}), std::invalid_argument);
}

TEST(SearchSpace, UniformSamplesWithinDomains) {
  const GemmSearchSpace space;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::size_t> choice;
    const auto t = space.sample_uniform(rng, &choice);
    ASSERT_EQ(choice.size(), space.num_parameters());
    for (std::size_t d = 0; d < choice.size(); ++d) {
      EXPECT_LT(choice[d], space.domains()[d].values.size());
    }
    EXPECT_GT(t.ms, 0);
  }
}

TEST(SearchSpace, ForEachVisitsEveryPointOnce) {
  // Cap to 16 keeps the space enumerable in-test.
  const ConvSearchSpace capped(true);
  // Count a small prefix space instead: restrict by early stop.
  std::size_t count = 0;
  const std::size_t limit = 100000;
  capped.for_each([&](const codegen::ConvTuning&) { return ++count < limit; });
  EXPECT_EQ(count, std::min(capped.size(), limit));
}

TEST(SearchSpace, BatchedGemmPinsGlobalSplit) {
  const BatchedGemmSearchSpace space;
  ASSERT_EQ(space.num_parameters(), GemmSearchSpace().num_parameters());
  for (const auto& d : space.domains()) {
    if (d.name == "kg") {
      EXPECT_EQ(d.values, std::vector<int>{1});
    }
  }
  EXPECT_EQ(space.size() * codegen::GemmTuning::candidates_kg().size(),
            GemmSearchSpace().size());
}

TEST(SearchSpace, GemmForEachMatchesSize) {
  GemmSearchSpace space(true);
  std::size_t count = 0;
  space.for_each([&](const codegen::GemmTuning&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, space.size());
}

// -------------------------------------------------------- generative model --
TEST(Generative, PriorMakesDistributionUniform) {
  const GemmSearchSpace space;
  CategoricalModel model(space.domains(), 100.0);
  // Without fitting, every value of a parameter is equally likely.
  const auto& d0 = space.domains()[0];
  for (std::size_t v = 0; v < d0.values.size(); ++v) {
    EXPECT_NEAR(model.probability(0, v), 1.0 / static_cast<double>(d0.values.size()), 1e-12);
  }
}

TEST(Generative, ProbabilitiesSumToOne) {
  const GemmSearchSpace space;
  CategoricalModel model(space.domains(), 100.0);
  Rng rng(1);
  model.fit([](const std::vector<std::size_t>& c) { return c[0] % 2 == 0; }, 2000, rng);
  for (std::size_t p = 0; p < space.num_parameters(); ++p) {
    double total = 0.0;
    for (std::size_t v = 0; v < space.domains()[p].values.size(); ++v) {
      total += model.probability(p, v);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Generative, FitShiftsMassTowardAcceptedValues) {
  const GemmSearchSpace space;
  CategoricalModel model(space.domains(), 10.0);  // weak prior to see the shift
  Rng rng(2);
  // Accept only when parameter 0 takes its first value.
  model.fit([](const std::vector<std::size_t>& c) { return c[0] == 0; }, 5000, rng);
  EXPECT_GT(model.probability(0, 0), model.probability(0, 1) * 2.0);
}

TEST(Generative, DirichletPriorKeepsAllValuesReachable) {
  const GemmSearchSpace space;
  CategoricalModel model(space.domains(), 100.0);
  Rng rng(3);
  model.fit([](const std::vector<std::size_t>& c) { return c[0] == 0; }, 5000, rng);
  // Even the "never accepted" values keep non-zero probability (paper: "we
  // never really want any such probability to be exactly zero").
  for (std::size_t v = 0; v < space.domains()[0].values.size(); ++v) {
    EXPECT_GT(model.probability(0, v), 0.0);
  }
}

TEST(Generative, ModelBeatsUniformOnRealLegality) {
  // The headline property behind Table 1: after fitting, categorical
  // sampling accepts at a much higher rate than uniform sampling.
  const auto& dev = gpusim::gtx980ti();
  codegen::GemmShape shape;
  shape.m = shape.n = 1024;
  shape.k = 4096;

  const GemmSearchSpace space;
  const auto legal = [&](const std::vector<std::size_t>& c) {
    return codegen::validate(shape, space.decode(c), dev);
  };

  CategoricalModel model(space.domains(), 100.0);
  Rng rng(11);
  // The probing run must be long enough to overcome the α = 100 prior.
  const auto uniform_stats = model.fit(legal, 30000, rng);

  AcceptanceStats cat_stats;
  std::vector<std::size_t> out;
  for (int i = 0; i < 3000; ++i) {
    model.sample_legal(legal, rng, out, cat_stats, 1);
  }
  EXPECT_GT(cat_stats.rate(), uniform_stats.rate() * 3.0)
      << "categorical " << cat_stats.rate() << " vs uniform " << uniform_stats.rate();
}

TEST(Generative, SampleLegalRespectsAttemptCap) {
  const GemmSearchSpace space;
  CategoricalModel model(space.domains(), 100.0);
  Rng rng(4);
  std::vector<std::size_t> out;
  AcceptanceStats stats;
  const bool ok = model.sample_legal([](const std::vector<std::size_t>&) { return false; }, rng,
                                     out, stats, 50);
  EXPECT_FALSE(ok);
  EXPECT_EQ(stats.attempted, 50u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(Generative, InvalidConstructionThrows) {
  const GemmSearchSpace space;
  EXPECT_THROW(CategoricalModel(space.domains(), 0.0), std::invalid_argument);
  EXPECT_THROW(CategoricalModel({ParameterDomain{"empty", {}}}, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------------ dataset --
TEST(Dataset, FeatureEncodingArityAndPositivity) {
  codegen::GemmShape s;
  s.m = 2560;
  s.n = 16;
  s.k = 2560;
  s.trans_a = true;
  const auto f = features(s, codegen::GemmTuning{});
  EXPECT_EQ(f.size(), kNumFeatures);
  for (double v : f) EXPECT_GE(v, 1.0);  // log-safe by construction
  EXPECT_DOUBLE_EQ(f[0], 2560.0);
  EXPECT_DOUBLE_EQ(f[4], 2.0);  // trans_a encoded as 2
  EXPECT_DOUBLE_EQ(f[5], 1.0);
}

TEST(Dataset, FeaturesIntoMatchesAllocatingFeatures) {
  codegen::GemmShape s;
  s.m = 896;
  s.n = 128;
  s.k = 1024;
  s.trans_b = true;
  codegen::GemmTuning t;
  t.ms = 8;
  t.kg = 4;
  const auto legacy = features(s, t);
  double flat[kNumFeatures];
  features_into(s, t, flat);
  for (std::size_t i = 0; i < kNumFeatures; ++i) EXPECT_DOUBLE_EQ(flat[i], legacy[i]) << i;

  const auto cs = codegen::ConvShape::from_npq(8, 14, 14, 128, 64, 3, 3);
  const auto clegacy = features(cs, codegen::ConvTuning{});
  features_into(cs, codegen::ConvTuning{}, flat);
  for (std::size_t i = 0; i < kNumFeatures; ++i) EXPECT_DOUBLE_EQ(flat[i], clegacy[i]) << i;
}

TEST(FeatureBatch, AppendResetAndCapacityReuse) {
  FeatureBatch batch(3);
  EXPECT_TRUE(batch.empty());
  double* r0 = batch.append_row();
  r0[0] = 1.0;
  r0[1] = 2.0;
  r0[2] = 3.0;
  double* r1 = batch.append_row();
  r1[2] = 9.0;
  EXPECT_EQ(batch.rows(), 2u);
  EXPECT_EQ(batch.arity(), 3u);
  EXPECT_DOUBLE_EQ(batch.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(batch.row(1)[2], 9.0);
  EXPECT_DOUBLE_EQ(batch.row(1)[0], 0.0);  // appended rows start zeroed

  const double* storage = batch.data();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.arity(), 3u);
  batch.resize(2);
  EXPECT_EQ(batch.data(), storage);  // shrink/regrow reuses capacity
  EXPECT_EQ(batch.rows(), 2u);

  batch.reset(5, 4);
  EXPECT_EQ(batch.arity(), 5u);
  EXPECT_EQ(batch.rows(), 4u);
  EXPECT_THROW(batch.reset(0), std::invalid_argument);
}

TEST(Dataset, ConvFeaturesUseImplicitGemm) {
  const auto s = codegen::ConvShape::from_npq(16, 7, 7, 512, 512, 3, 3);
  const auto f = features(s, codegen::ConvTuning{});
  EXPECT_DOUBLE_EQ(f[0], static_cast<double>(s.npq()));
  EXPECT_DOUBLE_EQ(f[1], 512.0);
  EXPECT_DOUBLE_EQ(f[2], static_cast<double>(s.crs()));
}

TEST(Dataset, BatchedGemmFeaturesFlattenBatchIntoN) {
  codegen::BatchedGemmShape s;
  s.batch = 32;
  s.gemm.m = 64;
  s.gemm.n = 16;
  s.gemm.k = 256;
  const auto f = features(s, codegen::GemmTuning{});
  EXPECT_EQ(f.size(), kNumFeatures);
  EXPECT_DOUBLE_EQ(f[0], 64.0);
  EXPECT_DOUBLE_EQ(f[1], 32.0 * 16.0);
  EXPECT_DOUBLE_EQ(f[2], 256.0);
}

TEST(Dataset, AddValidatesArity) {
  Dataset d;
  Sample s;
  s.x = {1.0, 2.0};
  EXPECT_THROW(d.add(s), std::invalid_argument);
}

TEST(Dataset, SplitAndTake) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Sample s;
    s.x.assign(kNumFeatures, static_cast<double>(i + 1));
    s.y = i;
    d.add(s);
  }
  const auto [head, tail] = d.split(3);
  EXPECT_EQ(head.size(), 3u);
  EXPECT_EQ(tail.size(), 7u);
  EXPECT_EQ(d.take(4).size(), 4u);
  EXPECT_EQ(d.take(100).size(), 10u);
  EXPECT_THROW(d.split(11), std::invalid_argument);
}

TEST(Dataset, CsvRoundTrip) {
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.x.assign(kNumFeatures, 1.5 * (i + 1));
    s.y = 100.0 + i;
    d.add(s);
  }
  std::stringstream ss;
  d.save_csv(ss);
  const Dataset back = Dataset::load_csv(ss);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].y, d[i].y);
    EXPECT_DOUBLE_EQ(back[i].x[3], d[i].x[3]);
  }
}

namespace {

// One valid CSV body (header + single row) to perturb in the hardening tests.
std::string valid_csv_text() {
  Dataset d;
  Sample s;
  s.x.assign(kNumFeatures, 2.0);
  s.y = 123.0;
  d.add(s);
  std::stringstream ss;
  d.save_csv(ss);
  return ss.str();
}

std::string load_csv_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    Dataset::load_csv(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

}  // namespace

TEST(Dataset, LoadCsvRejectsTruncatedRowWithLineNumber) {
  // Drop the last two fields of the data row (line 2).
  std::string text = valid_csv_text();
  std::stringstream in(text);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  row = row.substr(0, row.rfind(',', row.rfind(',') - 1));
  const std::string err = load_csv_error(header + "\n" + row + "\n");
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
  EXPECT_NE(err.find("expected 16"), std::string::npos) << err;
  EXPECT_NE(err.find("got 14"), std::string::npos) << err;
}

TEST(Dataset, LoadCsvRejectsJunkTokenWithPosition) {
  // std::stod would have parsed "12x4" as 12; from_chars must reject it and
  // say where it sits.
  std::string text = valid_csv_text();
  const std::size_t pos = text.find("2,", text.find('\n'));  // first data field
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 1, "12x4");
  const std::string err = load_csv_error(text);
  EXPECT_NE(err.find("'12x4' is not a number"), std::string::npos) << err;
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Dataset, LoadCsvRejectsEmptyField) {
  std::string header = valid_csv_text().substr(0, valid_csv_text().find('\n') + 1);
  std::string row;
  for (std::size_t i = 0; i < kNumFeatures; ++i) row += "1,";
  row += "\n";  // empty y field
  const std::string err = load_csv_error(header + row);
  EXPECT_NE(err.find("empty field"), std::string::npos) << err;
  EXPECT_NE(err.find("column 16"), std::string::npos) << err;
}

TEST(Dataset, LoadCsvRejectsNonFiniteValue) {
  std::string text = valid_csv_text();
  const std::size_t pos = text.find("123");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, "inf");
  const std::string err = load_csv_error(text);
  EXPECT_NE(err.find("non-finite value 'inf'"), std::string::npos) << err;
}

TEST(Dataset, LoadCsvSkipsBlankLinesAndKeepsLineNumbersHonest) {
  // A blank line between rows is ignored, but the error for a later bad row
  // still reports its real (file) line number.
  const std::string text = valid_csv_text();
  const std::string header = text.substr(0, text.find('\n') + 1);
  const std::string row = text.substr(text.find('\n') + 1);
  const std::string err = load_csv_error(header + "\n" + row + "junk\n");
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;
}

TEST(Dataset, ShuffleIsSeedDeterministic) {
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    Sample s;
    s.x.assign(kNumFeatures, static_cast<double>(i));
    s.y = i;
    d.add(s);
  }
  Dataset d2 = d;
  Rng r1(7), r2(7);
  d.shuffle(r1);
  d2.shuffle(r2);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_DOUBLE_EQ(d[i].y, d2[i].y);
}

// ---------------------------------------------------------------- collector --
TEST(Collector, ProducesRequestedSamples) {
  gpusim::Simulator sim(gpusim::gtx980ti(), 0.03, 99);
  CollectorConfig cfg;
  cfg.num_samples = 300;
  cfg.probe_samples = 30000;
  cfg.seed = 42;
  const auto report = collect_gemm(sim, cfg);
  EXPECT_GE(report.dataset.size(), 280u);  // a few rejection timeouts allowed
  EXPECT_GT(report.generation.rate(), report.probe.rate());
  for (const auto& s : report.dataset.samples()) {
    EXPECT_GT(s.y, 0.0);             // positive GFLOPS
    EXPECT_LT(s.y, 25000.0);         // below any sane peak
    for (double v : s.x) EXPECT_GE(v, 1.0);
  }
}

TEST(Collector, DeterministicAcrossRuns) {
  gpusim::Simulator sim(gpusim::gtx980ti(), 0.03, 99);
  CollectorConfig cfg;
  cfg.num_samples = 100;
  cfg.probe_samples = 5000;
  cfg.seed = 7;
  const auto r1 = collect_gemm(sim, cfg);
  const auto r2 = collect_gemm(sim, cfg);
  ASSERT_EQ(r1.dataset.size(), r2.dataset.size());
  for (std::size_t i = 0; i < r1.dataset.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.dataset[i].y, r2.dataset[i].y);
  }
}

TEST(Collector, ConvCollectionWorks) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 5);
  CollectorConfig cfg;
  cfg.num_samples = 150;
  cfg.probe_samples = 20000;
  const auto report = collect_conv(sim, cfg);
  EXPECT_GE(report.dataset.size(), 120u);
  for (const auto& s : report.dataset.samples()) EXPECT_GT(s.y, 0.0);
}

TEST(Collector, BatchedGemmCollectionWorks) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 5);
  CollectorConfig cfg;
  cfg.num_samples = 150;
  cfg.probe_samples = 20000;
  const auto report = collect_batched_gemm(sim, cfg);
  EXPECT_GE(report.dataset.size(), 120u);
  for (const auto& s : report.dataset.samples()) EXPECT_GT(s.y, 0.0);
}

TEST(Collector, ShapeDistributionInBounds) {
  CollectorConfig cfg;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const auto s = random_gemm_shape(cfg, rng);
    EXPECT_GE(s.m, cfg.min_mn);
    EXPECT_LE(s.m, cfg.max_mn);
    EXPECT_GE(s.k, cfg.min_k);
    EXPECT_LE(s.k, cfg.max_k);
  }
}

}  // namespace
}  // namespace isaac::tuning
