// Unit + property tests for the CPU BLAS substrate.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace isaac::linalg {
namespace {

// ----------------------------------------------------------------- matrix --
TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 6.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
}

TEST(Matrix, NormOfUnitVector) {
  Matrix m{{3}, {4}};
  EXPECT_NEAR(m.norm(), 5.0, 1e-6);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1, 5}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
  Matrix c(3, 1);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), std::invalid_argument);
}

// ------------------------------------------------------------------- gemm --
struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmMatchesReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesReference, BlockedEqualsNaive) {
  const GemmCase& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.m * 131 + c.n * 17 + c.k));
  Matrix a(c.ta == Trans::No ? c.m : c.k, c.ta == Trans::No ? c.k : c.m);
  Matrix b(c.tb == Trans::No ? c.k : c.n, c.tb == Trans::No ? c.n : c.k);
  a.randomize_uniform(rng, -1.0f, 1.0f);
  b.randomize_uniform(rng, -1.0f, 1.0f);
  Matrix c_blocked(c.m, c.n);
  c_blocked.randomize_uniform(rng, -1.0f, 1.0f);
  Matrix c_ref = c_blocked;

  gemm(c.ta, c.tb, c.alpha, a, b, c.beta, c_blocked);
  gemm_reference(c.ta, c.tb, c.alpha, a, b, c.beta, c_ref);

  const double tol = 1e-3 * static_cast<double>(c.k + 1);
  EXPECT_LT(Matrix::max_abs_diff(c_blocked, c_ref), tol)
      << "m=" << c.m << " n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndLayouts, GemmMatchesReference,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{5, 7, 3, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Trans::No, Trans::No, 1.0f, 1.0f},
        GemmCase{33, 65, 17, Trans::No, Trans::No, 2.0f, 0.5f},
        GemmCase{64, 1, 128, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{1, 64, 128, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::Yes, Trans::No, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::No, Trans::Yes, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::Yes, Trans::Yes, 1.0f, 0.0f},
        GemmCase{37, 41, 53, Trans::Yes, Trans::Yes, -1.5f, 2.0f},
        GemmCase{128, 96, 64, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{100, 100, 1, Trans::No, Trans::No, 1.0f, 0.0f}));

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c), std::invalid_argument);
}

TEST(Gemm, CShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 5), c(3, 5);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c), std::invalid_argument);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  Matrix a(2, 3), b(3, 2);
  Matrix c{{1, 2}, {3, 4}};
  a.fill(7.0f);
  b.fill(9.0f);
  gemm(Trans::No, Trans::No, 0.0f, a, b, 2.0f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 8.0f);
}

TEST(Gemm, KZeroActsAsScale) {
  Matrix a(2, 0), b(0, 2);
  Matrix c{{1, 2}, {3, 4}};
  gemm(Trans::No, Trans::No, 1.0f, a, b, 3.0f, c);
  EXPECT_FLOAT_EQ(c(0, 1), 6.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(99);
  Matrix a(8, 8);
  a.randomize_normal(rng, 0.0f, 1.0f);
  Matrix eye(8, 8);
  for (std::size_t i = 0; i < 8; ++i) eye(i, i) = 1.0f;
  Matrix c(8, 8);
  gemm(Trans::No, Trans::No, 1.0f, a, eye, 0.0f, c);
  EXPECT_LT(Matrix::max_abs_diff(a, c), 1e-6);
}

// Property: (A*B)^T == B^T * A^T, checked via the transpose flags.
TEST(Gemm, TransposeIdentityProperty) {
  Rng rng(123);
  Matrix a(13, 9), b(9, 21);
  a.randomize_uniform(rng, -1, 1);
  b.randomize_uniform(rng, -1, 1);
  Matrix ab(13, 21);
  gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, ab);
  // C2 = op(B,T) * op(A,T) with operand matrices swapped = (A*B)^T.
  Matrix c2(21, 13);
  gemm(Trans::Yes, Trans::Yes, 1.0f, b, a, 0.0f, c2);
  EXPECT_LT(Matrix::max_abs_diff(ab.transposed(), c2), 1e-4);
}

// ------------------------------------------------------------------- gemv --
TEST(Gemv, MatchesGemm) {
  Rng rng(7);
  Matrix a(6, 4), x(4, 1), y(6, 1), y2(6, 1);
  a.randomize_uniform(rng, -1, 1);
  x.randomize_uniform(rng, -1, 1);
  gemv(Trans::No, 1.0f, a, x, 0.0f, y);
  gemm_reference(Trans::No, Trans::No, 1.0f, a, x, 0.0f, y2);
  EXPECT_LT(Matrix::max_abs_diff(y, y2), 1e-5);
}

TEST(Gemv, RejectsNonVectors) {
  Matrix a(3, 3), x(3, 2), y(3, 1);
  EXPECT_THROW(gemv(Trans::No, 1.0f, a, x, 0.0f, y), std::invalid_argument);
}

// --------------------------------------------------------------- elementwise
TEST(Axpy, Accumulates) {
  Matrix x{{1, 2}}, y{{10, 20}};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 10.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 21.0f);
}

TEST(Axpy, ShapeMismatchThrows) {
  Matrix x(1, 2), y(2, 1);
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Scale, Scales) {
  Matrix x{{2, 4}};
  scale(0.25f, x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.5f);
}

TEST(ColSums, SumsColumns) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix s = col_sums(a);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_FLOAT_EQ(s(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 12.0f);
}

TEST(AddRowVector, Broadcasts) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix r{{10, 20}};
  add_row_vector(a, r);
  EXPECT_FLOAT_EQ(a(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 24.0f);
}

TEST(AddRowVector, ShapeMismatchThrows) {
  Matrix a(2, 2), r(1, 3);
  EXPECT_THROW(add_row_vector(a, r), std::invalid_argument);
}

}  // namespace
}  // namespace isaac::linalg
