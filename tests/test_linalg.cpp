// Unit + property tests for the CPU BLAS substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace isaac::linalg {
namespace {

// ----------------------------------------------------------------- matrix --
TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 6.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
}

TEST(Matrix, NormOfUnitVector) {
  Matrix m{{3}, {4}};
  EXPECT_NEAR(m.norm(), 5.0, 1e-6);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}}, b{{1, 5}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
  Matrix c(3, 1);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), std::invalid_argument);
}

// ------------------------------------------------------------------- gemm --
struct GemmCase {
  std::size_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmMatchesReference : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmMatchesReference, BlockedEqualsNaive) {
  const GemmCase& c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.m * 131 + c.n * 17 + c.k));
  Matrix a(c.ta == Trans::No ? c.m : c.k, c.ta == Trans::No ? c.k : c.m);
  Matrix b(c.tb == Trans::No ? c.k : c.n, c.tb == Trans::No ? c.n : c.k);
  a.randomize_uniform(rng, -1.0f, 1.0f);
  b.randomize_uniform(rng, -1.0f, 1.0f);
  Matrix c_blocked(c.m, c.n);
  c_blocked.randomize_uniform(rng, -1.0f, 1.0f);
  Matrix c_ref = c_blocked;

  gemm(c.ta, c.tb, c.alpha, a, b, c.beta, c_blocked);
  gemm_reference(c.ta, c.tb, c.alpha, a, b, c.beta, c_ref);

  const double tol = 1e-3 * static_cast<double>(c.k + 1);
  EXPECT_LT(Matrix::max_abs_diff(c_blocked, c_ref), tol)
      << "m=" << c.m << " n=" << c.n << " k=" << c.k;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndLayouts, GemmMatchesReference,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{5, 7, 3, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Trans::No, Trans::No, 1.0f, 1.0f},
        GemmCase{33, 65, 17, Trans::No, Trans::No, 2.0f, 0.5f},
        GemmCase{64, 1, 128, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{1, 64, 128, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::Yes, Trans::No, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::No, Trans::Yes, 1.0f, 0.0f},
        GemmCase{20, 30, 40, Trans::Yes, Trans::Yes, 1.0f, 0.0f},
        GemmCase{37, 41, 53, Trans::Yes, Trans::Yes, -1.5f, 2.0f},
        GemmCase{128, 96, 64, Trans::No, Trans::No, 1.0f, 0.0f},
        GemmCase{100, 100, 1, Trans::No, Trans::No, 1.0f, 0.0f}));

// Exhaustive parity grid for the register-blocked kernel: every combination
// of odd/even/panel-straddling extents, both transposes, and the alpha/beta
// corner values, against the double-accumulating reference within 1e-4.
TEST(Gemm, ParityGridAgainstReference) {
  const std::size_t extents[] = {1, 3, 8, 17, 64, 129};
  const float coeffs[] = {0.0f, 1.0f, 0.5f};
  Rng rng(2024);
  for (const std::size_t m : extents) {
    for (const std::size_t n : extents) {
      for (const std::size_t k : extents) {
        for (const Trans ta : {Trans::No, Trans::Yes}) {
          for (const Trans tb : {Trans::No, Trans::Yes}) {
            Matrix a(ta == Trans::No ? m : k, ta == Trans::No ? k : m);
            Matrix b(tb == Trans::No ? k : n, tb == Trans::No ? n : k);
            a.randomize_uniform(rng, -1.0f, 1.0f);
            b.randomize_uniform(rng, -1.0f, 1.0f);
            Matrix c0(m, n);
            c0.randomize_uniform(rng, -1.0f, 1.0f);
            for (const float alpha : coeffs) {
              for (const float beta : coeffs) {
                Matrix c_blocked = c0, c_ref = c0;
                gemm(ta, tb, alpha, a, b, beta, c_blocked);
                gemm_reference(ta, tb, alpha, a, b, beta, c_ref);
                ASSERT_LT(Matrix::max_abs_diff(c_blocked, c_ref), 1e-4)
                    << "m=" << m << " n=" << n << " k=" << k << " ta=" << (ta == Trans::Yes)
                    << " tb=" << (tb == Trans::Yes) << " alpha=" << alpha << " beta=" << beta;
              }
            }
          }
        }
      }
    }
  }
}

// The serial entry point must be bit-identical to the threaded one across
// every internal dispatch path (tile kernel, small-n dots, tiny-m rows):
// chunked scoring leans on this to stay independent of thread count.
TEST(Gemm, SerialMatchesThreadedBitExact) {
  struct Case {
    std::size_t m, n, k;
  };
  // Covers: tile path (64×64), small-n dot path (n ≤ 4), tiny-m path
  // (m ≤ 4), and panel-straddling edges.
  for (const Case c : {Case{64, 64, 64}, Case{300, 17, 33}, Case{129, 1, 64}, Case{2000, 3, 15},
                       Case{2, 64, 15}, Case{37, 19, 129}}) {
    Rng rng(static_cast<std::uint64_t>(c.m * 7 + c.n * 3 + c.k));
    Matrix a(c.m, c.k), b(c.k, c.n);
    a.randomize_uniform(rng, -1.0f, 1.0f);
    b.randomize_uniform(rng, -1.0f, 1.0f);
    Matrix c_par(c.m, c.n, 0.25f), c_ser(c.m, c.n, 0.25f);
    gemm(Trans::No, Trans::No, 1.5f, a, b, 0.5f, c_par);
    gemm_serial(Trans::No, Trans::No, 1.5f, a, b, 0.5f, c_ser);
    for (std::size_t i = 0; i < c_par.size(); ++i) {
      ASSERT_EQ(c_par.data()[i], c_ser.data()[i])
          << "m=" << c.m << " n=" << c.n << " k=" << c.k << " at " << i;
    }
  }
}

// A zero in A multiplied with Inf/NaN in B must produce NaN (0·Inf = NaN in
// IEEE 754), exactly like the reference. The old kernel's `if (av == 0.0f)
// continue;` skip silently produced finite values here.
TEST(Gemm, NonFiniteOperandsPropagateLikeReference) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
  const std::size_t m = 9, n = 21, k = 6;
  Rng rng(77);
  Matrix a(m, k), b(k, n);
  a.randomize_uniform(rng, -1.0f, 1.0f);
  b.randomize_uniform(rng, -1.0f, 1.0f);
  // Row 2 of A is all zeros; rows 1/4 of B carry non-finite columns.
  for (std::size_t x = 0; x < k; ++x) a(2, x) = 0.0f;
  b(1, 5) = kInf;
  b(4, 7) = kNaN;
  b(1, n - 1) = -kInf;

  Matrix c_blocked(m, n, 0.0f), c_ref(m, n, 0.0f);
  gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c_blocked);
  gemm_reference(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c_ref);

  std::size_t nan_cells = 0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(std::isnan(c_blocked(i, j)), std::isnan(c_ref(i, j))) << i << "," << j;
      ASSERT_EQ(std::isinf(c_blocked(i, j)), std::isinf(c_ref(i, j))) << i << "," << j;
      if (std::isnan(c_blocked(i, j))) ++nan_cells;
    }
  }
  // The zero row times the Inf columns is where the old skip diverged: those
  // cells must be NaN, not 0.
  EXPECT_TRUE(std::isnan(c_blocked(2, 5)));
  EXPECT_TRUE(std::isnan(c_blocked(2, 7)));
  EXPECT_TRUE(std::isnan(c_blocked(2, n - 1)));
  EXPECT_GE(nan_cells, 3u * 1u);
}

TEST(Matrix, ReshapeKeepsCapacityAndRedimensions) {
  Matrix m(4, 8, 1.0f);
  const float* before = m.data();
  m.reshape(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_EQ(m.data(), before);  // shrink never reallocates
  m.reshape(4, 8);
  EXPECT_EQ(m.data(), before);  // regrow within the high-water mark either
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 5), c(2, 5);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c), std::invalid_argument);
}

TEST(Gemm, CShapeMismatchThrows) {
  Matrix a(2, 3), b(3, 5), c(3, 5);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, c), std::invalid_argument);
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  Matrix a(2, 3), b(3, 2);
  Matrix c{{1, 2}, {3, 4}};
  a.fill(7.0f);
  b.fill(9.0f);
  gemm(Trans::No, Trans::No, 0.0f, a, b, 2.0f, c);
  EXPECT_FLOAT_EQ(c(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 8.0f);
}

TEST(Gemm, KZeroActsAsScale) {
  Matrix a(2, 0), b(0, 2);
  Matrix c{{1, 2}, {3, 4}};
  gemm(Trans::No, Trans::No, 1.0f, a, b, 3.0f, c);
  EXPECT_FLOAT_EQ(c(0, 1), 6.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(99);
  Matrix a(8, 8);
  a.randomize_normal(rng, 0.0f, 1.0f);
  Matrix eye(8, 8);
  for (std::size_t i = 0; i < 8; ++i) eye(i, i) = 1.0f;
  Matrix c(8, 8);
  gemm(Trans::No, Trans::No, 1.0f, a, eye, 0.0f, c);
  EXPECT_LT(Matrix::max_abs_diff(a, c), 1e-6);
}

// Property: (A*B)^T == B^T * A^T, checked via the transpose flags.
TEST(Gemm, TransposeIdentityProperty) {
  Rng rng(123);
  Matrix a(13, 9), b(9, 21);
  a.randomize_uniform(rng, -1, 1);
  b.randomize_uniform(rng, -1, 1);
  Matrix ab(13, 21);
  gemm(Trans::No, Trans::No, 1.0f, a, b, 0.0f, ab);
  // C2 = op(B,T) * op(A,T) with operand matrices swapped = (A*B)^T.
  Matrix c2(21, 13);
  gemm(Trans::Yes, Trans::Yes, 1.0f, b, a, 0.0f, c2);
  EXPECT_LT(Matrix::max_abs_diff(ab.transposed(), c2), 1e-4);
}

// ------------------------------------------------------------------- gemv --
TEST(Gemv, MatchesGemm) {
  Rng rng(7);
  Matrix a(6, 4), x(4, 1), y(6, 1), y2(6, 1);
  a.randomize_uniform(rng, -1, 1);
  x.randomize_uniform(rng, -1, 1);
  gemv(Trans::No, 1.0f, a, x, 0.0f, y);
  gemm_reference(Trans::No, Trans::No, 1.0f, a, x, 0.0f, y2);
  EXPECT_LT(Matrix::max_abs_diff(y, y2), 1e-5);
}

TEST(Gemv, RejectsNonVectors) {
  Matrix a(3, 3), x(3, 2), y(3, 1);
  EXPECT_THROW(gemv(Trans::No, 1.0f, a, x, 0.0f, y), std::invalid_argument);
}

// --------------------------------------------------------------- elementwise
TEST(Axpy, Accumulates) {
  Matrix x{{1, 2}}, y{{10, 20}};
  axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y(0, 0), 10.5f);
  EXPECT_FLOAT_EQ(y(0, 1), 21.0f);
}

TEST(Axpy, ShapeMismatchThrows) {
  Matrix x(1, 2), y(2, 1);
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Scale, Scales) {
  Matrix x{{2, 4}};
  scale(0.25f, x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.5f);
}

TEST(ColSums, SumsColumns) {
  Matrix a{{1, 2}, {3, 4}, {5, 6}};
  Matrix s = col_sums(a);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_FLOAT_EQ(s(0, 0), 9.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 12.0f);
}

TEST(AddRowVector, Broadcasts) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix r{{10, 20}};
  add_row_vector(a, r);
  EXPECT_FLOAT_EQ(a(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 24.0f);
}

TEST(AddRowVector, ShapeMismatchThrows) {
  Matrix a(2, 2), r(1, 3);
  EXPECT_THROW(add_row_vector(a, r), std::invalid_argument);
}

}  // namespace
}  // namespace isaac::linalg
