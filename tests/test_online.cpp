// Online model lifecycle tests (DESIGN.md, "Online model lifecycle"):
// versioned model artifacts, the observation log, drift detection,
// warm-start retraining, and the Context end-to-end loop — dispatch on a
// changed device records observations, trips drift, retrains off the hot
// path, and hot-swaps the successor version.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "mlp/versioned_model.hpp"
#include "tuning/collector.hpp"
#include "tuning/dataset.hpp"
#include "tuning/observation_log.hpp"
#include "tuning/online.hpp"

namespace isaac {
namespace {

// Synthetic multiplicative law over the 15-feature schema — the same shape
// of problem the regressor faces in production, cheap enough for unit tests.
tuning::Dataset synth(std::size_t n, std::uint64_t seed, double scale = 1.0) {
  tuning::Dataset data;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    tuning::Sample s;
    s.x.assign(tuning::kNumFeatures, 1.0);
    for (std::size_t f = 0; f < 6; ++f) s.x[f] = std::exp(rng.uniform(0.0, 6.0));
    s.y = scale * 50.0 * std::pow(s.x[0], 0.7) * std::pow(s.x[1], 0.4) / s.x[2];
    data.add(std::move(s));
  }
  return data;
}

const mlp::Regressor& unit_model() {
  static const mlp::Regressor model = [] {
    mlp::TrainConfig cfg;
    cfg.net.hidden = {24, 16};
    cfg.epochs = 6;
    cfg.seed = 99;
    return mlp::train(synth(1200, 7), cfg);
  }();
  return model;
}

/// One dispatch-quality model shared by the Context tests (training is the
/// expensive part of this binary).
const mlp::Regressor& dispatch_model() {
  static const mlp::Regressor model = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 123);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 1500;
    cfg.seed = 424242;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {48, 48};
    tc.epochs = 8;
    return mlp::train(report.dataset, tc);
  }();
  return model;
}

std::vector<tuning::Observation> observations_from(const tuning::Dataset& data,
                                                   std::uint64_t model_version) {
  std::vector<tuning::Observation> obs;
  for (const auto& s : data.samples()) {
    tuning::Observation o;
    o.op = "gemm";
    o.features = s.x;
    o.measured_gflops = s.y;
    o.predicted_gflops = s.y * 2.0;  // a stale model's view
    o.model_version = model_version;
    obs.push_back(std::move(o));
  }
  return obs;
}

// ----------------------------------------------------------- VersionedModel --
TEST(VersionedModel, RejectsVersionZero) {
  EXPECT_THROW(mlp::VersionedModel(mlp::Regressor(unit_model()), 0), std::invalid_argument);
}

TEST(VersionedModel, SaveLoadRoundTripsVersionProvenanceAndWeights) {
  mlp::TrainProvenance prov;
  prov.source = "warm_start";
  prov.parent_version = 6;
  prov.samples = 321;
  prov.epochs = 30;
  const mlp::VersionedModel model(mlp::Regressor(unit_model()), 7, prov);

  std::stringstream ss;
  model.save(ss);
  const mlp::VersionedModel back = mlp::VersionedModel::load(ss);

  EXPECT_EQ(back.version(), 7u);
  EXPECT_EQ(back.provenance().source, "warm_start");
  EXPECT_EQ(back.provenance().parent_version, 6u);
  EXPECT_EQ(back.provenance().samples, 321u);
  EXPECT_EQ(back.provenance().epochs, 30);

  // The wrapped regressor round-trips bit-identically (max_digits10 text).
  const auto probe = synth(32, 1234);
  for (const auto& s : probe.samples()) {
    EXPECT_EQ(back.regressor().predict_gflops(s.x), model.regressor().predict_gflops(s.x));
  }
}

TEST(VersionedModel, LoadRejectsForeignHeader) {
  std::stringstream ss("not-a-model v1\n");
  EXPECT_THROW(mlp::VersionedModel::load(ss), std::runtime_error);
}

// ----------------------------------------------------------- ObservationLog --
TEST(ObservationLog, RingDropsOldestAtCapacity) {
  tuning::ObservationLog log(4);
  for (int i = 0; i < 10; ++i) {
    tuning::Observation o;
    o.op = "gemm";
    o.features = {static_cast<double>(i)};
    o.measured_gflops = 100.0 + i;
    log.append(std::move(o));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.total_appended(), 10u);
  const auto kept = log.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_DOUBLE_EQ(kept.front().features[0], 6.0);  // oldest survivor
  EXPECT_DOUBLE_EQ(kept.back().features[0], 9.0);   // newest

  const auto drained = log.drain();
  EXPECT_EQ(drained.size(), 4u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_appended(), 10u);  // drain never forgets history
}

TEST(ObservationLog, DiskAppendPersistsExactValues) {
  const auto dir = std::filesystem::temp_directory_path() / "isaac_obs_log_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  tuning::Observation expect;
  expect.op = "conv";
  expect.features = {1.0, 0.1234567890123456789, 3e-7};
  expect.measured_gflops = 5432.109876;
  expect.predicted_gflops = 5000.5;
  expect.model_version = 42;
  {
    tuning::ObservationLog log(16, dir.string());
    log.append(expect);
  }

  std::ifstream in(dir / tuning::ObservationLog::filename());
  ASSERT_TRUE(in.good());
  const auto loaded = tuning::ObservationLog::load(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].op, expect.op);
  EXPECT_EQ(loaded[0].model_version, expect.model_version);
  ASSERT_EQ(loaded[0].features.size(), expect.features.size());
  for (std::size_t i = 0; i < expect.features.size(); ++i) {
    EXPECT_EQ(loaded[0].features[i], expect.features[i]);  // bit-exact round trip
  }
  EXPECT_EQ(loaded[0].measured_gflops, expect.measured_gflops);
  EXPECT_EQ(loaded[0].predicted_gflops, expect.predicted_gflops);
  std::filesystem::remove_all(dir);
}

TEST(ObservationLog, LoadSkipsTornLines) {
  std::stringstream ss;
  ss << "gemm\t3\t100\t110\t1,2,3\n"
     << "gemm\t3\t100\n"          // torn tail
     << "gemm\t3\tjunk\t110\t1\n"  // unparsable field
     << "bgemm\t4\t200\t210\t4,5\n";
  const auto loaded = tuning::ObservationLog::load(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].op, "gemm");
  EXPECT_EQ(loaded[1].op, "bgemm");
}

TEST(ObservationLog, ToDatasetSkipsForeignArityAndNonPositive) {
  std::vector<tuning::Observation> obs;
  tuning::Observation good;
  good.op = "gemm";
  good.features.assign(tuning::kNumFeatures, 2.0);
  good.measured_gflops = 1234.0;
  obs.push_back(good);
  tuning::Observation bad_arity = good;
  bad_arity.features.resize(3);
  obs.push_back(bad_arity);
  tuning::Observation bad_measured = good;
  bad_measured.measured_gflops = 0.0;
  obs.push_back(bad_measured);

  const auto data = tuning::ObservationLog::to_dataset(obs);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_DOUBLE_EQ(data[0].y, 1234.0);
}

// ------------------------------------------------------------ DriftDetector --
TEST(DriftDetector, AccurateModelNeverTrips) {
  tuning::DriftConfig cfg;
  cfg.threshold = 0.3;
  cfg.window = 8;
  cfg.min_observations = 4;
  tuning::DriftDetector drift(cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(drift.observe("gemm", 1000.0, 1000.0 * (1.0 + 0.02 * (i % 3))));
  }
  EXPECT_LT(drift.mean_rel_error("gemm"), 0.05);
}

TEST(DriftDetector, TripsAfterMinObservationsAndReArms) {
  tuning::DriftConfig cfg;
  cfg.threshold = 0.3;
  cfg.window = 8;
  cfg.min_observations = 4;
  tuning::DriftDetector drift(cfg);

  // A 2× over-prediction: rel error 1.0, way past threshold — but no trip
  // before the window holds min_observations samples.
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_TRUE(drift.observe("gemm", 2000.0, 1000.0));  // 4th sample trips

  // The trip reset the window: fresh evidence is needed before the next one.
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_FALSE(drift.observe("gemm", 2000.0, 1000.0));
  EXPECT_TRUE(drift.observe("gemm", 2000.0, 1000.0));
}

TEST(DriftDetector, WindowsArePerOpAndIgnoreDegenerateSamples) {
  tuning::DriftConfig cfg;
  cfg.threshold = 0.3;
  cfg.window = 4;
  cfg.min_observations = 2;
  tuning::DriftDetector drift(cfg);
  // Degenerate inputs never count.
  EXPECT_FALSE(drift.observe("gemm", 0.0, 1000.0));
  EXPECT_FALSE(drift.observe("gemm", 1000.0, 0.0));
  // conv drifting must not trip gemm.
  EXPECT_FALSE(drift.observe("conv", 3000.0, 1000.0));
  EXPECT_TRUE(drift.observe("conv", 3000.0, 1000.0));
  EXPECT_LT(drift.mean_rel_error("gemm"), 1e-12);
}

// ---------------------------------------------------------------- Retrainer --
TEST(Retrainer, ProducesSuccessorVersionThatTracksTheShift) {
  const mlp::VersionedModel base(mlp::Regressor(unit_model()), 3);

  // The device halved: measured gflops are 0.5× what the base model learned.
  const auto shifted = synth(400, 555, 0.5);
  const auto obs = observations_from(shifted, base.version());

  tuning::RetrainConfig cfg;
  cfg.min_observations = 100;
  cfg.epochs = 30;
  const tuning::Retrainer retrainer(cfg);
  const mlp::VersionedModel next = retrainer.retrain(base, obs);

  EXPECT_EQ(next.version(), 4u);
  EXPECT_EQ(next.provenance().source, "warm_start");
  EXPECT_EQ(next.provenance().parent_version, 3u);
  EXPECT_EQ(next.provenance().samples, obs.size());
  EXPECT_EQ(next.provenance().epochs, 30);

  auto mean_rel_error = [&](const mlp::Regressor& m) {
    double acc = 0.0;
    for (const auto& s : shifted.samples()) {
      acc += std::abs(m.predict_gflops(s.x) - s.y) / s.y;
    }
    return acc / static_cast<double>(shifted.size());
  };
  const double stale = mean_rel_error(base.regressor());
  const double fresh = mean_rel_error(next.regressor());
  EXPECT_GT(stale, 0.5);
  EXPECT_LT(fresh, stale * 0.5);  // the successor recovered ≥2×
}

TEST(Retrainer, RefusesUnderfedFold) {
  const mlp::VersionedModel base(mlp::Regressor(unit_model()), 1);
  const auto obs = observations_from(synth(10, 3), 1);
  tuning::RetrainConfig cfg;
  cfg.min_observations = 48;
  EXPECT_THROW(tuning::Retrainer(cfg).retrain(base, obs), std::invalid_argument);
}

// ------------------------------------------------------- Context end-to-end --
TEST(OnlineContext, DisabledLifecycleRecordsNothing) {
  core::ContextOptions opts;
  opts.search.budget = 8;
  opts.search.reeval_reps = 2;
  opts.two_tier = false;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(dispatch_model()));

  codegen::GemmShape shape;
  shape.m = 48;
  shape.n = 32;
  shape.k = 96;
  ctx.select<core::GemmOp>(shape);
  ctx.drain_background();

  EXPECT_EQ(ctx.observation_log().total_appended(), 0u);
  EXPECT_EQ(ctx.drift_trips(), 0u);
  EXPECT_FALSE(ctx.retrain_now());  // lifecycle off: never retrains
  EXPECT_EQ(ctx.model_swaps(), 0u);
  EXPECT_EQ(ctx.model_snapshot()->version(), 1u);
}

TEST(OnlineContext, DriftOnPerturbedDeviceRetrainsAndHotSwaps) {
  // The model learned tesla_p100; the serving device is a degraded copy
  // (half the SMs, 60% clock), so the model over-predicts on every shape.
  // The full loop must close by itself: blocking searches record their
  // measured sets, drift trips, a retrain is scheduled off the hot path, and
  // the successor version is swapped in.
  gpusim::DeviceDescriptor degraded = gpusim::tesla_p100();
  degraded.name = "tesla_p100_degraded";
  degraded.num_sms /= 2;
  degraded.boost_clock_ghz *= 0.6;
  degraded.peak_sp_tflops *= 0.3;

  core::ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 2;
  opts.search.max_candidates = 8000;
  opts.two_tier = false;  // record on the calling thread: deterministic counts
  opts.online.enabled = true;
  opts.online.drift.threshold = 0.35;
  opts.online.drift.window = 16;
  opts.online.drift.min_observations = 12;
  opts.online.retrain.min_observations = 12;
  opts.online.retrain.epochs = 8;
  core::Context ctx(degraded, opts);
  ctx.set_model(mlp::Regressor(dispatch_model()));
  ASSERT_EQ(ctx.model_snapshot()->version(), 1u);

  std::vector<codegen::GemmShape> shapes;
  for (const auto& [m, n, k] : {std::tuple{48, 32, 96}, std::tuple{64, 16, 128},
                                std::tuple{32, 48, 64}, std::tuple{96, 24, 80}}) {
    codegen::GemmShape s;
    s.m = m;
    s.n = n;
    s.k = k;
    shapes.push_back(s);
  }
  for (const auto& shape : shapes) ctx.select<core::GemmOp>(shape);
  ctx.drain_background();  // let the scheduled retrain land

  EXPECT_GT(ctx.observation_log().total_appended(), 0u);
  EXPECT_GE(ctx.drift_trips(), 1u);
  EXPECT_GE(ctx.retrains(), 1u);
  EXPECT_GE(ctx.model_swaps(), 1u);
  EXPECT_FALSE(ctx.retrain_in_flight());
  EXPECT_GT(ctx.last_retrain_us(), 0u);

  const auto current = ctx.model_snapshot();
  EXPECT_EQ(current->version(), 1u + ctx.retrains());
  EXPECT_EQ(current->provenance().source, "warm_start");
  EXPECT_GE(current->provenance().samples, opts.online.retrain.min_observations);
}

TEST(OnlineContext, RequestRetrainFoldsTheLogOnDemand) {
  core::ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 2;
  opts.two_tier = false;
  opts.online.enabled = true;
  opts.online.drift.threshold = 1e9;  // drift never trips on its own
  opts.online.retrain.min_observations = 8;
  opts.online.retrain.epochs = 4;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(mlp::Regressor(dispatch_model()));

  codegen::GemmShape shape;
  shape.m = 56;
  shape.n = 40;
  shape.k = 112;
  ctx.select<core::GemmOp>(shape);
  ctx.drain_background();
  ASSERT_GE(ctx.observation_log().size(), 8u);
  ASSERT_EQ(ctx.retrains(), 0u);  // nothing scheduled without drift or cadence

  EXPECT_TRUE(ctx.request_retrain());
  ctx.drain_background();
  EXPECT_EQ(ctx.retrains(), 1u);
  EXPECT_EQ(ctx.model_snapshot()->version(), 2u);
  // The fold drained the ring: the same rows never train two successors.
  EXPECT_EQ(ctx.observation_log().size(), 0u);
}

}  // namespace
}  // namespace isaac
