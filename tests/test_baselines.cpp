// Tests for the simulated vendor libraries: kernel sets, heuristic selection
// (including the paper-documented deficiencies), Best-Kernel bypass, and the
// fp16x2 availability rules.
#include <gtest/gtest.h>

#include "baselines/cublas_sim.hpp"
#include "baselines/cudnn_sim.hpp"
#include "gpusim/device.hpp"

namespace isaac::baselines {
namespace {

using gpusim::DataType;

codegen::GemmShape gemm_shape(std::int64_t m, std::int64_t n, std::int64_t k,
                              DataType dt = DataType::F32, bool ta = false, bool tb = false) {
  codegen::GemmShape s;
  s.m = m;
  s.n = n;
  s.k = k;
  s.dtype = dt;
  s.trans_a = ta;
  s.trans_b = tb;
  return s;
}

// ------------------------------------------------------------------ cuBLAS --
TEST(CublasSim, RegularKernelsOnlyTile64Or128AlongN) {
  CublasSim lib(gpusim::tesla_p100());
  for (const auto& k : lib.kernel_set()) {
    if (k.tuning.kg == 1) {
      EXPECT_TRUE(k.tuning.nl == 64 || k.tuning.nl == 128) << k.name;
    }
  }
}

TEST(CublasSim, NoKernelUsesIntraSmSplit) {
  // §7.3: cuBLAS does not implement K_L > 1.
  CublasSim lib(gpusim::tesla_p100());
  for (const auto& k : lib.kernel_set()) EXPECT_EQ(k.tuning.kl, 1) << k.name;
}

TEST(CublasSim, HeuristicMatchesBestKernelOnLinpack) {
  // The paper's premise: vendor heuristics are excellent on the dense
  // regular path (LINPACK home turf) — only the split-related selection has
  // holes. The heuristic choice must match the bypass on large squares.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.0, 1);
  CublasSim lib(sim.device());
  const auto shape = gemm_shape(2048, 2048, 2048, DataType::F32, false, true);
  const auto h = lib.run_heuristic(sim, shape);
  const auto b = lib.run_best_kernel(sim, shape);
  ASSERT_TRUE(h.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_GT(h.gflops, 0.90 * b.gflops);
  EXPECT_GE(h.kernel.tuning.ml, 64);
  EXPECT_GE(h.kernel.tuning.nl, 64);
}

TEST(CublasSim, SkinnyBatchStillGetsWideNTile) {
  // The §8.1 deficiency: N = 16 is served by a 64-wide N tile.
  CublasSim lib(gpusim::tesla_p100());
  const auto k = lib.choose(gemm_shape(2560, 16, 2560));
  EXPECT_GE(k.tuning.nl, 64) << k.name;
}

TEST(CublasSim, IcaShapeMissesSplitK) {
  // §7.3 ICA: M = N = 32, K = 60000 — the heuristic does NOT reach for the
  // split-K kernels (the documented order-of-magnitude hole).
  CublasSim lib(gpusim::tesla_p100());
  const auto k = lib.choose(gemm_shape(32, 32, 60000, DataType::F32, false, true));
  EXPECT_EQ(k.tuning.kg, 1) << k.name;
}

TEST(CublasSim, BestKernelRecoversSplitKForIca) {
  // The bypass finds the split-K kernel the heuristic missed.
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.0, 1);
  CublasSim lib(sim.device());
  const auto shape = gemm_shape(32, 32, 60000, DataType::F32, false, true);
  const auto heuristic = lib.run_heuristic(sim, shape);
  const auto best = lib.run_best_kernel(sim, shape);
  ASSERT_TRUE(heuristic.valid);
  ASSERT_TRUE(best.valid);
  EXPECT_GT(best.kernel.tuning.kg, 1) << best.kernel.name;
  // "drastic slow-downs (over an order of magnitude)" for the heuristic path.
  EXPECT_GT(best.gflops, heuristic.gflops * 5.0);
}

TEST(CublasSim, BestKernelNeverSlowerThanHeuristic) {
  gpusim::Simulator sim(gpusim::tesla_p100(), 0.0, 1);
  CublasSim lib(sim.device());
  for (const auto& shape :
       {gemm_shape(512, 512, 512, DataType::F32, false, true), gemm_shape(2560, 32, 2560),
        gemm_shape(4096, 4096, 32, DataType::F32, false, true),
        gemm_shape(64, 64, 60000, DataType::F32, false, true)}) {
    const auto h = lib.run_heuristic(sim, shape);
    const auto b = lib.run_best_kernel(sim, shape);
    ASSERT_TRUE(h.valid) << shape.to_string();
    ASSERT_TRUE(b.valid) << shape.to_string();
    EXPECT_GE(b.gflops, h.gflops * 0.999) << shape.to_string();
  }
}

TEST(CublasSim, Fp16x2OnlyInLinpackKernel) {
  CublasSim lib(gpusim::tesla_p100());
  const auto shape = gemm_shape(2560, 64, 2560, DataType::F16);
  for (const auto& k : lib.legal_kernels(shape)) {
    const auto prof = lib.profile(shape, k);
    if (k.name == "gemm_128x128") {
      EXPECT_TRUE(prof.uses_fp16x2);
    } else {
      EXPECT_FALSE(prof.uses_fp16x2) << k.name;
    }
  }
}

TEST(CublasSim, ScalarF16DoublesFmaIssue) {
  CublasSim lib(gpusim::tesla_p100());
  const auto shape = gemm_shape(2048, 2048, 2048, DataType::F16);
  GemmKernel paired, scalar;
  for (const auto& k : lib.legal_kernels(shape)) {
    if (k.name == "gemm_128x128") paired = k;
    if (k.name == "gemm_64x64") scalar = k;
  }
  ASSERT_FALSE(paired.name.empty());
  ASSERT_FALSE(scalar.name.empty());
  const auto p1 = lib.profile(shape, paired);
  const auto p2 = lib.profile(shape, scalar);
  // Per-thread MAC count is identical (same micro-tile): the scalar build
  // issues twice the instructions per MAC.
  EXPECT_NEAR(p2.fma_insts, p1.fma_insts * 2.0, 1e-6);
}

TEST(CublasSim, HeuristicValidOnAllPaperShapes) {
  gpusim::Simulator sim(gpusim::gtx980ti(), 0.0, 1);
  CublasSim lib(sim.device());
  // All Table 4 shapes must resolve to a runnable kernel.
  const std::vector<codegen::GemmShape> shapes = {
      gemm_shape(512, 512, 512, DataType::F32, false, true),
      gemm_shape(1024, 1024, 1024, DataType::F32, false, true),
      gemm_shape(2048, 2048, 2048, DataType::F32, false, true),
      gemm_shape(2560, 16, 2560), gemm_shape(2560, 128, 2560),
      gemm_shape(2560, 16, 2560, DataType::F32, true, false),
      gemm_shape(32, 32, 60000, DataType::F32, false, true),
      gemm_shape(256, 256, 60000, DataType::F32, false, true),
      gemm_shape(4096, 4096, 32, DataType::F32, false, true),
      gemm_shape(896, 896, 32, DataType::F32, false, true)};
  for (const auto& s : shapes) {
    const auto run = lib.run_heuristic(sim, s);
    EXPECT_TRUE(run.valid) << s.to_string();
    EXPECT_GT(run.gflops, 0.0) << s.to_string();
  }
}

// ------------------------------------------------------------------- cuDNN --
TEST(CudnnSim, NoKernelSplitsTheReduction) {
  CudnnSim lib(gpusim::gtx980ti());
  for (const auto& k : lib.kernel_set()) {
    EXPECT_EQ(k.tuning.cg, 1) << k.name;
    EXPECT_EQ(k.tuning.cl, 1) << k.name;
  }
}

TEST(CudnnSim, SelectionIsNearOptimalOnMaxwell) {
  // Home turf: on the device the heuristics were tuned for, the selection
  // must be (near-)optimal within the fixed kernel set.
  gpusim::Simulator sim(gpusim::gtx980ti(), 0.0, 1);
  CudnnSim lib(sim.device());
  const auto shape = codegen::ConvShape::from_npq(16, 24, 240, 32, 16, 3, 3);  // OCR Conv3
  const auto chosen = lib.run_heuristic(sim, shape);
  ASSERT_TRUE(chosen.valid);
  double best = 0.0;
  for (const auto& k : lib.legal_kernels(shape)) {
    const auto perf = sim.evaluate(lib.profile(shape, k));
    if (perf.valid) best = std::max(best, perf.achieved_tflops * 1000.0);
  }
  EXPECT_GT(chosen.gflops, 0.90 * best);
}

TEST(CudnnSim, MaxwellTunedSelectionCanMisrankOnPascal) {
  // The same selection logic scores kernels with the Maxwell model even when
  // running on Pascal; choose() must still return something legal there.
  CudnnSim pascal(gpusim::tesla_p100());
  const auto shape = codegen::ConvShape::from_npq(16, 7, 7, 128, 832, 5, 5);  // Conv8
  const auto k = pascal.choose(shape);
  EXPECT_TRUE(codegen::validate(shape, k.tuning, gpusim::tesla_p100()));
}

TEST(CudnnSim, HeuristicValidOnAllTable5Shapes) {
  gpusim::Simulator sim(gpusim::gtx980ti(), 0.0, 1);
  CudnnSim lib(sim.device());
  const std::vector<codegen::ConvShape> shapes = {
      codegen::ConvShape::from_npq(16, 79, 341, 32, 1, 5, 20),
      codegen::ConvShape::from_npq(16, 38, 166, 32, 32, 5, 10),
      codegen::ConvShape::from_npq(16, 24, 240, 32, 16, 3, 3),
      codegen::ConvShape::from_npq(16, 12, 120, 64, 32, 3, 3),
      codegen::ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3),
      codegen::ConvShape::from_npq(8, 27, 27, 128, 128, 3, 3),
      codegen::ConvShape::from_npq(16, 14, 14, 48, 512, 5, 5),
      codegen::ConvShape::from_npq(16, 7, 7, 128, 832, 5, 5),
      codegen::ConvShape::from_npq(8, 112, 112, 128, 64, 3, 3),
      codegen::ConvShape::from_npq(8, 56, 56, 256, 128, 3, 3),
      codegen::ConvShape::from_npq(16, 128, 39, 174, 64, 5, 5),
      codegen::ConvShape::from_npq(16, 256, 19, 87, 128, 5, 5),
      codegen::ConvShape::from_npq(16, 7, 7, 512, 512, 3, 3),
      codegen::ConvShape::from_npq(16, 7, 7, 2048, 1024, 1, 1)};
  for (const auto& s : shapes) {
    const auto run = lib.run_heuristic(sim, s);
    EXPECT_TRUE(run.valid) << s.to_string();
    EXPECT_GT(run.gflops, 0.0) << s.to_string();
  }
}

TEST(CudnnSim, MaxwellKernelsLoseOccupancyOnPascal) {
  // The smem-hungry staging kernels (u = 16) were sized for Maxwell's 96 KiB
  // SMs; Pascal offers 64 KiB, costing an occupancy step.
  CudnnSim maxwell(gpusim::gtx980ti());
  CudnnSim pascal(gpusim::tesla_p100());
  const auto shape = codegen::ConvShape::from_npq(8, 56, 56, 256, 128, 3, 3);
  const auto km = maxwell.choose(shape);
  const auto pm = maxwell.profile(shape, km);
  const auto pp = pascal.profile(shape, pascal.choose(shape));
  const auto occ_m = gpusim::occupancy(gpusim::gtx980ti(), pm.threads_per_block,
                                       pm.regs_per_thread, pm.smem_bytes_per_block);
  const auto occ_p = gpusim::occupancy(gpusim::tesla_p100(), pp.threads_per_block,
                                       pp.regs_per_thread, pp.smem_bytes_per_block);
  EXPECT_GT(occ_m.blocks_per_sm, occ_p.blocks_per_sm);
}

TEST(CudnnSim, NoFp16x2Anywhere) {
  CudnnSim lib(gpusim::tesla_p100());
  auto shape = codegen::ConvShape::from_npq(16, 14, 14, 48, 512, 5, 5);
  shape.dtype = gpusim::DataType::F16;
  for (const auto& k : lib.legal_kernels(shape)) {
    EXPECT_FALSE(lib.profile(shape, k).uses_fp16x2) << k.name;
  }
}

}  // namespace
}  // namespace isaac::baselines
