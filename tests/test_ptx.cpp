// Tests for the PTX-like IR: builder, emitter, verifier, interpreter.
// The interpreter tests build small kernels by hand (vector add, axpy with
// predication, a reduction loop with a uniform backward branch, shared-memory
// staging, atomics) — exactly the primitives the GEMM generator composes.
#include <gtest/gtest.h>

#include "ptx/builder.hpp"
#include "ptx/emitter.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/verifier.hpp"

namespace isaac::ptx {
namespace {

// ---------------------------------------------------------------- builder --
TEST(Builder, AllocatesDistinctRegisters) {
  KernelBuilder b("k");
  const Operand r0 = b.new_reg(Type::F32);
  const Operand r1 = b.new_reg(Type::F32);
  const Operand p0 = b.new_pred();
  EXPECT_NE(r0.reg, r1.reg);
  EXPECT_EQ(p0.type, Type::Pred);
  Kernel k = b.take();
  EXPECT_EQ(k.num_f32, 2);
  EXPECT_EQ(k.num_pred, 1);
}

TEST(Builder, SharedAllocationIsAligned) {
  KernelBuilder b("k");
  const int a = b.alloc_shared(100);
  const int c = b.alloc_shared(64);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(c % 16, 0);
  EXPECT_GE(c, 100);
  Kernel k = b.take();
  EXPECT_GE(k.smem_bytes, 164);
}

TEST(Builder, TakeAppendsRet) {
  KernelBuilder b("k");
  b.mov_imm(Type::S32, 1);
  Kernel k = b.take();
  ASSERT_FALSE(k.body.empty());
  EXPECT_EQ(k.body.back().op, Opcode::Ret);
}

TEST(Builder, TypeMismatchThrows) {
  KernelBuilder b("k");
  const Operand f = b.new_reg(Type::F32);
  const Operand i = b.new_reg(Type::S32);
  EXPECT_THROW(b.add(f, i), std::invalid_argument);
}

TEST(Builder, PredicateLastRequiresPredicateReg) {
  KernelBuilder b("k");
  const Operand f = b.mov_imm(Type::S32, 3);
  EXPECT_THROW(b.predicate_last(f), std::invalid_argument);
}

TEST(Builder, LdParamOutOfRangeThrows) {
  KernelBuilder b("k");
  EXPECT_THROW(b.ld_param(Type::U64, 0), std::out_of_range);
}

// ---------------------------------------------------------------- emitter --
TEST(Emitter, RendersRecognizablePtx) {
  KernelBuilder b("saxpy");
  const int pa = b.add_param("A");
  const Operand base = b.ld_param(Type::U64, pa);
  const Operand v = b.ld_global(Type::F32, base, 0);
  const Operand two = b.mov_fimm(Type::F32, 2.0);
  const Operand acc = b.mov_fimm(Type::F32, 0.0);
  b.fma(acc, v, two, acc);
  b.st_global(Type::F32, base, acc, 0);
  Kernel k = b.take();
  const std::string text = emit(k);
  EXPECT_NE(text.find(".visible .entry saxpy"), std::string::npos);
  EXPECT_NE(text.find("ld.global.f32"), std::string::npos);
  EXPECT_NE(text.find("fma.rn.f32"), std::string::npos);
  EXPECT_NE(text.find("st.global.f32"), std::string::npos);
  EXPECT_NE(text.find(".reg .f32"), std::string::npos);
}

TEST(Emitter, PredicationSyntax) {
  KernelBuilder b("k");
  const int pa = b.add_param("A");
  const Operand base = b.ld_param(Type::U64, pa);
  const Operand tid = b.special(SReg::TidX);
  const Operand p = b.setp(Cmp::Lt, tid, Operand::make_imm(2, Type::S32));
  const Operand z = b.mov_fimm(Type::F32, 1.0);
  b.st_global(Type::F32, base, z, 0, p.reg);
  const std::string text = emit(b.take());
  EXPECT_NE(text.find("@%p0 st.global.f32"), std::string::npos);
}

TEST(Emitter, ModuleHeaderAndSharedDecl) {
  KernelBuilder b("k");
  b.alloc_shared(256);
  b.mov_imm(Type::S32, 0);
  Module m;
  m.target = "sm_52";
  m.kernels.push_back(b.take());
  const std::string text = emit(m);
  EXPECT_NE(text.find(".target sm_52"), std::string::npos);
  EXPECT_NE(text.find(".shared .align 16 .b8"), std::string::npos);
  EXPECT_NE(text.find(".address_size 64"), std::string::npos);
}

// --------------------------------------------------------------- verifier --
TEST(Verifier, AcceptsWellFormedKernel) {
  KernelBuilder b("ok");
  const int pa = b.add_param("A");
  const Operand base = b.ld_param(Type::U64, pa);
  const Operand v = b.ld_global(Type::F32, base, 0);
  b.st_global(Type::F32, base, v, 4);
  const auto r = verify(b.take());
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(Verifier, CatchesUndefinedLabel) {
  KernelBuilder b("bad");
  b.bra("NOWHERE");
  const auto r = verify(b.take());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("undefined label"), std::string::npos);
}

TEST(Verifier, CatchesDuplicateLabel) {
  KernelBuilder b("bad");
  b.label("L");
  b.label("L");
  const auto r = verify(b.take());
  EXPECT_FALSE(r.ok);
}

TEST(Verifier, CatchesPredicatedBarrier) {
  KernelBuilder b("bad");
  const Operand tid = b.special(SReg::TidX);
  const Operand p = b.setp(Cmp::Lt, tid, Operand::make_imm(1, Type::S32));
  b.bar_sync();
  b.predicate_last(p);
  const auto r = verify(b.take());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("divergent"), std::string::npos);
}

TEST(Verifier, CatchesRegisterOutOfRange) {
  KernelBuilder b("bad");
  Kernel k = b.take();
  Instruction inst;
  inst.op = Opcode::Mov;
  inst.type = Type::F32;
  inst.dst = {Operand::make_reg(Type::F32, 5)};  // never allocated
  inst.src = {Operand::make_fimm(1.0, Type::F32)};
  k.body.insert(k.body.begin(), inst);
  const auto r = verify(k);
  EXPECT_FALSE(r.ok);
}

TEST(Verifier, CatchesFmaOnIntegers) {
  KernelBuilder b("bad");
  Kernel k = b.take();
  Instruction inst;
  inst.op = Opcode::Fma;
  inst.type = Type::S32;
  inst.dst = {Operand::make_reg(Type::S32, 0)};
  inst.src = {Operand::make_imm(1), Operand::make_imm(2), Operand::make_imm(3)};
  k.num_s32 = 1;
  k.body.insert(k.body.begin(), inst);
  const auto r = verify(k);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("fma on non-float"), std::string::npos);
}

TEST(Verifier, CatchesMissingRet) {
  Kernel k;
  k.name = "k";
  Instruction inst;
  inst.op = Opcode::Bar;
  k.body.push_back(inst);
  const auto r = verify(k);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.summary().find("ret"), std::string::npos);
}

// ------------------------------------------------------------ interpreter --

// Kernel: C[tid + ctaid*ntid] = A[...] + B[...]  (grid-strided vector add)
Kernel build_vector_add() {
  KernelBuilder b("vadd");
  const int pa = b.add_param("A");
  const int pb = b.add_param("B");
  const int pc = b.add_param("C");
  const Operand a = b.ld_param(Type::U64, pa);
  const Operand bb = b.ld_param(Type::U64, pb);
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand tid = b.special(SReg::TidX);
  const Operand ctaid = b.special(SReg::CtaIdX);
  const Operand ntid = b.special(SReg::NTidX);
  const Operand gid = b.mad(ctaid, ntid, tid);
  const Operand off = b.mul(gid, Operand::make_imm(4, Type::S32));
  const Operand off64 = b.cvt_u64(off);
  const Operand av = b.ld_global(Type::F32, b.add(a, off64));
  const Operand bv = b.ld_global(Type::F32, b.add(bb, off64));
  const Operand sum = b.add(av, bv);
  b.st_global(Type::F32, b.add(c, off64), sum);
  return b.take();
}

TEST(Interpreter, VectorAdd) {
  Kernel k = build_vector_add();
  ASSERT_TRUE(verify(k).ok) << verify(k).summary();

  GlobalMemory mem;
  const std::size_t n = 64;
  const auto pa = mem.alloc(n * 4);
  const auto pb = mem.alloc(n * 4);
  const auto pc = mem.alloc(n * 4);
  std::vector<float> va(n), vb(n);
  for (std::size_t i = 0; i < n; ++i) {
    va[i] = static_cast<float>(i);
    vb[i] = 100.0f + static_cast<float>(i);
  }
  mem.write_f32(pa, va);
  mem.write_f32(pb, vb);

  LaunchDims dims;
  dims.grid_x = 4;
  dims.block_x = 16;
  const auto r = run(k, dims, {pa, pb, pc}, mem);
  ASSERT_TRUE(r.ok) << r.error;

  const auto out = mem.read_f32(pc, n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(out[i], 100.0f + 2.0f * static_cast<float>(i));
  }
  EXPECT_EQ(r.stats.global_stores, n);
  EXPECT_EQ(r.stats.global_loads, 2 * n);
}

// Predicated store: only even tids write. Exercises @!p as well.
TEST(Interpreter, PredicatedStores) {
  KernelBuilder b("pred");
  const int pc = b.add_param("C");
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand tid = b.special(SReg::TidX);
  const Operand rem2 = b.rem(tid, Operand::make_imm(2, Type::S32));
  const Operand is_odd = b.setp(Cmp::Eq, rem2, Operand::make_imm(1, Type::S32));
  const Operand off64 = b.cvt_u64(b.mul(tid, Operand::make_imm(4, Type::S32)));
  const Operand addr = b.add(c, off64);
  const Operand one = b.mov_fimm(Type::F32, 1.0);
  const Operand two = b.mov_fimm(Type::F32, 2.0);
  b.st_global(Type::F32, addr, one, 0, is_odd.reg, /*negate=*/true);  // @!p: even
  b.st_global(Type::F32, addr, two, 0, is_odd.reg, /*negate=*/false);  // @p: odd
  Kernel k = b.take();
  ASSERT_TRUE(verify(k).ok);

  GlobalMemory mem;
  const auto c_addr = mem.alloc(8 * 4);
  LaunchDims dims;
  dims.block_x = 8;
  const auto r = run(k, dims, {c_addr}, mem);
  ASSERT_TRUE(r.ok) << r.error;
  const auto out = mem.read_f32(c_addr, 8);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(out[i], i % 2 == 0 ? 1.0f : 2.0f);
}

// Uniform loop: acc = sum of X[0..K); single thread per block, loop with
// backward branch — the reduction-loop skeleton of the GEMM kernel.
TEST(Interpreter, UniformReductionLoop) {
  KernelBuilder b("loop");
  const int px = b.add_param("X");
  const int py = b.add_param("Y");
  const int pk = b.add_param("K", /*is_pointer=*/false);
  const Operand x = b.ld_param(Type::U64, px);
  const Operand y = b.ld_param(Type::U64, py);
  const Operand kparam = b.ld_param(Type::U64, pk);
  const Operand k32 = b.cvt(Type::S32, kparam);
  const Operand i = b.mov_imm(Type::S32, 0);
  const Operand acc = b.mov_fimm(Type::F32, 0.0);
  const Operand one = b.mov_fimm(Type::F32, 1.0);
  const Operand cursor = b.new_reg(Type::U64);
  b.mov(cursor, x);
  b.label("LOOP");
  const Operand v = b.ld_global(Type::F32, cursor);
  b.fma(acc, v, one, acc);
  b.mov(cursor, b.add(cursor, Operand::make_imm(4, Type::U64)));
  b.mov(i, b.add(i, Operand::make_imm(1, Type::S32)));
  const Operand more = b.setp(Cmp::Lt, i, k32);
  b.bra("LOOP", more.reg);
  b.st_global(Type::F32, y, acc);
  Kernel k = b.take();
  ASSERT_TRUE(verify(k).ok) << verify(k).summary();

  GlobalMemory mem;
  const int K = 37;
  const auto px_addr = mem.alloc(K * 4);
  const auto py_addr = mem.alloc(4);
  std::vector<float> vx(K);
  float expect = 0;
  for (int j = 0; j < K; ++j) {
    vx[j] = static_cast<float>(j) * 0.5f;
    expect += vx[j];
  }
  mem.write_f32(px_addr, vx);
  LaunchDims dims;  // 1 block, 1 thread
  const auto r = run(k, dims, {px_addr, py_addr, static_cast<std::uint64_t>(K)}, mem);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FLOAT_EQ(mem.read_f32(py_addr, 1)[0], expect);
}

// Shared-memory staging with barrier: thread t writes smem[t], reads
// smem[(t+1) % n] after a barrier — order inverted without the barrier.
TEST(Interpreter, SharedMemoryRoundTripWithBarrier) {
  KernelBuilder b("smem");
  const int pc = b.add_param("C");
  const int smem_base = b.alloc_shared(16 * 4);
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand tid = b.special(SReg::TidX);
  const Operand my_off = b.mad(tid, Operand::make_imm(4, Type::S32),
                               Operand::make_imm(smem_base, Type::S32));
  const Operand tidf = b.cvt(Type::F32, tid);
  b.st_shared(Type::F32, my_off, tidf);
  b.bar_sync();
  const Operand next = b.rem(b.add(tid, Operand::make_imm(1, Type::S32)),
                             Operand::make_imm(16, Type::S32));
  const Operand next_off = b.mad(next, Operand::make_imm(4, Type::S32),
                                 Operand::make_imm(smem_base, Type::S32));
  const Operand v = b.ld_shared(Type::F32, next_off);
  const Operand out_off = b.cvt_u64(b.mul(tid, Operand::make_imm(4, Type::S32)));
  b.st_global(Type::F32, b.add(c, out_off), v);
  Kernel k = b.take();
  ASSERT_TRUE(verify(k).ok);

  GlobalMemory mem;
  const auto c_addr = mem.alloc(16 * 4);
  LaunchDims dims;
  dims.block_x = 16;
  const auto r = run(k, dims, {c_addr}, mem);
  ASSERT_TRUE(r.ok) << r.error;
  const auto out = mem.read_f32(c_addr, 16);
  for (int t = 0; t < 16; ++t) EXPECT_FLOAT_EQ(out[t], static_cast<float>((t + 1) % 16));
  EXPECT_EQ(r.stats.barriers, 1u);
}

// Atomic accumulation across blocks: each of 8 blocks' 4 threads adds 1.0
// into a single cell — the K_G-split epilogue primitive.
TEST(Interpreter, AtomicAddAcrossBlocks) {
  KernelBuilder b("atom");
  const int pc = b.add_param("C");
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand one = b.mov_fimm(Type::F32, 1.0);
  b.atom_add(Type::F32, c, one, 0);
  Kernel k = b.take();
  ASSERT_TRUE(verify(k).ok);

  GlobalMemory mem;
  const auto c_addr = mem.alloc(4);
  LaunchDims dims;
  dims.grid_x = 8;
  dims.block_x = 4;
  const auto r = run(k, dims, {c_addr}, mem);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FLOAT_EQ(mem.read_f32(c_addr, 1)[0], 32.0f);
}

TEST(Interpreter, NonUniformBranchIsAnError) {
  KernelBuilder b("diverge");
  const Operand tid = b.special(SReg::TidX);
  const Operand p = b.setp(Cmp::Lt, tid, Operand::make_imm(1, Type::S32));
  b.label("L");
  b.bra("L", p.reg);  // only thread 0 would loop: non-uniform
  Kernel k = b.take();
  GlobalMemory mem;
  LaunchDims dims;
  dims.block_x = 2;
  const auto r = run(k, dims, {}, mem);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-uniform"), std::string::npos);
}

TEST(Interpreter, RunawayLoopIsCaught) {
  KernelBuilder b("forever");
  const Operand t = b.mov_imm(Type::S32, 0);
  b.label("L");
  b.mov(t, b.add(t, Operand::make_imm(1, Type::S32)));
  const Operand p = b.setp(Cmp::Ge, t, Operand::make_imm(0, Type::S32));  // always true
  b.bra("L", p.reg);
  Kernel k = b.take();
  GlobalMemory mem;
  LaunchDims dims;
  const auto r = run(k, dims, {}, mem, /*max_dynamic_insts=*/10000);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("budget"), std::string::npos);
}

TEST(Interpreter, ParamCountMismatchReported) {
  Kernel k = build_vector_add();
  GlobalMemory mem;
  LaunchDims dims;
  const auto r = run(k, dims, {0}, mem);
  EXPECT_FALSE(r.ok);
}

TEST(Interpreter, OutOfBoundsGlobalAccessReported) {
  KernelBuilder b("oob");
  const int pc = b.add_param("C");
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand v = b.mov_fimm(Type::F32, 1.0);
  b.st_global(Type::F32, c, v, 1 << 20);
  Kernel k = b.take();
  GlobalMemory mem;
  const auto addr = mem.alloc(16);
  LaunchDims dims;
  const auto r = run(k, dims, {addr}, mem);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("outside"), std::string::npos);
}

TEST(Interpreter, F64Arithmetic) {
  KernelBuilder b("dadd");
  const int pc = b.add_param("C");
  const Operand c = b.ld_param(Type::U64, pc);
  const Operand x = b.mov_fimm(Type::F64, 1.25);
  const Operand y = b.mov_fimm(Type::F64, 2.5);
  const Operand acc = b.mov_fimm(Type::F64, 0.5);
  b.fma(acc, x, y, acc);
  b.st_global(Type::F64, c, acc);
  Kernel k = b.take();
  GlobalMemory mem;
  const auto addr = mem.alloc(8);
  LaunchDims dims;
  const auto r = run(k, dims, {addr}, mem);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(mem.read_f64(addr, 1)[0], 1.25 * 2.5 + 0.5);
}

}  // namespace
}  // namespace isaac::ptx
