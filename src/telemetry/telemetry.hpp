// Exposition surface for the runtime telemetry layer (metrics.hpp +
// trace.hpp): structured snapshots, a JSON serializer, file dumps, a periodic
// flusher thread, and environment wiring.
//
// JSON schema (one object; see DESIGN.md "Runtime telemetry" for the field
// contract):
//
//   {
//     "telemetry": {
//       "uptime_us": <monotonic us since process start>,
//       "counters":   {"dispatch.select": 12, ...},
//       "gauges":     {"pool.size": 8, ...},
//       "histograms": {"dispatch.select_us": {"count":n, "sum":s, "min":m,
//                       "max":M, "p50":..., "p99":..., "p999":...,
//                       "buckets": [[lower_bound, count], ...]}, ...},
//       "spans": [{"id":1, "parent":0, "name":"dispatch.select", "thread":0,
//                  "start_us":..., "dur_us":...}, ...],
//       "spans_dropped": 0
//     }
//   }
//
// Dumps never go to stdout: benches emit machine-readable BENCH/JSON lines
// there, and telemetry must not interleave with them. dump() targets a file
// (ISAAC_TELEMETRY=<path>, --telemetry_dump=<path>) or stderr
// (ISAAC_TELEMETRY=stderr).
//
// Environment wiring (init_from_env(), idempotent, called from the Context
// constructor and the telemetry-aware benches):
//   ISAAC_TELEMETRY=<path>|stderr   enable metrics + tracing; Context
//                                   destructors (and process-exit flusher
//                                   shutdown) rewrite <path> with the current
//                                   snapshot.
//   ISAAC_TELEMETRY_FLUSH_MS=<n>    also start the periodic flusher: every n
//                                   ms the snapshot is re-serialized and the
//                                   target rewritten in place (bounded memory:
//                                   the span ring is capacity-bounded and the
//                                   file is truncated on every flush).
//   ISAAC_TELEMETRY_SPANS=<n>       trace-ring capacity override.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac::telemetry {

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  /// Non-empty buckets only: (bucket lower bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct Snapshot {
  std::uint64_t uptime_us = 0;
  std::vector<CounterSample> counters;      // name-sorted
  std::vector<GaugeSample> gauges;          // name-sorted
  std::vector<HistogramSample> histograms;  // name-sorted
  std::vector<SpanRecord> spans;            // recording order
  std::uint64_t spans_dropped = 0;

  /// Convenience lookups for tests and assertions; 0 / nullptr when absent.
  std::uint64_t counter_value(std::string_view name) const noexcept;
  const HistogramSample* find_histogram(std::string_view name) const noexcept;
};

/// Consistent-enough view of everything registered so far: relaxed reads of
/// the metric atomics plus a copy of the span ring. include_spans=false skips
/// the ring copy (for high-frequency flushing of metrics only).
Snapshot snapshot(bool include_spans = true);

std::string to_json(const Snapshot& snap);

/// Serialize a fresh snapshot to `os` (JSON, one object, trailing newline).
void dump(std::ostream& os);

/// Rewrite `path` with a fresh snapshot ("stderr" targets stderr). Returns
/// false (and logs a warning) when the file cannot be written.
bool dump_to_file(const std::string& path);

/// The dump target configured via ISAAC_TELEMETRY ("" when unset). Context
/// destructors dump here so short-lived programs get telemetry without any
/// explicit call.
const std::string& configured_dump_path();

/// Write the configured dump, if any (no-op when ISAAC_TELEMETRY is unset).
void dump_configured();

/// Periodic flusher: every interval_ms, rewrite `path` with a fresh snapshot.
/// Idempotent start (a second start retargets the existing thread); the
/// thread is joined at process exit after one final flush.
void start_flusher(std::string path, unsigned interval_ms);
void stop_flusher();

/// Parse the ISAAC_TELEMETRY* environment (idempotent, thread-safe). Called
/// from Context's constructor so examples/tests/benches all honor the
/// variables without opting in; safe to call again any time.
void init_from_env();

}  // namespace isaac::telemetry
