// Trace spans: RAII, monotonic-clock, parent/child-linked records of the
// dispatch lifecycle (select → tier-1 predict → background refinement, search
// propose/measure rounds, cache compaction, collector sampling).
//
// A Span opened on a thread nests under that thread's innermost open span
// (thread-local current-span stack). Work that crosses threads — a background
// refinement enqueued by a dispatch — links explicitly: the enqueuing side
// captures current_span() and the task opens its Span with that id as parent,
// so a cold dispatch reconstructs end to end from one snapshot.
//
// Storage is a bounded ring guarded by a plain mutex (spans are per dispatch
// / per search round, not per candidate — hundreds per second, not millions).
// When the ring is full new records are dropped and counted, so memory stays
// bounded no matter how long the process runs; drain via snapshot() or
// clear the ring with reset. Tracing off (the default) makes the Span
// constructor a relaxed load + branch: no clock read, no id allocation.
#pragma once

#include <cstdint>
#include <vector>

namespace isaac::telemetry {

/// Global on/off for span recording, independent of the metrics switch
/// (metrics are cheap enough to keep on everywhere; traces cost a mutexed
/// ring push per span). Enabled alongside metrics by ISAAC_TELEMETRY.
bool tracing() noexcept;
void set_tracing(bool on) noexcept;

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  const char* name = "";     // static string (span sites pass literals)
  std::uint32_t thread = 0;  // dense per-thread index
  std::uint64_t start_us = 0;     // monotonic, microseconds since process start
  std::uint64_t duration_us = 0;  // rounded up to 1 for sub-microsecond spans
};

/// Monotonic microseconds since process start (steady clock).
std::uint64_t now_us() noexcept;

/// The innermost open span id on this thread (0 when none or tracing off).
/// Capture it before handing work to another thread, then pass it to the
/// Span(name, parent) constructor over there.
std::uint64_t current_span() noexcept;

/// Append a completed span directly — for phases whose start predates the
/// recording thread's involvement (e.g. queue delay measured from enqueue to
/// task start). Returns the allocated id (0 when tracing is off).
std::uint64_t record_span(const char* name, std::uint64_t parent, std::uint64_t start_us,
                          std::uint64_t end_us);

class Span {
 public:
  /// Opens a span under this thread's current span.
  explicit Span(const char* name);
  /// Opens a span under an explicit parent (cross-thread linkage). The span
  /// still becomes this thread's current span for its lifetime.
  Span(const char* name, std::uint64_t parent);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's id — 0 when tracing was off at construction. Stable for the
  /// span's lifetime; safe to capture into background tasks as their parent.
  std::uint64_t id() const noexcept { return id_; }

  /// Microseconds since this span opened (0 when inactive).
  std::uint64_t elapsed_us() const noexcept;

 private:
  void open(const char* name, std::uint64_t parent);

  const char* name_ = "";
  std::uint64_t id_ = 0;  // 0 = inactive
  std::uint64_t parent_ = 0;
  std::uint64_t prev_current_ = 0;
  std::uint64_t start_us_ = 0;
};

/// Drain-free read of the ring: copies the records accumulated so far, in
/// recording order. `dropped` (optional) reports how many spans were lost to
/// the capacity bound since the last reset.
std::vector<SpanRecord> trace_spans(std::uint64_t* dropped = nullptr);

/// Ring capacity (records). Setting it clears the ring. Default 1 << 15.
void set_trace_capacity(std::size_t capacity);

/// Clear the ring and the dropped count (reset_for_testing calls this).
void clear_trace();

}  // namespace isaac::telemetry
