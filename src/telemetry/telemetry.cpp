#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.hpp"
#include "common/thread_annotations.hpp"

namespace isaac::telemetry {

namespace detail {
// Defined in metrics.cpp; kept out of the public header.
void visit_counters(const std::function<void(const std::string&, const Counter&)>& fn);
void visit_gauges(const std::function<void(const std::string&, const Gauge&)>& fn);
void visit_histograms(const std::function<void(const std::string&, const Histogram&)>& fn);
}  // namespace detail

std::uint64_t Snapshot::counter_value(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSample* Snapshot::find_histogram(std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Snapshot snapshot(bool include_spans) {
  Snapshot snap;
  snap.uptime_us = now_us();
  detail::visit_counters([&](const std::string& name, const Counter& c) {
    snap.counters.push_back({name, c.value()});
  });
  detail::visit_gauges([&](const std::string& name, const Gauge& g) {
    snap.gauges.push_back({name, g.value()});
  });
  detail::visit_histograms([&](const std::string& name, const Histogram& h) {
    HistogramSample s;
    s.name = name;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.percentile(0.50);
    s.p99 = h.percentile(0.99);
    s.p999 = h.percentile(0.999);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (const std::uint64_t n = h.bucket_count(i)) {
        s.buckets.emplace_back(Histogram::bucket_lower_bound(i), n);
      }
    }
    snap.histograms.push_back(std::move(s));
  });
  // The family maps are ordered, so the vectors arrive name-sorted already;
  // keep the invariant explicit for future storage changes.
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  if (include_spans) snap.spans = trace_spans(&snap.spans_dropped);
  return snap;
}

namespace {

/// Shortest round-trippable formatting for the few double fields (percentile
/// interpolations); everything else in the schema is integral.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that still parses back exactly.
  for (int prec = 1; prec <= 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const Snapshot& snap) {
  std::string out;
  out.reserve(4096 + snap.spans.size() * 96);
  out += "{\"telemetry\":{\"uptime_us\":";
  out += std::to_string(snap.uptime_us);

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, snap.counters[i].name);
    out += ':';
    out += std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, snap.gauges[i].name);
    out += ':';
    out += std::to_string(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i) out += ',';
    append_json_string(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"min\":";
    out += std::to_string(h.min);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += ",\"p50\":";
    append_double(out, h.p50);
    out += ",\"p99\":";
    append_double(out, h.p99);
    out += ",\"p999\":";
    append_double(out, h.p999);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b) out += ',';
      out += '[';
      out += std::to_string(h.buckets[b].first);
      out += ',';
      out += std::to_string(h.buckets[b].second);
      out += ']';
    }
    out += "]}";
  }
  out += "},\"spans\":[";
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const auto& s = snap.spans[i];
    if (i) out += ',';
    out += "{\"id\":";
    out += std::to_string(s.id);
    out += ",\"parent\":";
    out += std::to_string(s.parent);
    out += ",\"name\":";
    append_json_string(out, s.name);
    out += ",\"thread\":";
    out += std::to_string(s.thread);
    out += ",\"start_us\":";
    out += std::to_string(s.start_us);
    out += ",\"dur_us\":";
    out += std::to_string(s.duration_us);
    out += '}';
  }
  out += "],\"spans_dropped\":";
  out += std::to_string(snap.spans_dropped);
  out += "}}\n";
  return out;
}

void dump(std::ostream& os) { os << to_json(snapshot()); }

bool dump_to_file(const std::string& path) {
  const std::string json = to_json(snapshot());
  if (path == "stderr") {
    std::fwrite(json.data(), 1, json.size(), stderr);
    std::fflush(stderr);
    return true;
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    ISAAC_LOG_WARN() << "telemetry: cannot write dump to " << path;
    return false;
  }
  os << json;
  return static_cast<bool>(os);
}

namespace {

struct DumpConfig {
  std::string path;  // "" = no configured dump
};

DumpConfig& dump_config() {
  static DumpConfig cfg;
  return cfg;
}

struct Flusher {
  sync::Mutex mutex{lock_rank::Rank::telemetry_flush};
  sync::CondVar cv;
  std::thread thread;  // start/shutdown are externally serialized; join runs unlocked
  std::string path ISAAC_GUARDED_BY(mutex);
  unsigned interval_ms ISAAC_GUARDED_BY(mutex) = 0;
  bool stop ISAAC_GUARDED_BY(mutex) = false;

  ~Flusher() { shutdown(); }

  void start(std::string p, unsigned ms) {
    sync::MutexLock lock(mutex);
    path = std::move(p);
    interval_ms = ms == 0 ? 1000 : ms;
    if (thread.joinable()) {
      cv.notify_all();  // retarget the running thread
      return;
    }
    stop = false;
    thread = std::thread([this] { loop(); });
  }

  void shutdown() {
    {
      sync::MutexLock lock(mutex);
      if (!thread.joinable()) return;
      stop = true;
    }
    cv.notify_all();
    thread.join();
    // One final flush so the file reflects the complete run.
    std::string p;
    {
      sync::MutexLock lock(mutex);
      p = path;
    }
    if (!p.empty()) dump_to_file(p);
  }

  // Manual lock()/unlock() instead of a scoped guard: the dump must run with
  // the mutex dropped (dump_to_file takes telemetry_registry, then the trace
  // ring, then logging — all below telemetry_flush, but the file write is
  // slow and start()/shutdown() must not block behind it).
  void loop() {
    mutex.lock();
    while (!stop) {
      cv.wait_for(mutex, std::chrono::milliseconds(interval_ms));
      if (stop) break;
      const std::string p = path;
      mutex.unlock();
      if (!p.empty()) dump_to_file(p);
      mutex.lock();
    }
    mutex.unlock();
  }
};

Flusher& flusher() {
  static Flusher f;
  return f;
}

}  // namespace

const std::string& configured_dump_path() { return dump_config().path; }

void dump_configured() {
  const std::string& path = configured_dump_path();
  if (!path.empty()) dump_to_file(path);
}

void start_flusher(std::string path, unsigned interval_ms) {
  flusher().start(std::move(path), interval_ms);
}

void stop_flusher() { flusher().shutdown(); }

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* target = std::getenv("ISAAC_TELEMETRY");
    if (target == nullptr || *target == '\0') return;
    set_enabled(true);
    set_tracing(true);
    dump_config().path = target;
    if (const char* spans = std::getenv("ISAAC_TELEMETRY_SPANS")) {
      const long cap = std::strtol(spans, nullptr, 10);
      if (cap > 0) set_trace_capacity(static_cast<std::size_t>(cap));
    }
    if (const char* flush = std::getenv("ISAAC_TELEMETRY_FLUSH_MS")) {
      const long ms = std::strtol(flush, nullptr, 10);
      if (ms > 0) start_flusher(target, static_cast<unsigned>(ms));
    }
  });
}

}  // namespace isaac::telemetry
