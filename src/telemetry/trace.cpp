#include "telemetry/trace.hpp"

#include <atomic>
#include <chrono>

#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace isaac::telemetry {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_next_id{1};
thread_local std::uint64_t t_current_span = 0;

struct Ring {
  sync::Mutex mutex{lock_rank::Rank::telemetry_trace};
  std::vector<SpanRecord> records ISAAC_GUARDED_BY(mutex);
  std::size_t capacity ISAAC_GUARDED_BY(mutex) = std::size_t{1} << 15;
  std::uint64_t dropped ISAAC_GUARDED_BY(mutex) = 0;

  void push(const SpanRecord& r) {
    sync::MutexLock lock(mutex);
    if (records.size() >= capacity) {
      // Drop-new: the bound protects memory; early records (the cold
      // dispatches worth reconstructing) survive, and the dropped count
      // makes the truncation visible in every snapshot.
      ++dropped;
      return;
    }
    records.push_back(r);
  }
};

Ring& ring() {
  static Ring r;
  return r;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// Touch the start time at static-init so "since process start" does not
// depend on which thread first records a span.
const auto g_start_anchor = process_start();

}  // namespace

bool tracing() noexcept { return g_tracing.load(std::memory_order_relaxed); }
void set_tracing(bool on) noexcept { g_tracing.store(on, std::memory_order_relaxed); }

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - process_start())
                                        .count());
}

std::uint64_t current_span() noexcept { return tracing() ? t_current_span : 0; }

std::uint64_t record_span(const char* name, std::uint64_t parent, std::uint64_t start_us,
                          std::uint64_t end_us) {
  if (!tracing()) return 0;
  SpanRecord r;
  r.id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  r.parent = parent;
  r.name = name;
  r.thread = static_cast<std::uint32_t>(detail::thread_index());
  r.start_us = start_us;
  r.duration_us = end_us > start_us ? end_us - start_us : 1;
  ring().push(r);
  return r.id;
}

void Span::open(const char* name, std::uint64_t parent) {
  if (!tracing()) return;
  name_ = name;
  parent_ = parent;
  id_ = g_next_id.fetch_add(1, std::memory_order_relaxed);
  prev_current_ = t_current_span;
  t_current_span = id_;
  start_us_ = now_us();
}

Span::Span(const char* name) { open(name, tracing() ? t_current_span : 0); }

Span::Span(const char* name, std::uint64_t parent) { open(name, parent); }

Span::~Span() {
  if (id_ == 0) return;  // tracing was off at construction
  t_current_span = prev_current_;
  SpanRecord r;
  r.id = id_;
  r.parent = parent_;
  r.name = name_;
  r.thread = static_cast<std::uint32_t>(detail::thread_index());
  r.start_us = start_us_;
  const std::uint64_t end = now_us();
  r.duration_us = end > start_us_ ? end - start_us_ : 1;
  ring().push(r);
}

std::uint64_t Span::elapsed_us() const noexcept {
  if (id_ == 0) return 0;
  const std::uint64_t end = now_us();
  return end > start_us_ ? end - start_us_ : 0;
}

std::vector<SpanRecord> trace_spans(std::uint64_t* dropped) {
  Ring& r = ring();
  sync::MutexLock lock(r.mutex);
  if (dropped) *dropped = r.dropped;
  return r.records;
}

void set_trace_capacity(std::size_t capacity) {
  Ring& r = ring();
  sync::MutexLock lock(r.mutex);
  r.capacity = capacity == 0 ? 1 : capacity;
  r.records.clear();
  r.records.shrink_to_fit();
  r.dropped = 0;
}

void clear_trace() {
  Ring& r = ring();
  sync::MutexLock lock(r.mutex);
  r.records.clear();
  r.dropped = 0;
}

}  // namespace isaac::telemetry
