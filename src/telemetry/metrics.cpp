#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>

#include "common/thread_annotations.hpp"
#include "telemetry/trace.hpp"

namespace isaac::telemetry {

namespace detail {

std::atomic<bool> g_enabled{false};

std::size_t thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

std::uint64_t Histogram::min() const noexcept {
  if (count() == 0) return 0;
  return min_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

double Histogram::percentile(double q) const noexcept {
  // Relaxed snapshot of the buckets; the total is recomputed from the
  // snapshot itself so ranks stay internally consistent even while writers
  // race.
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    n += counts[i];
  }
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Order-statistic position q·(n−1), interpolated — mirrors stats::percentile.
  const double pos = q * static_cast<double>(n - 1);
  const auto rank_value = [&](std::uint64_t rank) {
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (rank < seen) return bucket_representative(i);
    }
    return bucket_representative(kBuckets - 1);
  };
  const auto lo = static_cast<std::uint64_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  const double a = rank_value(lo);
  if (frac == 0.0) return a;
  const double b = rank_value(lo + 1);
  return a + frac * (b - a);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

/// One map per instrument kind; unique_ptr values keep addresses stable
/// across rehashes and for the process lifetime (entries are never erased).
template <typename T>
struct Family {
  sync::Mutex mutex{lock_rank::Rank::telemetry_registry};
  std::map<std::string, std::unique_ptr<T>, std::less<>> items ISAAC_GUARDED_BY(mutex);

  // Returning a reference out of the locked scope is sound (and analysis-
  // clean): the unique_ptr node is never erased, so the instrument outlives
  // the registry lock and is itself lock-free.
  T& get(std::string_view name) {
    sync::MutexLock lock(mutex);
    auto it = items.find(name);
    if (it == items.end()) {
      it = items.emplace(std::string(name), std::make_unique<T>()).first;
    }
    return *it->second;
  }

  // fn runs under the registry mutex (rank telemetry_registry): it must not
  // take any lock at or above that rank. The snapshot/reset visitors only
  // read atomics, which is the point.
  template <typename Fn>
  void for_each(Fn&& fn) {
    sync::MutexLock lock(mutex);
    for (const auto& [name, item] : items) fn(name, *item);
  }
};

Family<Counter>& counters() {
  static Family<Counter> f;
  return f;
}
Family<Gauge>& gauges() {
  static Family<Gauge> f;
  return f;
}
Family<Histogram>& histograms() {
  static Family<Histogram> f;
  return f;
}

}  // namespace

Counter& counter(std::string_view name) { return counters().get(name); }
Gauge& gauge(std::string_view name) { return gauges().get(name); }
Histogram& histogram(std::string_view name) { return histograms().get(name); }

namespace detail {

// Snapshot hooks for telemetry.cpp (kept out of the public header).
void visit_counters(const std::function<void(const std::string&, const Counter&)>& fn) {
  counters().for_each(fn);
}
void visit_gauges(const std::function<void(const std::string&, const Gauge&)>& fn) {
  gauges().for_each(fn);
}
void visit_histograms(const std::function<void(const std::string&, const Histogram&)>& fn) {
  histograms().for_each(fn);
}

}  // namespace detail

void reset_for_testing() {
  counters().for_each([](const std::string&, Counter& c) { c.reset(); });
  gauges().for_each([](const std::string&, Gauge& g) { g.reset(); });
  histograms().for_each([](const std::string&, Histogram& h) { h.reset(); });
  clear_trace();
}

}  // namespace isaac::telemetry
