// Process-wide metrics registry: lock-free counters, gauges and fixed-bucket
// latency histograms, registered by name and aggregated on demand.
//
// Overhead contract (see DESIGN.md, "Runtime telemetry"):
//
//  * Disabled (the default): every record path is one relaxed atomic load and
//    a predictable branch — no clock reads, no registry lookups, no atomic
//    RMW. The ISAAC_TM_* macros additionally skip the one-time registry
//    lookup, so a cold call site pays nothing until telemetry is enabled.
//  * Enabled: counters are striped across cache-line-padded per-thread slots
//    (relaxed fetch_add on a slot other threads rarely touch); histograms are
//    one relaxed fetch_add on a fixed bucket plus min/max CAS loops. Nothing
//    on the record path allocates, locks, or formats text.
//
// Registration is by name ("dispatch.select_us"): the first call creates the
// instrument under a mutex, later calls return the same address, and
// addresses stay stable for the process lifetime — call sites cache a
// reference in a function-local static. reset_for_testing() zeroes values in
// place and never invalidates those references.
//
// Histograms are fixed-bucket log-linear (HdrHistogram-style): integer values
// 0..15 are exact, larger values land in one of 8 sub-buckets per power of
// two, so any recorded value is reconstructed with ≤ 1/16 relative error.
// Percentile extraction (p50/p99/p999) is exact rank selection over the
// recorded distribution with that bounded value error.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace isaac::telemetry {

/// Global on/off for metric recording. Off (default) makes every record call
/// a relaxed load + branch. Enabled automatically when ISAAC_TELEMETRY is set
/// (see telemetry.hpp) or explicitly by benches/tests.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {
extern std::atomic<bool> g_enabled;
/// Small dense per-thread index (0, 1, 2, …) for counter striping.
std::size_t thread_index() noexcept;
}  // namespace detail

inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonically increasing count, striped across cache-line-padded slots so
/// concurrent increments from different threads do not share a cache line.
/// value() sums the stripes (racing increments may or may not be included —
/// the usual relaxed-snapshot semantics; nothing is ever lost).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    stripes_[detail::thread_index() & (kStripes - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 16;  // power of two (mask above)
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// Last-writer-wins instantaneous value (pool sizes, pending-work depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket log-linear histogram over non-negative values (latencies in
/// microseconds by convention: name them *_us). Supports exact-rank
/// percentile extraction with ≤ 1/16 relative value error per sample.
class Histogram {
 public:
  static constexpr std::size_t kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kBuckets = ((64 - kSubBits) << kSubBits) + (1u << (kSubBits + 1));

  void record(double value) noexcept {
    if (!enabled()) return;
    const std::uint64_t u = value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
    buckets_[bucket_index(u)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(u, std::memory_order_relaxed);
    update_min(u);
    update_max(u);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const noexcept;  // 0 when empty
  std::uint64_t max() const noexcept;  // 0 when empty

  /// q in [0, 1]: the value at order-statistic position q·(n−1), linearly
  /// interpolated between bucket representatives — the histogram analogue of
  /// stats::percentile on the raw samples.
  double percentile(double q) const noexcept;

  void reset() noexcept;

  /// Bucket index for an integer value: 0..2^(kSubBits+1)−1 map exactly,
  /// larger values keep the top kSubBits+1 significant bits.
  static std::size_t bucket_index(std::uint64_t u) noexcept {
    if (u < (std::uint64_t{1} << (kSubBits + 1))) return static_cast<std::size_t>(u);
    std::size_t top = 63;
    while (!(u >> top)) --top;  // index of highest set bit
    const std::size_t shift = top - kSubBits;
    return ((shift + 1) << kSubBits) +
           static_cast<std::size_t>((u >> shift) & ((1u << kSubBits) - 1));
  }

  /// Midpoint of the bucket's value range — what percentile() interpolates.
  static double bucket_representative(std::size_t idx) noexcept {
    if (idx < (std::size_t{1} << (kSubBits + 1))) return static_cast<double>(idx);
    const std::size_t shift = (idx >> kSubBits) - 1;
    const std::uint64_t base =
        (std::uint64_t{(1u << kSubBits)} + (idx & ((1u << kSubBits) - 1))) << shift;
    const std::uint64_t width = std::uint64_t{1} << shift;
    return static_cast<double>(base) + static_cast<double>(width - 1) / 2.0;
  }

  /// Lower bound of the bucket's value range — exposed for exposition.
  static std::uint64_t bucket_lower_bound(std::size_t idx) noexcept {
    if (idx < (std::size_t{1} << (kSubBits + 1))) return idx;
    const std::size_t shift = (idx >> kSubBits) - 1;
    return (std::uint64_t{(1u << kSubBits)} + (idx & ((1u << kSubBits) - 1))) << shift;
  }

  std::uint64_t bucket_count(std::size_t idx) const noexcept {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  void update_min(std::uint64_t u) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (u < cur && !min_.compare_exchange_weak(cur, u, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t u) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (u > cur && !max_.compare_exchange_weak(cur, u, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// Registry lookup: creates on first use, returns a stable reference.
/// Lock-taking — call once and cache (or use the ISAAC_TM_* macros).
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Zero every registered instrument in place (addresses stay valid) and clear
/// the trace ring. For tests and bench isolation only.
void reset_for_testing();

}  // namespace isaac::telemetry

// Hot-path macros: when telemetry is disabled the whole statement is one
// relaxed load + branch; the registry lookup happens once, on the first
// enabled pass through the call site.
#define ISAAC_TM_COUNT(name) ISAAC_TM_COUNT_N(name, 1)

#define ISAAC_TM_COUNT_N(name, n)                                           \
  do {                                                                      \
    if (::isaac::telemetry::enabled()) {                                    \
      static ::isaac::telemetry::Counter& isaac_tm_c =                      \
          ::isaac::telemetry::counter(name);                                \
      isaac_tm_c.add(n);                                                    \
    }                                                                       \
  } while (0)

#define ISAAC_TM_RECORD(name, value)                                        \
  do {                                                                      \
    if (::isaac::telemetry::enabled()) {                                    \
      static ::isaac::telemetry::Histogram& isaac_tm_h =                    \
          ::isaac::telemetry::histogram(name);                              \
      isaac_tm_h.record(value);                                             \
    }                                                                       \
  } while (0)
