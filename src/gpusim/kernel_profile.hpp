// KernelProfile: the contract between the kernel generators and the
// performance model.
//
// The generators (src/codegen) lower a parameterized GEMM/CONV configuration
// to (a) a PTX-like module and (b) this static profile: per-thread instruction
// mix, per-block resource usage, and per-launch memory traffic. The profile is
// exactly the information ptxas + a profiler would report on real hardware,
// which is what the paper's regression model implicitly learns from.
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/types.hpp"

namespace isaac::gpusim {

/// How out-of-range tiles are handled (§8.3 of the paper).
enum class BoundsMode {
  /// PTX predicated loads/stores: ~2% overhead. ISAAC's choice.
  Predicated,
  /// CUDA-C style branch around the edge: 15-20% overhead on the whole kernel.
  Branchy,
  /// Pad inputs to tile multiples: full-tile work on padded data.
  Padded,
};

struct KernelProfile {
  std::string label;  // human-readable kernel name for logs/benches

  // ---- launch shape ----
  std::int64_t grid_blocks = 0;  // total thread blocks in the grid
  int threads_per_block = 0;

  // ---- per-block resources ----
  int regs_per_thread = 0;
  int smem_bytes_per_block = 0;

  // ---- per-thread instruction mix (average over the whole kernel) ----
  double fma_insts = 0.0;        // multiply-accumulate instructions
  double int_insts = 0.0;        // integer/address arithmetic
  double ld_global_insts = 0.0;  // global load instructions
  double st_global_insts = 0.0;  // plain global stores
  double atom_global_insts = 0.0;  // global atomic adds (split reductions)
  double ld_shared_insts = 0.0;
  double st_shared_insts = 0.0;
  double bar_syncs = 0.0;

  /// Average ways of shared-memory bank conflict (1 = conflict-free).
  double smem_conflict_ways = 1.0;

  // ---- latency-hiding hints (Volkov-style concurrency) ----
  /// Independent FMA streams per thread (≈ MS*NS accumulators). Together with
  /// resident warps this sets the concurrency that hides ALU latency.
  double ilp_arith = 1.0;
  /// Outstanding global loads a thread issues back-to-back per prefetch round
  /// (memory-level parallelism).
  double mlp_mem = 1.0;
  /// Independent shared-memory loads per inner step (≈ MS+NS operand fetches).
  double ilp_smem = 1.0;

  // ---- per-launch memory traffic ----
  /// Compulsory DRAM read bytes (unique data the kernel must fetch).
  double dram_read_bytes = 0.0;
  /// Total read bytes requested by all blocks (>= compulsory; the surplus is
  /// re-reads of tiles shared across blocks, candidate L2 hits).
  double requested_read_bytes = 0.0;
  /// DRAM write bytes (atomics count read+write downstream).
  double dram_write_bytes = 0.0;
  /// Fraction of requested bytes actually usable after coalescing (1 = fully
  /// coalesced; < 1 inflates traffic).
  double coalescing_efficiency = 1.0;
  /// Unique bytes one scheduling wave of blocks must read (tiles shared by
  /// co-resident blocks counted once) — input to the L2 reuse model.
  double wave_unique_bytes_hint = 0.0;
  /// Instantaneous working set: the U-wide input slices all co-resident
  /// blocks are streaming at one moment. Re-reads hit in L2 iff this fits.
  double slice_working_set_bytes = 0.0;

  // ---- semantics ----
  DataType dtype = DataType::F32;
  /// True when fp16 math is emitted as paired fp16x2 instructions (each FMA
  /// instruction retires two MACs).
  bool uses_fp16x2 = false;
  BoundsMode bounds = BoundsMode::Predicated;
  /// Multiplier on SM cycles for boundary handling; 1.0 when tiles divide the
  /// problem exactly. Set by the generator from BoundsMode (§8.3: predication
  /// ≈ 1.02, branchy ≈ 1.15-1.20; padding instead inflates the work itself).
  double bounds_overhead_factor = 1.0;
  /// Auxiliary kernel launches this kernel requires (e.g. the C zero-init
  /// pass before a K_G-split accumulation with global atomics).
  int extra_launches = 0;
  /// Bytes streamed by auxiliary passes that cannot overlap the main kernel
  /// (pad/unpad copies in Padded bounds mode). Costed additively at DRAM
  /// bandwidth.
  double extra_stream_bytes = 0.0;

  /// FLOPs that contribute to the user-visible result (2*M*N*K for GEMM).
  /// Benches derive TFLOPS as useful_flops / simulated time, so kernels that
  /// burn threads on out-of-range tiles pay for it.
  double useful_flops = 0.0;

  std::int64_t total_threads() const noexcept {
    return grid_blocks * static_cast<std::int64_t>(threads_per_block);
  }
};

}  // namespace isaac::gpusim
