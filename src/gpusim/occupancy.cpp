#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace isaac::gpusim {

namespace {
int round_up(int value, int granularity) {
  return ((value + granularity - 1) / granularity) * granularity;
}
}  // namespace

OccupancyResult occupancy(const DeviceDescriptor& dev, int threads_per_block,
                          int regs_per_thread, int smem_bytes_per_block) {
  OccupancyResult out;

  // Hard per-block legality first.
  if (threads_per_block <= 0 || threads_per_block > dev.max_threads_per_block) {
    out.limiter = "threads";
    return out;
  }
  if (regs_per_thread <= 0 || regs_per_thread > dev.max_registers_per_thread) {
    out.limiter = "registers";
    return out;
  }
  if (smem_bytes_per_block < 0 || smem_bytes_per_block > dev.smem_per_block_bytes) {
    out.limiter = "smem";
    return out;
  }

  const int warps_per_block = (threads_per_block + dev.warp_size - 1) / dev.warp_size;

  // Limit 1: warp slots.
  const int by_warps = dev.max_warps_per_sm / warps_per_block;
  // Limit 2: registers (allocated per warp at a fixed granularity).
  const int regs_per_warp = round_up(regs_per_thread * dev.warp_size, dev.reg_alloc_granularity);
  const int by_regs = dev.registers_per_sm / (regs_per_warp * warps_per_block);
  // Limit 3: shared memory.
  const int smem_alloc = smem_bytes_per_block > 0
                             ? round_up(smem_bytes_per_block, dev.smem_alloc_granularity)
                             : 0;
  const int by_smem = smem_alloc > 0 ? dev.smem_per_sm_bytes / smem_alloc : dev.max_blocks_per_sm;
  // Limit 4: resident-block slots.
  const int by_blocks = dev.max_blocks_per_sm;

  int blocks = std::min(std::min(by_warps, by_regs), std::min(by_smem, by_blocks));
  if (blocks <= 0) {
    // Resources fit per-block limits but not even one block fits an SM
    // (possible when the register file is the binding constraint).
    out.limiter = by_regs <= 0 ? "registers" : "smem";
    return out;
  }

  out.blocks_per_sm = blocks;
  out.warps_per_sm = blocks * warps_per_block;
  out.occupancy =
      static_cast<double>(out.warps_per_sm) / static_cast<double>(dev.max_warps_per_sm);

  if (blocks == by_warps) {
    out.limiter = "warps";
  } else if (blocks == by_regs) {
    out.limiter = "registers";
  } else if (blocks == by_smem) {
    out.limiter = "smem";
  } else {
    out.limiter = "blocks";
  }
  return out;
}

}  // namespace isaac::gpusim
