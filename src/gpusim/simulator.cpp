#include "gpusim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/failpoint.hpp"
#include "common/rng.hpp"

namespace isaac::gpusim {

Simulator::Simulator(const DeviceDescriptor& dev, double noise_sigma, std::uint64_t seed)
    : dev_(dev), noise_sigma_(noise_sigma), seed_(seed) {}

std::uint64_t Simulator::profile_fingerprint(const KernelProfile& p) const {
  // FNV-1a over the fields that determine performance; label excluded so two
  // identically configured kernels time identically.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto mixd = [&](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(static_cast<std::uint64_t>(p.grid_blocks));
  mix(static_cast<std::uint64_t>(p.threads_per_block));
  mix(static_cast<std::uint64_t>(p.regs_per_thread));
  mix(static_cast<std::uint64_t>(p.smem_bytes_per_block));
  mixd(p.fma_insts);
  mixd(p.int_insts);
  mixd(p.ld_global_insts);
  mixd(p.st_global_insts);
  mixd(p.atom_global_insts);
  mixd(p.ld_shared_insts);
  mixd(p.st_shared_insts);
  mixd(p.dram_read_bytes);
  mixd(p.useful_flops);
  mix(static_cast<std::uint64_t>(p.dtype));
  mix(p.uses_fp16x2 ? 1 : 0);
  mix(seed_);
  return h;
}

LaunchResult Simulator::launch(const KernelProfile& profile, int rep) const {
  // Chaos site for the measurement oracle — every search's measure() lands
  // here, so this is where "the device timed out / errored" injects. The
  // drive loop's bounded retry and Context's circuit breaker absorb it.
  ISAAC_FAILPOINT("measure.throw");
  launches_.fetch_add(1, std::memory_order_relaxed);
  LaunchResult out;
  out.model = gpusim::evaluate(dev_, profile);
  if (!out.model.valid) return out;

  double factor = 1.0;
  if (noise_sigma_ > 0.0) {
    Rng rng(profile_fingerprint(profile) ^
            (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(rep) + 1)));
    factor = rng.lognormal_factor(noise_sigma_);
  }
  out.valid = true;
  out.seconds = out.model.seconds * factor;
  out.tflops = profile.useful_flops / out.seconds / 1e12;
  return out;
}

LaunchResult Simulator::launch_median(const KernelProfile& profile, int reps) const {
  LaunchResult best;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(std::max(reps, 1)));
  for (int i = 0; i < std::max(reps, 1); ++i) {
    LaunchResult r = launch(profile, i);
    if (!r.valid) return r;
    times.push_back(r.seconds);
    best = r;
  }
  std::nth_element(times.begin(), times.begin() + times.size() / 2, times.end());
  best.seconds = times[times.size() / 2];
  best.tflops = profile.useful_flops / best.seconds / 1e12;
  return best;
}

PerfBreakdown Simulator::evaluate(const KernelProfile& profile) const {
  return gpusim::evaluate(dev_, profile);
}

}  // namespace isaac::gpusim
