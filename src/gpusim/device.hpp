// Device descriptors for the two test platforms of the paper (Table 3).
//
// The descriptor carries both the headline numbers the paper prints (CUDA
// cores, boost clock, peak TFLOPS, bandwidth) and the micro-architectural
// quantities the performance model needs (per-SM resource limits, pipeline
// latencies, throughput ratios per data type).
#pragma once

#include <cstdint>
#include <string>

#include "gpusim/types.hpp"

namespace isaac::gpusim {

enum class Architecture { Maxwell, Pascal };

struct DeviceDescriptor {
  // ---- identity (Table 3 rows) ----
  std::string name;
  std::string market_segment;
  Architecture arch = Architecture::Maxwell;
  std::string chip;  // e.g. "GM200"

  // ---- compute ----
  int num_sms = 0;
  int cuda_cores_per_sm = 0;
  double boost_clock_ghz = 0.0;
  /// Advertised single-precision peak, TFLOPS (paper's "Processing Power").
  double peak_sp_tflops = 0.0;

  // ---- memory ----
  double dram_bandwidth_gbs = 0.0;  // GB/s
  double memory_gb = 0.0;
  std::string memory_type;  // "GDDR5" / "HBM2"
  double l2_bytes = 0.0;
  int tdp_watts = 0;

  // ---- per-SM occupancy limits (CUDA occupancy rules) ----
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 32;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  int registers_per_sm = 65536;
  int max_registers_per_thread = 255;
  int smem_per_sm_bytes = 0;
  int smem_per_block_bytes = 49152;
  /// Register allocation granularity per warp (regs rounded up to this).
  int reg_alloc_granularity = 256;
  /// Shared memory allocation granularity per block.
  int smem_alloc_granularity = 256;

  // ---- pipeline model parameters ----
  /// FMA issue latency in cycles (dependent-instruction latency).
  double alu_latency_cycles = 6.0;
  /// Average DRAM round-trip latency in cycles.
  double mem_latency_cycles = 400.0;
  /// Shared-memory load latency in cycles.
  double smem_latency_cycles = 24.0;
  /// Warp-wide global LD/ST instructions the SM can issue per cycle.
  double lsu_warp_inst_per_cycle = 0.25;
  /// Warp-wide shared-memory instructions per cycle (conflict-free).
  double smem_warp_inst_per_cycle = 1.0;
  /// Global atomic throughput penalty relative to plain stores (>1 = slower).
  double atomic_penalty = 4.0;
  /// Kernel launch + driver overhead, microseconds.
  double launch_overhead_us = 4.0;

  // ---- per-dtype throughput ratios relative to fp32 FMA rate ----
  /// Rate for unpaired fp16 math (scalar half ops).
  double fp16_scalar_ratio = 1.0;
  /// Rate for paired fp16x2 math: each instruction retires 2 FMAs.
  double fp16x2_ratio = 2.0;
  double fp64_ratio = 1.0 / 32.0;

  /// fp32 FMA warp-instructions per cycle per SM.
  double fma_warp_inst_per_cycle() const noexcept {
    return static_cast<double>(cuda_cores_per_sm) / warp_size;
  }

  /// Advertised peak for a data type assuming ideal instruction selection
  /// (fp16 uses fp16x2 pairing).
  double peak_tflops(DataType dt) const noexcept {
    switch (dt) {
      case DataType::F16:
        return peak_sp_tflops * fp16x2_ratio;
      case DataType::F64:
        return peak_sp_tflops * fp64_ratio;
      case DataType::F32:
      default:
        return peak_sp_tflops;
    }
  }
};

/// GeForce GTX 980 Ti (Maxwell GM200) — consumer card of Table 3.
const DeviceDescriptor& gtx980ti();

/// Tesla P100 PCIe (Pascal GP100) — server card of Table 3.
const DeviceDescriptor& tesla_p100();

/// Look up by name ("gtx980ti", "p100", case-insensitive, some aliases).
const DeviceDescriptor* find_device(const std::string& name);

}  // namespace isaac::gpusim
