// Simulator: the single timing oracle the rest of the system talks to.
//
// Plays the role the physical GPU plays in the paper: the tuner's data
// collector, the runtime's top-k re-evaluation, and every bench obtain kernel
// timings exclusively through Simulator::launch(). Measurements carry
// multiplicative lognormal noise seeded deterministically from the kernel
// profile, so (a) re-measuring the same kernel reproduces the same sample
// sequence, and (b) the regression model has to cope with noisy targets just
// as in the paper.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/perf_model.hpp"

namespace isaac::gpusim {

struct LaunchResult {
  bool valid = false;
  double seconds = 0.0;   // noisy measurement
  double tflops = 0.0;    // useful_flops / seconds
  PerfBreakdown model;    // noise-free model output + counters
};

class Simulator {
 public:
  /// noise_sigma: sigma of the lognormal run-to-run factor (0 disables noise).
  explicit Simulator(const DeviceDescriptor& dev, double noise_sigma = 0.03,
                     std::uint64_t seed = 0xC0FFEE);

  const DeviceDescriptor& device() const noexcept { return dev_; }
  double noise_sigma() const noexcept { return noise_sigma_; }

  /// One timed launch. `rep` selects the noise draw: re-launching the same
  /// kernel with the same rep reproduces the same measurement, different reps
  /// model run-to-run variance. Thread-safe (the only mutable state is the
  /// relaxed launch counter).
  LaunchResult launch(const KernelProfile& profile, int rep = 0) const;

  /// Median of `reps` launches — what a careful benchmark would report.
  LaunchResult launch_median(const KernelProfile& profile, int reps) const;

  /// Noise-free model evaluation (used by tests and analysis benches).
  PerfBreakdown evaluate(const KernelProfile& profile) const;

  /// Total timed launches served — the "device measurements spent" odometer
  /// the two-tier dispatch tests use to prove a code path measured nothing.
  std::uint64_t launches() const noexcept { return launches_.load(std::memory_order_relaxed); }

 private:
  std::uint64_t profile_fingerprint(const KernelProfile& p) const;

  DeviceDescriptor dev_;
  double noise_sigma_;
  std::uint64_t seed_;
  mutable std::atomic<std::uint64_t> launches_{0};
};

}  // namespace isaac::gpusim
