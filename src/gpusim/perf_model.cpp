#include "gpusim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace isaac::gpusim {

namespace {

/// Volkov eq. (2): average cycles per warp-instruction for a pipeline with
/// `latency` and `throughput` (warp-instructions/cycle) when `concurrency`
/// independent instruction streams are available to the scheduler.
double unit_cost(double latency, double throughput, double concurrency) {
  const double c = std::max(concurrency, 1.0);
  return std::max(latency / c, 1.0 / throughput);
}

}  // namespace

PerfBreakdown evaluate(const DeviceDescriptor& dev, const KernelProfile& p) {
  PerfBreakdown out;

  if (p.grid_blocks <= 0 || p.threads_per_block <= 0) {
    out.invalid_reason = "empty launch";
    return out;
  }
  if (p.useful_flops <= 0.0) {
    out.invalid_reason = "no useful work";
    return out;
  }

  out.occ = occupancy(dev, p.threads_per_block, p.regs_per_thread, p.smem_bytes_per_block);
  if (out.occ.blocks_per_sm <= 0) {
    out.invalid_reason = std::string("kernel cannot launch: ") + out.occ.limiter + " limit";
    return out;
  }

  const int warps_per_block = (p.threads_per_block + dev.warp_size - 1) / dev.warp_size;

  // ---- wave structure -----------------------------------------------------
  // The block scheduler streams new blocks as residents finish, so large
  // grids are not quantized into hard waves; only the tail straggles (a
  // fraction of one wave where some SMs idle).
  const double concurrent_blocks =
      static_cast<double>(out.occ.blocks_per_sm) * dev.num_sms;
  const double raw_waves = static_cast<double>(p.grid_blocks) / concurrent_blocks;
  if (raw_waves <= 1.0) {
    out.waves = 1.0;
  } else {
    const double frac = raw_waves - std::floor(raw_waves);
    out.waves = raw_waves + (frac > 1e-9 ? 0.3 : 0.0);
  }

  // Warps actually co-resident on a busy SM: capped by the grid itself when
  // it is too small to fill the device (the ICA / small-output regime).
  const double blocks_per_busy_sm =
      std::min<double>(out.occ.blocks_per_sm,
                       std::ceil(static_cast<double>(p.grid_blocks) / dev.num_sms));
  out.resident_warps = blocks_per_busy_sm * warps_per_block;
  const double n = out.resident_warps;

  // ---- per-SM per-wave instruction totals (warp-instructions) -------------
  // Each resident warp retires the per-thread counts once (SIMT).
  const double warps_per_wave_sm = blocks_per_busy_sm * warps_per_block;

  // Arithmetic pipeline. fp64 and fp16 scale the FMA issue rate; fp16x2
  // pairing was already folded into fma_insts by the generator (two MACs per
  // instruction), so its instruction rate matches fp32 while FLOPs double.
  double fma_tp = dev.fma_warp_inst_per_cycle();
  switch (p.dtype) {
    case DataType::F64:
      fma_tp *= dev.fp64_ratio;
      break;
    case DataType::F16:
      fma_tp *= p.uses_fp16x2 ? dev.fp16x2_ratio / 2.0 : dev.fp16_scalar_ratio;
      break;
    case DataType::F32:
      break;
  }
  // Integer/address arithmetic shares issue slots with FMA at fp32 rate.
  const double int_tp = dev.fma_warp_inst_per_cycle();

  const double arith_conc = n * std::max(1.0, p.ilp_arith);
  const double fma_cycles =
      p.fma_insts * warps_per_wave_sm * unit_cost(dev.alu_latency_cycles, fma_tp, arith_conc);
  const double int_cycles =
      p.int_insts * warps_per_wave_sm * unit_cost(dev.alu_latency_cycles, int_tp, arith_conc);
  out.cycles_arith = fma_cycles + int_cycles;

  // Global memory pipeline: loads, stores, and atomics (which serialize at
  // the L2 and cost a penalty factor in issue slots).
  const double mem_insts = p.ld_global_insts + p.st_global_insts +
                           p.atom_global_insts * dev.atomic_penalty;
  const double mem_conc = n * std::max(1.0, p.mlp_mem);
  out.cycles_mem = mem_insts * warps_per_wave_sm *
                   unit_cost(dev.mem_latency_cycles, dev.lsu_warp_inst_per_cycle, mem_conc);

  // Shared-memory pipeline; bank conflicts divide throughput.
  const double smem_insts = p.ld_shared_insts + p.st_shared_insts;
  const double smem_tp = dev.smem_warp_inst_per_cycle / std::max(1.0, p.smem_conflict_ways);
  const double smem_conc = n * std::max(1.0, p.ilp_smem);
  out.cycles_smem =
      smem_insts * warps_per_wave_sm * unit_cost(dev.smem_latency_cycles, smem_tp, smem_conc);

  // Barriers: every sync drains the block's warps; cost grows mildly with
  // block width.
  out.cycles_sync = p.bar_syncs * (30.0 + 2.0 * warps_per_block);

  // ---- per-wave time: pipelines overlap (paper eq. (3)) -------------------
  double wave_cycles =
      std::max({out.cycles_arith, out.cycles_mem, out.cycles_smem}) + out.cycles_sync;
  // Pipeline fill: the first prefetch round cannot be hidden.
  wave_cycles += dev.mem_latency_cycles;
  wave_cycles *= p.bounds_overhead_factor;

  const double clock_hz = dev.boost_clock_ghz * 1e9;
  out.time_sm_s = out.waves * wave_cycles / clock_hz;

  // ---- DRAM traffic model --------------------------------------------------
  // Requested bytes inflate when accesses are poorly coalesced.
  const double coalescing = std::clamp(p.coalescing_efficiency, 0.05, 1.0);
  const double requested = p.requested_read_bytes / coalescing;
  const double compulsory = std::min(p.dram_read_bytes / coalescing, requested);

  // Re-reads of tiles shared between concurrently resident blocks hit in L2
  // when the instantaneous slice working set fits; unsynchronized blocks
  // drift, so the effective footprint is a few slices wide.
  const double per_wave_unique = std::max(p.wave_unique_bytes_hint, 1.0);
  const double unique_total =
      std::clamp(out.waves * per_wave_unique, compulsory, std::max(requested, compulsory));
  // Blocks are not lockstep-synchronized: the live footprint is a few U-wide
  // slices deep, not one.
  constexpr double kDriftFactor = 4.0;
  const double slice_ws = p.slice_working_set_bytes * kDriftFactor;
  const double capacity_hit =
      slice_ws > 0.0 ? std::clamp(dev.l2_bytes / slice_ws, 0.0, 1.0) : 1.0;

  out.dram_read_bytes = requested - (requested - unique_total) * capacity_hit;
  out.l2_hit_rate = requested > 0.0 ? 1.0 - out.dram_read_bytes / requested : 0.0;

  // Atomics read-modify-write at the memory: double the write traffic share
  // issued through atom.add.
  out.dram_write_bytes = p.dram_write_bytes;

  const double bw = dev.dram_bandwidth_gbs * 1e9;
  out.time_dram_s = (out.dram_read_bytes + out.dram_write_bytes) / bw;

  // ---- combine -------------------------------------------------------------
  const double overhead_s = (1 + p.extra_launches) * dev.launch_overhead_us * 1e-6 +
                            p.extra_stream_bytes / bw;
  out.seconds = std::max(out.time_sm_s, out.time_dram_s) + overhead_s;
  out.achieved_tflops = p.useful_flops / out.seconds / 1e12;

  if (out.time_dram_s >= out.time_sm_s) {
    out.bottleneck = "dram";
  } else if (out.cycles_arith >= out.cycles_mem && out.cycles_arith >= out.cycles_smem) {
    out.bottleneck = "compute";
  } else if (out.cycles_mem >= out.cycles_smem) {
    out.bottleneck = "memory-issue";
  } else {
    out.bottleneck = "smem";
  }

  out.valid = true;
  return out;
}

}  // namespace isaac::gpusim
