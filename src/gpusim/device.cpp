#include "gpusim/device.hpp"

#include "common/strings.hpp"

namespace isaac::gpusim {

bool parse_dtype(const std::string& s, DataType& out) noexcept {
  const std::string l = strings::to_lower(s);
  if (l == "f16" || l == "half" || l == "fp16") {
    out = DataType::F16;
  } else if (l == "f32" || l == "float" || l == "fp32") {
    out = DataType::F32;
  } else if (l == "f64" || l == "double" || l == "fp64") {
    out = DataType::F64;
  } else {
    return false;
  }
  return true;
}

const DeviceDescriptor& gtx980ti() {
  static const DeviceDescriptor dev = [] {
    DeviceDescriptor d;
    d.name = "GTX 980 TI";
    d.market_segment = "Consumer";
    d.arch = Architecture::Maxwell;
    d.chip = "GM200";
    d.num_sms = 22;
    d.cuda_cores_per_sm = 128;  // 22 * 128 = 2816 CUDA cores
    d.boost_clock_ghz = 1.075;
    d.peak_sp_tflops = 5.8;
    d.dram_bandwidth_gbs = 336.0;
    d.memory_gb = 6.0;
    d.memory_type = "GDDR5";
    d.l2_bytes = 3.0 * 1024 * 1024;
    d.tdp_watts = 250;
    d.smem_per_sm_bytes = 96 * 1024;
    d.smem_per_block_bytes = 48 * 1024;
    // Maxwell: 4-cycle dependent-issue FMA, GDDR5 latency ~ 380 cycles.
    d.alu_latency_cycles = 6.0;
    d.mem_latency_cycles = 380.0;
    // GM200 has no fast fp16x2 path and a 1/32 fp64 rate.
    d.fp16_scalar_ratio = 1.0;
    d.fp16x2_ratio = 1.0;
    d.fp64_ratio = 1.0 / 32.0;
    return d;
  }();
  return dev;
}

const DeviceDescriptor& tesla_p100() {
  static const DeviceDescriptor dev = [] {
    DeviceDescriptor d;
    d.name = "Tesla P100 (PCIE)";
    d.market_segment = "Server";
    d.arch = Architecture::Pascal;
    d.chip = "GP100";
    d.num_sms = 56;
    d.cuda_cores_per_sm = 64;  // 56 * 64 = 3584 CUDA cores
    d.boost_clock_ghz = 1.353;
    d.peak_sp_tflops = 9.7;
    d.dram_bandwidth_gbs = 732.0;
    d.memory_gb = 16.0;
    d.memory_type = "HBM2";
    d.l2_bytes = 4.0 * 1024 * 1024;
    d.tdp_watts = 250;
    d.smem_per_sm_bytes = 64 * 1024;
    d.smem_per_block_bytes = 48 * 1024;
    // HBM2: wider bus, higher latency, vastly more bandwidth.
    d.alu_latency_cycles = 6.0;
    d.mem_latency_cycles = 440.0;
    // GP100: full-rate fp16x2 (2x) and half-rate fp64.
    d.fp16_scalar_ratio = 1.0;
    d.fp16x2_ratio = 2.0;
    d.fp64_ratio = 0.5;
    return d;
  }();
  return dev;
}

const DeviceDescriptor* find_device(const std::string& name) {
  const std::string l = strings::to_lower(name);
  if (l == "gtx980ti" || l == "gtx 980 ti" || l == "980ti" || l == "maxwell") {
    return &gtx980ti();
  }
  if (l == "p100" || l == "tesla p100" || l == "teslap100" || l == "pascal") {
    return &tesla_p100();
  }
  return nullptr;
}

}  // namespace isaac::gpusim
