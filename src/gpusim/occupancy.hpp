// CUDA-style occupancy calculator.
//
// Occupancy — resident warps per SM divided by the device's warp slots — is
// the central hidden variable in the paper's analysis (§8.1): tile sizes
// determine register/shared-memory pressure, which caps resident blocks,
// which caps the warp count 'n' that enters the latency-hiding model eq. (2).
#pragma once

#include "gpusim/device.hpp"

namespace isaac::gpusim {

struct OccupancyResult {
  int blocks_per_sm = 0;   // resident thread blocks per SM
  int warps_per_sm = 0;    // resident warps per SM
  double occupancy = 0.0;  // warps_per_sm / max_warps_per_sm, in [0,1]
  /// Which limit bound the result ("warps", "registers", "smem", "blocks",
  /// or "threads" when the block itself is illegal).
  const char* limiter = "";
};

/// Compute resident blocks/warps for one kernel on one device.
/// Returns blocks_per_sm == 0 (occupancy 0) when the block cannot launch at
/// all: threads_per_block or regs or smem exceed hard per-block limits.
OccupancyResult occupancy(const DeviceDescriptor& dev, int threads_per_block,
                          int regs_per_thread, int smem_bytes_per_block);

}  // namespace isaac::gpusim
