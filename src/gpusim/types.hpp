// Shared scalar-type vocabulary for the simulated GPU stack.
#pragma once

#include <cstddef>
#include <string>

namespace isaac::gpusim {

/// Element types the kernel generators support. The functional executors
/// compute in fp32 regardless (numerical precision of the device is not
/// modelled); DataType drives the performance model: register footprint,
/// instruction pairing (fp16x2) and throughput ratios.
enum class DataType { F16, F32, F64 };

inline std::size_t dtype_size(DataType dt) noexcept {
  switch (dt) {
    case DataType::F16:
      return 2;
    case DataType::F64:
      return 8;
    case DataType::F32:
    default:
      return 4;
  }
}

inline const char* dtype_name(DataType dt) noexcept {
  switch (dt) {
    case DataType::F16:
      return "f16";
    case DataType::F64:
      return "f64";
    case DataType::F32:
    default:
      return "f32";
  }
}

/// Parse "f16"/"f32"/"f64" (also accepts "half"/"float"/"double").
bool parse_dtype(const std::string& s, DataType& out) noexcept;

}  // namespace isaac::gpusim
