// Analytical performance model for the simulated GPU.
//
// Implements the latency-hiding model the paper builds its regression on
// (§5.2, eqs. (2)-(3), after Volkov): per-pipeline instruction streams whose
// unit cost is max(latency / concurrency, 1 / throughput), overlapped across
// pipelines with a max(), bounded below by DRAM bandwidth, and quantized into
// scheduling waves. All the effects the paper's analysis section names are
// modelled from first principles:
//
//   * occupancy from register/shared-memory pressure (§8.1),
//   * tile-quantization waste when N < N_L (§8.1: cuBLAS's 64/128-wide tiles
//     assign threads to a non-existent part of C),
//   * instruction-level parallelism from accumulator count (§3.2),
//   * reduction splitting: K_L adds warps (latency hiding), K_G adds blocks
//     but pays atomics (§8.2),
//   * prefetch width U: fewer, wider loads raise effective bandwidth (§8.1),
//   * fp16x2 pairing and fp64 throughput ratios (§7.3.2),
//   * predicated vs branchy vs padded bounds handling (§8.3),
//   * L2 reuse across concurrently resident blocks.
#pragma once

#include <string>

#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"
#include "gpusim/occupancy.hpp"

namespace isaac::gpusim {

/// Everything the simulator "measures" about one launch, noise-free.
struct PerfBreakdown {
  bool valid = false;           // false => kernel cannot launch on this device
  std::string invalid_reason;

  double seconds = 0.0;         // end-to-end kernel time (incl. launch overhead)
  double achieved_tflops = 0.0; // useful_flops / seconds / 1e12

  // ---- counters (what a profiler would report) ----
  OccupancyResult occ;
  double waves = 0.0;               // scheduling waves over the grid
  double resident_warps = 0.0;      // warps actually co-resident per SM
  double l2_hit_rate = 0.0;         // fraction of requested reads served by L2
  double dram_read_bytes = 0.0;     // modelled DRAM read traffic
  double dram_write_bytes = 0.0;    // modelled DRAM write traffic

  // ---- per-pipeline cycle totals for one SM (pre-overlap) ----
  double cycles_arith = 0.0;
  double cycles_mem = 0.0;
  double cycles_smem = 0.0;
  double cycles_sync = 0.0;

  double time_sm_s = 0.0;    // compute/issue-limited time
  double time_dram_s = 0.0;  // bandwidth-limited time
  const char* bottleneck = "";  // "compute" | "memory-issue" | "smem" | "dram"
};

/// Evaluate the model. Deterministic; noise is applied by the Simulator.
PerfBreakdown evaluate(const DeviceDescriptor& dev, const KernelProfile& p);

}  // namespace isaac::gpusim
