// Simulated cuBLAS: a fixed set of statically "optimized" GEMM kernels plus
// handcrafted runtime selection heuristics (paper §2: "high-budget vendor
// libraries engineer a set of several highly-optimized assembly kernels, and
// handcraft heuristics for runtime kernel selection").
//
// The kernel set and heuristics encode the deficiencies the paper documents:
//   * N-dimension tiling only 64- or 128-wide for the regular kernels (§8.1),
//     so skinny DeepBench batches waste threads on a non-existent part of C;
//   * split-K "reduction kernels" exist (small 32×32 tiles, K_G ∈ {2..64})
//     but always with K_L = 1 (§7.3: "cuBLAS not implementing reduction
//     splitting within streaming multi-processors");
//   * the selection heuristic only reaches for split-K when min(M,N) ≤ 16,
//     missing the ICA regime (M = N ∈ {32, 64, 256}, K huge) by an order of
//     magnitude (§7.3), and missing DeepBench N ∈ {32, 64} splits;
//   * fp16x2 math only in the 128×128 LINPACK-style kernel (§7.3.2), all
//     other tiles fall back to scalar half-precision math.
//
// "Best Kernel" mode models the cublasGemmEx bypass of §7.2: every kernel in
// the fixed set legal for the shape is timed and the fastest wins —
// discriminating bad heuristics from missing tiling schemes.
#pragma once

#include <string>
#include <vector>

#include "codegen/gemm.hpp"
#include "gpusim/simulator.hpp"

namespace isaac::baselines {

struct GemmKernel {
  std::string name;           // e.g. "sgemm_128x64"
  codegen::GemmTuning tuning;
  bool fp16x2 = false;        // whether the half-precision build uses fp16x2
};

struct BaselineRun {
  bool valid = false;
  GemmKernel kernel;
  double seconds = 0.0;
  double gflops = 0.0;
  gpusim::PerfBreakdown breakdown;
};

class CublasSim {
 public:
  explicit CublasSim(const gpusim::DeviceDescriptor& dev);

  /// The full fixed kernel set (before per-shape legality filtering).
  const std::vector<GemmKernel>& kernel_set() const noexcept { return kernels_; }

  /// Kernels from the set that are legal for `shape`.
  std::vector<GemmKernel> legal_kernels(const codegen::GemmShape& shape) const;

  /// Handcrafted heuristic selection (the library's default path).
  GemmKernel choose(const codegen::GemmShape& shape) const;

  /// Profile with cuBLAS-specific adjustments (fp16x2 availability).
  gpusim::KernelProfile profile(const codegen::GemmShape& shape,
                                const GemmKernel& kernel) const;

  /// Run the heuristic path on a simulator.
  BaselineRun run_heuristic(const gpusim::Simulator& sim, const codegen::GemmShape& shape,
                            int reps = 5) const;

  /// cublasGemmEx-style bypass: time every legal kernel, return the fastest.
  BaselineRun run_best_kernel(const gpusim::Simulator& sim, const codegen::GemmShape& shape,
                              int reps = 5) const;

 private:
  const gpusim::DeviceDescriptor& dev_;
  std::vector<GemmKernel> kernels_;
};

}  // namespace isaac::baselines
