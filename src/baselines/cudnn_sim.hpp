// Simulated cuDNN: IMPLICIT_PRECOMP_GEMM convolution with a fixed kernel set
// and heuristics tuned for Maxwell + DeepBench-like shapes (paper §7.4:
// "cuDNN was optimized from the ground up with both Maxwell and
// DeepBench-like problems in mind (large NPQ, small K, intermediate CRS)").
//
// Deliberate characteristics, mirroring what the paper observed:
//   * no reduction splitting along C·R·S (C_G = C_L = 1 in every kernel), so
//     the deep reductions of Conv7/Conv8 are latency-bound (§7.4.1);
//   * shared-memory staging sized against Maxwell's 96 KiB SMs; on Pascal's
//     64 KiB SMs the same kernels lose an occupancy step (§7.4.2: "cuDNN's
//     heuristics and kernels being tailored to Maxwell rather than Pascal");
//   * selection thresholds were tuned once on Maxwell and are reused
//     verbatim on Pascal;
//   * no fp16x2 builds: half precision runs at scalar rate (§7.4.2 HCONV).
#pragma once

#include <string>
#include <vector>

#include "codegen/conv.hpp"
#include "gpusim/simulator.hpp"

namespace isaac::baselines {

struct ConvKernel {
  std::string name;
  codegen::ConvTuning tuning;
};

struct ConvBaselineRun {
  bool valid = false;
  ConvKernel kernel;
  double seconds = 0.0;
  double gflops = 0.0;
  gpusim::PerfBreakdown breakdown;
};

class CudnnSim {
 public:
  explicit CudnnSim(const gpusim::DeviceDescriptor& dev);

  const std::vector<ConvKernel>& kernel_set() const noexcept { return kernels_; }
  std::vector<ConvKernel> legal_kernels(const codegen::ConvShape& shape) const;

  /// Heuristic selection (IMPLICIT_PRECOMP_GEMM path).
  ConvKernel choose(const codegen::ConvShape& shape) const;

  gpusim::KernelProfile profile(const codegen::ConvShape& shape,
                                const ConvKernel& kernel) const;

  ConvBaselineRun run_heuristic(const gpusim::Simulator& sim, const codegen::ConvShape& shape,
                                int reps = 5) const;

 private:
  const gpusim::DeviceDescriptor& dev_;
  std::vector<ConvKernel> kernels_;
};

}  // namespace isaac::baselines
