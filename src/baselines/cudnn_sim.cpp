#include "baselines/cudnn_sim.hpp"

namespace isaac::baselines {

namespace {

codegen::ConvTuning make_kernel(int bk, int tk, int bp, int bq, int bn, int tn, int u) {
  codegen::ConvTuning t;
  t.bk = bk;
  t.tk = tk;
  t.bp = bp;
  t.bq = bq;
  t.bn = bn;
  t.tn = tn;
  t.tp = 1;
  t.tq = bq >= 2 ? 2 : 1;
  t.u = u;
  t.cl = 1;  // no intra-block reduction split — anywhere
  t.cg = 1;  // no grid-level reduction split — anywhere
  t.vec = 4;
  return t;
}

}  // namespace

CudnnSim::CudnnSim(const gpusim::DeviceDescriptor& dev) : dev_(dev) {
  // Tile zoo tuned for "large NPQ, small K, intermediate CRS". U = 16 staging
  // was sized when SMs had 96 KiB of shared memory (Maxwell); the same
  // kernels drop an occupancy step on Pascal's 64 KiB SMs.
  kernels_.push_back({"conv_k32_npq64", make_kernel(32, 4, 2, 2, 16, 4, 16)});
  kernels_.push_back({"conv_k64_npq64", make_kernel(64, 8, 2, 2, 16, 4, 16)});
  kernels_.push_back({"conv_k128_npq32", make_kernel(128, 8, 2, 2, 8, 2, 16)});
  kernels_.push_back({"conv_k64_small", make_kernel(64, 8, 1, 2, 8, 2, 8)});
  kernels_.push_back({"conv_k32_small", make_kernel(32, 4, 1, 1, 8, 2, 8)});
}

std::vector<ConvKernel> CudnnSim::legal_kernels(const codegen::ConvShape& shape) const {
  std::vector<ConvKernel> out;
  for (const auto& k : kernels_) {
    if (codegen::validate(shape, k.tuning, dev_)) out.push_back(k);
  }
  return out;
}

ConvKernel CudnnSim::choose(const codegen::ConvShape& shape) const {
  const auto legal = legal_kernels(shape);

  // The selection logic was tuned on Maxwell ("optimized from the ground up
  // with both Maxwell and DeepBench-like problems in mind", §7.4) and is
  // reused verbatim on every device: kernels are scored with the *Maxwell*
  // performance model regardless of where they will run. On the GTX 980 TI
  // this picks near-optimally within the set; on Pascal it mis-ranks (§7.4.2).
  const auto& tuned_for = gpusim::gtx980ti();
  const ConvKernel* best = nullptr;
  double best_seconds = 0.0;
  for (const auto& k : legal) {
    if (!codegen::validate(shape, k.tuning, tuned_for)) continue;
    const auto maxwell_profile = codegen::analyze(shape, k.tuning, tuned_for);
    const auto perf = gpusim::evaluate(tuned_for, maxwell_profile);
    if (!perf.valid) continue;
    if (best == nullptr || perf.seconds < best_seconds) {
      best = &k;
      best_seconds = perf.seconds;
    }
  }
  if (best != nullptr) return *best;
  if (!legal.empty()) return legal.front();
  return kernels_.front();
}

gpusim::KernelProfile CudnnSim::profile(const codegen::ConvShape& shape,
                                        const ConvKernel& kernel) const {
  gpusim::KernelProfile p = codegen::analyze(shape, kernel.tuning, dev_);
  p.label = "cudnn:" + kernel.name + " / " + shape.to_string();
  if (shape.dtype == gpusim::DataType::F16 && p.uses_fp16x2) {
    // No fp16x2 builds in the v6 IMPLICIT_PRECOMP_GEMM kernels.
    p.uses_fp16x2 = false;
    p.fma_insts *= 2.0;
    p.st_global_insts *= 2.0;
  }
  return p;
}

ConvBaselineRun CudnnSim::run_heuristic(const gpusim::Simulator& sim,
                                        const codegen::ConvShape& shape, int reps) const {
  ConvBaselineRun out;
  out.kernel = choose(shape);
  if (!codegen::validate(shape, out.kernel.tuning, dev_)) return out;
  const auto prof = profile(shape, out.kernel);
  const auto timed = sim.launch_median(prof, reps);
  if (!timed.valid) return out;
  out.valid = true;
  out.seconds = timed.seconds;
  out.gflops = timed.tflops * 1000.0;
  out.breakdown = timed.model;
  return out;
}

}  // namespace isaac::baselines
