#include "baselines/cublas_sim.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace isaac::baselines {

namespace {

codegen::GemmTuning regular_tile(int ml, int nl) {
  codegen::GemmTuning t;
  t.ms = 8;
  t.ns = 8;
  t.ml = ml;
  t.nl = nl;
  t.u = 8;
  t.vec = 4;
  t.kl = 1;
  t.kg = 1;
  return t;
}

codegen::GemmTuning splitk_tile(int kg) {
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 32;
  t.nl = 32;
  t.u = 8;
  t.vec = 4;
  t.kl = 1;  // the paper's point: no intra-SM split in cuBLAS
  t.kg = kg;
  return t;
}

}  // namespace

CublasSim::CublasSim(const gpusim::DeviceDescriptor& dev) : dev_(dev) {
  // Regular kernels: N-dimension tiling is 64- or 128-wide only (§8.1).
  // Only the 128x128 "LINPACK" kernel carries the fp16x2 build.
  kernels_.push_back({"gemm_128x128", regular_tile(128, 128), /*fp16x2=*/true});
  kernels_.push_back({"gemm_128x64", regular_tile(128, 64), false});
  kernels_.push_back({"gemm_64x128", regular_tile(64, 128), false});
  kernels_.push_back({"gemm_64x64", regular_tile(64, 64), false});
  // Panel-split variants of the regular tiles (grid-level split only).
  for (int kg : {2, 4}) {
    auto wide_m = regular_tile(128, 64);
    wide_m.kg = kg;
    kernels_.push_back({strings::format("gemm_128x64_splitK%d", kg), wide_m, false});
    auto wide_n = regular_tile(64, 128);
    wide_n.kg = kg;
    kernels_.push_back({strings::format("gemm_64x128_splitK%d", kg), wide_n, false});
  }
  // Split-K reduction kernels: small tiles, global split only (K_L = 1).
  for (int kg : {2, 4, 8, 16, 32, 64}) {
    kernels_.push_back({strings::format("gemm_32x32_splitK%d", kg), splitk_tile(kg), false});
  }
}

std::vector<GemmKernel> CublasSim::legal_kernels(const codegen::GemmShape& shape) const {
  std::vector<GemmKernel> out;
  for (const auto& k : kernels_) {
    if (codegen::validate(shape, k.tuning, dev_)) out.push_back(k);
  }
  return out;
}

GemmKernel CublasSim::choose(const codegen::GemmShape& shape) const {
  const auto legal = legal_kernels(shape);

  // Handcrafted heuristic tree (deficiencies deliberate — see header).
  auto find = [&](const std::string& name) -> const GemmKernel* {
    for (const auto& k : legal) {
      if (k.name == name) return &k;
    }
    return nullptr;
  };

  // Rule 1a: split-K reduction kernels only when the output is truly tiny
  // AND the reduction is deep. ICA's 32x32..256x256 outputs miss this test —
  // the documented order-of-magnitude hole (§7.3).
  if (shape.m * shape.n <= 256 && shape.k >= 4096) {
    const int kg = shape.k >= 16384 ? 64 : 16;
    if (const auto* k = find(strings::format("gemm_32x32_splitK%d", kg))) return *k;
  }

  // Rule 1b: skinny-panel splitting only when the thin dimension is <= 16.
  // DeepBench N ∈ {32, 64} falls through — "poor handling of
  // reduction-splitting in the library's heuristics" (§7.3).
  if (shape.n <= 16 && shape.m >= 512 && shape.k >= 1024) {
    if (const auto* k = find("gemm_128x64_splitK4")) return *k;
  }
  if (shape.m <= 16 && shape.n >= 512 && shape.k >= 1024) {
    if (const auto* k = find("gemm_64x128_splitK4")) return *k;
  }

  // Rule 2: half precision prefers the fp16x2 LINPACK kernel when the shape
  // can feed 128-wide tiles; otherwise falls to scalar-f16 builds.
  if (shape.dtype == gpusim::DataType::F16 && shape.m >= 128 && shape.n >= 128) {
    if (const auto* k = find("gemm_128x128")) return *k;
  }

  // Rule 3: among the four regular (non-split) tiles, vendor heuristics are
  // excellent — they were tuned offline against exactly these kernels. Model
  // that with a noise-free pick over the regular set, so the heuristic path
  // matches the Best-Kernel bypass everywhere except where reduction
  // splitting is the answer (the paper's finding: the heuristic holes are
  // split-related, §7.3).
  const GemmKernel* best = nullptr;
  double best_seconds = 0.0;
  for (const auto& k : legal) {
    if (k.tuning.kg != 1) continue;  // heuristics never reach split kernels here
    const auto perf = gpusim::evaluate(dev_, profile(shape, k));
    if (!perf.valid) continue;
    if (best == nullptr || perf.seconds < best_seconds) {
      best = &k;
      best_seconds = perf.seconds;
    }
  }
  if (best != nullptr) return *best;

  if (!legal.empty()) return legal.front();
  return kernels_.front();  // nothing legal: caller's run will report invalid
}

gpusim::KernelProfile CublasSim::profile(const codegen::GemmShape& shape,
                                         const GemmKernel& kernel) const {
  gpusim::KernelProfile p = codegen::analyze(shape, kernel.tuning, dev_);
  p.label = "cublas:" + kernel.name + " / " + shape.to_string();
  if (shape.dtype == gpusim::DataType::F16 && !kernel.fp16x2 && p.uses_fp16x2) {
    // This kernel has no fp16x2 build: scalar half math, twice the FMA issue.
    p.uses_fp16x2 = false;
    p.fma_insts *= 2.0;
    p.st_global_insts *= 2.0;
  }
  return p;
}

BaselineRun CublasSim::run_heuristic(const gpusim::Simulator& sim,
                                     const codegen::GemmShape& shape, int reps) const {
  BaselineRun out;
  out.kernel = choose(shape);
  if (!codegen::validate(shape, out.kernel.tuning, dev_)) return out;
  const auto prof = profile(shape, out.kernel);
  const auto timed = sim.launch_median(prof, reps);
  if (!timed.valid) return out;
  out.valid = true;
  out.seconds = timed.seconds;
  out.gflops = timed.tflops * 1000.0;
  out.breakdown = timed.model;
  return out;
}

BaselineRun CublasSim::run_best_kernel(const gpusim::Simulator& sim,
                                       const codegen::GemmShape& shape, int reps) const {
  BaselineRun best;
  for (const auto& k : legal_kernels(shape)) {
    const auto prof = profile(shape, k);
    const auto timed = sim.launch_median(prof, reps);
    if (!timed.valid) continue;
    if (!best.valid || timed.seconds < best.seconds) {
      best.valid = true;
      best.kernel = k;
      best.seconds = timed.seconds;
      best.gflops = timed.tflops * 1000.0;
      best.breakdown = timed.model;
    }
  }
  return best;
}

}  // namespace isaac::baselines
