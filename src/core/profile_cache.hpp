// Filesystem cache for tuned kernel selections (paper §6: "the resulting
// predictions may be used directly ... cached on the filesystem").
//
// Keyed by (device, shape); stores the winning tuning vector as one line of
// text so a process restart skips the few-second exhaustive inference.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"

namespace isaac::core {

class ProfileCache {
 public:
  /// directory == "" keeps the cache purely in memory.
  explicit ProfileCache(std::string directory = "");

  std::optional<codegen::GemmTuning> lookup_gemm(const std::string& device,
                                                 const codegen::GemmShape& shape) const;
  void store_gemm(const std::string& device, const codegen::GemmShape& shape,
                  const codegen::GemmTuning& tuning);

  std::optional<codegen::ConvTuning> lookup_conv(const std::string& device,
                                                 const codegen::ConvShape& shape) const;
  void store_conv(const std::string& device, const codegen::ConvShape& shape,
                  const codegen::ConvTuning& tuning);

  std::size_t size() const noexcept { return gemm_.size() + conv_.size(); }

  /// Key derivation, exposed for tests.
  static std::string gemm_key(const std::string& device, const codegen::GemmShape& shape);
  static std::string conv_key(const std::string& device, const codegen::ConvShape& shape);

 private:
  void load_from_disk();
  void append_to_disk(const std::string& kind, const std::string& key,
                      const std::string& value) const;

  std::string directory_;
  std::map<std::string, codegen::GemmTuning> gemm_;
  std::map<std::string, codegen::ConvTuning> conv_;
};

}  // namespace isaac::core
