// Filesystem cache for tuned kernel selections (paper §6: "the resulting
// predictions may be used directly ... cached on the filesystem").
//
// One keyed store for every operation: entries are (key, encoded tuning,
// provenance) strings, where the key is device|kind|shape-fields, the codec
// comes from OperationTraits<Op>, and the provenance records which search
// strategy and budget produced the tuning (so cached selections stay
// auditable once several strategies coexist). Typed accessors
// lookup<Op>/store<Op> decode on the way out, so adding an operation adds no
// code here.
//
// Entries carry a *tier* for the two-tier dispatch runtime: `provisional`
// marks a zero-measurement model prediction served while a background
// refinement is pending; `refined` marks the result of a full search;
// `fallback` marks a seed-grid entry served by the circuit breaker while the
// real selection path is failing (DESIGN.md, "Failure domains") — the bottom
// of the degradation ladder, upgradeable by anything better. upgrade<Op>()
// replaces a provisional or fallback entry in place and never demotes a
// refined one. The tier travels inside the provenance column as
// `tier=provisional|refined|fallback`; lines without the field (all legacy
// schemas) parse as refined.
//
// Failure domains: load_from_disk() quarantines malformed/torn lines (a
// corrupt cache degrades capacity, never correctness — counted in
// CacheStats::load_corrupt and `cache.load_corrupt`), and a failing disk
// append flips the cache into memory-only mode with a periodic re-probe
// instead of hammering a dead disk on every store.
//
// Thread-safe and sharded: keys hash onto independent buckets, each guarded
// by its own shared_mutex, so hot-path lookups from many threads stop
// contending on one global lock. Disk appends go through a flocked O_APPEND
// write so concurrent processes (or threads racing in one process) cannot
// interleave half-written lines; appends happen under the owning shard's
// exclusive lock, so the file's last-writer order matches the in-memory
// last-writer order per key. load_from_disk() compacts the append-only file
// (last-wins, under flock) once duplicate lines outnumber live entries.
#pragma once

#include <any>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/thread_annotations.hpp"
#include "core/operation.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac::core {

/// How trustworthy a cached selection is. `provisional` = the model's instant
/// argmax (tier-1 dispatch), pending background refinement; `refined` = a
/// full search's winner; `fallback` = a seed-grid selection served under a
/// tripped circuit breaker, below provisional on the degradation ladder.
enum class EntryTier { provisional, refined, fallback };

/// Aggregated cache accounting (see ProfileCache::stats()). Relaxed-snapshot
/// semantics: totals are exact once writers quiesce; mid-traffic reads may
/// miss in-flight increments but never lose them.
struct CacheStats {
  std::uint64_t hits = 0;              // lookups that found the key
  std::uint64_t provisional_hits = 0;  // subset of hits serving a tier-1 entry
  std::uint64_t misses = 0;            // lookups that found nothing
  std::uint64_t stores = 0;            // unconditional store() calls
  std::uint64_t upgrades = 0;          // upgrade() calls that replaced the entry
  std::uint64_t upgrade_rejects = 0;   // upgrade() calls refused (already refined)
  std::uint64_t load_corrupt = 0;      // malformed lines quarantined at load
};

class ProfileCache {
 public:
  /// directory == "" keeps the cache purely in memory.
  explicit ProfileCache(std::string directory = "");

  /// Typed lookup; `tier` (optional) reports the entry's tier on a hit, so
  /// the dispatch path learns "provisional, refinement may be owed" from the
  /// same shard acquisition as the lookup itself.
  template <typename Op>
  std::optional<typename OperationTraits<Op>::Tuning> lookup(
      const std::string& device, const typename OperationTraits<Op>::Shape& shape,
      EntryTier* tier = nullptr) const {
    using Tuning = typename OperationTraits<Op>::Tuning;
    const std::string k = key<Op>(device, shape);
    Shard& shard = shard_for(k);
    std::string encoded;
    {
      sync::ReaderMutexLock lock(shard.mutex);
      const auto it = shard.entries.find(k);
      if (it == shard.entries.end()) {
        shard.stats.misses.fetch_add(1, std::memory_order_relaxed);
        ISAAC_TM_COUNT("cache.miss");
        return std::nullopt;
      }
      shard.stats.hits.fetch_add(1, std::memory_order_relaxed);
      ISAAC_TM_COUNT("cache.hit");
      if (it->second.tier == EntryTier::provisional) {
        shard.stats.provisional_hits.fetch_add(1, std::memory_order_relaxed);
        ISAAC_TM_COUNT("cache.hit_provisional");
      }
      if (tier) *tier = it->second.tier;
      // Hot path: entries decoded before (every store, or a prior lookup of a
      // disk-loaded entry) return without touching the textual codec.
      if (const auto* decoded = std::any_cast<Tuning>(&it->second.decoded)) return *decoded;
      encoded = it->second.encoded;
    }
    Tuning tuning;
    if (!OperationTraits<Op>::decode_tuning(encoded, tuning)) return std::nullopt;
    {
      // Memoize the decode for disk-loaded entries (paid once per entry).
      sync::WriterMutexLock lock(shard.mutex);
      const auto it = shard.entries.find(k);
      if (it != shard.entries.end() && !it->second.decoded.has_value() &&
          it->second.encoded == encoded) {
        it->second.decoded = tuning;
      }
    }
    return tuning;
  }

  /// Store unconditionally (last-writer wins). The entry's tier is parsed
  /// from `meta`'s `tier=` field — absent means refined, so legacy callers
  /// and legacy disk lines keep their old meaning.
  template <typename Op>
  void store(const std::string& device, const typename OperationTraits<Op>::Shape& shape,
             const typename OperationTraits<Op>::Tuning& tuning, std::string meta = "") {
    const std::string k = key<Op>(device, shape);
    const std::string value = OperationTraits<Op>::encode_tuning(tuning);
    Shard& shard = shard_for(k);
    // The disk append stays under the shard lock so the file's last-writer
    // order matches the in-memory last-writer order when stores race on one
    // key (same key -> same shard).
    const EntryTier entry_tier = tier_from_meta(meta);
    sync::WriterMutexLock lock(shard.mutex);
    shard.stats.stores.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("cache.store");
    append_to_disk(k, value, meta);
    shard.entries[k] = Entry{value, std::move(meta), entry_tier, tuning};
  }

  /// Upgrade-in-place for the two-tier dispatch: replace the entry only while
  /// it is still provisional or fallback (or absent). Returns false — and
  /// writes nothing, in memory or on disk — when a refined entry already
  /// holds the key, so a straggling refinement can never demote a better
  /// result.
  template <typename Op>
  bool upgrade(const std::string& device, const typename OperationTraits<Op>::Shape& shape,
               const typename OperationTraits<Op>::Tuning& tuning, std::string meta) {
    const std::string k = key<Op>(device, shape);
    const std::string value = OperationTraits<Op>::encode_tuning(tuning);
    Shard& shard = shard_for(k);
    const EntryTier entry_tier = tier_from_meta(meta);
    // Span declared before the lock scope: its destructor pushes to the trace
    // ring *after* the shard unlocks, so no trace-ring lock nests in here.
    telemetry::Span span("cache.upgrade");
    sync::WriterMutexLock lock(shard.mutex);
    const auto it = shard.entries.find(k);
    if (it != shard.entries.end() && it->second.tier == EntryTier::refined) {
      shard.stats.upgrade_rejects.fetch_add(1, std::memory_order_relaxed);
      ISAAC_TM_COUNT("cache.upgrade_reject");
      return false;
    }
    shard.stats.upgrades.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("cache.upgrade");
    append_to_disk(k, value, meta);
    shard.entries[k] = Entry{value, std::move(meta), entry_tier, tuning};
    return true;
  }

  /// Canonical provenance string stored alongside a tuning:
  /// "strategy=<name>;budget=<n>[;tier=<tier>]".
  static std::string provenance(const std::string& strategy, std::size_t budget);
  static std::string provenance(const std::string& strategy, std::size_t budget,
                                EntryTier tier);

  /// Provenance recorded for a key ("" for pre-schema-bump entries); nullopt
  /// when the key is absent. Key derivation via key<Op>().
  std::optional<std::string> meta(const std::string& key) const {
    Shard& shard = shard_for(key);
    sync::ReaderMutexLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return std::nullopt;
    return it->second.meta;
  }

  /// The tier recorded for a key; nullopt when the key is absent.
  std::optional<EntryTier> tier(const std::string& key) const {
    Shard& shard = shard_for(key);
    sync::ReaderMutexLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) return std::nullopt;
    return it->second.tier;
  }

  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      sync::ReaderMutexLock lock(shard.mutex);
      total += shard.entries.size();
    }
    return total;
  }

  /// Aggregate the per-shard counters into one coherent view. Each shard owns
  /// one atomic stats struct updated under (or adjacent to) its own lock, so
  /// 16-way-sharded traffic never contends on a shared stats cacheline;
  /// aggregation happens here, at snapshot time.
  CacheStats stats() const noexcept {
    CacheStats total;
    for (const auto& shard : shards_) {
      total.hits += shard.stats.hits.load(std::memory_order_relaxed);
      total.provisional_hits +=
          shard.stats.provisional_hits.load(std::memory_order_relaxed);
      total.misses += shard.stats.misses.load(std::memory_order_relaxed);
      total.stores += shard.stats.stores.load(std::memory_order_relaxed);
      total.upgrades += shard.stats.upgrades.load(std::memory_order_relaxed);
      total.upgrade_rejects +=
          shard.stats.upgrade_rejects.load(std::memory_order_relaxed);
    }
    total.load_corrupt = load_corrupt_;
    return total;
  }

  /// Key derivation, exposed for tests: device|kind|shape-fields.
  template <typename Op>
  static std::string key(const std::string& device,
                         const typename OperationTraits<Op>::Shape& shape) {
    return device + '|' + OperationTraits<Op>::kind() + '|' +
           OperationTraits<Op>::shape_key(shape);
  }

  /// `tier=provisional` / `tier=fallback` anywhere in the provenance mark the
  /// entry's tier; anything else (including every legacy schema) is refined.
  static EntryTier tier_from_meta(const std::string& meta);

  // ---- disk failure domain (DESIGN.md, "Failure domains") ----

  /// True while the cache is running memory-only because an append failed;
  /// it re-probes the disk once per retry interval and clears itself on the
  /// first successful write.
  bool disk_degraded() const noexcept {
    return disk_degraded_.load(std::memory_order_relaxed);
  }

  /// Disk appends skipped while degraded (between re-probes).
  std::uint64_t disk_writes_skipped() const noexcept {
    return disk_writes_skipped_.load(std::memory_order_relaxed);
  }

  /// How long a failed disk stays quarantined before the next write re-probes
  /// it (default 1 s; tests and the chaos bench shrink it).
  void set_disk_retry_ms(double ms) noexcept {
    disk_retry_us_.store(ms > 0.0 ? static_cast<std::uint64_t>(ms * 1000.0) : 0,
                         std::memory_order_relaxed);
  }

  // Legacy per-op spellings.
  std::optional<codegen::GemmTuning> lookup_gemm(const std::string& device,
                                                 const codegen::GemmShape& shape) const {
    return lookup<GemmOp>(device, shape);
  }
  void store_gemm(const std::string& device, const codegen::GemmShape& shape,
                  const codegen::GemmTuning& tuning) {
    store<GemmOp>(device, shape, tuning);
  }
  std::optional<codegen::ConvTuning> lookup_conv(const std::string& device,
                                                 const codegen::ConvShape& shape) const {
    return lookup<ConvOp>(device, shape);
  }
  void store_conv(const std::string& device, const codegen::ConvShape& shape,
                  const codegen::ConvTuning& tuning) {
    store<ConvOp>(device, shape, tuning);
  }
  static std::string gemm_key(const std::string& device, const codegen::GemmShape& shape) {
    return key<GemmOp>(device, shape);
  }
  static std::string conv_key(const std::string& device, const codegen::ConvShape& shape) {
    return key<ConvOp>(device, shape);
  }

 private:
  /// The encoded form is authoritative (it is what reaches disk); `decoded`
  /// memoizes the parsed tuning so cached dispatch never re-parses text.
  struct Entry {
    std::string encoded;
    std::string meta;  // provenance column ("" for legacy lines)
    EntryTier tier = EntryTier::refined;
    std::any decoded;
  };

  /// Hot-path lookups from N threads previously contended on one
  /// shared_mutex (reader-count cacheline ping-pong at 8+ threads); hashing
  /// keys across independent buckets removes the shared write to a single
  /// lock word. 16 shards comfortably cover the pool sizes the dispatch
  /// benches run at.
  static constexpr std::size_t kShards = 16;
  /// One atomic struct per shard (cacheline-aligned so neighboring shards'
  /// stats never false-share); aggregated by stats().
  struct alignas(64) ShardStats {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> provisional_hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> upgrades{0};
    std::atomic<std::uint64_t> upgrade_rejects{0};
  };
  struct Shard {
    mutable sync::SharedMutex mutex{lock_rank::Rank::cache_shard};
    std::map<std::string, Entry> entries ISAAC_GUARDED_BY(mutex);
    mutable ShardStats stats;  // atomics: updated adjacent to, not under, the lock
  };

  Shard& shard_for(const std::string& key) const {
    return shards_[std::hash<std::string>{}(key) % kShards];
  }

  void load_from_disk();
  void append_to_disk(const std::string& key, const std::string& value,
                      const std::string& meta) const;
  /// The raw write (open + flock + single write(2)); false on any failure.
  bool write_line_to_disk(const std::string& line) const;

  std::string directory_;
  mutable std::array<Shard, kShards> shards_;  // mutable: lookup memoizes decodes

  // Disk health: a failed append flips degraded_ and the cache serves from
  // memory alone; the next append after the retry interval re-probes. All
  // mutations happen under the owning shard's exclusive lock (appends only),
  // so the atomics are for cross-shard visibility, not for write races.
  mutable std::atomic<bool> disk_degraded_{false};
  mutable std::atomic<std::uint64_t> disk_retry_at_us_{0};
  mutable std::atomic<std::uint64_t> disk_retry_us_{1000000};  // 1 s
  mutable std::atomic<std::uint64_t> disk_writes_skipped_{0};
  std::uint64_t load_corrupt_ = 0;  // set once, in the constructor's load
};

}  // namespace isaac::core
