// Filesystem cache for tuned kernel selections (paper §6: "the resulting
// predictions may be used directly ... cached on the filesystem").
//
// One keyed store for every operation: entries are (key, encoded tuning,
// provenance) strings, where the key is device|kind|shape-fields, the codec
// comes from OperationTraits<Op>, and the provenance records which search
// strategy and budget produced the tuning (so cached selections stay
// auditable once several strategies coexist). Typed accessors
// lookup<Op>/store<Op> decode on the way out, so adding an operation adds no
// code here.
//
// Thread-safe: lookups take a shared lock, stores an exclusive one. Disk
// appends go through a flocked O_APPEND write so concurrent processes (or
// threads racing in one process) cannot interleave half-written lines.
#pragma once

#include <any>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "core/operation.hpp"

namespace isaac::core {

class ProfileCache {
 public:
  /// directory == "" keeps the cache purely in memory.
  explicit ProfileCache(std::string directory = "");

  template <typename Op>
  std::optional<typename OperationTraits<Op>::Tuning> lookup(
      const std::string& device, const typename OperationTraits<Op>::Shape& shape) const {
    using Tuning = typename OperationTraits<Op>::Tuning;
    const std::string k = key<Op>(device, shape);
    std::string encoded;
    {
      std::shared_lock lock(mutex_);
      const auto it = entries_.find(k);
      if (it == entries_.end()) return std::nullopt;
      // Hot path: entries decoded before (every store, or a prior lookup of a
      // disk-loaded entry) return without touching the textual codec.
      if (const auto* decoded = std::any_cast<Tuning>(&it->second.decoded)) return *decoded;
      encoded = it->second.encoded;
    }
    Tuning tuning;
    if (!OperationTraits<Op>::decode_tuning(encoded, tuning)) return std::nullopt;
    {
      // Memoize the decode for disk-loaded entries (paid once per entry).
      std::unique_lock lock(mutex_);
      const auto it = entries_.find(k);
      if (it != entries_.end() && !it->second.decoded.has_value() &&
          it->second.encoded == encoded) {
        it->second.decoded = tuning;
      }
    }
    return tuning;
  }

  template <typename Op>
  void store(const std::string& device, const typename OperationTraits<Op>::Shape& shape,
             const typename OperationTraits<Op>::Tuning& tuning, std::string meta = "") {
    const std::string k = key<Op>(device, shape);
    const std::string value = OperationTraits<Op>::encode_tuning(tuning);
    // The disk append stays under the lock so the file's last-writer order
    // matches the in-memory last-writer order when stores race on one key.
    std::unique_lock lock(mutex_);
    append_to_disk(k, value, meta);
    entries_[k] = Entry{value, std::move(meta), tuning};
  }

  /// Canonical provenance string stored alongside a tuning:
  /// "strategy=<name>;budget=<n>".
  static std::string provenance(const std::string& strategy, std::size_t budget);

  /// Provenance recorded for a key ("" for pre-schema-bump entries); nullopt
  /// when the key is absent. Key derivation via key<Op>().
  std::optional<std::string> meta(const std::string& key) const {
    std::shared_lock lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second.meta;
  }

  std::size_t size() const noexcept {
    std::shared_lock lock(mutex_);
    return entries_.size();
  }

  /// Key derivation, exposed for tests: device|kind|shape-fields.
  template <typename Op>
  static std::string key(const std::string& device,
                         const typename OperationTraits<Op>::Shape& shape) {
    return device + '|' + OperationTraits<Op>::kind() + '|' +
           OperationTraits<Op>::shape_key(shape);
  }

  // Legacy per-op spellings.
  std::optional<codegen::GemmTuning> lookup_gemm(const std::string& device,
                                                 const codegen::GemmShape& shape) const {
    return lookup<GemmOp>(device, shape);
  }
  void store_gemm(const std::string& device, const codegen::GemmShape& shape,
                  const codegen::GemmTuning& tuning) {
    store<GemmOp>(device, shape, tuning);
  }
  std::optional<codegen::ConvTuning> lookup_conv(const std::string& device,
                                                 const codegen::ConvShape& shape) const {
    return lookup<ConvOp>(device, shape);
  }
  void store_conv(const std::string& device, const codegen::ConvShape& shape,
                  const codegen::ConvTuning& tuning) {
    store<ConvOp>(device, shape, tuning);
  }
  static std::string gemm_key(const std::string& device, const codegen::GemmShape& shape) {
    return key<GemmOp>(device, shape);
  }
  static std::string conv_key(const std::string& device, const codegen::ConvShape& shape) {
    return key<ConvOp>(device, shape);
  }

 private:
  /// The encoded form is authoritative (it is what reaches disk); `decoded`
  /// memoizes the parsed tuning so cached dispatch never re-parses text.
  struct Entry {
    std::string encoded;
    std::string meta;  // provenance column ("" for legacy lines)
    std::any decoded;
  };

  void load_from_disk();
  void append_to_disk(const std::string& key, const std::string& value,
                      const std::string& meta) const;

  std::string directory_;
  mutable std::map<std::string, Entry> entries_;  // mutable: lookup memoizes decodes
  mutable std::shared_mutex mutex_;
};

}  // namespace isaac::core
