#include "core/profile_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace isaac::core {

namespace {

std::string encode_gemm_tuning(const codegen::GemmTuning& t) {
  return strings::format("%d %d %d %d %d %d %d %d %d", t.ms, t.ns, t.ml, t.nl, t.u, t.ks, t.kl,
                         t.kg, t.vec);
}

bool decode_gemm_tuning(const std::string& s, codegen::GemmTuning& t) {
  std::istringstream is(s);
  return static_cast<bool>(is >> t.ms >> t.ns >> t.ml >> t.nl >> t.u >> t.ks >> t.kl >> t.kg >>
                           t.vec);
}

std::string encode_conv_tuning(const codegen::ConvTuning& t) {
  return strings::format("%d %d %d %d %d %d %d %d %d %d %d %d %d", t.tk, t.tp, t.tq, t.tn, t.bk,
                         t.bp, t.bq, t.bn, t.u, t.cs, t.cl, t.cg, t.vec);
}

bool decode_conv_tuning(const std::string& s, codegen::ConvTuning& t) {
  std::istringstream is(s);
  return static_cast<bool>(is >> t.tk >> t.tp >> t.tq >> t.tn >> t.bk >> t.bp >> t.bq >> t.bn >>
                           t.u >> t.cs >> t.cl >> t.cg >> t.vec);
}

}  // namespace

ProfileCache::ProfileCache(std::string directory) : directory_(std::move(directory)) {
  if (!directory_.empty()) load_from_disk();
}

std::string ProfileCache::gemm_key(const std::string& device, const codegen::GemmShape& s) {
  return strings::format("%s|gemm|%lld|%lld|%lld|%s|%d|%d", device.c_str(),
                         static_cast<long long>(s.m), static_cast<long long>(s.n),
                         static_cast<long long>(s.k), gpusim::dtype_name(s.dtype),
                         s.trans_a ? 1 : 0, s.trans_b ? 1 : 0);
}

std::string ProfileCache::conv_key(const std::string& device, const codegen::ConvShape& s) {
  return strings::format("%s|conv|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%s",
                         device.c_str(), static_cast<long long>(s.n),
                         static_cast<long long>(s.c), static_cast<long long>(s.h),
                         static_cast<long long>(s.w), static_cast<long long>(s.k),
                         static_cast<long long>(s.r), static_cast<long long>(s.s),
                         static_cast<long long>(s.pad_h), static_cast<long long>(s.pad_w),
                         static_cast<long long>(s.stride_h), static_cast<long long>(s.stride_w),
                         gpusim::dtype_name(s.dtype));
}

std::optional<codegen::GemmTuning> ProfileCache::lookup_gemm(
    const std::string& device, const codegen::GemmShape& shape) const {
  const auto it = gemm_.find(gemm_key(device, shape));
  if (it == gemm_.end()) return std::nullopt;
  return it->second;
}

void ProfileCache::store_gemm(const std::string& device, const codegen::GemmShape& shape,
                              const codegen::GemmTuning& tuning) {
  const std::string key = gemm_key(device, shape);
  gemm_[key] = tuning;
  append_to_disk("gemm", key, encode_gemm_tuning(tuning));
}

std::optional<codegen::ConvTuning> ProfileCache::lookup_conv(
    const std::string& device, const codegen::ConvShape& shape) const {
  const auto it = conv_.find(conv_key(device, shape));
  if (it == conv_.end()) return std::nullopt;
  return it->second;
}

void ProfileCache::store_conv(const std::string& device, const codegen::ConvShape& shape,
                              const codegen::ConvTuning& tuning) {
  const std::string key = conv_key(device, shape);
  conv_[key] = tuning;
  append_to_disk("conv", key, encode_conv_tuning(tuning));
}

void ProfileCache::load_from_disk() {
  const std::filesystem::path file = std::filesystem::path(directory_) / "isaac_profiles.txt";
  std::ifstream is(file);
  if (!is) return;
  std::string line;
  while (std::getline(is, line)) {
    // Format: kind \t key \t value
    const auto parts = strings::split(line, '\t');
    if (parts.size() != 3) continue;
    if (parts[0] == "gemm") {
      codegen::GemmTuning t;
      if (decode_gemm_tuning(parts[2], t)) gemm_[parts[1]] = t;
    } else if (parts[0] == "conv") {
      codegen::ConvTuning t;
      if (decode_conv_tuning(parts[2], t)) conv_[parts[1]] = t;
    }
  }
  ISAAC_LOG_INFO() << "profile cache: loaded " << size() << " entries from " << file.string();
}

void ProfileCache::append_to_disk(const std::string& kind, const std::string& key,
                                  const std::string& value) const {
  if (directory_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const std::filesystem::path file = std::filesystem::path(directory_) / "isaac_profiles.txt";
  std::ofstream os(file, std::ios::app);
  if (!os) {
    ISAAC_LOG_WARN() << "profile cache: cannot write " << file.string();
    return;
  }
  os << kind << '\t' << key << '\t' << value << '\n';
}

}  // namespace isaac::core
