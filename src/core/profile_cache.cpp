#include "core/profile_cache.hpp"

#include <filesystem>
#include <fstream>

#include "common/logging.hpp"
#include "common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define ISAAC_HAVE_FLOCK 1
#endif

namespace isaac::core {

namespace {

std::filesystem::path cache_file(const std::string& directory) {
  return std::filesystem::path(directory) / "isaac_profiles.txt";
}

}  // namespace

ProfileCache::ProfileCache(std::string directory) : directory_(std::move(directory)) {
  if (!directory_.empty()) load_from_disk();
}

void ProfileCache::load_from_disk() {
  std::ifstream is(cache_file(directory_));
  if (!is) return;
  std::string line;
  while (std::getline(is, line)) {
    // Current format: key \t value \t provenance. Both older schemas are
    // still read: key \t value (no provenance column), and the oldest
    // kind \t key \t value, whose kind column is redundant (the key embeds
    // it). The two three-column schemas are disambiguated by the '|' the key
    // always contains and a bare kind never does.
    const auto parts = strings::split(line, '\t');
    if (parts.size() == 2) {
      entries_[parts[0]] = Entry{parts[1], "", {}};
    } else if (parts.size() == 3 && parts[0].find('|') != std::string::npos) {
      entries_[parts[0]] = Entry{parts[1], parts[2], {}};
    } else if (parts.size() == 3) {
      entries_[parts[1]] = Entry{parts[2], "", {}};
    }
  }
  ISAAC_LOG_INFO() << "profile cache: loaded " << entries_.size() << " entries from "
                   << cache_file(directory_).string();
}

std::string ProfileCache::provenance(const std::string& strategy, std::size_t budget) {
  return "strategy=" + strategy + ";budget=" + std::to_string(budget);
}

void ProfileCache::append_to_disk(const std::string& key, const std::string& value,
                                  const std::string& meta) const {
  if (directory_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const std::filesystem::path file = cache_file(directory_);
  const std::string line =
      meta.empty() ? key + '\t' + value + '\n' : key + '\t' + value + '\t' + meta + '\n';
#if ISAAC_HAVE_FLOCK
  // Exclusive-flocked O_APPEND write of the whole line in one syscall, so
  // concurrent writers (threads or separate processes) cannot tear it.
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    ISAAC_LOG_WARN() << "profile cache: cannot write " << file.string();
    return;
  }
  if (::flock(fd, LOCK_EX) == 0) {
    std::size_t written = 0;
    while (written < line.size()) {
      const ssize_t n = ::write(fd, line.data() + written, line.size() - written);
      if (n <= 0) {
        ISAAC_LOG_WARN() << "profile cache: short write to " << file.string();
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    ::flock(fd, LOCK_UN);
  }
  ::close(fd);
#else
  std::ofstream os(file, std::ios::app);
  if (!os) {
    ISAAC_LOG_WARN() << "profile cache: cannot write " << file.string();
    return;
  }
  os << line;
#endif
}

}  // namespace isaac::core
