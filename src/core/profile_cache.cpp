#include "core/profile_cache.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define ISAAC_HAVE_FLOCK 1
#endif

namespace isaac::core {

namespace {

std::filesystem::path cache_file(const std::string& directory) {
  return std::filesystem::path(directory) / "isaac_profiles.txt";
}

/// Serialize one entry in the current schema (two columns when there is no
/// provenance) — shared by the append path and the compactor so both always
/// write the same format.
std::string format_line(const std::string& key, const std::string& value,
                        const std::string& meta) {
  return meta.empty() ? key + '\t' + value + '\n' : key + '\t' + value + '\t' + meta + '\n';
}

/// Parse one on-disk line into (key, value, meta). Current format:
/// key \t value \t provenance. Both older schemas are still read:
/// key \t value (no provenance column), and the oldest
/// kind \t key \t value, whose kind column is redundant (the key embeds it).
/// The two three-column schemas are disambiguated by the '|' the key always
/// contains and a bare kind never does.
bool parse_line(const std::string& line, std::string& key, std::string& value,
                std::string& meta) {
  const auto parts = strings::split(line, '\t');
  if (parts.size() == 2) {
    key = parts[0];
    value = parts[1];
    meta.clear();
    return true;
  }
  if (parts.size() == 3 && parts[0].find('|') != std::string::npos) {
    key = parts[0];
    value = parts[1];
    meta = parts[2];
    return true;
  }
  if (parts.size() == 3) {
    key = parts[1];
    value = parts[2];
    meta.clear();
    return true;
  }
  return false;
}

}  // namespace

ProfileCache::ProfileCache(std::string directory) : directory_(std::move(directory)) {
  if (!directory_.empty()) load_from_disk();
}

EntryTier ProfileCache::tier_from_meta(const std::string& meta) {
  if (meta.find("tier=provisional") != std::string::npos) return EntryTier::provisional;
  if (meta.find("tier=fallback") != std::string::npos) return EntryTier::fallback;
  return EntryTier::refined;
}

void ProfileCache::load_from_disk() {
  const std::filesystem::path file = cache_file(directory_);

  // Parse into one ordered map first (last-wins), then distribute across the
  // shards; the single-threaded constructor needs no locks yet.
  std::map<std::string, Entry> live;
  std::size_t lines = 0;

#if ISAAC_HAVE_FLOCK
  // Hold the same exclusive flock the appenders take for the whole
  // read-compact cycle, so a concurrent process can neither append between
  // our read and rewrite nor observe a half-truncated file.
  const int fd = ::open(file.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return;  // no cache yet
  const bool locked = ::flock(fd, LOCK_EX) == 0;  // unlocked: load, skip compaction
  std::string contents;
  bool read_ok;
  {
    char buf[1 << 16];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) contents.append(buf, static_cast<std::size_t>(n));
    // A read error would leave `contents` a truncated view of the file;
    // compacting from it would permanently drop the unread tail. Load what
    // was read, but never rewrite.
    read_ok = n == 0;
  }
  {
    std::istringstream is(contents);
    std::string line, key, value, meta;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      ++lines;
      if (!parse_line(line, key, value, meta)) {
        // Quarantine, never fatal: a torn tail or foreign garbage costs the
        // one line, not the cache. Counted below; compaction (which rewrites
        // only parsed entries) heals the file.
        ++load_corrupt_;
        continue;
      }
      const EntryTier entry_tier = tier_from_meta(meta);
      live[key] = Entry{value, meta, entry_tier, {}};
    }
  }
  // Compact once stale duplicates outnumber live entries: appends never
  // rewrite, so re-tuned and tier-upgraded keys otherwise accumulate one
  // dead line per store forever. In-place through the flocked descriptor
  // keeps the inode stable, so writers blocked on the flock append to the
  // compacted file, not to a renamed-away orphan. Write first, truncate
  // last — never ftruncate(0) up front, which would turn any mid-write
  // failure into whole-file loss. Overwriting the head (shrinking: the
  // compacted lines are a subset of the old ones) bounds a failure to the
  // few head lines actually clobbered, and a truncate failure merely leaves
  // a stale tail that last-wins parsing already resolves.
  if (locked && read_ok && lines > 2 * live.size() && !live.empty()) {
    telemetry::Span span("cache.compact");
    ISAAC_TM_COUNT("cache.compaction");
    std::string compacted;
    for (const auto& [key, entry] : live) {
      compacted += format_line(key, entry.encoded, entry.meta);
    }
    bool ok = ::lseek(fd, 0, SEEK_SET) == 0;
    std::size_t written = 0;
    while (ok && written < compacted.size()) {
      const ssize_t n = ::write(fd, compacted.data() + written, compacted.size() - written);
      if (n <= 0) ok = false;
      written += n > 0 ? static_cast<std::size_t>(n) : 0;
    }
    ok = ok && ::ftruncate(fd, static_cast<off_t>(compacted.size())) == 0;
    if (ok) {
      ISAAC_LOG_INFO() << "profile cache: compacted " << lines << " lines down to "
                       << live.size() << " in " << file.string();
    } else {
      ISAAC_LOG_WARN() << "profile cache: compaction of " << file.string()
                       << " failed mid-write; entries preserved, file left uncompacted";
    }
  }
  if (locked) ::flock(fd, LOCK_UN);
  ::close(fd);
#else
  std::ifstream is(file);
  if (!is) return;
  std::string line, key, value, meta;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    if (!parse_line(line, key, value, meta)) {
      ++load_corrupt_;
      continue;
    }
    const EntryTier entry_tier = tier_from_meta(meta);
    live[key] = Entry{value, meta, entry_tier, {}};
  }
#endif

  // The constructor runs single-threaded, but the shard maps are guarded
  // members: take each writer lock anyway (uncontended, one-time cost) so the
  // population is analysis-clean instead of an escape hatch.
  for (auto& [key, entry] : live) {
    Shard& shard = shard_for(key);
    sync::WriterMutexLock lock(shard.mutex);
    shard.entries.emplace(key, std::move(entry));
  }
  ISAAC_TM_COUNT_N("cache.loaded_entries", live.size());
  if (load_corrupt_ > 0) {
    ISAAC_TM_COUNT_N("cache.load_corrupt", load_corrupt_);
    ISAAC_LOG_WARN() << "profile cache: quarantined " << load_corrupt_
                     << " malformed line(s) in " << file.string();
  }
  ISAAC_LOG_INFO() << "profile cache: loaded " << live.size() << " entries from "
                   << file.string();
}

std::string ProfileCache::provenance(const std::string& strategy, std::size_t budget) {
  return "strategy=" + strategy + ";budget=" + std::to_string(budget);
}

std::string ProfileCache::provenance(const std::string& strategy, std::size_t budget,
                                     EntryTier tier) {
  const char* name = tier == EntryTier::provisional ? "provisional"
                     : tier == EntryTier::fallback  ? "fallback"
                                                    : "refined";
  return provenance(strategy, budget) + ";tier=" + name;
}

bool ProfileCache::write_line_to_disk(const std::string& line) const {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const std::filesystem::path file = cache_file(directory_);
  // Chaos site: a full disk / revoked mount / flock contention storm, all
  // surfaced as "the write failed" so the degrade path below is what runs.
  if (ISAAC_FAILPOINT_FIRED("cache.write_fail")) return false;
#if ISAAC_HAVE_FLOCK
  // Exclusive-flocked O_APPEND write of the whole line in one syscall, so
  // concurrent writers (threads or separate processes) cannot tear it.
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = false;
  if (::flock(fd, LOCK_EX) == 0) {
    std::size_t written = 0;
    ok = true;
    while (written < line.size()) {
      const ssize_t n = ::write(fd, line.data() + written, line.size() - written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    ::flock(fd, LOCK_UN);
  }
  ::close(fd);
  return ok;
#else
  std::ofstream os(file, std::ios::app);
  if (!os) return false;
  os << line;
  return static_cast<bool>(os);
#endif
}

void ProfileCache::append_to_disk(const std::string& key, const std::string& value,
                                  const std::string& meta) const {
  if (directory_.empty()) return;
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  // Degraded: serve memory-only, but re-probe the disk once per retry
  // interval — a transient outage (disk filled, then freed) heals itself
  // without a restart. Entries written while degraded are lost to the file
  // (memory keeps them); last-wins replay semantics make that safe.
  if (disk_degraded_.load(std::memory_order_relaxed) &&
      now < disk_retry_at_us_.load(std::memory_order_relaxed)) {
    disk_writes_skipped_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("cache.disk_write_skipped");
    return;
  }
  if (write_line_to_disk(format_line(key, value, meta))) {
    if (disk_degraded_.exchange(false, std::memory_order_relaxed)) {
      ISAAC_TM_COUNT("cache.disk_recovered");
      ISAAC_LOG_INFO() << "profile cache: disk writes recovered, leaving memory-only mode";
    }
    return;
  }
  disk_retry_at_us_.store(now + disk_retry_us_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  if (!disk_degraded_.exchange(true, std::memory_order_relaxed)) {
    ISAAC_TM_COUNT("cache.disk_degraded");
    ISAAC_LOG_WARN() << "profile cache: disk append failed; degrading to memory-only with "
                     << "periodic re-probe";
  } else {
    ISAAC_TM_COUNT("cache.disk_reprobe_failed");
  }
}

}  // namespace isaac::core
