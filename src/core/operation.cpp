#include "core/operation.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"

namespace isaac::core {

namespace {

/// Coarse grids of "sane" configurations that subsampled searches must not
/// lose: the region hand-tuned vendor kernels live in. With exhaustive
/// enumeration (max_candidates == 0) these are visited anyway.
std::vector<codegen::GemmTuning> make_gemm_seed_grid() {
  std::vector<codegen::GemmTuning> seeds;
  for (int ms : {4, 8}) {
    for (int ns : {4, 8}) {
      for (int ml : {16, 32, 64, 128}) {
        for (int nl : {16, 32, 64, 128}) {
          for (int u : {8, 16}) {
            for (int kl : {1, 4}) {
              for (int kg : {1, 4, 16}) {
                codegen::GemmTuning t;
                t.ms = ms;
                t.ns = ns;
                t.ml = ml;
                t.nl = nl;
                t.u = u;
                t.ks = 1;
                t.kl = kl;
                t.kg = kg;
                t.vec = 4;
                seeds.push_back(t);
              }
            }
          }
        }
      }
    }
  }
  return seeds;
}

std::vector<codegen::ConvTuning> make_conv_seed_grid() {
  std::vector<codegen::ConvTuning> seeds;
  for (int bk : {16, 32, 64, 128}) {
    for (int bn : {4, 8, 16}) {
      for (int bpq : {1, 2, 4}) {
        for (int cl : {1, 4}) {
          for (int cg : {1, 4, 16}) {
            codegen::ConvTuning t;
            t.bk = bk;
            t.tk = std::min(8, bk / 2);
            t.bn = bn;
            t.tn = std::min(4, bn);
            t.bp = bpq;
            t.bq = bpq;
            t.tp = 1;
            t.tq = bpq >= 2 ? 2 : 1;
            t.u = 8;
            t.cl = cl;
            t.cg = cg;
            t.vec = 4;
            seeds.push_back(t);
          }
        }
      }
    }
  }
  return seeds;
}

std::string gemm_shape_fields(const codegen::GemmShape& s) {
  return strings::format("%lld|%lld|%lld|%s|%d|%d", static_cast<long long>(s.m),
                         static_cast<long long>(s.n), static_cast<long long>(s.k),
                         gpusim::dtype_name(s.dtype), s.trans_a ? 1 : 0, s.trans_b ? 1 : 0);
}

std::string encode_gemm(const codegen::GemmTuning& t) {
  return strings::format("%d %d %d %d %d %d %d %d %d", t.ms, t.ns, t.ml, t.nl, t.u, t.ks, t.kl,
                         t.kg, t.vec);
}

bool decode_gemm(const std::string& s, codegen::GemmTuning& t) {
  std::istringstream is(s);
  return static_cast<bool>(is >> t.ms >> t.ns >> t.ml >> t.nl >> t.u >> t.ks >> t.kl >> t.kg >>
                           t.vec);
}

}  // namespace

// ------------------------------------------------------------------- GEMM --

std::string OperationTraits<GemmOp>::shape_key(const Shape& s) {
  return gemm_shape_fields(s);
}

std::string OperationTraits<GemmOp>::encode_tuning(const Tuning& t) { return encode_gemm(t); }

bool OperationTraits<GemmOp>::decode_tuning(const std::string& text, Tuning& t) {
  return decode_gemm(text, t);
}

const std::vector<codegen::GemmTuning>& OperationTraits<GemmOp>::seed_grid() {
  static const auto seeds = make_gemm_seed_grid();
  return seeds;
}

// ------------------------------------------------------------------- CONV --

std::string OperationTraits<ConvOp>::shape_key(const Shape& s) {
  return strings::format("%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%lld|%s",
                         static_cast<long long>(s.n), static_cast<long long>(s.c),
                         static_cast<long long>(s.h), static_cast<long long>(s.w),
                         static_cast<long long>(s.k), static_cast<long long>(s.r),
                         static_cast<long long>(s.s), static_cast<long long>(s.pad_h),
                         static_cast<long long>(s.pad_w), static_cast<long long>(s.stride_h),
                         static_cast<long long>(s.stride_w), gpusim::dtype_name(s.dtype));
}

std::string OperationTraits<ConvOp>::encode_tuning(const Tuning& t) {
  return strings::format("%d %d %d %d %d %d %d %d %d %d %d %d %d", t.tk, t.tp, t.tq, t.tn, t.bk,
                         t.bp, t.bq, t.bn, t.u, t.cs, t.cl, t.cg, t.vec);
}

bool OperationTraits<ConvOp>::decode_tuning(const std::string& text, Tuning& t) {
  std::istringstream is(text);
  return static_cast<bool>(is >> t.tk >> t.tp >> t.tq >> t.tn >> t.bk >> t.bp >> t.bq >> t.bn >>
                           t.u >> t.cs >> t.cl >> t.cg >> t.vec);
}

const std::vector<codegen::ConvTuning>& OperationTraits<ConvOp>::seed_grid() {
  static const auto seeds = make_conv_seed_grid();
  return seeds;
}

// ---------------------------------------------------------------- BATCHED --

std::string OperationTraits<BatchedGemmOp>::shape_key(const Shape& s) {
  return strings::format("%lld|", static_cast<long long>(s.batch)) + gemm_shape_fields(s.gemm);
}

std::string OperationTraits<BatchedGemmOp>::encode_tuning(const Tuning& t) {
  return encode_gemm(t);
}

bool OperationTraits<BatchedGemmOp>::decode_tuning(const std::string& text, Tuning& t) {
  return decode_gemm(text, t);
}

const std::vector<codegen::GemmTuning>& OperationTraits<BatchedGemmOp>::seed_grid() {
  return OperationTraits<GemmOp>::seed_grid();
}

}  // namespace isaac::core
