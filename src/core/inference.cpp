#include "core/inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"

namespace isaac::core {

/// One implementation for every operation: enumerate X̂ through the op's
/// search space, filter to the legal space X with the op's validator, score
/// the survivors in MLP batches, then re-time the top-k on the device. All
/// op-specific behavior comes from OperationTraits<Op>; adding an operation
/// adds no code here.
template <typename Op>
TuneResult<typename OperationTraits<Op>::Tuning> tune(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::Simulator& sim, const InferenceConfig& config) {
  using Traits = OperationTraits<Op>;
  using Tuning = typename Traits::Tuning;

  const auto& dev = sim.device();
  const std::size_t max_candidates =
      config.max_candidates > 0 ? config.max_candidates : Traits::default_max_candidates();

  TuneResult<Tuning> result;

  // ---- phase 1: enumerate the legal space -----------------------------------
  const typename Traits::SearchSpace space;
  std::vector<Tuning> legal;
  std::size_t visited = 0;
  space.for_each([&](const Tuning& t) {
    ++visited;
    if (Traits::validate(shape, t, dev)) legal.push_back(t);
    return true;
  });
  result.enumerated = visited;
  if (legal.empty()) {
    throw std::runtime_error("tune: no legal configuration for this shape/device");
  }
  if (max_candidates > 0 && legal.size() > max_candidates) {
    // Deterministic striding keeps coverage spread across the space; the seed
    // grid is appended afterwards so subsampling can never lose the
    // well-known-good region.
    std::vector<Tuning> strided;
    strided.reserve(max_candidates);
    const double step =
        static_cast<double>(legal.size()) / static_cast<double>(max_candidates);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      strided.push_back(legal[static_cast<std::size_t>(i * step)]);
    }
    for (const Tuning& t : Traits::seed_grid()) {
      if (Traits::validate(shape, t, dev)) strided.push_back(t);
    }
    legal = std::move(strided);
  }
  result.legal = legal.size();

  // ---- phase 2: batched model scoring ---------------------------------------
  std::vector<double> scores(legal.size());
  const std::size_t batch = std::max<std::size_t>(config.batch, 1);
  const std::size_t num_batches = (legal.size() + batch - 1) / batch;
  ThreadPool::global().parallel_for_each(num_batches, [&](std::size_t bi) {
    const std::size_t begin = bi * batch;
    const std::size_t end = std::min(legal.size(), begin + batch);
    std::vector<std::vector<double>> rows;
    rows.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) rows.push_back(Traits::featurize(shape, legal[i]));
    const auto pred = model.predict_gflops_batch(rows);
    std::copy(pred.begin(), pred.end(), scores.begin() + static_cast<std::ptrdiff_t>(begin));
  });

  // ---- phase 3: top-k selection ----------------------------------------------
  std::vector<std::size_t> order(legal.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(config.top_k, 1), order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  // ---- phase 4: re-time the top-k on the device ------------------------------
  result.top.resize(k);
  ThreadPool::global().parallel_for_each(k, [&](std::size_t i) {
    Candidate<Tuning> c;
    c.tuning = legal[order[i]];
    c.predicted_gflops = scores[order[i]];
    const auto profile = Traits::analyze(shape, c.tuning, dev);
    const auto timed = sim.launch_median(profile, config.reeval_reps);
    c.measured_gflops = timed.valid ? timed.tflops * 1000.0 : 0.0;
    result.top[i] = std::move(c);
  });

  std::sort(result.top.begin(), result.top.end(),
            [](const auto& a, const auto& b) { return a.measured_gflops > b.measured_gflops; });
  result.best = result.top.front();

  ISAAC_LOG_INFO() << "tuned " << Traits::kind() << ": " << result.legal << " legal of "
                   << result.enumerated << " enumerated; best measured "
                   << result.best.measured_gflops << " GFLOPS (predicted "
                   << result.best.predicted_gflops << ")";
  return result;
}

template GemmTuneResult tune<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const InferenceConfig&);
template ConvTuneResult tune<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const InferenceConfig&);
template BatchedGemmTuneResult tune<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                   const mlp::Regressor&,
                                                   const gpusim::Simulator&,
                                                   const InferenceConfig&);

}  // namespace isaac::core
