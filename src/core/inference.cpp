#include "core/inference.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "search/driver.hpp"
#include "search/factory.hpp"
#include "telemetry/telemetry.hpp"

namespace isaac::core {

namespace {

/// Zero-valued fields fall back to the op's defaults; an empty strategy name
/// means the op's default strategy.
template <typename Op>
search::SearchConfig resolve_config(const search::SearchConfig& config) {
  const search::SearchConfig defaults = OperationTraits<Op>::default_search();
  search::SearchConfig resolved = config;
  if (resolved.strategy.empty()) resolved.strategy = defaults.strategy;
  if (resolved.budget == 0) resolved.budget = defaults.budget;
  if (resolved.max_candidates == 0) resolved.max_candidates = defaults.max_candidates;
  if (resolved.batch == 0) resolved.batch = defaults.batch;
  if (resolved.keep_top == 0) resolved.keep_top = defaults.keep_top;
  if (resolved.reeval_reps <= 0) resolved.reeval_reps = defaults.reeval_reps;
  // Reject nonsense (NaN deadlines, negative retries) before any of it can
  // reach the drive loop; zero-valued size fields were just resolved away.
  resolved.validate(/*resolved=*/true);
  return resolved;
}

}  // namespace

/// One implementation for every operation and every strategy: build the op's
/// search problem, let the configured strategy propose legal candidates, and
/// spend the measurement budget re-timing them on the device. All op-specific
/// behavior comes from OperationTraits<Op>, all policy from the strategy —
/// adding an operation or a strategy adds no code here.
template <typename Op>
TuneResult<typename OperationTraits<Op>::Tuning> tune(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::Simulator& sim, const search::SearchConfig& config) {
  using Traits = OperationTraits<Op>;
  using Tuning = typename Traits::Tuning;

  telemetry::Span span("tune");
  ISAAC_TM_COUNT("search.tune_runs");
  const std::uint64_t t0 = telemetry::enabled() ? telemetry::now_us() : 0;
  const search::SearchConfig resolved = resolve_config<Op>(config);
  const auto& dev = sim.device();
  const typename Traits::SearchSpace space;

  search::SearchProblem<Op> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &model;
  const auto strategy = search::make_strategy<Op>(problem, resolved);

  TuneResult<Tuning> result;
  result.strategy = resolved.strategy;
  result.budget = resolved.budget;

  const auto measure = [&](const Tuning& t) {
    const auto profile = Traits::analyze(shape, t, dev);
    const auto timed = sim.launch_median(profile, resolved.reeval_reps);
    return timed.valid ? timed.tflops * 1000.0 : 0.0;
  };
  // Deterministic tie-break shared by every strategy, so equal-measuring
  // winners agree across strategies and across runs.
  const auto better = [](const Candidate<Tuning>& a, const Candidate<Tuning>& b) {
    if (a.measured_gflops != b.measured_gflops) return a.measured_gflops > b.measured_gflops;
    return Traits::encode_tuning(a.tuning) < Traits::encode_tuning(b.tuning);
  };
  // Adaptive strategies may re-propose an already-measured point (annealing
  // chain revisits, GA fallbacks); keep result.top a list of *distinct*
  // candidates. Re-measurements are deterministic, so dropping them is safe.
  std::unordered_set<std::string> seen_tunings;
  search::DriveOptions drive_options(resolved);
  drive_options.stopped_early = &result.stopped_early;
  result.measured = search::drive(
      *strategy, drive_options, measure,
      [&](const search::Proposal<Tuning>& p, double gflops) {
        if (!seen_tunings.insert(Traits::encode_tuning(p.tuning)).second) return;
        Candidate<Tuning> c;
        c.tuning = p.tuning;
        c.predicted_gflops = p.predicted_gflops;
        c.measured_gflops = gflops;
        result.top.push_back(std::move(c));
        // Keep memory bounded for huge budgets (an unbudgeted exhaustive
        // sweep measures the whole legal space): prune back to the keep_top
        // best whenever the buffer doubles past it.
        if (resolved.keep_top < result.top.size() / 2) {
          std::nth_element(result.top.begin(),
                           result.top.begin() + static_cast<std::ptrdiff_t>(resolved.keep_top),
                           result.top.end(), better);
          result.top.resize(resolved.keep_top);
        }
      });

  result.enumerated = strategy->stats().visited;
  result.legal = strategy->stats().legal;
  if (result.top.empty()) {
    // The strategy proposed nothing measurable (every candidate illegal for
    // this degenerate shape, or the space empty): without this check the
    // caller would receive a value-initialized "best". Fail loudly and say
    // what was tried.
    throw std::runtime_error(std::string("tune: no legal ") + Traits::kind() +
                             " configuration for shape " + shape.to_string() + " (strategy " +
                             resolved.strategy + ", " + std::to_string(result.legal) +
                             " legal of " + std::to_string(result.enumerated) +
                             " visited points)");
  }

  std::sort(result.top.begin(), result.top.end(), better);
  if (result.top.size() > resolved.keep_top) result.top.resize(resolved.keep_top);
  result.best = result.top.front();
  if (t0) ISAAC_TM_RECORD("search.tune_us", telemetry::now_us() - t0);

  ISAAC_LOG_INFO() << "tuned " << Traits::kind() << " [" << resolved.strategy << ", budget "
                   << resolved.budget << "]: " << result.measured << " measured, "
                   << result.legal << " legal of " << result.enumerated
                   << " visited; best measured " << result.best.measured_gflops
                   << " GFLOPS (predicted " << result.best.predicted_gflops << ")";
  return result;
}

/// Tier-1 dispatch: the model's argmax over a bounded, measurement-free probe
/// of the legal space. Reuses ModelGuidedTopK's ranking core with k = 1; the
/// strided probe bounds the work, the seed-grid re-append guarantees a sane
/// candidate whenever any seed is legal, and the dense sweep is the last
/// resort before declaring the shape untunable.
template <typename Op>
PredictResult<typename OperationTraits<Op>::Tuning> predict(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::DeviceDescriptor& device, const search::SearchConfig& config) {
  using Traits = OperationTraits<Op>;

  telemetry::Span span("predict");
  ISAAC_TM_COUNT("dispatch.predict");
  // Chaos site for the tier-1 leader path (a production ranking can fail on
  // NaN weights or a poisoned model file); Context degrades to the
  // seed-grid fallback through its circuit breaker.
  ISAAC_FAILPOINT("predict.throw");
  const std::uint64_t t0 = telemetry::enabled() ? telemetry::now_us() : 0;
  search::SearchConfig resolved = resolve_config<Op>(config);
  // Ops that rank densely resolve max_candidates to 0, which would make the
  // probe sweep all of X̂ — the blocking path's fixed cost. Tier-1 latency
  // requires bounded work, so cap the probe regardless.
  constexpr std::size_t kDefaultProbeCap = 8192;
  if (resolved.max_candidates == 0) resolved.max_candidates = kDefaultProbeCap;
  const typename Traits::SearchSpace space;
  search::SearchProblem<Op> problem;
  problem.shape = &shape;
  problem.device = &device;
  problem.space = &space;
  problem.model = &model;

  PredictResult<typename Traits::Tuning> result;
  auto ranked = search::rank_strided_probe(problem, resolved, /*top_k=*/1);
  if (ranked.order.empty()) {
    // Sparse legal set the stride (and every seed) missed: sweep X̂ densely —
    // still zero measurements — before giving up.
    ranked = search::rank_legal_space(problem, resolved, /*top_k=*/1);
    result.dense_fallback = true;
    ISAAC_TM_COUNT("dispatch.predict_dense_fallback");
  }
  result.enumerated = ranked.visited;
  result.legal = ranked.legal;
  if (ranked.order.empty()) {
    throw std::runtime_error(std::string("predict: no legal ") + Traits::kind() +
                             " configuration for shape " + shape.to_string() + " (" +
                             std::to_string(ranked.visited) + " points checked)");
  }
  const std::size_t i = ranked.order.front();
  result.tuning = space.decode(ranked.candidates[i]);
  result.predicted_gflops = ranked.scores[i];
  if (t0) ISAAC_TM_RECORD("dispatch.predict_us", telemetry::now_us() - t0);
  return result;
}

template GemmTuneResult tune<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const search::SearchConfig&);
template ConvTuneResult tune<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const search::SearchConfig&);
template BatchedGemmTuneResult tune<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                   const mlp::Regressor&,
                                                   const gpusim::Simulator&,
                                                   const search::SearchConfig&);
template GemmPredictResult predict<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                           const gpusim::DeviceDescriptor&,
                                           const search::SearchConfig&);
template ConvPredictResult predict<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                           const gpusim::DeviceDescriptor&,
                                           const search::SearchConfig&);
template BatchedGemmPredictResult predict<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                         const mlp::Regressor&,
                                                         const gpusim::DeviceDescriptor&,
                                                         const search::SearchConfig&);

}  // namespace isaac::core
