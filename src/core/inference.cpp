#include "core/inference.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "tuning/search_space.hpp"

namespace isaac::core {

namespace {

/// Generic exhaustive inference over any (space, shape) pair.
/// A coarse grid of "sane" configurations that subsampled searches must not
/// lose: the region hand-tuned vendor kernels live in. With exhaustive
/// enumeration (max_candidates == 0) these are visited anyway.
std::vector<codegen::GemmTuning> gemm_seed_grid() {
  std::vector<codegen::GemmTuning> seeds;
  for (int ms : {4, 8}) {
    for (int ns : {4, 8}) {
      for (int ml : {16, 32, 64, 128}) {
        for (int nl : {16, 32, 64, 128}) {
          for (int u : {8, 16}) {
            for (int kl : {1, 4}) {
              for (int kg : {1, 4, 16}) {
                codegen::GemmTuning t;
                t.ms = ms;
                t.ns = ns;
                t.ml = ml;
                t.nl = nl;
                t.u = u;
                t.ks = 1;
                t.kl = kl;
                t.kg = kg;
                t.vec = 4;
                seeds.push_back(t);
              }
            }
          }
        }
      }
    }
  }
  return seeds;
}

std::vector<codegen::ConvTuning> conv_seed_grid() {
  std::vector<codegen::ConvTuning> seeds;
  for (int bk : {16, 32, 64, 128}) {
    for (int bn : {4, 8, 16}) {
      for (int bpq : {1, 2, 4}) {
        for (int cl : {1, 4}) {
          for (int cg : {1, 4, 16}) {
            codegen::ConvTuning t;
            t.bk = bk;
            t.tk = std::min(8, bk / 2);
            t.bn = bn;
            t.tn = std::min(4, bn);
            t.bp = bpq;
            t.bq = bpq;
            t.tp = 1;
            t.tq = bpq >= 2 ? 2 : 1;
            t.u = 8;
            t.cl = cl;
            t.cg = cg;
            t.vec = 4;
            seeds.push_back(t);
          }
        }
      }
    }
  }
  return seeds;
}

const std::vector<codegen::GemmTuning>& seed_grid(const codegen::GemmTuning*) {
  static const auto seeds = gemm_seed_grid();
  return seeds;
}

const std::vector<codegen::ConvTuning>& seed_grid(const codegen::ConvTuning*) {
  static const auto seeds = conv_seed_grid();
  return seeds;
}

template <typename Tuning, typename Space, typename Shape, typename ValidateFn,
          typename AnalyzeFn, typename FeatureFn>
TuneResult<Tuning> tune_impl(const Shape& shape, const mlp::Regressor& model,
                             const gpusim::Simulator& sim, const InferenceConfig& config,
                             const Space& space, const ValidateFn& validate_fn,
                             const AnalyzeFn& analyze_fn, const FeatureFn& feature_fn) {
  TuneResult<Tuning> result;

  // ---- phase 1: enumerate the legal space -----------------------------------
  std::vector<Tuning> legal;
  std::size_t visited = 0;
  space.for_each([&](const Tuning& t) {
    ++visited;
    if (validate_fn(shape, t)) legal.push_back(t);
    return true;
  });
  result.enumerated = visited;
  if (legal.empty()) {
    throw std::runtime_error("tune: no legal configuration for this shape/device");
  }
  if (config.max_candidates > 0 && legal.size() > config.max_candidates) {
    // Deterministic striding keeps coverage spread across the space; the seed
    // grid is appended afterwards so subsampling can never lose the
    // well-known-good region.
    std::vector<Tuning> strided;
    strided.reserve(config.max_candidates);
    const double step = static_cast<double>(legal.size()) /
                        static_cast<double>(config.max_candidates);
    for (std::size_t i = 0; i < config.max_candidates; ++i) {
      strided.push_back(legal[static_cast<std::size_t>(i * step)]);
    }
    for (const Tuning& t : seed_grid(static_cast<const Tuning*>(nullptr))) {
      if (validate_fn(shape, t)) strided.push_back(t);
    }
    legal = std::move(strided);
  }
  result.legal = legal.size();

  // ---- phase 2: batched model scoring ---------------------------------------
  std::vector<double> scores(legal.size());
  const std::size_t batch = std::max<std::size_t>(config.batch, 1);
  const std::size_t num_batches = (legal.size() + batch - 1) / batch;
  ThreadPool::global().parallel_for_each(num_batches, [&](std::size_t bi) {
    const std::size_t begin = bi * batch;
    const std::size_t end = std::min(legal.size(), begin + batch);
    std::vector<std::vector<double>> rows;
    rows.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) rows.push_back(feature_fn(shape, legal[i]));
    const auto pred = model.predict_gflops_batch(rows);
    std::copy(pred.begin(), pred.end(), scores.begin() + static_cast<std::ptrdiff_t>(begin));
  });

  // ---- phase 3: top-k selection ----------------------------------------------
  std::vector<std::size_t> order(legal.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t k = std::min<std::size_t>(std::max<std::size_t>(config.top_k, 1),
                                              order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k), order.end(),
                    [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  // ---- phase 4: re-time the top-k on the device ------------------------------
  result.top.resize(k);
  ThreadPool::global().parallel_for_each(k, [&](std::size_t i) {
    Candidate<Tuning> c;
    c.tuning = legal[order[i]];
    c.predicted_gflops = scores[order[i]];
    const auto profile = analyze_fn(shape, c.tuning);
    const auto timed = sim.launch_median(profile, config.reeval_reps);
    c.measured_gflops = timed.valid ? timed.tflops * 1000.0 : 0.0;
    result.top[i] = std::move(c);
  });

  std::sort(result.top.begin(), result.top.end(),
            [](const auto& a, const auto& b) { return a.measured_gflops > b.measured_gflops; });
  result.best = result.top.front();

  ISAAC_LOG_INFO() << "tuned: " << result.legal << " legal of " << result.enumerated
                   << " enumerated; best measured " << result.best.measured_gflops
                   << " GFLOPS (predicted " << result.best.predicted_gflops << ")";
  return result;
}

}  // namespace

GemmTuneResult tune_gemm(const codegen::GemmShape& shape, const mlp::Regressor& model,
                         const gpusim::Simulator& sim, const InferenceConfig& config) {
  const tuning::GemmSearchSpace space;
  const auto& dev = sim.device();
  return tune_impl<codegen::GemmTuning>(
      shape, model, sim, config, space,
      [&](const codegen::GemmShape& s, const codegen::GemmTuning& t) {
        return codegen::validate(s, t, dev);
      },
      [&](const codegen::GemmShape& s, const codegen::GemmTuning& t) {
        return codegen::analyze(s, t, dev);
      },
      [](const codegen::GemmShape& s, const codegen::GemmTuning& t) {
        return tuning::features(s, t);
      });
}

ConvTuneResult tune_conv(const codegen::ConvShape& shape, const mlp::Regressor& model,
                         const gpusim::Simulator& sim, const InferenceConfig& config) {
  const tuning::ConvSearchSpace space;
  const auto& dev = sim.device();
  InferenceConfig cfg = config;
  if (cfg.max_candidates == 0) cfg.max_candidates = 200000;  // conv X̂ is ~10^7
  return tune_impl<codegen::ConvTuning>(
      shape, model, sim, cfg, space,
      [&](const codegen::ConvShape& s, const codegen::ConvTuning& t) {
        return codegen::validate(s, t, dev);
      },
      [&](const codegen::ConvShape& s, const codegen::ConvTuning& t) {
        return codegen::analyze(s, t, dev);
      },
      [](const codegen::ConvShape& s, const codegen::ConvTuning& t) {
        return tuning::features(s, t);
      });
}

}  // namespace isaac::core
