#include "core/inference.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/logging.hpp"
#include "search/driver.hpp"
#include "search/factory.hpp"

namespace isaac::core {

namespace {

/// Zero-valued fields fall back to the op's defaults; an empty strategy name
/// means the op's default strategy.
template <typename Op>
search::SearchConfig resolve_config(const search::SearchConfig& config) {
  const search::SearchConfig defaults = OperationTraits<Op>::default_search();
  search::SearchConfig resolved = config;
  if (resolved.strategy.empty()) resolved.strategy = defaults.strategy;
  if (resolved.budget == 0) resolved.budget = defaults.budget;
  if (resolved.max_candidates == 0) resolved.max_candidates = defaults.max_candidates;
  if (resolved.batch == 0) resolved.batch = defaults.batch;
  if (resolved.keep_top == 0) resolved.keep_top = defaults.keep_top;
  if (resolved.reeval_reps <= 0) resolved.reeval_reps = defaults.reeval_reps;
  return resolved;
}

}  // namespace

/// One implementation for every operation and every strategy: build the op's
/// search problem, let the configured strategy propose legal candidates, and
/// spend the measurement budget re-timing them on the device. All op-specific
/// behavior comes from OperationTraits<Op>, all policy from the strategy —
/// adding an operation or a strategy adds no code here.
template <typename Op>
TuneResult<typename OperationTraits<Op>::Tuning> tune(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::Simulator& sim, const search::SearchConfig& config) {
  using Traits = OperationTraits<Op>;
  using Tuning = typename Traits::Tuning;

  const search::SearchConfig resolved = resolve_config<Op>(config);
  const auto& dev = sim.device();
  const typename Traits::SearchSpace space;

  search::SearchProblem<Op> problem;
  problem.shape = &shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &model;
  const auto strategy = search::make_strategy<Op>(problem, resolved);

  TuneResult<Tuning> result;
  result.strategy = resolved.strategy;
  result.budget = resolved.budget;

  const auto measure = [&](const Tuning& t) {
    const auto profile = Traits::analyze(shape, t, dev);
    const auto timed = sim.launch_median(profile, resolved.reeval_reps);
    return timed.valid ? timed.tflops * 1000.0 : 0.0;
  };
  // Deterministic tie-break shared by every strategy, so equal-measuring
  // winners agree across strategies and across runs.
  const auto better = [](const Candidate<Tuning>& a, const Candidate<Tuning>& b) {
    if (a.measured_gflops != b.measured_gflops) return a.measured_gflops > b.measured_gflops;
    return Traits::encode_tuning(a.tuning) < Traits::encode_tuning(b.tuning);
  };
  // Adaptive strategies may re-propose an already-measured point (annealing
  // chain revisits, GA fallbacks); keep result.top a list of *distinct*
  // candidates. Re-measurements are deterministic, so dropping them is safe.
  std::unordered_set<std::string> seen_tunings;
  result.measured = search::drive(
      *strategy, resolved.budget, measure,
      [&](const search::Proposal<Tuning>& p, double gflops) {
        if (!seen_tunings.insert(Traits::encode_tuning(p.tuning)).second) return;
        Candidate<Tuning> c;
        c.tuning = p.tuning;
        c.predicted_gflops = p.predicted_gflops;
        c.measured_gflops = gflops;
        result.top.push_back(std::move(c));
        // Keep memory bounded for huge budgets (an unbudgeted exhaustive
        // sweep measures the whole legal space): prune back to the keep_top
        // best whenever the buffer doubles past it.
        if (resolved.keep_top < result.top.size() / 2) {
          std::nth_element(result.top.begin(),
                           result.top.begin() + static_cast<std::ptrdiff_t>(resolved.keep_top),
                           result.top.end(), better);
          result.top.resize(resolved.keep_top);
        }
      });

  result.enumerated = strategy->stats().visited;
  result.legal = strategy->stats().legal;
  if (result.top.empty()) {
    throw std::runtime_error("tune: no legal configuration for this shape/device");
  }

  std::sort(result.top.begin(), result.top.end(), better);
  if (result.top.size() > resolved.keep_top) result.top.resize(resolved.keep_top);
  result.best = result.top.front();

  ISAAC_LOG_INFO() << "tuned " << Traits::kind() << " [" << resolved.strategy << ", budget "
                   << resolved.budget << "]: " << result.measured << " measured, "
                   << result.legal << " legal of " << result.enumerated
                   << " visited; best measured " << result.best.measured_gflops
                   << " GFLOPS (predicted " << result.best.predicted_gflops << ")";
  return result;
}

template GemmTuneResult tune<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const search::SearchConfig&);
template ConvTuneResult tune<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                     const gpusim::Simulator&, const search::SearchConfig&);
template BatchedGemmTuneResult tune<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                   const mlp::Regressor&,
                                                   const gpusim::Simulator&,
                                                   const search::SearchConfig&);

}  // namespace isaac::core
