// Runtime kernel inference (paper §6).
//
// With the input parameters fixed by the user, the trained regression model
// is optimized over tuning parameters only. The search is exhaustive over the
// legal space (paper: "guaranteed to find the global optimum within the
// specified search range", "highly parallelizable"), batched through the MLP,
// and the top-k predicted configurations are re-timed on the device to
// "smooth out the inherent noise of our predictive model".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"

namespace isaac::core {

struct InferenceConfig {
  /// Re-time this many of the model's best predictions on the device.
  std::size_t top_k = 100;
  /// Timing repetitions per re-timed candidate (median taken).
  int reeval_reps = 5;
  /// Cap on legal candidates scored by the model (0 = unlimited). Applied by
  /// deterministic striding, for spaces too large to enumerate densely.
  std::size_t max_candidates = 0;
  /// MLP scoring batch.
  std::size_t batch = 8192;
};

template <typename Tuning>
struct Candidate {
  Tuning tuning{};
  double predicted_gflops = 0.0;
  double measured_gflops = 0.0;  // 0 until re-timed
};

template <typename Tuning>
struct TuneResult {
  Candidate<Tuning> best{};
  std::vector<Candidate<Tuning>> top;  // re-timed candidates, best first
  std::size_t enumerated = 0;          // size of X̂ visited
  std::size_t legal = 0;               // candidates scored by the model
};

using GemmTuneResult = TuneResult<codegen::GemmTuning>;
using ConvTuneResult = TuneResult<codegen::ConvTuning>;

/// Exhaustively optimize the model over GEMM tuning parameters for `shape`,
/// then re-time the top-k on `sim`. Throws std::runtime_error when no legal
/// configuration exists.
GemmTuneResult tune_gemm(const codegen::GemmShape& shape, const mlp::Regressor& model,
                         const gpusim::Simulator& sim, const InferenceConfig& config = {});

ConvTuneResult tune_conv(const codegen::ConvShape& shape, const mlp::Regressor& model,
                         const gpusim::Simulator& sim, const InferenceConfig& config = {});

}  // namespace isaac::core
