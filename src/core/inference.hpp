// Runtime kernel inference (paper §6), on top of the pluggable search
// subsystem (src/search/).
//
// With the input parameters fixed by the user, tune<Op>() optimizes over the
// tuning parameters by driving a SearchStrategy under an explicit measurement
// budget. The default strategy, "model_topk", is the paper's recipe: rank the
// legal space with the trained regression model ("guaranteed to find the
// global optimum within the specified search range", "highly parallelizable"
// — batched through the MLP), then re-time only the best predictions on the
// device to "smooth out the inherent noise of our predictive model".
// Alternative strategies (exhaustive / random / genetic / annealing) plug in
// through SearchConfig::strategy; see search/factory.hpp.
//
// The whole pipeline is one templated tune<Op>() over OperationTraits<Op>
// (core/operation.hpp); tune_gemm/tune_conv/tune_batched_gemm are aliases.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/operation.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "search/config.hpp"

namespace isaac::core {

template <typename Tuning>
struct Candidate {
  Tuning tuning{};
  double predicted_gflops = 0.0;  // 0 for model-free strategies
  double measured_gflops = 0.0;
};

template <typename Tuning>
struct TuneResult {
  Candidate<Tuning> best{};
  std::vector<Candidate<Tuning>> top;  // distinct measured candidates, best first
  std::size_t enumerated = 0;          // points of X̂ the strategy visited
  std::size_t legal = 0;               // subset that passed validation
  std::size_t measured = 0;            // device evaluations spent (≤ budget)
  std::string strategy;                // resolved strategy name
  std::size_t budget = 0;              // resolved evaluation budget
  bool stopped_early = false;          // deadline/cancellation cut the drive
                                       // loop; best is the anytime result
};

using GemmTuneResult = TuneResult<codegen::GemmTuning>;
using ConvTuneResult = TuneResult<codegen::ConvTuning>;
using BatchedGemmTuneResult = TuneResult<codegen::GemmTuning>;

/// A zero-measurement model decision (the dispatch fast path's tier 1).
template <typename Tuning>
struct PredictResult {
  Tuning tuning{};                // the model's argmax over the probed legal set
  double predicted_gflops = 0.0;
  std::size_t enumerated = 0;     // X̂ points legality-checked
  std::size_t legal = 0;          // subset that passed validation
  bool dense_fallback = false;    // strided probe found nothing legal; swept X̂
};

using GemmPredictResult = PredictResult<codegen::GemmTuning>;
using ConvPredictResult = PredictResult<codegen::ConvTuning>;
using BatchedGemmPredictResult = PredictResult<codegen::GemmTuning>;

/// Optimize the model over Op's tuning parameters for `shape` with the
/// configured strategy and budget (zero-valued SearchConfig fields resolve
/// against OperationTraits<Op>::default_search()). Throws std::runtime_error
/// when no legal configuration exists and std::invalid_argument for an
/// unknown strategy. Thread-safe: shares only const state and the global
/// thread pool. `model` is borrowed for the whole call — a caller whose
/// model can be hot-swapped (Context) pins one VersionedModel snapshot per
/// tune and passes its regressor, so the returned ranking (TuneResult::top,
/// the search's measured set, which the online lifecycle folds into the
/// observation log) is attributable to exactly one model version.
template <typename Op>
TuneResult<typename OperationTraits<Op>::Tuning> tune(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::Simulator& sim, const search::SearchConfig& config = {});

/// The model's argmax over a bounded probe of the legal space — tune<Op>()'s
/// tier-1 sibling, factored out of ModelGuidedTopK's ranking core. Spends
/// *zero* device measurements: at most SearchConfig::max_candidates legality
/// checks (deterministic flat-index striding of X̂, seed grid always
/// re-appended) plus one batched model pass, so a cold dispatch answers in
/// ranking time instead of search time. Degenerate shapes whose sparse legal
/// set the stride misses fall back to a dense legality sweep (still
/// measurement-free); throws std::runtime_error only when no legal
/// configuration exists at all. Thread-safe like tune<Op>().
template <typename Op>
PredictResult<typename OperationTraits<Op>::Tuning> predict(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::DeviceDescriptor& device, const search::SearchConfig& config = {});

extern template GemmTuneResult tune<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                            const gpusim::Simulator&,
                                            const search::SearchConfig&);
extern template ConvTuneResult tune<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                            const gpusim::Simulator&,
                                            const search::SearchConfig&);
extern template BatchedGemmTuneResult tune<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                          const mlp::Regressor&,
                                                          const gpusim::Simulator&,
                                                          const search::SearchConfig&);
extern template GemmPredictResult predict<GemmOp>(const codegen::GemmShape&,
                                                  const mlp::Regressor&,
                                                  const gpusim::DeviceDescriptor&,
                                                  const search::SearchConfig&);
extern template ConvPredictResult predict<ConvOp>(const codegen::ConvShape&,
                                                  const mlp::Regressor&,
                                                  const gpusim::DeviceDescriptor&,
                                                  const search::SearchConfig&);
extern template BatchedGemmPredictResult predict<BatchedGemmOp>(
    const codegen::BatchedGemmShape&, const mlp::Regressor&, const gpusim::DeviceDescriptor&,
    const search::SearchConfig&);

inline GemmTuneResult tune_gemm(const codegen::GemmShape& shape, const mlp::Regressor& model,
                                const gpusim::Simulator& sim,
                                const search::SearchConfig& config = {}) {
  return tune<GemmOp>(shape, model, sim, config);
}

inline ConvTuneResult tune_conv(const codegen::ConvShape& shape, const mlp::Regressor& model,
                                const gpusim::Simulator& sim,
                                const search::SearchConfig& config = {}) {
  return tune<ConvOp>(shape, model, sim, config);
}

inline BatchedGemmTuneResult tune_batched_gemm(const codegen::BatchedGemmShape& shape,
                                               const mlp::Regressor& model,
                                               const gpusim::Simulator& sim,
                                               const search::SearchConfig& config = {}) {
  return tune<BatchedGemmOp>(shape, model, sim, config);
}

}  // namespace isaac::core
