// Runtime kernel inference (paper §6).
//
// With the input parameters fixed by the user, the trained regression model
// is optimized over tuning parameters only. The search is exhaustive over the
// legal space (paper: "guaranteed to find the global optimum within the
// specified search range", "highly parallelizable"), batched through the MLP,
// and the top-k predicted configurations are re-timed on the device to
// "smooth out the inherent noise of our predictive model".
//
// The whole pipeline is one templated tune<Op>() over OperationTraits<Op>
// (core/operation.hpp); tune_gemm/tune_conv/tune_batched_gemm are aliases.
#pragma once

#include <cstddef>
#include <vector>

#include "core/operation.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"

namespace isaac::core {

struct InferenceConfig {
  /// Re-time this many of the model's best predictions on the device.
  std::size_t top_k = 100;
  /// Timing repetitions per re-timed candidate (median taken).
  int reeval_reps = 5;
  /// Cap on legal candidates scored by the model (0 = the op's default from
  /// OperationTraits<Op>::default_max_candidates()). Applied by deterministic
  /// striding, for spaces too large to enumerate densely.
  std::size_t max_candidates = 0;
  /// MLP scoring batch.
  std::size_t batch = 8192;
};

template <typename Tuning>
struct Candidate {
  Tuning tuning{};
  double predicted_gflops = 0.0;
  double measured_gflops = 0.0;  // 0 until re-timed
};

template <typename Tuning>
struct TuneResult {
  Candidate<Tuning> best{};
  std::vector<Candidate<Tuning>> top;  // re-timed candidates, best first
  std::size_t enumerated = 0;          // size of X̂ visited
  std::size_t legal = 0;               // candidates scored by the model
};

using GemmTuneResult = TuneResult<codegen::GemmTuning>;
using ConvTuneResult = TuneResult<codegen::ConvTuning>;
using BatchedGemmTuneResult = TuneResult<codegen::GemmTuning>;

/// Exhaustively optimize the model over Op's tuning parameters for `shape`,
/// then re-time the top-k on `sim`. Throws std::runtime_error when no legal
/// configuration exists. Thread-safe: shares only const state and the global
/// thread pool.
template <typename Op>
TuneResult<typename OperationTraits<Op>::Tuning> tune(
    const typename OperationTraits<Op>::Shape& shape, const mlp::Regressor& model,
    const gpusim::Simulator& sim, const InferenceConfig& config = {});

extern template GemmTuneResult tune<GemmOp>(const codegen::GemmShape&, const mlp::Regressor&,
                                            const gpusim::Simulator&, const InferenceConfig&);
extern template ConvTuneResult tune<ConvOp>(const codegen::ConvShape&, const mlp::Regressor&,
                                            const gpusim::Simulator&, const InferenceConfig&);
extern template BatchedGemmTuneResult tune<BatchedGemmOp>(const codegen::BatchedGemmShape&,
                                                          const mlp::Regressor&,
                                                          const gpusim::Simulator&,
                                                          const InferenceConfig&);

inline GemmTuneResult tune_gemm(const codegen::GemmShape& shape, const mlp::Regressor& model,
                                const gpusim::Simulator& sim, const InferenceConfig& config = {}) {
  return tune<GemmOp>(shape, model, sim, config);
}

inline ConvTuneResult tune_conv(const codegen::ConvShape& shape, const mlp::Regressor& model,
                                const gpusim::Simulator& sim, const InferenceConfig& config = {}) {
  return tune<ConvOp>(shape, model, sim, config);
}

inline BatchedGemmTuneResult tune_batched_gemm(const codegen::BatchedGemmShape& shape,
                                               const mlp::Regressor& model,
                                               const gpusim::Simulator& sim,
                                               const InferenceConfig& config = {}) {
  return tune<BatchedGemmOp>(shape, model, sim, config);
}

}  // namespace isaac::core
