#include "core/isaac.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"

namespace isaac::core {

namespace {

/// Runs the env wiring (ISAAC_LOG, ISAAC_TELEMETRY*) before any Context
/// member — notably the profile cache, whose load/compaction should already
/// be observable — constructs. Threaded through the first member initializer
/// so the ordering is structural, not incidental.
const gpusim::DeviceDescriptor& with_env_init(const gpusim::DeviceDescriptor& device) {
  log::init_from_env();
  telemetry::init_from_env();
  return device;
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

Context::Context(const gpusim::DeviceDescriptor& device, ContextOptions options)
    : sim_(with_env_init(device), options.noise_sigma, options.seed),
      options_(std::move(options)),
      cache_(options_.cache_dir),
      observations_(options_.online.log_capacity, options_.online.log_dir),
      drift_(options_.online.drift),
      retrainer_(options_.online.retrain) {}

Context::~Context() {
  drain_background();
  // ISAAC_TELEMETRY=<path> asks for an end-of-life dump: rewrite the target
  // with the full registry + span state. Multiple Contexts each rewrite; the
  // registry is process-wide, so the last writer holds the complete picture.
  telemetry::dump_configured();
}

void Context::drain_background() {
  std::unique_lock<std::mutex> lock(background_mutex_);
  background_cv_.wait(lock, [this] { return background_pending_ == 0; });
}

void Context::train_model(std::size_t samples, int epochs) {
  tuning::CollectorConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = options_.seed ^ 0xDA7A;
  const auto report = tuning::collect_gemm(sim_, cfg);
  if (report.dataset.size() < 100) {
    throw std::runtime_error("train_model: data collection produced too few samples");
  }

  mlp::TrainConfig train_cfg;
  train_cfg.net.hidden = {64, 128, 64};
  train_cfg.epochs = epochs;
  train_cfg.seed = options_.seed;
  set_model(mlp::train(report.dataset, train_cfg));
  ISAAC_LOG_INFO() << "trained model on " << report.dataset.size() << " samples";
}

void Context::set_model(mlp::Regressor model) {
  std::shared_ptr<const mlp::VersionedModel> versioned;
  {
    // Version assignment and publication under one lock so racing installs
    // cannot mint the same version id.
    std::lock_guard<std::mutex> lock(model_mutex_);
    const std::uint64_t parent = model_ ? model_->version() : 0;
    mlp::TrainProvenance prov;
    prov.source = "install";
    prov.parent_version = parent;
    versioned =
        std::make_shared<mlp::VersionedModel>(std::move(model), parent + 1, std::move(prov));
    versioned.swap(model_);
  }
  // `versioned` now holds the predecessor (nullptr on first install).
  if (versioned) {
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("model.swaps");
    drift_.reset();
  }
}

void Context::install_model(std::shared_ptr<const mlp::VersionedModel> model) {
  if (!model) throw std::invalid_argument("Context::install_model: null model");
  telemetry::Span span("model.swap");
  {
    std::lock_guard<std::mutex> lock(model_mutex_);
    model.swap(model_);
  }
  // `model` now holds the predecessor; dropping it here (outside the lock)
  // frees the old version only once every pinned reader has also let go.
  if (model) {
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("model.swaps");
    // The successor starts with clean error windows: drift is judged per
    // version, not across the swap.
    drift_.reset();
  }
}

std::shared_ptr<const mlp::VersionedModel> Context::model_snapshot() const noexcept {
  std::lock_guard<std::mutex> lock(model_mutex_);
  return model_;
}

void Context::maybe_schedule_retrain(bool drift_tripped) {
  const auto& online = options_.online;
  if (!online.enabled) return;
  if (!drift_tripped) {
    if (online.retrain_every == 0) return;
    const std::uint64_t total = observations_recorded_.load(std::memory_order_relaxed);
    const std::uint64_t mark = last_retrain_mark_.load(std::memory_order_relaxed);
    if (total - mark < online.retrain_every) return;
  }
  if (observations_.size() < online.retrain.min_observations) return;
  schedule_retrain();
}

bool Context::request_retrain() {
  if (!options_.online.enabled) return false;
  if (!model_snapshot()) return false;
  return schedule_retrain();
}

bool Context::schedule_retrain() {
  if (retrain_inflight_.exchange(true, std::memory_order_acq_rel)) return false;
  last_retrain_mark_.store(observations_recorded_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(background_mutex_);
    ++background_pending_;
  }
  ISAAC_TM_COUNT("model.retrain_enqueued");
  const std::uint64_t parent_span = telemetry::current_span();
  ThreadPool::global().submit([this, parent_span] {
    run_retrain(parent_span);
    // Last step, notify under the lock: a destructor waiting on
    // background_pending_ == 0 cannot resume (and free `this`) until this
    // task's unlock, after which the task touches nothing of `this`.
    {
      std::lock_guard<std::mutex> lock(background_mutex_);
      --background_pending_;
      background_cv_.notify_all();
    }
  });
  return true;
}

bool Context::retrain_now() {
  if (!options_.online.enabled) return false;
  if (retrain_inflight_.exchange(true, std::memory_order_acq_rel)) return false;
  last_retrain_mark_.store(observations_recorded_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  return run_retrain(telemetry::current_span());
}

bool Context::run_retrain(std::uint64_t parent_span) {
  const std::uint64_t begin_us = steady_now_us();
  bool swapped = false;
  {
    telemetry::Span span("model.retrain", parent_span);
    try {
      const auto base = model_snapshot();
      if (base) {
        // Drain, don't snapshot: each observation trains at most one
        // successor, so a stable workload doesn't re-fold the same rows
        // into every later version.
        const auto observations = observations_.drain();
        auto next =
            std::make_shared<const mlp::VersionedModel>(retrainer_.retrain(*base, observations));
        ISAAC_LOG_INFO() << "retrained model v" << base->version() << " -> v" << next->version()
                         << " on " << next->provenance().samples << " observations";
        install_model(std::move(next));
        retrains_.fetch_add(1, std::memory_order_relaxed);
        ISAAC_TM_COUNT("model.retrains");
        swapped = true;
      }
    } catch (const std::exception& e) {
      ISAAC_TM_COUNT("model.retrain_failed");
      ISAAC_LOG_WARN() << "retrain failed (model unchanged): " << e.what();
    } catch (...) {
      ISAAC_TM_COUNT("model.retrain_failed");
      ISAAC_LOG_WARN() << "retrain failed (model unchanged)";
    }
  }
  const std::uint64_t elapsed = steady_now_us() - begin_us;
  last_retrain_us_.store(elapsed, std::memory_order_relaxed);
  ISAAC_TM_RECORD("model.retrain_us", elapsed);
  retrain_inflight_.store(false, std::memory_order_release);
  return swapped;
}

}  // namespace isaac::core
