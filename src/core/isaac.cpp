#include "core/isaac.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace isaac::core {

Context::Context(const gpusim::DeviceDescriptor& device, ContextOptions options)
    : sim_(device, options.noise_sigma, options.seed),
      options_(std::move(options)),
      cache_(options_.cache_dir) {}

void Context::train_model(std::size_t samples, int epochs) {
  tuning::CollectorConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = options_.seed ^ 0xDA7A;
  const auto report = tuning::collect_gemm(sim_, cfg);
  if (report.dataset.size() < 100) {
    throw std::runtime_error("train_model: data collection produced too few samples");
  }

  mlp::TrainConfig train_cfg;
  train_cfg.net.hidden = {64, 128, 64};
  train_cfg.epochs = epochs;
  train_cfg.seed = options_.seed;
  set_model(mlp::train(report.dataset, train_cfg));
  ISAAC_LOG_INFO() << "trained model on " << report.dataset.size() << " samples";
}

void Context::set_model(mlp::Regressor model) { model_.emplace(std::move(model)); }

const mlp::Regressor& Context::model() const {
  if (!model_) throw std::logic_error("Context: no model trained or installed");
  return *model_;
}

GemmTuneResult Context::tune_gemm(const codegen::GemmShape& shape) {
  return core::tune_gemm(shape, model(), sim_, options_.inference);
}

ConvTuneResult Context::tune_conv(const codegen::ConvShape& shape) {
  return core::tune_conv(shape, model(), sim_, options_.inference);
}

codegen::GemmTuning Context::select_gemm(const codegen::GemmShape& shape, bool* from_cache) {
  if (const auto cached = cache_.lookup_gemm(device().name, shape)) {
    if (from_cache) *from_cache = true;
    return *cached;
  }
  const auto result = tune_gemm(shape);
  cache_.store_gemm(device().name, shape, result.best.tuning);
  if (from_cache) *from_cache = false;
  return result.best.tuning;
}

codegen::ConvTuning Context::select_conv(const codegen::ConvShape& shape, bool* from_cache) {
  if (const auto cached = cache_.lookup_conv(device().name, shape)) {
    if (from_cache) *from_cache = true;
    return *cached;
  }
  const auto result = tune_conv(shape);
  cache_.store_conv(device().name, shape, result.best.tuning);
  if (from_cache) *from_cache = false;
  return result.best.tuning;
}

namespace {

template <typename T>
GemmCallInfo run_gemm(Context& ctx, const gpusim::Simulator& sim,
                      const codegen::GemmShape& shape, const codegen::GemmTuning& tuning,
                      bool from_cache, T alpha, const T* a, std::int64_t lda, const T* b,
                      std::int64_t ldb, T beta, T* c, std::int64_t ldc) {
  (void)ctx;
  GemmCallInfo info;
  info.tuning = tuning;
  info.from_cache = from_cache;
  codegen::execute_gemm(shape, tuning, alpha, a, lda, b, ldb, beta, c, ldc);
  const auto timing = sim.launch_median(codegen::analyze(shape, tuning, sim.device()), 3);
  info.simulated_seconds = timing.seconds;
  info.gflops = timing.tflops * 1000.0;
  return info;
}

}  // namespace

GemmCallInfo Context::gemm(const codegen::GemmShape& shape, float alpha, const float* a,
                           std::int64_t lda, const float* b, std::int64_t ldb, float beta,
                           float* c, std::int64_t ldc) {
  bool from_cache = false;
  const auto tuning = select_gemm(shape, &from_cache);
  return run_gemm(*this, sim_, shape, tuning, from_cache, alpha, a, lda, b, ldb, beta, c, ldc);
}

GemmCallInfo Context::gemm(const codegen::GemmShape& shape, double alpha, const double* a,
                           std::int64_t lda, const double* b, std::int64_t ldb, double beta,
                           double* c, std::int64_t ldc) {
  bool from_cache = false;
  const auto tuning = select_gemm(shape, &from_cache);
  return run_gemm(*this, sim_, shape, tuning, from_cache, alpha, a, lda, b, ldb, beta, c, ldc);
}

ConvCallInfo Context::conv(const codegen::ConvShape& shape, float alpha, const float* input,
                           const float* filters, float beta, float* output) {
  bool from_cache = false;
  const auto tuning = select_conv(shape, &from_cache);
  ConvCallInfo info;
  info.tuning = tuning;
  info.from_cache = from_cache;
  codegen::execute_conv(shape, tuning, alpha, input, filters, beta, output);
  const auto timing = sim_.launch_median(codegen::analyze(shape, tuning, sim_.device()), 3);
  info.simulated_seconds = timing.seconds;
  info.gflops = timing.tflops * 1000.0;
  return info;
}

}  // namespace isaac::core
