#include "core/isaac.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"

namespace isaac::core {

namespace {

/// Runs the env wiring (ISAAC_LOG, ISAAC_TELEMETRY*, ISAAC_FAILPOINTS)
/// before any Context member — notably the profile cache, whose
/// load/compaction should already be observable (and chaos-injectable) —
/// constructs. Threaded through the first member initializer so the ordering
/// is structural, not incidental.
const gpusim::DeviceDescriptor& with_env_init(const gpusim::DeviceDescriptor& device) {
  log::init_from_env();
  telemetry::init_from_env();
  failpoint::init_from_env();
  return device;
}

std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("ContextOptions: ") + what);
}

bool finite_nonneg(double v) { return std::isfinite(v) && v >= 0.0; }

/// Reject nonsense at construction with a message naming the field, instead
/// of letting a NaN cooldown or zero-capacity log surface as undefined
/// behavior deep inside dispatch.
void validate_options(const ContextOptions& o) {
  require(finite_nonneg(o.noise_sigma), "noise_sigma must be finite and >= 0");
  o.search.validate();
  const auto& f = o.fault;
  require(f.breaker_failure_threshold >= 1, "fault.breaker_failure_threshold must be >= 1");
  require(finite_nonneg(f.breaker_cooldown_ms), "fault.breaker_cooldown_ms must be >= 0");
  require(f.refine_max_attempts >= 1, "fault.refine_max_attempts must be >= 1");
  require(finite_nonneg(f.refine_retry_reset_ms), "fault.refine_retry_reset_ms must be >= 0");
  require(finite_nonneg(f.refine_deadline_ms), "fault.refine_deadline_ms must be >= 0");
  require(finite_nonneg(f.disk_retry_ms), "fault.disk_retry_ms must be >= 0");
  const auto& on = o.online;
  require(on.log_capacity >= 1, "online.log_capacity must be >= 1");
  require(std::isfinite(on.drift.threshold) && on.drift.threshold > 0.0,
          "online.drift.threshold must be finite and > 0");
  require(on.drift.window >= 1, "online.drift.window must be >= 1");
  require(on.retrain.epochs >= 1, "online.retrain.epochs must be >= 1");
  require(on.retrain.batch_size >= 1, "online.retrain.batch_size must be >= 1");
  require(std::isfinite(on.retrain.learning_rate) && on.retrain.learning_rate > 0.0,
          "online.retrain.learning_rate must be finite and > 0");
  require(finite_nonneg(on.retrain.failure_backoff_ms),
          "online.retrain.failure_backoff_ms must be >= 0");
  require(finite_nonneg(on.retrain.failure_backoff_cap_ms),
          "online.retrain.failure_backoff_cap_ms must be >= 0");
}

const ContextOptions& validated(const ContextOptions& options) {
  validate_options(options);
  return options;
}

}  // namespace

Context::Context(const gpusim::DeviceDescriptor& device, ContextOptions options)
    : sim_(with_env_init(device), validated(options).noise_sigma, options.seed),
      options_(std::move(options)),
      cache_(options_.cache_dir),
      observations_(options_.online.log_capacity, options_.online.log_dir),
      drift_(options_.online.drift),
      retrainer_(options_.online.retrain) {
  cache_.set_disk_retry_ms(options_.fault.disk_retry_ms);
  observations_.set_disk_retry_ms(options_.fault.disk_retry_ms);
}

Context::~Context() {
  // Cooperative cancellation first: background refinements poll this flag
  // between search batches (and the injected-hang loop polls it every 1 ms),
  // so the drain below waits for work to *stop*, not to finish a full search.
  cancel_requested_.store(true, std::memory_order_relaxed);
  drain_background();
  // ISAAC_TELEMETRY=<path> asks for an end-of-life dump: rewrite the target
  // with the full registry + span state. Multiple Contexts each rewrite; the
  // registry is process-wide, so the last writer holds the complete picture.
  telemetry::dump_configured();
}

CircuitBreaker& Context::breaker_for(std::string_view kind) {
  sync::MutexLock lock(breaker_mutex_);
  const auto it = breakers_.find(kind);
  if (it != breakers_.end()) return it->second;
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = options_.fault.breaker_failure_threshold;
  cfg.cooldown_ms = options_.fault.breaker_cooldown_ms;
  // try_emplace constructs the (immovable: it owns a mutex) breaker in place.
  return breakers_.try_emplace(std::string(kind), cfg, std::string(kind)).first->second;
}

void Context::drain_background() {
  sync::MutexLock lock(background_mutex_);
  // Explicit predicate loop: the lambda overload would hide the guarded
  // background_pending_ read from the thread-safety analysis.
  while (background_pending_ != 0) background_cv_.wait(background_mutex_);
}

void Context::train_model(std::size_t samples, int epochs) {
  tuning::CollectorConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = options_.seed ^ 0xDA7A;
  const auto report = tuning::collect_gemm(sim_, cfg);
  if (report.dataset.size() < 100) {
    throw std::runtime_error("train_model: data collection produced too few samples");
  }

  mlp::TrainConfig train_cfg;
  train_cfg.net.hidden = {64, 128, 64};
  train_cfg.epochs = epochs;
  train_cfg.seed = options_.seed;
  set_model(mlp::train(report.dataset, train_cfg));
  ISAAC_LOG_INFO() << "trained model on " << report.dataset.size() << " samples";
}

void Context::set_model(mlp::Regressor model) {
  std::shared_ptr<const mlp::VersionedModel> versioned;
  {
    // Version assignment and publication under one lock so racing installs
    // cannot mint the same version id.
    sync::MutexLock lock(model_mutex_);
    const std::uint64_t parent = model_ ? model_->version() : 0;
    mlp::TrainProvenance prov;
    prov.source = "install";
    prov.parent_version = parent;
    versioned =
        std::make_shared<mlp::VersionedModel>(std::move(model), parent + 1, std::move(prov));
    versioned.swap(model_);
  }
  // `versioned` now holds the predecessor (nullptr on first install).
  if (versioned) {
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("model.swaps");
    drift_.reset();
  }
}

void Context::install_model(std::shared_ptr<const mlp::VersionedModel> model) {
  if (!model) throw std::invalid_argument("Context::install_model: null model");
  telemetry::Span span("model.swap");
  {
    sync::MutexLock lock(model_mutex_);
    model.swap(model_);
  }
  // `model` now holds the predecessor; dropping it here (outside the lock)
  // frees the old version only once every pinned reader has also let go.
  if (model) {
    model_swaps_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("model.swaps");
    // The successor starts with clean error windows: drift is judged per
    // version, not across the swap.
    drift_.reset();
  }
}

std::shared_ptr<const mlp::VersionedModel> Context::model_snapshot() const noexcept {
  sync::MutexLock lock(model_mutex_);
  return model_;
}

void Context::maybe_schedule_retrain(bool drift_tripped) {
  const auto& online = options_.online;
  if (!online.enabled) return;
  if (!drift_tripped) {
    if (online.retrain_every == 0) return;
    const std::uint64_t total = observations_recorded_.load(std::memory_order_relaxed);
    const std::uint64_t mark = last_retrain_mark_.load(std::memory_order_relaxed);
    if (total - mark < online.retrain_every) return;
  }
  if (observations_.size() < online.retrain.min_observations) return;
  schedule_retrain();
}

bool Context::request_retrain() {
  if (!options_.online.enabled) return false;
  if (!model_snapshot()) return false;
  return schedule_retrain();
}

bool Context::schedule_retrain() {
  // Failure backoff: after a failed retrain, the triggers (drift trips,
  // retrain_every marks) keep firing on a busy Context — without this gate
  // the background worker would hot-loop fold-and-fail. Explicit
  // retrain_now() calls bypass it (tests and operators know best).
  if (steady_now_us() < retrain_backoff_until_us_.load(std::memory_order_relaxed)) {
    ISAAC_TM_COUNT("model.retrain_backoff");
    return false;
  }
  if (retrain_inflight_.exchange(true, std::memory_order_acq_rel)) return false;
  last_retrain_mark_.store(observations_recorded_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  {
    sync::MutexLock lock(background_mutex_);
    ++background_pending_;
  }
  ISAAC_TM_COUNT("model.retrain_enqueued");
  const std::uint64_t parent_span = telemetry::current_span();
  ThreadPool::global().submit([this, parent_span] {
    run_retrain(parent_span);
    // Last step, notify under the lock: a destructor waiting on
    // background_pending_ == 0 cannot resume (and free `this`) until this
    // task's unlock, after which the task touches nothing of `this`.
    {
      sync::MutexLock lock(background_mutex_);
      --background_pending_;
      background_cv_.notify_all();
    }
  });
  return true;
}

bool Context::retrain_now() {
  if (!options_.online.enabled) return false;
  if (retrain_inflight_.exchange(true, std::memory_order_acq_rel)) return false;
  last_retrain_mark_.store(observations_recorded_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  return run_retrain(telemetry::current_span());
}

bool Context::run_retrain(std::uint64_t parent_span) {
  const std::uint64_t begin_us = steady_now_us();
  bool swapped = false;
  {
    telemetry::Span span("model.retrain", parent_span);
    try {
      const auto base = model_snapshot();
      if (base) {
        // Drain, don't snapshot: each observation trains at most one
        // successor, so a stable workload doesn't re-fold the same rows
        // into every later version.
        const auto observations = observations_.drain();
        auto next =
            std::make_shared<const mlp::VersionedModel>(retrainer_.retrain(*base, observations));
        ISAAC_LOG_INFO() << "retrained model v" << base->version() << " -> v" << next->version()
                         << " on " << next->provenance().samples << " observations";
        install_model(std::move(next));
        retrains_.fetch_add(1, std::memory_order_relaxed);
        ISAAC_TM_COUNT("model.retrains");
        swapped = true;
      }
    } catch (const std::exception& e) {
      ISAAC_TM_COUNT("model.retrain_failed");
      ISAAC_LOG_WARN() << "retrain failed (model unchanged): " << e.what();
    } catch (...) {
      ISAAC_TM_COUNT("model.retrain_failed");
      ISAAC_LOG_WARN() << "retrain failed (model unchanged)";
    }
  }
  const std::uint64_t elapsed = steady_now_us() - begin_us;
  last_retrain_us_.store(elapsed, std::memory_order_relaxed);
  ISAAC_TM_RECORD("model.retrain_us", elapsed);
  if (swapped) {
    retrain_failures_.store(0, std::memory_order_relaxed);
    retrain_backoff_until_us_.store(0, std::memory_order_relaxed);
  } else {
    // Exponential backoff on consecutive failures, capped: the next scheduled
    // retrain (not an explicit retrain_now) waits the fault out.
    const int failures = retrain_failures_.fetch_add(1, std::memory_order_relaxed) + 1;
    const auto& cfg = retrainer_.config();
    double backoff_ms = cfg.failure_backoff_ms;
    for (int i = 1; i < failures && backoff_ms < cfg.failure_backoff_cap_ms; ++i)
      backoff_ms *= 2.0;
    backoff_ms = std::min(backoff_ms, cfg.failure_backoff_cap_ms);
    retrain_backoff_until_us_.store(
        steady_now_us() + static_cast<std::uint64_t>(backoff_ms * 1000.0),
        std::memory_order_relaxed);
  }
  retrain_inflight_.store(false, std::memory_order_release);
  return swapped;
}

}  // namespace isaac::core
