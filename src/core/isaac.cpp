#include "core/isaac.hpp"

#include <stdexcept>

#include "common/logging.hpp"

namespace isaac::core {

namespace {

/// Runs the env wiring (ISAAC_LOG, ISAAC_TELEMETRY*) before any Context
/// member — notably the profile cache, whose load/compaction should already
/// be observable — constructs. Threaded through the first member initializer
/// so the ordering is structural, not incidental.
const gpusim::DeviceDescriptor& with_env_init(const gpusim::DeviceDescriptor& device) {
  log::init_from_env();
  telemetry::init_from_env();
  return device;
}

}  // namespace

Context::Context(const gpusim::DeviceDescriptor& device, ContextOptions options)
    : sim_(with_env_init(device), options.noise_sigma, options.seed),
      options_(std::move(options)),
      cache_(options_.cache_dir) {}

Context::~Context() {
  drain_background();
  // ISAAC_TELEMETRY=<path> asks for an end-of-life dump: rewrite the target
  // with the full registry + span state. Multiple Contexts each rewrite; the
  // registry is process-wide, so the last writer holds the complete picture.
  telemetry::dump_configured();
}

void Context::drain_background() {
  std::unique_lock<std::mutex> lock(background_mutex_);
  background_cv_.wait(lock, [this] { return background_pending_ == 0; });
}

void Context::train_model(std::size_t samples, int epochs) {
  tuning::CollectorConfig cfg;
  cfg.num_samples = samples;
  cfg.seed = options_.seed ^ 0xDA7A;
  const auto report = tuning::collect_gemm(sim_, cfg);
  if (report.dataset.size() < 100) {
    throw std::runtime_error("train_model: data collection produced too few samples");
  }

  mlp::TrainConfig train_cfg;
  train_cfg.net.hidden = {64, 128, 64};
  train_cfg.epochs = epochs;
  train_cfg.seed = options_.seed;
  set_model(mlp::train(report.dataset, train_cfg));
  ISAAC_LOG_INFO() << "trained model on " << report.dataset.size() << " samples";
}

void Context::set_model(mlp::Regressor model) { model_.emplace(std::move(model)); }

const mlp::Regressor& Context::model() const {
  if (!model_) throw std::logic_error("Context: no model trained or installed");
  return *model_;
}

}  // namespace isaac::core
