// ISAAC public API — the input-aware auto-tuning framework of the paper,
// end to end (Figure 1): kernel generation → data generation → regression →
// runtime inference, wrapped in a Context bound to one (simulated) device.
//
// Typical use (see examples/quickstart.cpp):
//
//   isaac::core::Context ctx(isaac::gpusim::tesla_p100());
//   ctx.train_model();                       // hours on a real GPU, seconds here
//   isaac::codegen::GemmShape shape{...};
//   auto info = ctx.gemm(shape, 1.0f, A, lda, B, ldb, 0.0f, C, ldc);
//   // C now holds the product; info reports the selected kernel + timing.
//
// The Context is safe to share across threads: the profile cache is sharded
// behind per-bucket shared mutexes, and concurrent misses on the same
// (device, shape) coalesce into a single-flight leader the other callers
// wait on. warmup() pre-tunes a shape list asynchronously on the thread pool.
//
// Dispatch is two-tier (the paper's point: runtime inference replaces
// on-the-fly measurement). A cold select() answers with the model's instant
// argmax — zero device measurements on the calling thread — stores the entry
// as *provisional*, and enqueues a background refinement that runs the
// configured full search and upgrades the entry in place. See DESIGN.md,
// "Two-tier dispatch".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/circuit_breaker.hpp"
#include "common/thread_annotations.hpp"
#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/inference.hpp"
#include "core/operation.hpp"
#include "core/profile_cache.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "mlp/versioned_model.hpp"
#include "telemetry/telemetry.hpp"
#include "tuning/collector.hpp"
#include "tuning/observation_log.hpp"
#include "tuning/online.hpp"

namespace isaac::core {

/// Online model lifecycle (DESIGN.md, "Online model lifecycle"): learn from
/// production measurements. Disabled by default — dispatch behavior is then
/// bit-identical to a fixed-model Context: no observations are recorded, no
/// retrain ever runs, and the installed model serves unchanged.
struct OnlineLearningOptions {
  bool enabled = false;
  /// Bounded in-memory observation ring; oldest records drop first.
  std::size_t log_capacity = 4096;
  /// "" = in-memory only; otherwise every observation is flock-appended to
  /// `log_dir/isaac_observations.txt` for durability and offline replay.
  std::string log_dir;
  /// Rolling model-vs-measured relative-error windows that trip retraining.
  tuning::DriftConfig drift;
  /// Fold + warm-start-train settings for the successor version.
  tuning::RetrainConfig retrain;
  /// Also retrain every N appended observations regardless of drift
  /// (0 = retrain only on drift trips or explicit request_retrain()).
  std::size_t retrain_every = 0;
};

/// Fault tolerance for the dispatch runtime (DESIGN.md, "Failure domains").
/// The defaults are live in every Context; with nothing failing, none of the
/// machinery does anything (the breaker stays closed, no refinement is shed).
struct FaultToleranceOptions {
  /// Consecutive leader-path failures (predict or blocking tune throwing a
  /// runtime error) that trip the per-op circuit breaker open.
  std::size_t breaker_failure_threshold = 3;
  /// How long an open breaker refuses leaders before a half-open trial.
  double breaker_cooldown_ms = 250.0;
  /// Admission control: background refinements concurrently pending before
  /// new ones are shed (the key re-arms, so a later hit retries). 0 = off.
  std::size_t refine_max_pending = 64;
  /// A failing refinement is retried this many times in total; further hits
  /// inside the reset window are dropped without re-enqueueing.
  int refine_max_attempts = 2;
  /// After this long without a new failure, a dropped key's attempt count
  /// resets — the fault storm may have passed, so refinement gets another go.
  double refine_retry_reset_ms = 1000.0;
  /// Deadline handed to background refinement searches (SearchConfig::
  /// timeout_ms): the anytime result is kept at expiry. 0 = no deadline.
  double refine_deadline_ms = 0.0;
  /// Re-probe interval for the disk-degraded profile cache / observation log.
  double disk_retry_ms = 1000.0;
};

struct ContextOptions {
  double noise_sigma = 0.03;       // simulated measurement noise
  std::uint64_t seed = 0x15AAC;
  std::string cache_dir;           // "" = in-memory profile cache only
  /// Strategy + budget every tuning run dispatches through (zero-valued
  /// fields resolve against the op's OperationTraits::default_search()).
  search::SearchConfig search;
  /// Two-tier dispatch (default): a cold select() with a trained model
  /// returns the model's argmax instantly (provisional tier, no device
  /// measurement on the calling thread) and refines in the background.
  /// false = every cold select() blocks on the full configured search — the
  /// pre-two-tier behavior, still what model-less Contexts do.
  bool two_tier = true;
  /// Learn from production measurements: observation log, drift detection,
  /// warm-start retraining, hot model swaps. Off by default.
  OnlineLearningOptions online;
  /// Retry / breaker / admission-control knobs. Inert while nothing fails.
  FaultToleranceOptions fault;
};

/// What a tuned call reports back.
template <typename Op>
struct CallInfo {
  typename OperationTraits<Op>::Tuning tuning{};  // selected kernel
  double simulated_seconds = 0.0;                 // device-model execution time
  double gflops = 0.0;                            // useful FLOPs / simulated time
  bool from_cache = false;  // true when the kernel came out of an existing
                            // cache entry (disk, a previous call, or a
                            // concurrent leader) — provisional or refined;
                            // false when this call was the leader that
                            // produced the selection (a tier-1 prediction
                            // under two-tier dispatch, a full blocking
                            // search otherwise)
  bool provisional = false;  // the served entry was a tier-1 model prediction
                             // whose background refinement has not landed yet
  bool fallback = false;  // the served entry is a seed-grid fallback minted
                          // while the leader path was failing (breaker open
                          // or the ranking threw); refinement will upgrade
                          // it once the fault clears
};

using GemmCallInfo = CallInfo<GemmOp>;
using ConvCallInfo = CallInfo<ConvOp>;
using BatchedGemmCallInfo = CallInfo<BatchedGemmOp>;

class Context {
 public:
  explicit Context(const gpusim::DeviceDescriptor& device, ContextOptions options = {});

  /// Blocks until every outstanding background task — warmup selections and
  /// two-tier refinements — has finished: they run on the global pool and
  /// reference this Context, so none may outlive it.
  ~Context();

  const gpusim::DeviceDescriptor& device() const noexcept { return sim_.device(); }
  const gpusim::Simulator& simulator() const noexcept { return sim_; }

  /// Run the paper's offline pipeline: collect benchmarking data on this
  /// device and train the input-aware regression model. `samples` trades
  /// model quality against tuning time (Fig. 5).
  void train_model(std::size_t samples = 8000, int epochs = 12);

  /// Install an externally trained / deserialized model: wraps it into the
  /// next VersionedModel (version = current + 1, provenance "install") and
  /// hot-swaps it in. Safe while other threads dispatch — they pinned a
  /// snapshot of the predecessor and finish their operation on it.
  void set_model(mlp::Regressor model);

  /// Hot-swap an externally built version in. The caller owns version
  /// assignment; Context's own producers derive current version + 1.
  void install_model(std::shared_ptr<const mlp::VersionedModel> model);

  /// Pin the current model for one operation. The returned snapshot is
  /// immutable and keeps the model alive across any concurrent hot swap —
  /// every dispatch-path reader (select, tune, background refinement,
  /// warmup) pins exactly one snapshot and scores its whole ranking against
  /// it, so a mid-flight swap never mixes two models in one decision.
  /// Returns nullptr when no model is installed.
  std::shared_ptr<const mlp::VersionedModel> model_snapshot() const noexcept;

  bool has_model() const noexcept { return model_snapshot() != nullptr; }

  /// Input-aware kernel selection (uncached; see run()/select() for the
  /// cached path). Requires a model.
  template <typename Op>
  TuneResult<typename OperationTraits<Op>::Tuning> tune(
      const typename OperationTraits<Op>::Shape& shape) {
    const auto snapshot = model_snapshot();
    if (!snapshot) throw std::logic_error("Context: no model trained or installed");
    return core::tune<Op>(shape, snapshot->regressor(), sim_, options_.search);
  }
  GemmTuneResult tune_gemm(const codegen::GemmShape& shape) { return tune<GemmOp>(shape); }
  ConvTuneResult tune_conv(const codegen::ConvShape& shape) { return tune<ConvOp>(shape); }
  BatchedGemmTuneResult tune_batched_gemm(const codegen::BatchedGemmShape& shape) {
    return tune<BatchedGemmOp>(shape);
  }

  /// Tune (or fetch from cache), execute the selected kernel functionally on
  /// the host buffers through the op's executor hook, and report the
  /// simulated device timing. `args...` are forwarded to
  /// OperationTraits<Op>::execute after (shape, tuning).
  template <typename Op, typename... Args>
  CallInfo<Op> run(const typename OperationTraits<Op>::Shape& shape, Args&&... args) {
    CallInfo<Op> info;
    EntryTier tier = EntryTier::refined;
    info.tuning = select<Op>(shape, &info.from_cache, &tier);
    info.provisional = tier == EntryTier::provisional;
    info.fallback = tier == EntryTier::fallback;
    OperationTraits<Op>::execute(shape, info.tuning, std::forward<Args>(args)...);
    const auto timing =
        sim_.launch_median(OperationTraits<Op>::analyze(shape, info.tuning, sim_.device()), 3);
    info.simulated_seconds = timing.seconds;
    info.gflops = timing.tflops * 1000.0;
    return info;
  }

  GemmCallInfo gemm(const codegen::GemmShape& shape, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
    return run<GemmOp>(shape, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  GemmCallInfo gemm(const codegen::GemmShape& shape, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc) {
    return run<GemmOp>(shape, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  ConvCallInfo conv(const codegen::ConvShape& shape, float alpha, const float* input,
                    const float* filters, float beta, float* output) {
    return run<ConvOp>(shape, alpha, input, filters, beta, output);
  }
  BatchedGemmCallInfo batched_gemm(const codegen::BatchedGemmShape& shape, float alpha,
                                   const float* a, std::int64_t lda, std::int64_t stride_a,
                                   const float* b, std::int64_t ldb, std::int64_t stride_b,
                                   float beta, float* c, std::int64_t ldc,
                                   std::int64_t stride_c) {
    return run<BatchedGemmOp>(shape, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc,
                              stride_c);
  }
  BatchedGemmCallInfo batched_gemm(const codegen::BatchedGemmShape& shape, double alpha,
                                   const double* a, std::int64_t lda, std::int64_t stride_a,
                                   const double* b, std::int64_t ldb, std::int64_t stride_b,
                                   double beta, double* c, std::int64_t ldc,
                                   std::int64_t stride_c) {
    return run<BatchedGemmOp>(shape, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc,
                              stride_c);
  }

  /// Cached kernel selection with single-flight coalescing. A cache hit
  /// returns immediately. On a miss the first caller leads; under two-tier
  /// dispatch (the default, with a model) the leader answers with the
  /// model's zero-measurement argmax, stores it provisional and hands the
  /// full search to a background refinement task, while concurrent callers
  /// for the same (device, shape) block only on that ranking-time
  /// prediction. With two_tier off (or no model) the leader blocks on the
  /// configured search. `from_cache` (optional) reports whether this caller
  /// avoided leading; `tier` (optional) reports the served entry's tier.
  template <typename Op>
  typename OperationTraits<Op>::Tuning select(const typename OperationTraits<Op>::Shape& shape,
                                              bool* from_cache = nullptr,
                                              EntryTier* tier = nullptr);

  /// Pre-tune a list of shapes asynchronously on the global thread pool; the
  /// returned future becomes ready when every shape is cached (exceptional if
  /// any selection failed). Under two-tier dispatch "cached" means at least
  /// provisional — refinements may still be in flight when the future
  /// resolves; drain_background() waits for those too. Dropping the future
  /// is safe: ~Context waits for outstanding background tasks before tearing
  /// the Context down.
  template <typename Op>
  std::future<void> warmup(std::vector<typename OperationTraits<Op>::Shape> shapes);
  std::future<void> warmup(std::vector<codegen::GemmShape> shapes) {
    return warmup<GemmOp>(std::move(shapes));
  }

  /// Block until no warmup or refinement task is outstanding. After this,
  /// every entry whose refinement was pending has reached its final tier.
  void drain_background();

  /// Number of full tuning searches this Context has performed (blocking
  /// leaders + completed background refinements) — with single-flight
  /// dispatch and exactly-once refinement this converges to one per distinct
  /// cold shape once drained, no matter how many threads raced.
  std::size_t tuning_runs() const noexcept { return tuning_runs_.load(); }

  /// Tier-1 selections served: cold shapes answered with the model's instant
  /// argmax instead of a blocking search.
  std::size_t predictions() const noexcept { return predictions_.load(); }

  /// Background refinements that completed and upgraded their entry.
  std::size_t refinements() const noexcept { return refinements_.load(); }

  // ---- fault-tolerance observability (tests and the --chaos bench) ----

  /// Seed-grid fallback selections minted while the leader path was failing.
  std::size_t fallbacks_served() const noexcept { return fallbacks_.load(); }

  /// Leaders refused outright by an open breaker (served fallback instantly).
  std::size_t breaker_short_circuits() const noexcept {
    return breaker_short_circuits_.load();
  }

  /// Refinements shed by admission control (queue already at max pending).
  std::size_t refinements_shed() const noexcept { return refinements_shed_.load(); }

  /// Refinements dropped after exhausting their retry attempts.
  std::size_t refinements_dropped() const noexcept { return refinements_dropped_.load(); }

  /// Background refinements currently pending (enqueued or running).
  std::size_t refinements_pending() const noexcept {
    return refine_pending_.load(std::memory_order_relaxed);
  }

  /// State of `kind`'s dispatch breaker (closed when the op never failed).
  CircuitBreaker::State breaker_state(std::string_view kind) {
    return breaker_for(kind).state();
  }

  ProfileCache& cache() noexcept { return cache_; }

  // ---- online model lifecycle (no-ops unless options.online.enabled) ----

  /// The bounded production-measurement log feeding retrains.
  tuning::ObservationLog& observation_log() noexcept { return observations_; }

  /// Ask for a retrain off the hot path: folds the current log into the
  /// dataset on the global pool and hot-swaps the successor version in.
  /// Returns false when one is already in flight or no model is installed.
  /// Needs online learning enabled but ignores drift state and
  /// retrain.min_observations-independent triggers — this is the "on
  /// demand" path.
  bool request_retrain();

  /// Synchronous retrain on the calling thread (deterministic tests and
  /// benches). Returns true when a successor version was swapped in.
  bool retrain_now();

  /// Hot swaps performed (installs that replaced a live model).
  std::size_t model_swaps() const noexcept { return model_swaps_.load(); }

  /// Warm-start retrains that completed and swapped a successor in.
  std::size_t retrains() const noexcept { return retrains_.load(); }

  /// Drift-detector trips (each schedules a retrain unless one is pending).
  std::size_t drift_trips() const noexcept { return drift_trips_.load(); }

  /// A background retrain is currently running.
  bool retrain_in_flight() const noexcept {
    return retrain_inflight_.load(std::memory_order_acquire);
  }

  /// Wall time of the most recent completed retrain, microseconds (0 = none).
  std::uint64_t last_retrain_us() const noexcept {
    return last_retrain_us_.load(std::memory_order_relaxed);
  }

 private:
  /// Enqueue the background refinement for `key` unless one is already
  /// pending (or already landed). The refining set is the exactly-once gate:
  /// whoever wins the insert owns the refinement; keys stay in the set after
  /// a successful upgrade so a stale "provisional" observation can never
  /// double-refine, and are erased on failure so a later hit may retry —
  /// bounded by refine_max_attempts per refine_retry_reset_ms window, and
  /// shed entirely when refine_max_pending tasks are already outstanding.
  template <typename Op>
  void maybe_refine(const std::string& key, const typename OperationTraits<Op>::Shape& shape);

  /// The degradation ladder's last sane rung: the first seed-grid entry legal
  /// for `shape` — no model, no measurement, no search, just the coarse grid
  /// every op guarantees. Throws std::runtime_error when no seed is legal
  /// (the shape is genuinely untunable; nothing left to degrade to).
  template <typename Op>
  typename OperationTraits<Op>::Tuning fallback_tuning(
      const typename OperationTraits<Op>::Shape& shape) const {
    using Traits = OperationTraits<Op>;
    for (const auto& t : Traits::seed_grid()) {
      if (Traits::validate(shape, t, sim_.device())) return t;
    }
    throw std::runtime_error(std::string("Context: no legal seed-grid fallback for ") +
                             Traits::kind() + " shape " + shape.to_string());
  }

  /// The per-op-kind dispatch breaker (created closed on first use). The map
  /// node is stable, so the returned reference stays valid for the Context's
  /// lifetime.
  CircuitBreaker& breaker_for(std::string_view kind);

  /// Fold a search's measured candidates into the observation log, feed the
  /// drift detector, and schedule a retrain when a trigger fires. Never
  /// throws (a lifecycle hiccup must not fail the dispatch that produced the
  /// measurements). No-op unless online learning is enabled.
  template <typename Op>
  void record_observations(const mlp::VersionedModel& model,
                           const typename OperationTraits<Op>::Shape& shape,
                           const TuneResult<typename OperationTraits<Op>::Tuning>& result);

  /// Trigger policy: schedule when drift tripped, or when retrain_every
  /// observations accumulated since the last retrain, gated on the log
  /// holding at least retrain.min_observations records.
  void maybe_schedule_retrain(bool drift_tripped);

  /// Exactly-once gate + pool submission; false when one is already pending.
  bool schedule_retrain();

  /// The retrain body: drain log → warm-start train → hot swap. Returns
  /// whether a successor was swapped in; always clears the in-flight gate.
  bool run_retrain(std::uint64_t parent_span);

  gpusim::Simulator sim_;
  ContextOptions options_;

  // The hot-swappable model slot. A plain mutex-guarded shared_ptr: readers
  // pin a snapshot once per operation (model_snapshot()), writers swap the
  // pointer; the old version dies when its last pinned reader drops it —
  // never mid-ranking, never under a lock.
  mutable sync::Mutex model_mutex_{lock_rank::Rank::model};
  std::shared_ptr<const mlp::VersionedModel> model_ ISAAC_GUARDED_BY(model_mutex_);

  ProfileCache cache_;

  // Single-flight state: key -> future completed once the key is in cache_.
  // refining_ holds keys whose background refinement is pending or done (see
  // maybe_refine). Acquisition order: inflight_mutex_ may be held while the
  // cache takes a shard lock (select()'s under-lock recheck), never the
  // reverse — rank inflight sits above cache_shard for exactly that edge.
  sync::Mutex inflight_mutex_{lock_rank::Rank::inflight};
  std::unordered_map<std::string, std::shared_future<void>> inflight_
      ISAAC_GUARDED_BY(inflight_mutex_);
  std::unordered_set<std::string> refining_ ISAAC_GUARDED_BY(inflight_mutex_);
  /// Retry-then-drop bookkeeping for failing refinements, guarded by
  /// inflight_mutex_ like the set above. attempts counts failures inside the
  /// current reset window; entries older than refine_retry_reset_ms are
  /// forgiven (the storm may have passed).
  struct RefineBackoff {
    int attempts = 0;
    std::uint64_t last_failure_us = 0;
  };
  std::unordered_map<std::string, RefineBackoff> refine_backoff_
      ISAAC_GUARDED_BY(inflight_mutex_);
  std::atomic<std::size_t> tuning_runs_{0};
  std::atomic<std::size_t> predictions_{0};
  std::atomic<std::size_t> refinements_{0};

  // Fault-tolerance state. One breaker per op kind: a conv-specific fault
  // (say, a poisoned conv ranking) must not degrade gemm dispatch.
  // breaker_map ranks above breaker: breaker_for() holds the map lock while
  // try_emplace runs each CircuitBreaker's constructor (which touches the
  // breaker's own mutex-guarded state only after construction, but the
  // ordering keeps "map lock outside any one breaker's lock" explicit).
  sync::Mutex breaker_mutex_{lock_rank::Rank::breaker_map};
  std::map<std::string, CircuitBreaker, std::less<>> breakers_
      ISAAC_GUARDED_BY(breaker_mutex_);
  std::atomic<std::size_t> refine_pending_{0};
  std::atomic<std::size_t> fallbacks_{0};
  std::atomic<std::size_t> breaker_short_circuits_{0};
  std::atomic<std::size_t> refinements_shed_{0};
  std::atomic<std::size_t> refinements_dropped_{0};
  /// Set by ~Context before draining: background refinements poll it between
  /// search batches (SearchConfig::cancel) and abandon cooperatively, so
  /// teardown never waits out a long search or an injected hang.
  std::atomic<bool> cancel_requested_{false};
  std::atomic<std::uint64_t> retrain_backoff_until_us_{0};
  std::atomic<int> retrain_failures_{0};

  // Online model lifecycle state (inert when options_.online.enabled is
  // false: the log and detector are constructed but never fed).
  tuning::ObservationLog observations_;
  tuning::DriftDetector drift_;
  tuning::Retrainer retrainer_;
  std::atomic<bool> retrain_inflight_{false};
  std::atomic<std::size_t> model_swaps_{0};
  std::atomic<std::size_t> retrains_{0};
  std::atomic<std::size_t> drift_trips_{0};
  std::atomic<std::uint64_t> last_retrain_us_{0};
  std::atomic<std::uint64_t> observations_recorded_{0};
  std::atomic<std::uint64_t> last_retrain_mark_{0};

  // Outstanding background tasks — warmup selections, refinements and
  // retrains (they capture `this`); ~Context waits on zero.
  //
  // Documented order vs inflight_mutex_ (the ISSUE-10 finding): today no
  // thread holds both, but maybe_refine() and the refinement task acquire
  // them back-to-back in the order inflight → background-released →
  // background — so the declared order, should nesting ever become
  // necessary, is background OUTSIDE inflight (rank 60 > 50), and the
  // acquired_before attribute makes Clang enforce it the first time someone
  // nests them.
  sync::Mutex background_mutex_ ISAAC_ACQUIRED_BEFORE(inflight_mutex_){
      lock_rank::Rank::background};
  sync::CondVar background_cv_;
  std::size_t background_pending_ ISAAC_GUARDED_BY(background_mutex_) = 0;
};

template <typename Op>
typename OperationTraits<Op>::Tuning Context::select(
    const typename OperationTraits<Op>::Shape& shape, bool* from_cache, EntryTier* tier) {
  // Dispatch-lifecycle telemetry: one root span per select() with the
  // leader's predict/tune (and any background refinement it enqueues) linked
  // underneath, plus the latency histogram the serving benches report from.
  telemetry::Span select_span("dispatch.select");
  ISAAC_TM_COUNT("dispatch.select");
  struct LatencyProbe {
    std::uint64_t begin_us;
    LatencyProbe() : begin_us(telemetry::enabled() ? telemetry::now_us() : 0) {}
    ~LatencyProbe() {
      if (begin_us) ISAAC_TM_RECORD("dispatch.select_us", telemetry::now_us() - begin_us);
    }
  } latency_probe;

  const std::string& dev = device().name;
  EntryTier hit_tier = EntryTier::refined;
  if (const auto cached = cache_.lookup<Op>(dev, shape, &hit_tier)) {
    ISAAC_TM_COUNT("dispatch.hit");
    if (hit_tier != EntryTier::refined) {
      // Normally a no-op (the leader already owns the refinement); this
      // re-arms refinement for provisional entries loaded from disk, whose
      // producing process died before upgrading them, and for fallback
      // entries minted during a fault storm — each hit is another chance to
      // converge back to the refined tier once the fault clears.
      maybe_refine<Op>(ProfileCache::key<Op>(dev, shape), shape);
    }
    if (from_cache) *from_cache = true;
    if (tier) *tier = hit_tier;
    return *cached;
  }

  const std::string key = ProfileCache::key<Op>(dev, shape);
  for (;;) {
    std::promise<void> promise;
    std::shared_future<void> flight;
    bool leader = false;
    {
      // Holds inflight (rank 50) across a cache_.lookup that takes a shard
      // lock (rank 30) — the inflight → cache_shard edge in the rank table.
      sync::MutexLock lock(inflight_mutex_);
      // Re-check under the lock: a leader stores to cache before erasing its
      // flight, so a miss here plus an absent flight really means cold.
      if (const auto cached = cache_.lookup<Op>(dev, shape, &hit_tier)) {
        ISAAC_TM_COUNT("dispatch.hit_coalesced");
        if (from_cache) *from_cache = true;
        if (tier) *tier = hit_tier;
        return *cached;
      }
      const auto it = inflight_.find(key);
      if (it == inflight_.end()) {
        flight = promise.get_future().share();
        inflight_.emplace(key, flight);
        leader = true;
      } else {
        flight = it->second;
      }
    }

    if (leader) {
      std::optional<typename OperationTraits<Op>::Tuning> winner;
      EntryTier winner_tier = EntryTier::refined;
      std::exception_ptr error;
      CircuitBreaker& breaker = breaker_for(OperationTraits<Op>::kind());
      try {
        // One snapshot pin for the whole leader operation: a concurrent hot
        // swap cannot mix two model versions into one decision, and the
        // pinned version outlives the ranking no matter when the swap lands.
        const auto snapshot = model_snapshot();
        if (!snapshot) throw std::logic_error("Context: no model trained or installed");
        if (!breaker.allow_request()) {
          // Persistent-failure short circuit: don't even attempt the ranking
          // the last N leaders died in — serve the seed-grid fallback
          // instantly. The entry is stored (so followers and future callers
          // hit), tiered `fallback`, and upgradeable once the breaker lets a
          // refinement through again.
          breaker_short_circuits_.fetch_add(1, std::memory_order_relaxed);
          ISAAC_TM_COUNT("breaker.short_circuit");
          winner = fallback_tuning<Op>(shape);
          cache_.store<Op>(dev, shape, *winner,
                           ProfileCache::provenance("fallback", 0, EntryTier::fallback));
          fallbacks_.fetch_add(1, std::memory_order_relaxed);
          ISAAC_TM_COUNT("breaker.fallbacks");
          winner_tier = EntryTier::fallback;
        } else {
          try {
            if (options_.two_tier) {
              // Tier 1: the model's argmax, zero measurements on this thread.
              telemetry::Span predict_span("select.predict");
              ISAAC_TM_COUNT("dispatch.leader_predict");
              const auto pred = core::predict<Op>(shape, snapshot->regressor(), sim_.device(),
                                                  options_.search);
              cache_.store<Op>(dev, shape, pred.tuning,
                               ProfileCache::provenance("predict", 0, EntryTier::provisional));
              predictions_.fetch_add(1, std::memory_order_relaxed);
              winner = pred.tuning;
              winner_tier = EntryTier::provisional;
              maybe_refine<Op>(key, shape);
            } else {
              telemetry::Span tune_span("select.tune");
              ISAAC_TM_COUNT("dispatch.leader_tune");
              const auto result =
                  core::tune<Op>(shape, snapshot->regressor(), sim_, options_.search);
              // Provenance records the evaluations actually spent (≤ the
              // requested budget): truthful even for "unlimited" sweeps.
              cache_.store<Op>(dev, shape, result.best.tuning,
                               ProfileCache::provenance(result.strategy, result.measured,
                                                        EntryTier::refined));
              tuning_runs_.fetch_add(1, std::memory_order_relaxed);
              winner = result.best.tuning;
              record_observations<Op>(*snapshot, shape, result);
            }
            breaker.record_success();
          } catch (const std::runtime_error& e) {
            // A transient-class failure (the retry layer inside drive()
            // already spent its attempts): feed the breaker, degrade to the
            // seed-grid fallback instead of failing the dispatch, and re-arm
            // refinement so the entry upgrades once the fault clears.
            // fallback_tuning itself throws when no seed is legal — that
            // (and any logic_error above) still propagates: "untunable
            // shape" and "no model" are caller bugs, not device faults.
            breaker.record_failure();
            ISAAC_TM_COUNT("fault.leader_failures");
            ISAAC_LOG_WARN() << "dispatch leader failed for " << key << " (" << e.what()
                             << "); serving seed-grid fallback";
            winner = fallback_tuning<Op>(shape);
            cache_.store<Op>(dev, shape, *winner,
                             ProfileCache::provenance("fallback", 0, EntryTier::fallback));
            fallbacks_.fetch_add(1, std::memory_order_relaxed);
            ISAAC_TM_COUNT("breaker.fallbacks");
            winner_tier = EntryTier::fallback;
            maybe_refine<Op>(key, shape);
          }
        }
        promise.set_value();
      } catch (...) {
        error = std::current_exception();
        promise.set_exception(error);
      }
      {
        sync::MutexLock lock(inflight_mutex_);
        inflight_.erase(key);
      }
      if (error) std::rethrow_exception(error);
      if (from_cache) *from_cache = false;
      if (tier) *tier = winner_tier;
      return *winner;
    }

    {
      // Followers of the single flight wait here for ranking time (tier 1)
      // or search time (blocking) — span it so coalescing shows up in traces.
      telemetry::Span wait_span("select.wait");
      ISAAC_TM_COUNT("dispatch.follower_wait");
      flight.get();  // rethrows the leader's tuning failure
    }
    // The leader stored the result before completing the flight; loop back to
    // pick it up from the cache (it can only be a hit now).
  }
}

template <typename Op>
void Context::maybe_refine(const std::string& key,
                           const typename OperationTraits<Op>::Shape& shape) {
  if (!options_.two_tier || !has_model()) return;
  if (cancel_requested_.load(std::memory_order_relaxed)) return;  // tearing down
  // While the op's breaker is open there is no point searching — the same
  // downstream fault that failed the leaders would fail the refinement.
  // allow_request() doubles as the recovery probe: after the cooldown it
  // hands out the half-open trial, and this refinement's outcome (reported
  // below) is what re-closes or re-opens the breaker.
  CircuitBreaker& breaker = breaker_for(OperationTraits<Op>::kind());
  if (!breaker.allow_request()) {
    ISAAC_TM_COUNT("refine.skipped_open");
    return;
  }
  const std::uint64_t now_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  const std::uint64_t reset_us =
      static_cast<std::uint64_t>(options_.fault.refine_retry_reset_ms * 1000.0);
  {
    sync::MutexLock lock(inflight_mutex_);
    const auto backoff = refine_backoff_.find(key);
    if (backoff != refine_backoff_.end()) {
      if (now_us - backoff->second.last_failure_us >= reset_us) {
        // The reset window passed without a new failure: forgive the streak
        // and let refinement try again.
        refine_backoff_.erase(backoff);
      } else if (backoff->second.attempts >= options_.fault.refine_max_attempts) {
        return;  // dropped for now; the reset window re-arms it later
      }
    }
    if (!refining_.insert(key).second) return;  // pending or already landed
  }
  // Admission control: a fault storm that turns every dispatch into a
  // refinement candidate must not flood the pool (those workers also serve
  // warmups and retrains). Shed beyond the cap and re-arm the key — a later
  // hit on the still-provisional entry retries when the queue has drained.
  const std::size_t already_pending = refine_pending_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.fault.refine_max_pending > 0 &&
      already_pending >= options_.fault.refine_max_pending) {
    refine_pending_.fetch_sub(1, std::memory_order_acq_rel);
    refinements_shed_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("refine.shed");
    sync::MutexLock lock(inflight_mutex_);
    refining_.erase(key);
    return;
  }
  {
    sync::MutexLock lock(background_mutex_);
    ++background_pending_;
  }
  ISAAC_TM_COUNT("refine.enqueued");
  // Cross-thread span linkage: the refinement runs on a pool worker, so the
  // enqueuing dispatch's span id travels explicitly and the queue delay is
  // measured from here to the task's first instruction.
  const std::uint64_t parent_span = telemetry::current_span();
  const std::uint64_t enqueue_us =
      (telemetry::enabled() || telemetry::tracing()) ? telemetry::now_us() : 0;
  ThreadPool::global().submit([this, key, shape, parent_span, enqueue_us] {
    const std::uint64_t begin_us = enqueue_us ? telemetry::now_us() : 0;
    if (begin_us) {
      ISAAC_TM_RECORD("refine.queue_us", begin_us - enqueue_us);
      telemetry::record_span("refine.queue", parent_span, enqueue_us, begin_us);
    }
    bool upgraded = false;
    bool failed = false;
    {
      // Scoped so the span record lands in the ring *before* the completion
      // notification below: drain_background() returning must imply the
      // refinement's spans are observable in a snapshot.
      telemetry::Span run_span("refine.run", parent_span);
      try {
        // Chaos site: a refinement that wedges (driver hang, livelocked
        // measurement). The hang is cooperative — 1 ms slices bounded by the
        // refinement deadline and the teardown flag — and then surfaces as a
        // failure, exactly like a real watchdog expiry would.
        if (ISAAC_FAILPOINT_FIRED("refine.hang")) {
          ISAAC_TM_COUNT("refine.hang");
          const double hang_ms = options_.fault.refine_deadline_ms > 0.0
                                     ? options_.fault.refine_deadline_ms
                                     : 25.0;
          const auto hang_until = std::chrono::steady_clock::now() +
                                  std::chrono::microseconds(
                                      static_cast<std::int64_t>(hang_ms * 1000.0));
          while (std::chrono::steady_clock::now() < hang_until &&
                 !cancel_requested_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          throw std::runtime_error("refinement hung past its deadline");
        }
        // Pin the version current *now* — possibly newer than the one whose
        // tier-1 prediction this task refines, which is fine: the refinement
        // is a fresh full search, internally consistent on its own pin, and
        // the pin keeps a concurrently swapped-out model alive until done
        // (the set_model() use-after-free this replaces).
        const auto snapshot = model_snapshot();
        if (!snapshot) throw std::logic_error("Context: model uninstalled mid-refinement");
        // Background searches run under the refinement deadline and the
        // Context's teardown flag: an anytime result at expiry still
        // upgrades, and ~Context never waits out a full search.
        search::SearchConfig refine_cfg = options_.search;
        refine_cfg.timeout_ms = options_.fault.refine_deadline_ms;
        refine_cfg.cancel = &cancel_requested_;
        const auto result = core::tune<Op>(shape, snapshot->regressor(), sim_, refine_cfg);
        upgraded = cache_.upgrade<Op>(device().name, shape, result.best.tuning,
                                      ProfileCache::provenance(result.strategy,
                                                               result.measured,
                                                               EntryTier::refined));
        tuning_runs_.fetch_add(1, std::memory_order_relaxed);
        if (upgraded) {
          refinements_.fetch_add(1, std::memory_order_relaxed);
          ISAAC_TM_COUNT("refine.upgraded");
        } else {
          ISAAC_TM_COUNT("refine.rejected");
        }
        record_observations<Op>(*snapshot, shape, result);
        breaker_for(OperationTraits<Op>::kind()).record_success();
      } catch (const std::exception& e) {
        failed = true;
        ISAAC_TM_COUNT("refine.failed");
        // The provisional/fallback entry stays live and functional; the
        // backoff bookkeeping below decides whether a later hit may retry.
        ISAAC_LOG_WARN() << "background refinement failed for " << key << ": " << e.what();
      } catch (...) {
        failed = true;
        ISAAC_TM_COUNT("refine.failed");
        ISAAC_LOG_WARN() << "background refinement failed for " << key;
      }
      if (failed) {
        // Report honestly only when this refinement held the breaker's
        // half-open trial: re-open it. A refinement failing while the
        // breaker is closed must NOT trip it — leaders may be serving
        // predictions just fine, and degrading them over a background
        // hiccup would be self-inflicted damage.
        CircuitBreaker& breaker = breaker_for(OperationTraits<Op>::kind());
        if (breaker.state() == CircuitBreaker::State::half_open) breaker.record_failure();
      }
      if (begin_us) ISAAC_TM_RECORD("refine.run_us", telemetry::now_us() - begin_us);
    }
    {
      sync::MutexLock lock(inflight_mutex_);
      if (failed) {
        refining_.erase(key);
        // Retry-then-drop: count this failure against the key's window. Under
        // the cap a later hit re-enqueues (refine.retry); at the cap the key
        // is dropped until the reset window forgives it (refine.dropped).
        auto& backoff = refine_backoff_[key];
        const std::uint64_t fail_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
        const std::uint64_t reset_us =
            static_cast<std::uint64_t>(options_.fault.refine_retry_reset_ms * 1000.0);
        if (fail_us - backoff.last_failure_us >= reset_us) backoff.attempts = 0;
        ++backoff.attempts;
        backoff.last_failure_us = fail_us;
        if (backoff.attempts >= options_.fault.refine_max_attempts) {
          refinements_dropped_.fetch_add(1, std::memory_order_relaxed);
          ISAAC_TM_COUNT("refine.dropped");
        } else {
          ISAAC_TM_COUNT("refine.retry");
        }
      } else if (!upgraded) {
        // Succeeded but the entry was already refined (raced with another
        // producer): nothing to retry, leave the key owned.
      } else {
        refine_backoff_.erase(key);
      }
    }
    refine_pending_.fetch_sub(1, std::memory_order_acq_rel);
    // Last step, notify under the lock: a destructor waiting on
    // background_pending_ == 0 cannot resume (and free `this`) until this
    // task's unlock, after which the task touches nothing of `this`.
    {
      sync::MutexLock lock(background_mutex_);
      --background_pending_;
      background_cv_.notify_all();
    }
  });
}

template <typename Op>
std::future<void> Context::warmup(std::vector<typename OperationTraits<Op>::Shape> shapes) {
  struct WarmupState {
    std::atomic<std::size_t> remaining;
    std::promise<void> done;
    sync::Mutex error_mutex{lock_rank::Rank::leaf};
    std::exception_ptr first_error ISAAC_GUARDED_BY(error_mutex);
  };
  auto state = std::make_shared<WarmupState>();
  auto future = state->done.get_future();
  if (shapes.empty()) {
    state->done.set_value();
    return future;
  }
  state->remaining.store(shapes.size());
  ISAAC_TM_COUNT_N("warmup.shapes", shapes.size());
  {
    sync::MutexLock lock(background_mutex_);
    background_pending_ += shapes.size();
  }
  for (auto& shape : shapes) {
    ThreadPool::global().submit([this, state, shape = std::move(shape)] {
      try {
        select<Op>(shape);
      } catch (...) {
        sync::MutexLock lock(state->error_mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Read under the lock: the decrement orders "every task finished its
        // catch", but first_error is a guarded member and the lock is what
        // publishes the write (finding from the annotation pass — the old
        // code read it bare).
        std::exception_ptr err;
        {
          sync::MutexLock lock(state->error_mutex);
          err = state->first_error;
        }
        if (err) {
          state->done.set_exception(err);
        } else {
          state->done.set_value();
        }
      }
      // Last step, notify under the lock: a destructor waiting on
      // background_pending_ == 0 cannot resume (and free `this`) until this
      // task's unlock, after which the task touches nothing of `this`.
      {
        sync::MutexLock lock(background_mutex_);
        --background_pending_;
        background_cv_.notify_all();
      }
    });
  }
  return future;
}

template <typename Op>
void Context::record_observations(
    const mlp::VersionedModel& model, const typename OperationTraits<Op>::Shape& shape,
    const TuneResult<typename OperationTraits<Op>::Tuning>& result) {
  if (!options_.online.enabled) return;
  try {
    // result.top is exactly the search's measured set (every distinct
    // candidate `search.measure` timed, best first) — the (shape, tuning,
    // gflops) triples PR 3 used to throw away.
    std::size_t appended = 0;
    bool tripped = false;
    for (const auto& candidate : result.top) {
      if (!(candidate.measured_gflops > 0.0)) continue;
      tuning::Observation obs;
      obs.op = OperationTraits<Op>::kind();
      obs.features = OperationTraits<Op>::featurize(shape, candidate.tuning);
      obs.measured_gflops = candidate.measured_gflops;
      // Model-free strategies propose without predictions; score the pinned
      // model once per observation so the drift signal stays defined.
      obs.predicted_gflops = candidate.predicted_gflops > 0.0
                                 ? candidate.predicted_gflops
                                 : model.regressor().predict_gflops(obs.features);
      obs.model_version = model.version();
      if (drift_.observe(obs.op, obs.predicted_gflops, obs.measured_gflops)) {
        tripped = true;
        drift_trips_.fetch_add(1, std::memory_order_relaxed);
        ISAAC_TM_COUNT("model.drift_trips");
      }
      observations_.append(std::move(obs));
      ++appended;
    }
    if (appended) {
      observations_recorded_.fetch_add(appended, std::memory_order_relaxed);
      maybe_schedule_retrain(tripped);
    }
  } catch (const std::exception& e) {
    ISAAC_LOG_WARN() << "observation recording failed: " << e.what();
  }
}

}  // namespace isaac::core
