// ISAAC public API — the input-aware auto-tuning framework of the paper,
// end to end (Figure 1): kernel generation → data generation → regression →
// runtime inference, wrapped in a Context bound to one (simulated) device.
//
// Typical use (see examples/quickstart.cpp):
//
//   isaac::core::Context ctx(isaac::gpusim::tesla_p100());
//   ctx.train_model();                       // hours on a real GPU, seconds here
//   isaac::codegen::GemmShape shape{...};
//   auto info = ctx.gemm(shape, 1.0f, A, lda, B, ldb, 0.0f, C, ldc);
//   // C now holds the product; info reports the selected kernel + timing.
//
// The Context is safe to share across threads: the profile cache is guarded
// by a shared mutex, and concurrent misses on the same (device, shape)
// coalesce into a single tuning run (single-flight) that the other callers
// wait on. warmup() pre-tunes a shape list asynchronously on the thread pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/inference.hpp"
#include "core/operation.hpp"
#include "core/profile_cache.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"

namespace isaac::core {

struct ContextOptions {
  double noise_sigma = 0.03;       // simulated measurement noise
  std::uint64_t seed = 0x15AAC;
  std::string cache_dir;           // "" = in-memory profile cache only
  /// Strategy + budget every tuning run dispatches through (zero-valued
  /// fields resolve against the op's OperationTraits::default_search()).
  search::SearchConfig search;
};

/// What a tuned call reports back.
template <typename Op>
struct CallInfo {
  typename OperationTraits<Op>::Tuning tuning{};  // selected kernel
  double simulated_seconds = 0.0;                 // device-model execution time
  double gflops = 0.0;                            // useful FLOPs / simulated time
  bool from_cache = false;  // true when the kernel was already tuned (by disk
                            // cache, a previous call, or a concurrent tuner)
};

using GemmCallInfo = CallInfo<GemmOp>;
using ConvCallInfo = CallInfo<ConvOp>;
using BatchedGemmCallInfo = CallInfo<BatchedGemmOp>;

class Context {
 public:
  explicit Context(const gpusim::DeviceDescriptor& device, ContextOptions options = {});

  /// Blocks until every outstanding warmup task has finished: warmup tasks
  /// run on the global pool and reference this Context, so an abandoned
  /// warmup future must not outlive it.
  ~Context();

  const gpusim::DeviceDescriptor& device() const noexcept { return sim_.device(); }
  const gpusim::Simulator& simulator() const noexcept { return sim_; }

  /// Run the paper's offline pipeline: collect benchmarking data on this
  /// device and train the input-aware regression model. `samples` trades
  /// model quality against tuning time (Fig. 5).
  void train_model(std::size_t samples = 8000, int epochs = 12);

  /// Install an externally trained / deserialized model.
  void set_model(mlp::Regressor model);
  bool has_model() const noexcept { return model_.has_value(); }
  const mlp::Regressor& model() const;

  /// Input-aware kernel selection (uncached; see run()/select() for the
  /// cached path). Requires a model.
  template <typename Op>
  TuneResult<typename OperationTraits<Op>::Tuning> tune(
      const typename OperationTraits<Op>::Shape& shape) {
    return core::tune<Op>(shape, model(), sim_, options_.search);
  }
  GemmTuneResult tune_gemm(const codegen::GemmShape& shape) { return tune<GemmOp>(shape); }
  ConvTuneResult tune_conv(const codegen::ConvShape& shape) { return tune<ConvOp>(shape); }
  BatchedGemmTuneResult tune_batched_gemm(const codegen::BatchedGemmShape& shape) {
    return tune<BatchedGemmOp>(shape);
  }

  /// Tune (or fetch from cache), execute the selected kernel functionally on
  /// the host buffers through the op's executor hook, and report the
  /// simulated device timing. `args...` are forwarded to
  /// OperationTraits<Op>::execute after (shape, tuning).
  template <typename Op, typename... Args>
  CallInfo<Op> run(const typename OperationTraits<Op>::Shape& shape, Args&&... args) {
    CallInfo<Op> info;
    info.tuning = select<Op>(shape, &info.from_cache);
    OperationTraits<Op>::execute(shape, info.tuning, std::forward<Args>(args)...);
    const auto timing =
        sim_.launch_median(OperationTraits<Op>::analyze(shape, info.tuning, sim_.device()), 3);
    info.simulated_seconds = timing.seconds;
    info.gflops = timing.tflops * 1000.0;
    return info;
  }

  GemmCallInfo gemm(const codegen::GemmShape& shape, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc) {
    return run<GemmOp>(shape, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  GemmCallInfo gemm(const codegen::GemmShape& shape, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc) {
    return run<GemmOp>(shape, alpha, a, lda, b, ldb, beta, c, ldc);
  }
  ConvCallInfo conv(const codegen::ConvShape& shape, float alpha, const float* input,
                    const float* filters, float beta, float* output) {
    return run<ConvOp>(shape, alpha, input, filters, beta, output);
  }
  BatchedGemmCallInfo batched_gemm(const codegen::BatchedGemmShape& shape, float alpha,
                                   const float* a, std::int64_t lda, std::int64_t stride_a,
                                   const float* b, std::int64_t ldb, std::int64_t stride_b,
                                   float beta, float* c, std::int64_t ldc,
                                   std::int64_t stride_c) {
    return run<BatchedGemmOp>(shape, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc,
                              stride_c);
  }
  BatchedGemmCallInfo batched_gemm(const codegen::BatchedGemmShape& shape, double alpha,
                                   const double* a, std::int64_t lda, std::int64_t stride_a,
                                   const double* b, std::int64_t ldb, std::int64_t stride_b,
                                   double beta, double* c, std::int64_t ldc,
                                   std::int64_t stride_c) {
    return run<BatchedGemmOp>(shape, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc,
                              stride_c);
  }

  /// Cached kernel selection with single-flight coalescing: a cache hit
  /// returns immediately; on a miss, the first caller tunes while concurrent
  /// callers for the same (device, shape) block on its result. `from_cache`
  /// (optional) reports whether this caller avoided a tuning run.
  template <typename Op>
  typename OperationTraits<Op>::Tuning select(const typename OperationTraits<Op>::Shape& shape,
                                              bool* from_cache = nullptr);

  /// Pre-tune a list of shapes asynchronously on the global thread pool; the
  /// returned future becomes ready when every shape is cached (exceptional if
  /// any tuning failed). Dropping the future is safe: ~Context waits for
  /// outstanding warmup tasks before tearing the Context down.
  template <typename Op>
  std::future<void> warmup(std::vector<typename OperationTraits<Op>::Shape> shapes);
  std::future<void> warmup(std::vector<codegen::GemmShape> shapes) {
    return warmup<GemmOp>(std::move(shapes));
  }

  /// Number of tuning searches this Context has performed — with
  /// single-flight dispatch this is exactly one per distinct cold shape, no
  /// matter how many threads raced on it.
  std::size_t tuning_runs() const noexcept { return tuning_runs_.load(); }

  ProfileCache& cache() noexcept { return cache_; }

 private:
  gpusim::Simulator sim_;
  ContextOptions options_;
  std::optional<mlp::Regressor> model_;
  ProfileCache cache_;

  // Single-flight state: key -> future completed once the key is in cache_.
  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_future<void>> inflight_;
  std::atomic<std::size_t> tuning_runs_{0};

  // Outstanding warmup tasks (they capture `this`); ~Context waits on zero.
  std::mutex warmup_mutex_;
  std::condition_variable warmup_cv_;
  std::size_t warmup_pending_ = 0;
};

template <typename Op>
typename OperationTraits<Op>::Tuning Context::select(
    const typename OperationTraits<Op>::Shape& shape, bool* from_cache) {
  const std::string& dev = device().name;
  if (const auto cached = cache_.lookup<Op>(dev, shape)) {
    if (from_cache) *from_cache = true;
    return *cached;
  }

  const std::string key = ProfileCache::key<Op>(dev, shape);
  for (;;) {
    std::promise<void> promise;
    std::shared_future<void> flight;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      // Re-check under the lock: a leader stores to cache before erasing its
      // flight, so a miss here plus an absent flight really means cold.
      if (const auto cached = cache_.lookup<Op>(dev, shape)) {
        if (from_cache) *from_cache = true;
        return *cached;
      }
      const auto it = inflight_.find(key);
      if (it == inflight_.end()) {
        flight = promise.get_future().share();
        inflight_.emplace(key, flight);
        leader = true;
      } else {
        flight = it->second;
      }
    }

    if (leader) {
      std::optional<typename OperationTraits<Op>::Tuning> winner;
      std::exception_ptr error;
      try {
        const auto result = core::tune<Op>(shape, model(), sim_, options_.search);
        // Provenance records the evaluations actually spent (≤ the requested
        // budget): truthful even for "unlimited" sweeps.
        cache_.store<Op>(dev, shape, result.best.tuning,
                         ProfileCache::provenance(result.strategy, result.measured));
        tuning_runs_.fetch_add(1, std::memory_order_relaxed);
        winner = result.best.tuning;
        promise.set_value();
      } catch (...) {
        error = std::current_exception();
        promise.set_exception(error);
      }
      {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
      }
      if (error) std::rethrow_exception(error);
      if (from_cache) *from_cache = false;
      return *winner;
    }

    flight.get();  // rethrows the leader's tuning failure
    // The leader stored the result before completing the flight; loop back to
    // pick it up from the cache (it can only be a hit now).
  }
}

template <typename Op>
std::future<void> Context::warmup(std::vector<typename OperationTraits<Op>::Shape> shapes) {
  struct WarmupState {
    std::atomic<std::size_t> remaining;
    std::promise<void> done;
    std::mutex error_mutex;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<WarmupState>();
  auto future = state->done.get_future();
  if (shapes.empty()) {
    state->done.set_value();
    return future;
  }
  state->remaining.store(shapes.size());
  {
    std::lock_guard<std::mutex> lock(warmup_mutex_);
    warmup_pending_ += shapes.size();
  }
  for (auto& shape : shapes) {
    ThreadPool::global().submit([this, state, shape = std::move(shape)] {
      try {
        select<Op>(shape);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (state->first_error) {
          state->done.set_exception(state->first_error);
        } else {
          state->done.set_value();
        }
      }
      // Last step, notify under the lock: a destructor waiting on
      // warmup_pending_ == 0 cannot resume (and free `this`) until this
      // task's unlock, after which the task touches nothing of `this`.
      {
        std::lock_guard<std::mutex> lock(warmup_mutex_);
        --warmup_pending_;
        warmup_cv_.notify_all();
      }
    });
  }
  return future;
}

}  // namespace isaac::core
