// ISAAC public API — the input-aware auto-tuning framework of the paper,
// end to end (Figure 1): kernel generation → data generation → regression →
// runtime inference, wrapped in a Context bound to one (simulated) device.
//
// Typical use (see examples/quickstart.cpp):
//
//   isaac::core::Context ctx(isaac::gpusim::tesla_p100());
//   ctx.train_model();                       // hours on a real GPU, seconds here
//   isaac::codegen::GemmShape shape{...};
//   auto info = ctx.gemm(shape, 1.0f, A, lda, B, ldb, 0.0f, C, ldc);
//   // C now holds the product; info reports the selected kernel + timing.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "codegen/conv.hpp"
#include "codegen/conv_executor.hpp"
#include "codegen/gemm.hpp"
#include "codegen/gemm_executor.hpp"
#include "core/inference.hpp"
#include "core/profile_cache.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"

namespace isaac::core {

struct ContextOptions {
  double noise_sigma = 0.03;       // simulated measurement noise
  std::uint64_t seed = 0x15AAC;
  std::string cache_dir;           // "" = in-memory profile cache only
  InferenceConfig inference;
};

/// What a tuned call reports back.
struct GemmCallInfo {
  codegen::GemmTuning tuning;      // selected kernel
  double simulated_seconds = 0.0;  // device-model execution time
  double gflops = 0.0;             // useful FLOPs / simulated time
  bool from_cache = false;
};

struct ConvCallInfo {
  codegen::ConvTuning tuning;
  double simulated_seconds = 0.0;
  double gflops = 0.0;
  bool from_cache = false;
};

class Context {
 public:
  explicit Context(const gpusim::DeviceDescriptor& device, ContextOptions options = {});

  const gpusim::DeviceDescriptor& device() const noexcept { return sim_.device(); }
  const gpusim::Simulator& simulator() const noexcept { return sim_; }

  /// Run the paper's offline pipeline: collect benchmarking data on this
  /// device and train the input-aware regression model. `samples` trades
  /// model quality against tuning time (Fig. 5).
  void train_model(std::size_t samples = 8000, int epochs = 12);

  /// Install an externally trained / deserialized model.
  void set_model(mlp::Regressor model);
  bool has_model() const noexcept { return model_.has_value(); }
  const mlp::Regressor& model() const;

  /// Input-aware kernel selection (cached). Requires a model.
  GemmTuneResult tune_gemm(const codegen::GemmShape& shape);
  ConvTuneResult tune_conv(const codegen::ConvShape& shape);

  /// Tune (or fetch from cache), execute the selected kernel functionally on
  /// the host buffers, and report the simulated device timing.
  GemmCallInfo gemm(const codegen::GemmShape& shape, float alpha, const float* a,
                    std::int64_t lda, const float* b, std::int64_t ldb, float beta, float* c,
                    std::int64_t ldc);
  GemmCallInfo gemm(const codegen::GemmShape& shape, double alpha, const double* a,
                    std::int64_t lda, const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc);
  ConvCallInfo conv(const codegen::ConvShape& shape, float alpha, const float* input,
                    const float* filters, float beta, float* output);

  ProfileCache& cache() noexcept { return cache_; }

 private:
  codegen::GemmTuning select_gemm(const codegen::GemmShape& shape, bool* from_cache);
  codegen::ConvTuning select_conv(const codegen::ConvShape& shape, bool* from_cache);

  gpusim::Simulator sim_;
  ContextOptions options_;
  std::optional<mlp::Regressor> model_;
  ProfileCache cache_;
};

}  // namespace isaac::core
