// The Operation abstraction: one trait class per tunable operation, so every
// layer of the pipeline (data collection, runtime inference, the profile
// cache, dispatch) is written once against OperationTraits<Op> instead of
// per-op copies. See DESIGN.md for the full contract and a walkthrough of
// adding a new operation.
//
// An OperationTraits<Op> specialization provides:
//   Shape / Tuning / SearchSpace      — the op's input, config and X̂ types
//   kind()                            — stable identifier ("gemm"), used in
//                                       cache keys and on-disk records
//   validate / analyze / featurize    — legality, lowering to KernelProfile,
//                                       and the regression feature vector
//   featurize_into(shape, t, out)     — in-place featurization for the
//                                       allocation-free scoring pipeline
//                                       (optional: SearchProblem adapts
//                                       featurize when an op lacks it)
//   relax_shape(shape)                — a shape of the same structural class
//                                       (dtype/layout preserved) whose
//                                       shape-dependent legality checks are
//                                       maximally permissive; backs the
//                                       structural-skeleton enumeration
//                                       cache (optional: ops without it
//                                       rank with a dense legality sweep)
//   prefix_constraints(shape, dev,
//                      space)         — the per-dimension partial-validity
//                                       layer for the constraint-propagating
//                                       space walk (tuning::walk_legal):
//                                       necessary conditions of validate,
//                                       evaluated on prefixes so illegal
//                                       subtrees are pruned unvisited
//                                       (optional: ops without it enumerate
//                                       generate-and-test)
//   flops(shape)                      — useful FLOPs of one call
//   shape_key / encode_tuning /
//   decode_tuning                     — cache key derivation and the textual
//                                       tuning codec for the profile cache
//   seed_grid()                       — coarse always-tried configurations,
//                                       appended when inference subsamples X̂
//   default_search()                  — the op's baseline SearchConfig
//                                       (strategy, budget, ranking cap)
//   execute(shape, tuning, args...)   — the functional executor hook
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "codegen/batched_gemm.hpp"
#include "codegen/batched_gemm_executor.hpp"
#include "codegen/conv.hpp"
#include "codegen/conv_executor.hpp"
#include "codegen/gemm.hpp"
#include "codegen/gemm_executor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"
#include "search/config.hpp"
#include "tuning/dataset.hpp"
#include "tuning/search_space.hpp"

namespace isaac::core {

/// Operation tags. Each names one tunable kernel family.
struct GemmOp {};
struct ConvOp {};
struct BatchedGemmOp {};

template <typename Op>
struct OperationTraits;

template <>
struct OperationTraits<GemmOp> {
  using Shape = codegen::GemmShape;
  using Tuning = codegen::GemmTuning;
  using SearchSpace = tuning::GemmSearchSpace;

  static constexpr const char* kind() { return "gemm"; }

  static bool validate(const Shape& s, const Tuning& t, const gpusim::DeviceDescriptor& dev,
                       std::string* why = nullptr) {
    return codegen::validate(s, t, dev, why);
  }
  static gpusim::KernelProfile analyze(const Shape& s, const Tuning& t,
                                       const gpusim::DeviceDescriptor& dev) {
    return codegen::analyze(s, t, dev);
  }
  static std::vector<double> featurize(const Shape& s, const Tuning& t) {
    return tuning::features(s, t);
  }
  static void featurize_into(const Shape& s, const Tuning& t, double* out) {
    tuning::features_into(s, t, out);
  }
  static double flops(const Shape& s) { return s.flops(); }

  /// Same dtype and layout, dimensions blown up so every m/n/k-dependent
  /// legality constraint (KG ≤ K, U·KL ≤ ⌈K/KG⌉) is satisfied whenever it is
  /// satisfiable — the structural proxy the skeleton cache validates against.
  static Shape relax_shape(const Shape& s) {
    Shape r = s;
    r.m = r.n = r.k = std::int64_t{1} << 30;
    return r;
  }

  /// Prefix predicates for the pruned legal-space walk: tile divisibility,
  /// shared-memory/occupancy bounds, reduction-split limits.
  static tuning::ConstraintSet prefix_constraints(const Shape& s,
                                                  const gpusim::DeviceDescriptor& dev,
                                                  const SearchSpace& space) {
    return space.prefix_constraints(s, dev);
  }

  static std::string shape_key(const Shape& s);
  static std::string encode_tuning(const Tuning& t);
  static bool decode_tuning(const std::string& text, Tuning& t);
  static const std::vector<Tuning>& seed_grid();
  /// Baseline search: the paper's recipe (model-ranked top-100 re-timed),
  /// ranking the GEMM X̂ densely.
  static search::SearchConfig default_search() {
    search::SearchConfig cfg;
    cfg.strategy = "model_topk";
    cfg.budget = 100;
    return cfg;
  }

  template <typename... Args>
  static void execute(const Shape& s, const Tuning& t, Args&&... args) {
    codegen::execute_gemm(s, t, std::forward<Args>(args)...);
  }
};

template <>
struct OperationTraits<ConvOp> {
  using Shape = codegen::ConvShape;
  using Tuning = codegen::ConvTuning;
  using SearchSpace = tuning::ConvSearchSpace;

  static constexpr const char* kind() { return "conv"; }

  static bool validate(const Shape& s, const Tuning& t, const gpusim::DeviceDescriptor& dev,
                       std::string* why = nullptr) {
    return codegen::validate(s, t, dev, why);
  }
  static gpusim::KernelProfile analyze(const Shape& s, const Tuning& t,
                                       const gpusim::DeviceDescriptor& dev) {
    return codegen::analyze(s, t, dev);
  }
  static std::vector<double> featurize(const Shape& s, const Tuning& t) {
    return tuning::features(s, t);
  }
  static void featurize_into(const Shape& s, const Tuning& t, double* out) {
    tuning::features_into(s, t, out);
  }
  static double flops(const Shape& s) { return s.flops(); }

  /// Filter geometry, padding, strides and dtype preserved; batch, channels
  /// and spatial extents blown up so the output-extent tile checks
  /// (BP ≤ 2P, BQ ≤ 2Q, BN ≤ 2N) and the reduction-depth checks over
  /// C·R·S always pass when they can pass.
  static Shape relax_shape(const Shape& s) {
    Shape r = s;
    r.n = r.c = r.k = std::int64_t{1} << 20;
    r.h = r.w = std::int64_t{1} << 20;
    return r;
  }

  /// Prefix predicates through the implicit-GEMM lowering (output-extent and
  /// C·R·S reduction limits plus the lowered GEMM's structural bounds).
  static tuning::ConstraintSet prefix_constraints(const Shape& s,
                                                  const gpusim::DeviceDescriptor& dev,
                                                  const SearchSpace& space) {
    return space.prefix_constraints(s, dev);
  }

  static std::string shape_key(const Shape& s);
  static std::string encode_tuning(const Tuning& t);
  static bool decode_tuning(const std::string& text, Tuning& t);
  static const std::vector<Tuning>& seed_grid();
  /// The conv X̂ is ~10^7; model-guided ranking subsamples it by default.
  static search::SearchConfig default_search() {
    search::SearchConfig cfg = OperationTraits<GemmOp>::default_search();
    cfg.max_candidates = 200000;
    return cfg;
  }

  template <typename... Args>
  static void execute(const Shape& s, const Tuning& t, Args&&... args) {
    codegen::execute_conv(s, t, std::forward<Args>(args)...);
  }
};

template <>
struct OperationTraits<BatchedGemmOp> {
  using Shape = codegen::BatchedGemmShape;
  using Tuning = codegen::GemmTuning;
  using SearchSpace = tuning::BatchedGemmSearchSpace;

  static constexpr const char* kind() { return "bgemm"; }

  static bool validate(const Shape& s, const Tuning& t, const gpusim::DeviceDescriptor& dev,
                       std::string* why = nullptr) {
    return codegen::validate(s, t, dev, why);
  }
  static gpusim::KernelProfile analyze(const Shape& s, const Tuning& t,
                                       const gpusim::DeviceDescriptor& dev) {
    return codegen::analyze(s, t, dev);
  }
  static std::vector<double> featurize(const Shape& s, const Tuning& t) {
    return tuning::features(s, t);
  }
  static void featurize_into(const Shape& s, const Tuning& t, double* out) {
    tuning::features_into(s, t, out);
  }
  static double flops(const Shape& s) { return s.flops(); }

  /// Batched legality = per-matrix GEMM legality (plus the structural KG = 1
  /// pin), so relaxing the underlying GEMM dims suffices. The batch count
  /// only gates batch > 0 — pin it to 1 so every batch size shares one
  /// skeleton.
  static Shape relax_shape(const Shape& s) {
    Shape r = s;
    r.gemm = OperationTraits<GemmOp>::relax_shape(s.gemm);
    r.batch = 1;
    return r;
  }

  /// The per-matrix GEMM layer, plus the batched-specific conditions: an
  /// empty batch makes everything illegal, and KG must stay 1. The default
  /// batched space pins KG = {1} in its domain already; the predicate keeps
  /// the layer exact for subclass spaces that widen it.
  static tuning::ConstraintSet prefix_constraints(const Shape& s,
                                                  const gpusim::DeviceDescriptor& dev,
                                                  const SearchSpace& space) {
    codegen::GemmShape g = s.gemm;
    if (s.batch <= 0) g.k = 0;  // degenerate → the builder emits a prune-all predicate
    tuning::ConstraintSet cs = space.prefix_constraints(g, dev);
    const auto& domains = space.domains();
    for (std::size_t d = 0; d < domains.size(); ++d) {
      if (domains[d].name == "kg") {
        cs.add_unary("batched kg=1", d, [d](const int* v) { return v[d] == 1; });
        break;
      }
    }
    return cs;
  }

  static std::string shape_key(const Shape& s);
  static std::string encode_tuning(const Tuning& t);
  static bool decode_tuning(const std::string& text, Tuning& t);
  /// GEMM seeds with KG > 1 exist in the grid but fail batched validation, so
  /// sharing the grid is safe.
  static const std::vector<Tuning>& seed_grid();
  static search::SearchConfig default_search() {
    return OperationTraits<GemmOp>::default_search();
  }

  template <typename... Args>
  static void execute(const Shape& s, const Tuning& t, Args&&... args) {
    codegen::execute_batched_gemm(s, t, std::forward<Args>(args)...);
  }
};

}  // namespace isaac::core
