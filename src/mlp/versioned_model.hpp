// VersionedModel: the Regressor as a first-class, immutable model artifact.
//
// The online model lifecycle (DESIGN.md, "Online model lifecycle") hot-swaps
// models while dispatch threads are mid-ranking, so the unit of exchange is
// an immutable (Regressor, version, provenance) triple shared by pointer:
// readers pin one snapshot per operation and never observe a torn model, and
// every observation / cache record can name the exact version that produced
// it. Versions are monotonic per lineage — the producer (Context::set_model,
// the warm-start retrainer) assigns parent.version() + 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "mlp/regressor.hpp"

namespace isaac::mlp {

/// How a model version came to be. `source` is a single whitespace-free
/// token ("offline", "install", "warm_start", "load"); the numeric fields
/// describe the training run that produced this version (zero when unknown,
/// e.g. for externally installed models).
struct TrainProvenance {
  std::string source = "install";
  std::uint64_t parent_version = 0;  // 0 = no predecessor
  std::uint64_t samples = 0;         // training rows this version saw
  int epochs = 0;
};

class VersionedModel {
 public:
  VersionedModel(Regressor regressor, std::uint64_t version, TrainProvenance provenance = {});

  const Regressor& regressor() const noexcept { return regressor_; }
  std::uint64_t version() const noexcept { return version_; }
  const TrainProvenance& provenance() const noexcept { return provenance_; }

  /// Text serialization: a versioned header + provenance block wrapping the
  /// Regressor's own format, so one artifact round-trips the weights, the
  /// Scaler statistics, and the lifecycle metadata together.
  void save(std::ostream& os) const;
  static VersionedModel load(std::istream& is);

 private:
  Regressor regressor_;
  std::uint64_t version_;
  TrainProvenance provenance_;
};

}  // namespace isaac::mlp
