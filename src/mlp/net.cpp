#include "mlp/net.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace isaac::mlp {

using linalg::Matrix;
using linalg::Trans;

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  if (config.inputs <= 0) throw std::invalid_argument("Mlp: inputs must be positive");
  Rng rng(config.seed);
  std::vector<int> dims;
  dims.push_back(config.inputs);
  for (int h : config.hidden) {
    if (h <= 0) throw std::invalid_argument("Mlp: hidden sizes must be positive");
    dims.push_back(h);
  }
  dims.push_back(1);  // scalar performance prediction

  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Matrix w(static_cast<std::size_t>(dims[l]), static_cast<std::size_t>(dims[l + 1]));
    // He initialization: ReLU halves the variance.
    w.randomize_normal(rng, 0.0f,
                       static_cast<float>(std::sqrt(2.0 / static_cast<double>(dims[l]))));
    weights_.push_back(std::move(w));
    biases_.emplace_back(1, static_cast<std::size_t>(dims[l + 1]), 0.0f);
  }
}

std::size_t Mlp::num_parameters() const noexcept {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w.size();
  for (const auto& b : biases_) n += b.size();
  return n;
}

Matrix Mlp::forward(const Matrix& x, Cache* cache) const {
  if (x.cols() != static_cast<std::size_t>(config_.inputs)) {
    throw std::invalid_argument("Mlp::forward: feature arity mismatch");
  }
  if (cache) {
    cache->a.clear();
    cache->z.clear();
    cache->a.push_back(x);
  }
  Matrix a = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z(a.rows(), weights_[l].cols());
    linalg::gemm(Trans::No, Trans::No, 1.0f, a, weights_[l], 0.0f, z);
    linalg::add_row_vector(z, biases_[l]);
    if (cache) cache->z.push_back(z);
    const bool is_output = l + 1 == weights_.size();
    if (!is_output) {
      for (std::size_t i = 0; i < z.size(); ++i) {
        z.data()[i] = z.data()[i] > 0.0f ? z.data()[i] : 0.0f;  // relu
      }
    }
    if (cache) cache->a.push_back(z);
    a = std::move(z);
  }
  return a;
}

const Matrix& Mlp::forward_into(Workspace& ws) const {
  if (ws.x.cols() != static_cast<std::size_t>(config_.inputs)) {
    throw std::invalid_argument("Mlp::forward_into: feature arity mismatch");
  }
  const std::size_t batch = ws.x.rows();
  ws.a.resize(weights_.size());
  const Matrix* prev = &ws.x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix& z = ws.a[l];
    z.reshape(batch, weights_[l].cols());
    linalg::gemm_serial(Trans::No, Trans::No, 1.0f, *prev, weights_[l], 0.0f, z);
    // Bias broadcast and ReLU fused into one pass over z (same value order as
    // forward()'s add_row_vector-then-relu, so results stay bit-identical).
    const float* bias = biases_[l].data();
    const std::size_t cols = z.cols();
    const bool is_output = l + 1 == weights_.size();
    for (std::size_t r = 0; r < batch; ++r) {
      float* zrow = z.data() + r * cols;
      if (is_output) {
        for (std::size_t c = 0; c < cols; ++c) zrow[c] += bias[c];
      } else {
        for (std::size_t c = 0; c < cols; ++c) {
          const float v = zrow[c] + bias[c];
          zrow[c] = v > 0.0f ? v : 0.0f;
        }
      }
    }
    prev = &z;
  }
  return ws.a.back();
}

void Mlp::backward(const Cache& cache, const Matrix& dLdy, std::vector<Matrix>& dW,
                   std::vector<Matrix>& db) const {
  const std::size_t L = weights_.size();
  if (cache.a.size() != L + 1 || cache.z.size() != L) {
    throw std::invalid_argument("Mlp::backward: cache does not match network");
  }
  dW.assign(L, Matrix());
  db.assign(L, Matrix());

  Matrix delta = dLdy;  // gradient flowing backwards; starts at the output
  for (std::size_t l = L; l-- > 0;) {
    const bool is_output = l + 1 == L;
    if (!is_output) {
      // delta ⊙ relu'(z_l)
      const Matrix& z = cache.z[l];
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (z.data()[i] <= 0.0f) delta.data()[i] = 0.0f;
      }
    }
    // dW_l = a_{l-1}^T · delta ; db_l = column sums of delta
    dW[l] = Matrix(weights_[l].rows(), weights_[l].cols());
    linalg::gemm(Trans::Yes, Trans::No, 1.0f, cache.a[l], delta, 0.0f, dW[l]);
    db[l] = linalg::col_sums(delta);
    if (l > 0) {
      Matrix next(delta.rows(), weights_[l].rows());
      linalg::gemm(Trans::No, Trans::Yes, 1.0f, delta, weights_[l], 0.0f, next);
      delta = std::move(next);
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::step(std::vector<linalg::Matrix*> params,
                const std::vector<const linalg::Matrix*>& grads) {
  if (params.size() != grads.size()) throw std::invalid_argument("Adam::step: arity mismatch");
  if (m_.empty()) {
    for (const auto* p : params) {
      m_.emplace_back(p->rows(), p->cols(), 0.0f);
      v_.emplace_back(p->rows(), p->cols(), 0.0f);
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    Matrix& p = *params[i];
    const Matrix& g = *grads[i];
    if (p.rows() != g.rows() || p.cols() != g.cols()) {
      throw std::invalid_argument("Adam::step: gradient shape mismatch");
    }
    float* mp = m_[i].data();
    float* vp = v_[i].data();
    float* pp = p.data();
    const float* gp = g.data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      mp[j] = static_cast<float>(beta1_ * mp[j] + (1.0 - beta1_) * gp[j]);
      vp[j] = static_cast<float>(beta2_ * vp[j] + (1.0 - beta2_) * gp[j] * gp[j]);
      const double mhat = mp[j] / bc1;
      const double vhat = vp[j] / bc2;
      pp[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + epsilon_));
    }
  }
}

}  // namespace isaac::mlp
