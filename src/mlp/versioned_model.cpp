#include "mlp/versioned_model.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

namespace isaac::mlp {

namespace {

/// Provenance sources are written as bare tokens and read back with >>, so
/// whitespace inside one would shear the record.
std::string sanitize_token(std::string token) {
  if (token.empty()) return "unknown";
  for (char& c : token) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return token;
}

}  // namespace

VersionedModel::VersionedModel(Regressor regressor, std::uint64_t version,
                               TrainProvenance provenance)
    : regressor_(std::move(regressor)), version_(version), provenance_(std::move(provenance)) {
  if (version_ == 0) {
    throw std::invalid_argument("VersionedModel: version ids start at 1");
  }
  provenance_.source = sanitize_token(std::move(provenance_.source));
}

void VersionedModel::save(std::ostream& os) const {
  os << "isaac-versioned-model v1\n";
  os << "version " << version_ << "\n";
  os << "source " << provenance_.source << "\n";
  os << "parent " << provenance_.parent_version << "\n";
  os << "samples " << provenance_.samples << "\n";
  os << "epochs " << provenance_.epochs << "\n";
  regressor_.save(os);
}

VersionedModel VersionedModel::load(std::istream& is) {
  std::string tag, version_tag;
  is >> tag >> version_tag;
  if (tag != "isaac-versioned-model" || version_tag != "v1") {
    throw std::runtime_error("VersionedModel::load: bad header");
  }
  std::string key;
  std::uint64_t version = 0;
  TrainProvenance prov;
  is >> key >> version;
  if (key != "version") throw std::runtime_error("VersionedModel::load: missing version");
  is >> key >> prov.source;
  if (key != "source") throw std::runtime_error("VersionedModel::load: missing source");
  is >> key >> prov.parent_version;
  if (key != "parent") throw std::runtime_error("VersionedModel::load: missing parent");
  is >> key >> prov.samples;
  if (key != "samples") throw std::runtime_error("VersionedModel::load: missing samples");
  is >> key >> prov.epochs;
  if (key != "epochs") throw std::runtime_error("VersionedModel::load: missing epochs");
  if (!is) throw std::runtime_error("VersionedModel::load: truncated stream");
  Regressor regressor = Regressor::load(is);
  return VersionedModel(std::move(regressor), version, std::move(prov));
}

}  // namespace isaac::mlp
