// Multi-layer perceptron (paper §5, Figure 4 / Algorithm 1).
//
// Fully connected layers with ReLU activations and a linear scalar output,
// trained with minibatch gradient descent on the MSE loss. The forward pass
// is exactly Algorithm 1: a_{-1} = x; z_n = W_n a_{n-1}; a_n = f_n(z_n).
// ReLU is chosen because the performance surface is built from maxima
// (eq. (2)-(3)); multiplicative relationships are handled by the log feature
// transform applied upstream (§5.2).
//
// All math runs on the in-repo linalg BLAS — fittingly, MLP inference over
// ~15-feature vectors is itself the highly rectangular GEMM regime ISAAC
// targets (§5: the system "could itself be bootstrapped").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace isaac::mlp {

struct MlpConfig {
  int inputs = 15;
  std::vector<int> hidden{64, 128, 64};
  std::uint64_t seed = 0x11A0;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  /// Activations retained for backprop.
  struct Cache {
    std::vector<linalg::Matrix> a;  // a[0] = input, a[L] = output
    std::vector<linalg::Matrix> z;  // pre-activations per layer
  };

  /// Caller-owned forward-pass arena: the input matrix plus one activation
  /// buffer per layer, reshaped (never reallocated past their high-water
  /// mark) on every forward_into call. One workspace per thread lets a
  /// chunked scoring pass run arbitrarily many forward passes with zero
  /// transient allocations after warmup. Workspaces are not tied to one Mlp:
  /// forward_into re-sizes the buffers to whatever network uses them.
  struct Workspace {
    linalg::Matrix x;               // [batch × inputs], filled by the caller
    std::vector<linalg::Matrix> a;  // per-layer activations, a.back() = output
  };

  /// x: [batch × inputs]; returns [batch × 1] predictions.
  linalg::Matrix forward(const linalg::Matrix& x, Cache* cache = nullptr) const;

  /// Allocation-free forward pass over ws.x (batch = ws.x.rows()): runs
  /// entirely on the calling thread (linalg::gemm_serial) and reuses the
  /// workspace's buffers. Returns ws.a.back(), valid until the next call.
  /// Bit-identical to forward() on the same input.
  const linalg::Matrix& forward_into(Workspace& ws) const;

  /// dLdy: [batch × 1] gradient of the loss w.r.t. the output. Fills
  /// per-layer weight/bias gradients (same shapes as weights()/biases()).
  void backward(const Cache& cache, const linalg::Matrix& dLdy,
                std::vector<linalg::Matrix>& dW, std::vector<linalg::Matrix>& db) const;

  std::size_t num_layers() const noexcept { return weights_.size(); }
  std::size_t num_parameters() const noexcept;

  std::vector<linalg::Matrix>& weights() noexcept { return weights_; }
  std::vector<linalg::Matrix>& biases() noexcept { return biases_; }
  const std::vector<linalg::Matrix>& weights() const noexcept { return weights_; }
  const std::vector<linalg::Matrix>& biases() const noexcept { return biases_; }

  const MlpConfig& config() const noexcept { return config_; }

 private:
  MlpConfig config_;
  std::vector<linalg::Matrix> weights_;  // [fan_in × fan_out] per layer
  std::vector<linalg::Matrix> biases_;   // [1 × fan_out] per layer
};

/// Adam optimizer over the MLP's parameter list.
class Adam {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  void step(std::vector<linalg::Matrix*> params, const std::vector<const linalg::Matrix*>& grads);

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::int64_t t_ = 0;
  std::vector<linalg::Matrix> m_, v_;
};

}  // namespace isaac::mlp
