#include "mlp/regressor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "linalg/blas.hpp"

namespace isaac::mlp {

using linalg::Matrix;

void Scaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("Scaler::fit: empty data");
  const std::size_t f = rows.front().size();
  mean.assign(f, 0.0);
  stddev.assign(f, 0.0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < f; ++i) mean[i] += row[i];
  }
  for (double& m : mean) m /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < f; ++i) {
      const double d = row[i] - mean[i];
      stddev[i] += d * d;
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(rows.size()));
    if (s < 1e-12) s = 1.0;  // constant feature: pass through centred
  }
}

void Scaler::apply(std::vector<double>& row) const {
  if (row.size() != mean.size()) throw std::invalid_argument("Scaler::apply: arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) row[i] = (row[i] - mean[i]) / stddev[i];
}

namespace {

std::vector<double> preprocess(const std::vector<double>& raw, bool log_features) {
  std::vector<double> out = raw;
  if (log_features) {
    for (double& v : out) {
      if (v <= 0.0) throw std::invalid_argument("log feature transform: non-positive feature");
      v = std::log(v);
    }
  }
  return out;
}

}  // namespace

Regressor::Regressor(Mlp net, Scaler feature_scaler, double y_mean, double y_std,
                     bool log_features)
    : net_(std::move(net)),
      feature_scaler_(std::move(feature_scaler)),
      y_mean_(y_mean),
      y_std_(y_std),
      log_features_(log_features) {}

Matrix Regressor::encode_batch(const std::vector<std::vector<double>>& rows) const {
  return encode_range(rows, 0, rows.size());
}

Matrix Regressor::encode_range(const std::vector<std::vector<double>>& rows, std::size_t begin,
                               std::size_t end) const {
  Matrix x(end - begin, feature_scaler_.mean.size());
  for (std::size_t r = begin; r < end; ++r) {
    std::vector<double> row = preprocess(rows[r], log_features_);
    feature_scaler_.apply(row);
    for (std::size_t c = 0; c < row.size(); ++c) {
      x(r - begin, c) = static_cast<float>(row[c]);
    }
  }
  return x;
}

void Regressor::predict_gflops_range(const std::vector<std::vector<double>>& rows,
                                     std::size_t begin, std::size_t end, double* out) const {
  const Matrix x = encode_range(rows, begin, end);
  const Matrix y = net_.forward(x);
  for (std::size_t i = 0; i < end - begin; ++i) {
    const double z = static_cast<double>(y(i, 0)) * y_std_ + y_mean_;  // log-GFLOPS
    out[i] = std::exp(z);
  }
}

double Regressor::predict_gflops(const std::vector<double>& raw_features) const {
  return predict_gflops_batch({raw_features})[0];
}

std::vector<double> Regressor::predict_gflops_batch(
    const std::vector<std::vector<double>>& rows) const {
  if (rows.empty()) return {};
  std::vector<double> out(rows.size());
  predict_gflops_range(rows, 0, rows.size(), out.data());
  return out;
}

std::vector<double> Regressor::predict_gflops_chunked(
    const std::vector<std::vector<double>>& rows, std::size_t batch) const {
  if (rows.empty()) return {};
  if (batch == 0 || rows.size() <= batch) return predict_gflops_batch(rows);
  std::vector<double> out(rows.size());
  const std::size_t num_chunks = (rows.size() + batch - 1) / batch;
  ThreadPool::global().parallel_for_each(num_chunks, [&](std::size_t ci) {
    const std::size_t begin = ci * batch;
    const std::size_t end = std::min(rows.size(), begin + batch);
    predict_gflops_range(rows, begin, end, out.data() + begin);
  });
  return out;
}

void Regressor::predict_gflops_range(const tuning::FeatureBatch& batch, std::size_t begin,
                                     std::size_t end, Mlp::Workspace& ws, double* out) const {
  const std::size_t arity = feature_scaler_.mean.size();
  const double* mean = feature_scaler_.mean.data();
  const double* stddev = feature_scaler_.stddev.data();
  ws.x.reshape(end - begin, arity);
  // Fused §5.2 pipeline: log transform, standardize, float cast — one loop,
  // written straight into the workspace's input matrix. Same operation order
  // as preprocess() + Scaler::apply(), so the encodes stay bit-identical to
  // the legacy path; arity was validated once at the batch boundary.
  //
  // Enumerated candidate batches repeat values heavily down each column (the
  // shape features are constant, and adjacent candidates differ only in the
  // fast-advancing parameters), so a per-column last-value memo skips the
  // transcendental for most entries. Reusing the identical encoded float
  // keeps results exactly equal to recomputing it.
  constexpr std::size_t kMemoCap = 64;
  double last_raw[kMemoCap];
  float last_enc[kMemoCap];
  const bool memo = arity <= kMemoCap;
  if (memo) std::fill_n(last_raw, arity, std::numeric_limits<double>::quiet_NaN());
  for (std::size_t r = begin; r < end; ++r) {
    const double* src = batch.row(r);
    float* dst = ws.x.data() + (r - begin) * arity;
    for (std::size_t c = 0; c < arity; ++c) {
      double v = src[c];
      if (memo && v == last_raw[c]) {
        dst[c] = last_enc[c];
        continue;
      }
      if (memo) last_raw[c] = v;
      if (log_features_) {
        if (v <= 0.0) throw std::invalid_argument("log feature transform: non-positive feature");
        v = std::log(v);
      }
      const float enc = static_cast<float>((v - mean[c]) / stddev[c]);
      if (memo) last_enc[c] = enc;
      dst[c] = enc;
    }
  }
  const linalg::Matrix& y = net_.forward_into(ws);
  for (std::size_t i = 0; i < end - begin; ++i) {
    const double z = static_cast<double>(y(i, 0)) * y_std_ + y_mean_;  // log-GFLOPS
    out[i] = std::exp(z);
  }
}

std::vector<double> Regressor::predict_gflops_chunked(const tuning::FeatureBatch& batch,
                                                      std::size_t chunk) const {
  if (batch.empty()) return {};
  if (batch.arity() != feature_scaler_.mean.size()) {
    throw std::invalid_argument(strings::format(
        "predict_gflops_chunked: batch arity %zu does not match the model's %zu features",
        batch.arity(), feature_scaler_.mean.size()));
  }
  std::vector<double> out(batch.rows());
  if (chunk == 0) chunk = batch.rows();
  const std::size_t num_chunks = (batch.rows() + chunk - 1) / chunk;
  ThreadPool::global().parallel_for_each(num_chunks, [&](std::size_t ci) {
    // One forward-pass arena per worker thread, reused across chunks and
    // across scoring passes: after the first pass at a given chunk size the
    // pipeline performs no transient allocations.
    thread_local Mlp::Workspace ws;
    const std::size_t begin = ci * chunk;
    const std::size_t end = std::min(batch.rows(), begin + chunk);
    predict_gflops_range(batch, begin, end, ws, out.data() + begin);
  });
  return out;
}

double Regressor::mse(const tuning::Dataset& data) const {
  if (data.empty()) throw std::invalid_argument("Regressor::mse: empty dataset");
  std::vector<std::vector<double>> rows;
  rows.reserve(data.size());
  for (const auto& s : data.samples()) rows.push_back(s.x);
  const Matrix x = encode_batch(rows);
  const Matrix y = net_.forward(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double target = (std::log(std::max(data[i].y, 1e-6)) - y_mean_) / y_std_;
    const double d = static_cast<double>(y(i, 0)) - target;
    acc += d * d;
  }
  return acc / static_cast<double>(data.size());
}

void Regressor::save(std::ostream& os) const {
  // max_digits10 makes the decimal text round-trip every float weight and
  // double statistic exactly — a loaded model predicts bit-identically.
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "isaac-regressor v1\n";
  os << "log_features " << (log_features_ ? 1 : 0) << "\n";
  os << "y_scale " << y_mean_ << " " << y_std_ << "\n";
  os << "features " << feature_scaler_.mean.size() << "\n";
  for (std::size_t i = 0; i < feature_scaler_.mean.size(); ++i) {
    os << feature_scaler_.mean[i] << " " << feature_scaler_.stddev[i] << "\n";
  }
  const auto& cfg = net_.config();
  os << "inputs " << cfg.inputs << "\nhidden " << cfg.hidden.size();
  for (int h : cfg.hidden) os << " " << h;
  os << "\n";
  for (std::size_t l = 0; l < net_.num_layers(); ++l) {
    const auto& w = net_.weights()[l];
    const auto& b = net_.biases()[l];
    os << "layer " << w.rows() << " " << w.cols() << "\n";
    for (std::size_t i = 0; i < w.size(); ++i) os << w.data()[i] << " ";
    os << "\n";
    for (std::size_t i = 0; i < b.size(); ++i) os << b.data()[i] << " ";
    os << "\n";
  }
  os.precision(saved_precision);
}

Regressor Regressor::load(std::istream& is) {
  std::string tag, version;
  is >> tag >> version;
  if (tag != "isaac-regressor") throw std::runtime_error("Regressor::load: bad header");
  std::string key;
  int logf = 1;
  is >> key >> logf;
  double y_mean = 0.0, y_std = 1.0;
  is >> key >> y_mean >> y_std;
  std::size_t nf = 0;
  is >> key >> nf;
  Scaler scaler;
  scaler.mean.resize(nf);
  scaler.stddev.resize(nf);
  for (std::size_t i = 0; i < nf; ++i) is >> scaler.mean[i] >> scaler.stddev[i];
  MlpConfig cfg;
  is >> key >> cfg.inputs;
  std::size_t nh = 0;
  is >> key >> nh;
  cfg.hidden.resize(nh);
  for (auto& h : cfg.hidden) is >> h;
  Mlp net(cfg);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    std::size_t r = 0, c = 0;
    is >> key >> r >> c;
    if (key != "layer" || r != net.weights()[l].rows() || c != net.weights()[l].cols()) {
      throw std::runtime_error("Regressor::load: layer shape mismatch");
    }
    for (std::size_t i = 0; i < net.weights()[l].size(); ++i) is >> net.weights()[l].data()[i];
    for (std::size_t i = 0; i < net.biases()[l].size(); ++i) is >> net.biases()[l].data()[i];
  }
  if (!is) throw std::runtime_error("Regressor::load: truncated stream");
  return Regressor(std::move(net), std::move(scaler), y_mean, y_std, logf != 0);
}

namespace {

/// The minibatch-Adam loop shared by cold training and warm-start training:
/// optimize `net` in place over the already-encoded (x_all, y_all).
void fit_minibatch(Mlp& net, const Matrix& x_all, const Matrix& y_all,
                   const TrainConfig& config) {
  const std::size_t n = x_all.rows();
  const std::size_t width = x_all.cols();

  Adam adam(config.learning_rate);
  Rng rng(config.seed ^ 0xABCD);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  const std::size_t batch = static_cast<std::size_t>(std::max(config.batch_size, 1));
  std::vector<Matrix> dW, db;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;

    for (std::size_t start = 0; start < n; start += batch) {
      const std::size_t end = std::min(n, start + batch);
      const std::size_t bs = end - start;
      Matrix xb(bs, width);
      Matrix yb(bs, 1);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t src = order[start + i];
        for (std::size_t c = 0; c < width; ++c) xb(i, c) = x_all(src, c);
        yb(i, 0) = y_all(src, 0);
      }

      Mlp::Cache cache;
      const Matrix pred = net.forward(xb, &cache);
      Matrix dLdy(bs, 1);
      double loss = 0.0;
      for (std::size_t i = 0; i < bs; ++i) {
        const float d = pred(i, 0) - yb(i, 0);
        loss += static_cast<double>(d) * d;
        dLdy(i, 0) = 2.0f * d / static_cast<float>(bs);
      }
      epoch_loss += loss / static_cast<double>(bs);
      ++batches;

      net.backward(cache, dLdy, dW, db);
      std::vector<Matrix*> params;
      std::vector<const Matrix*> grads;
      for (std::size_t l = 0; l < net.num_layers(); ++l) {
        params.push_back(&net.weights()[l]);
        grads.push_back(&dW[l]);
        params.push_back(&net.biases()[l]);
        grads.push_back(&db[l]);
      }
      adam.step(params, grads);
    }

    if (config.on_epoch) {
      config.on_epoch(epoch, epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1)));
    }
  }
}

}  // namespace

Regressor train(const tuning::Dataset& train_data, const TrainConfig& config) {
  if (train_data.empty()) throw std::invalid_argument("train: empty dataset");

  // ---- fit preprocessing on training data ----
  std::vector<std::vector<double>> rows;
  rows.reserve(train_data.size());
  std::vector<double> targets;
  targets.reserve(train_data.size());
  for (const auto& s : train_data.samples()) {
    rows.push_back(preprocess(s.x, config.log_features));
    targets.push_back(std::log(std::max(s.y, 1e-6)));
  }
  Scaler scaler;
  scaler.fit(rows);
  for (auto& r : rows) scaler.apply(r);

  double y_mean = 0.0;
  for (double t : targets) y_mean += t;
  y_mean /= static_cast<double>(targets.size());
  double y_var = 0.0;
  for (double t : targets) y_var += (t - y_mean) * (t - y_mean);
  const double y_std = std::max(std::sqrt(y_var / static_cast<double>(targets.size())), 1e-9);

  // ---- encode once ----
  MlpConfig net_cfg = config.net;
  net_cfg.inputs = static_cast<int>(tuning::kNumFeatures);
  net_cfg.seed = config.seed;
  Mlp net(net_cfg);

  const std::size_t n = rows.size();
  Matrix x_all(n, tuning::kNumFeatures);
  Matrix y_all(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < tuning::kNumFeatures; ++c) {
      x_all(i, c) = static_cast<float>(rows[i][c]);
    }
    y_all(i, 0) = static_cast<float>((targets[i] - y_mean) / y_std);
  }

  // ---- minibatch Adam ----
  fit_minibatch(net, x_all, y_all, config);

  return Regressor(std::move(net), std::move(scaler), y_mean, y_std, config.log_features);
}

Regressor train_warm_start(const Regressor& base, const tuning::Dataset& delta,
                           const TrainConfig& config) {
  if (delta.empty()) throw std::invalid_argument("train_warm_start: empty dataset");
  const std::size_t arity = base.num_features();

  // ---- encode with base's frozen preprocessing ----
  const Scaler& scaler = base.feature_scaler();
  const std::size_t n = delta.size();
  Matrix x_all(n, arity);
  Matrix y_all(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row = preprocess(delta[i].x, base.log_features());
    scaler.apply(row);  // throws on arity mismatch with the base model
    for (std::size_t c = 0; c < arity; ++c) x_all(i, c) = static_cast<float>(row[c]);
    const double target = std::log(std::max(delta[i].y, 1e-6));
    y_all(i, 0) = static_cast<float>((target - base.y_mean()) / base.y_std());
  }

  // ---- resume the optimizer from the copied network ----
  Mlp net = base.net();
  fit_minibatch(net, x_all, y_all, config);

  return Regressor(std::move(net), scaler, base.y_mean(), base.y_std(), base.log_features());
}

}  // namespace isaac::mlp
