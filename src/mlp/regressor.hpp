// Regressor: the trained performance model R of the paper.
//
// Wraps the MLP with the §5.2 preprocessing pipeline:
//   features:  x -> log(x) (unless ablated) -> standardize (train statistics)
//   target:    y GFLOPS -> log(y) -> standardize
// Cross-validation MSE is reported in standardized log-target units — the
// scale on which Table 2's 0.06–0.17 values live.
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "linalg/matrix.hpp"
#include "mlp/net.hpp"
#include "tuning/dataset.hpp"
#include "tuning/feature_batch.hpp"

namespace isaac::mlp {

struct TrainConfig {
  MlpConfig net;
  int epochs = 12;
  int batch_size = 256;
  double learning_rate = 1e-3;
  bool log_features = true;  // the §5.2 transform; false = ablation
  std::uint64_t seed = 0x5EED;
  /// Optional per-epoch callback (epoch index, train MSE in model units).
  std::function<void(int, double)> on_epoch;
};

/// Per-feature affine standardization fitted on training data.
struct Scaler {
  std::vector<double> mean;
  std::vector<double> stddev;

  void fit(const std::vector<std::vector<double>>& rows);
  /// Per-row entry point (throws on arity mismatch). The batched scoring
  /// pipeline does not call this: it validates arity once per FeatureBatch
  /// and fuses the standardization into its encode loop instead of paying
  /// the check per candidate.
  void apply(std::vector<double>& row) const;
};

class Regressor {
 public:
  Regressor(Mlp net, Scaler feature_scaler, double y_mean, double y_std, bool log_features);

  /// Predicted GFLOPS for a raw feature vector.
  double predict_gflops(const std::vector<double>& raw_features) const;

  /// Batched prediction (rows of raw features) — the hot path of runtime
  /// inference, which scores hundreds of thousands of candidates.
  std::vector<double> predict_gflops_batch(const std::vector<std::vector<double>>& rows) const;

  /// Whole-space scoring: split `rows` into `batch`-sized chunks and score
  /// them in parallel on the global thread pool. This is the legacy
  /// vector-of-vectors entry point (kept as the parity oracle for the flat
  /// path below); results are identical to predict_gflops_batch, independent
  /// of thread count. `batch` == 0 falls back to one chunk.
  std::vector<double> predict_gflops_chunked(const std::vector<std::vector<double>>& rows,
                                             std::size_t batch) const;

  /// Allocation-free whole-space scoring — the ranking hot path
  /// (search/model_topk.hpp). Chunks the flat batch across the global pool;
  /// each worker fuses the §5.2 log transform and the scaler into one encode
  /// loop that writes straight into a thread-local, capacity-recycling
  /// forward workspace (Mlp::Workspace), so after warmup a pass performs no
  /// transient allocations. Feature arity is validated once per batch, not
  /// per candidate. Scores are bit-identical to the legacy overload above,
  /// independent of chunk size and thread count.
  std::vector<double> predict_gflops_chunked(const tuning::FeatureBatch& batch,
                                             std::size_t chunk) const;

  /// Number of raw features one candidate row carries.
  std::size_t num_features() const noexcept { return feature_scaler_.mean.size(); }

  /// Frozen preprocessing statistics — the encode a warm-started successor
  /// must reuse so old and new versions score candidates on the same scale.
  const Scaler& feature_scaler() const noexcept { return feature_scaler_; }
  double y_mean() const noexcept { return y_mean_; }
  double y_std() const noexcept { return y_std_; }

  /// MSE in standardized log-target units over a dataset (Table 2 metric).
  double mse(const tuning::Dataset& data) const;

  const Mlp& net() const noexcept { return net_; }
  bool log_features() const noexcept { return log_features_; }

  /// Model serialization (text format). Weights and statistics are written
  /// with max_digits10 precision, so save/load round-trips bit-identically:
  /// a loaded model's predictions equal the in-memory original's exactly.
  void save(std::ostream& os) const;
  static Regressor load(std::istream& is);

 private:
  linalg::Matrix encode_batch(const std::vector<std::vector<double>>& rows) const;
  /// Encode/score rows[begin, end) without copying the slice.
  linalg::Matrix encode_range(const std::vector<std::vector<double>>& rows, std::size_t begin,
                              std::size_t end) const;
  void predict_gflops_range(const std::vector<std::vector<double>>& rows, std::size_t begin,
                            std::size_t end, double* out) const;
  /// Fused log-transform + standardize + float cast for batch rows
  /// [begin, end), written straight into ws.x; then one forward_into pass,
  /// decoded into out[0, end - begin).
  void predict_gflops_range(const tuning::FeatureBatch& batch, std::size_t begin,
                            std::size_t end, Mlp::Workspace& ws, double* out) const;

  Mlp net_;
  Scaler feature_scaler_;
  double y_mean_, y_std_;
  bool log_features_;
};

/// Train on `train_data`, reporting per-epoch progress via config.on_epoch.
Regressor train(const tuning::Dataset& train_data, const TrainConfig& config);

/// Warm-start training: resume from `base`'s weights on an appended dataset
/// instead of fitting from scratch. The §5.2 preprocessing is *frozen* —
/// base's Scaler, target statistics, and log-feature setting are reused
/// unchanged (config.net / config.log_features are ignored) — so the copied
/// weights stay meaningful and predictions from consecutive versions live on
/// one encode. Only the optimizer runs: minibatch Adam for config.epochs over
/// `delta` starting from the copied network. This is the online retrainer's
/// primitive: `delta` is the folded observation log, typically small, and the
/// result is the successor model version.
Regressor train_warm_start(const Regressor& base, const tuning::Dataset& delta,
                           const TrainConfig& config);

}  // namespace isaac::mlp
