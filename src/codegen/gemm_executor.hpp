// Functional executor for generated GEMM kernels.
//
// Runs the *same tiled algorithm* the PTX generator emits — block grid over
// (M/ML) × (N/NL) × KG, per-block staging of k-major tiles, per-thread
// micro-tiles, predicated edges, split-reduction accumulation — on the CPU
// thread pool, producing actual numerical results. This is the semantic
// ground truth for correctness tests and what the public isaac::gemm() API
// executes after kernel selection.
//
// All buffers are column-major (BLAS convention). The executor computes in
// fp32 for F16/F32 shapes and fp64 for F64 shapes; simulated device precision
// is not modelled (see DESIGN.md).
#pragma once

#include <cstdint>

#include "codegen/gemm.hpp"

namespace isaac::codegen {

/// C = alpha * op(A) * op(B) + beta * C, executed with the tiling of
/// `tuning`. Layouts: op(A) is M×K; A is stored M×K (lda ≥ M) when
/// !trans_a, K×M (lda ≥ K) otherwise. B symmetric. C is M×N, ldc ≥ M.
/// Throws std::invalid_argument when (shape, tuning) has inconsistent
/// divisibility constraints (validate() against a device first for the
/// full legality check).
void execute_gemm(const GemmShape& shape, const GemmTuning& tuning, float alpha,
                  const float* a, std::int64_t lda, const float* b, std::int64_t ldb,
                  float beta, float* c, std::int64_t ldc);

/// Double-precision variant for F64 shapes.
void execute_gemm(const GemmShape& shape, const GemmTuning& tuning, double alpha,
                  const double* a, std::int64_t lda, const double* b, std::int64_t ldb,
                  double beta, double* c, std::int64_t ldc);

/// Naive column-major reference (serial; for tests).
void reference_gemm(const GemmShape& shape, float alpha, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float beta, float* c, std::int64_t ldc);
void reference_gemm(const GemmShape& shape, double alpha, const double* a, std::int64_t lda,
                    const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc);

}  // namespace isaac::codegen
