// Functional executor for multi-channel convolution.
//
// Runs the implicit-GEMM algorithm of §3.3 on the CPU pool: the block grid
// tiles (NPQ × K × CG), each block stages a gathered I tile and an F tile
// (k-major, exactly like the GEMM executor's staging) and accumulates
// micro-tiles, handling padding and edge predication. Ground truth for
// correctness tests and the execution backend of isaac::conv().
//
// Layouts (paper §3.3, last index fastest):
//   I ∈ R^{C×H×W×N},  F ∈ R^{C×R×S×K},  O ∈ R^{K×P×Q×N}
#pragma once

#include "codegen/conv.hpp"

namespace isaac::codegen {

/// O = conv(I, F) with the tiling of `tuning` (alpha/beta as in GEMM).
void execute_conv(const ConvShape& shape, const ConvTuning& tuning, float alpha,
                  const float* input, const float* filters, float beta, float* output);

/// Naive direct convolution (serial over K; for tests).
void reference_conv(const ConvShape& shape, float alpha, const float* input,
                    const float* filters, float beta, float* output);

}  // namespace isaac::codegen
