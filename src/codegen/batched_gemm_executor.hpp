// Functional executor for strided-batched GEMM.
//
// Each batch element is the tiled GEMM algorithm of gemm_executor.hpp applied
// to operand slices at a constant stride: A_i = A + i·stride_a, etc. The batch
// loop runs on the calling thread; the per-batch GEMM already parallelizes
// its block grid over the thread pool.
//
// All buffers column-major per batch element (BLAS convention). Strides are
// in elements, and must be at least the footprint of one batch operand.
#pragma once

#include <cstdint>

#include "codegen/batched_gemm.hpp"

namespace isaac::codegen {

/// C_i = alpha * op(A_i) * op(B_i) + beta * C_i for i in [0, batch), executed
/// with the tiling of `tuning`. Throws std::invalid_argument on inconsistent
/// divisibility or stride smaller than one operand's footprint.
void execute_batched_gemm(const BatchedGemmShape& shape, const GemmTuning& tuning, float alpha,
                          const float* a, std::int64_t lda, std::int64_t stride_a,
                          const float* b, std::int64_t ldb, std::int64_t stride_b, float beta,
                          float* c, std::int64_t ldc, std::int64_t stride_c);

void execute_batched_gemm(const BatchedGemmShape& shape, const GemmTuning& tuning, double alpha,
                          const double* a, std::int64_t lda, std::int64_t stride_a,
                          const double* b, std::int64_t ldb, std::int64_t stride_b, double beta,
                          double* c, std::int64_t ldc, std::int64_t stride_c);

/// Naive per-batch reference (serial; for tests).
void reference_batched_gemm(const BatchedGemmShape& shape, float alpha, const float* a,
                            std::int64_t lda, std::int64_t stride_a, const float* b,
                            std::int64_t ldb, std::int64_t stride_b, float beta, float* c,
                            std::int64_t ldc, std::int64_t stride_c);

}  // namespace isaac::codegen
