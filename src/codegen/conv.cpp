#include "codegen/conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strings.hpp"

namespace isaac::codegen {

std::string ConvShape::to_string() const {
  return strings::format("conv[n%lld c%lld %lldx%lld k%lld %lldx%lld %s]",
                         static_cast<long long>(n), static_cast<long long>(c),
                         static_cast<long long>(h), static_cast<long long>(w),
                         static_cast<long long>(k), static_cast<long long>(r),
                         static_cast<long long>(s), gpusim::dtype_name(dtype));
}

ConvShape ConvShape::from_npq(std::int64_t n, std::int64_t p, std::int64_t q, std::int64_t k,
                              std::int64_t c, std::int64_t r, std::int64_t s,
                              gpusim::DataType dtype) {
  ConvShape out;
  out.n = n;
  out.c = c;
  out.h = p + r - 1;
  out.w = q + s - 1;
  out.k = k;
  out.r = r;
  out.s = s;
  out.dtype = dtype;
  return out;
}

std::string ConvTuning::to_string() const {
  return strings::format("tk%d tp%d tq%d tn%d bk%d bp%d bq%d bn%d u%d cs%d cl%d cg%d v%d", tk,
                         tp, tq, tn, bk, bp, bq, bn, u, cs, cl, cg, vec);
}

namespace {
const std::vector<int> k1_8{1, 2, 4, 8};
const std::vector<int> k1_4{1, 2, 4};
const std::vector<int> k1_32{1, 2, 4, 8, 16, 32};
const std::vector<int> k8_128{8, 16, 32, 64, 128};
const std::vector<int> k4_32{4, 8, 16, 32};
const std::vector<int> k1_16{1, 2, 4, 8, 16};
}  // namespace

const std::vector<int>& ConvTuning::candidates_tk() { return k1_8; }
const std::vector<int>& ConvTuning::candidates_tp() { return k1_4; }
const std::vector<int>& ConvTuning::candidates_tq() { return k1_4; }
const std::vector<int>& ConvTuning::candidates_tn() { return k1_4; }
const std::vector<int>& ConvTuning::candidates_bk() { return k8_128; }
const std::vector<int>& ConvTuning::candidates_bp() { return k1_8; }
const std::vector<int>& ConvTuning::candidates_bq() { return k1_8; }
const std::vector<int>& ConvTuning::candidates_bn() { return k1_32; }
const std::vector<int>& ConvTuning::candidates_u() { return k4_32; }
const std::vector<int>& ConvTuning::candidates_cl() { return k1_8; }
const std::vector<int>& ConvTuning::candidates_cg() { return k1_16; }

GemmShape conv_gemm_shape(const ConvShape& shape) {
  GemmShape g;
  g.m = shape.npq();
  g.n = shape.k;
  g.k = shape.crs();
  g.dtype = shape.dtype;
  // The gathered I tile behaves like a non-transposed A (m-contiguous panels
  // thanks to the N-fastest layout); F ∈ R^{C×R×S×K} is k-fastest along K,
  // i.e. behaves like a transposed B (n-contiguous) — no smem transpose.
  g.trans_a = false;
  g.trans_b = true;
  return g;
}

GemmTuning conv_gemm_tuning(const ConvTuning& t) {
  GemmTuning g;
  g.ms = t.tp * t.tq * t.tn;
  g.ns = t.tk;
  g.ml = t.bp * t.bq * t.bn;
  g.nl = t.bk;
  g.u = t.u;
  g.ks = t.cs;
  g.kl = t.cl;
  g.kg = t.cg;
  g.vec = t.vec;
  g.bounds = t.bounds;
  return g;
}

bool validate(const ConvShape& shape, const ConvTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (shape.n <= 0 || shape.c <= 0 || shape.k <= 0) return fail("empty problem");
  if (shape.p() <= 0 || shape.q() <= 0) return fail("filter larger than padded input");

  if (tuning.bk % tuning.tk != 0 || tuning.bp % tuning.tp != 0 ||
      tuning.bq % tuning.tq != 0 || tuning.bn % tuning.tn != 0) {
    return fail("block tile must be a multiple of the thread tile in every dimension");
  }

  // The five-dimensional tile must not degenerate: a block tile wider than
  // the output in P/Q/N burns threads with no implicit-GEMM row to compute.
  if (tuning.bp > 2 * shape.p() || tuning.bq > 2 * shape.q() || tuning.bn > 2 * shape.n) {
    return fail("block tile far exceeds output extent");
  }

  return validate(conv_gemm_shape(shape), conv_gemm_tuning(tuning), dev, why);
}

gpusim::KernelProfile analyze(const ConvShape& shape, const ConvTuning& tuning,
                              const gpusim::DeviceDescriptor& dev) {
  std::string why;
  if (!validate(shape, tuning, dev, &why)) {
    throw std::invalid_argument("conv analyze: illegal config: " + why);
  }

  const GemmShape gs = conv_gemm_shape(shape);
  const GemmTuning gt = conv_gemm_tuning(tuning);
  gpusim::KernelProfile p = analyze(gs, gt, dev);
  p.label = shape.to_string() + " / " + tuning.to_string();
  p.useful_flops = shape.flops();

  // ---- conv-specific costs over the plain GEMM lowering --------------------
  const int threads = gt.threads_per_block();
  const double fetch_i =
      static_cast<double>(gt.ml) * gt.u * gt.kl / threads;  // gathered I elements/round
  const std::int64_t k_eff = (gs.k + gt.kg - 1) / gt.kg;
  const double rounds =
      static_cast<double>((k_eff + static_cast<std::int64_t>(gt.u) * gt.kl - 1) /
                          (static_cast<std::int64_t>(gt.u) * gt.kl));

  // Indirection-table lookups: one s32 offset load per gathered I element
  // ("using an indirection table in order to alleviate integer arithmetics in
  // the algorithm's inner loop").
  p.ld_global_insts += rounds * fetch_i / gt.vec;
  p.int_insts += rounds * fetch_i;  // base+offset add per gather
  p.dram_read_bytes += static_cast<double>(gs.m) * 4.0;  // table streamed once
  p.requested_read_bytes += static_cast<double>(p.grid_blocks) * gt.ml * 4.0;

  // Gathers follow the table: contiguous only along the N (batch) extent of
  // the tile.
  const int dsize = static_cast<int>(gpusim::dtype_size(shape.dtype));
  const double contig_i = std::min<double>(tuning.bn, shape.n) * dsize;
  const double eff_i = std::clamp(contig_i / 32.0, 0.25, 1.0);
  // Re-weight coalescing: I carries the A-side traffic, F the B-side.
  const double a_bytes = static_cast<double>(gs.m) * gs.k * dsize;
  const double b_bytes = static_cast<double>(gs.k) * gs.n * dsize;
  const double eff_f = 1.0;  // F is K-fastest: fully coalesced panels
  p.coalescing_efficiency =
      (a_bytes * eff_i + b_bytes * eff_f) / std::max(1.0, a_bytes + b_bytes);

  // Input elements are re-gathered up to R·S times (spatial overlap), but the
  // unique input is only C·H·W·N: correct the compulsory traffic.
  const double unique_input_bytes =
      static_cast<double>(shape.c) * shape.h * shape.w * shape.n * dsize;
  const double filter_bytes = static_cast<double>(shape.crs()) * shape.k * dsize;
  p.dram_read_bytes = unique_input_bytes + filter_bytes + static_cast<double>(gs.m) * 4.0;

  return p;
}

}  // namespace isaac::codegen
