#include "codegen/gemm_executor.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/failpoint.hpp"
#include "common/thread_pool.hpp"

namespace isaac::codegen {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// One mutex per C tile row-stripe serializes split-reduction accumulation
/// (the functional analogue of global atomics).
constexpr int kNumLocks = 64;

template <typename T>
struct GemmRun {
  const GemmShape& shape;
  const GemmTuning& tuning;
  T alpha;
  const T* a;
  std::int64_t lda;
  const T* b;
  std::int64_t ldb;
  T beta;
  T* c;
  std::int64_t ldc;

  // op(A)(m, k): column-major A (M×K) when !trans_a, else stored K×M.
  T load_a(std::int64_t m, std::int64_t k) const {
    return shape.trans_a ? a[k + m * lda] : a[m + k * lda];
  }
  // op(B)(k, n): column-major B (K×N) when !trans_b, else stored N×K.
  T load_b(std::int64_t k, std::int64_t n) const {
    return shape.trans_b ? b[n + k * ldb] : b[k + n * ldb];
  }
};

/// Execute one thread block: stage the k-major tiles round by round exactly
/// as the PTX kernel does (including zero-fill of predicated-off lanes), run
/// the per-thread micro-tiles, then accumulate into C.
template <typename T>
void run_block(const GemmRun<T>& run, std::int64_t tile_m, std::int64_t tile_n,
               std::int64_t slice_g, std::vector<std::mutex>& locks) {
  const GemmShape& s = run.shape;
  const GemmTuning& t = run.tuning;

  const std::int64_t m0 = tile_m * t.ml;
  const std::int64_t n0 = tile_n * t.nl;
  const std::int64_t k_eff = ceil_div(s.k, t.kg);
  const std::int64_t k0 = slice_g * k_eff;
  const std::int64_t k1 = std::min<std::int64_t>(s.k, k0 + k_eff);
  if (k0 >= k1) return;  // empty slice (K not divisible by KG)

  // "Shared memory": k-major staging tiles [U*KL][ML] and [U*KL][NL].
  const int depth = t.u * t.kl;
  std::vector<T> smem_a(static_cast<std::size_t>(depth) * t.ml);
  std::vector<T> smem_b(static_cast<std::size_t>(depth) * t.nl);

  // Per-block accumulator tile (covers the KL groups' partials; the PTX
  // kernel holds these in registers + a shared-memory reduction).
  std::vector<T> acc(static_cast<std::size_t>(t.ml) * t.nl, T(0));

  for (std::int64_t kk = k0; kk < k1; kk += depth) {
    // Cooperative, predicated prefetch: out-of-range lanes stage zeros,
    // exactly like the @p-guarded loads with pre-zeroed registers.
    for (int d = 0; d < depth; ++d) {
      const std::int64_t k = kk + d;
      const bool k_ok = k < k1;
      for (int i = 0; i < t.ml; ++i) {
        const std::int64_t m = m0 + i;
        smem_a[static_cast<std::size_t>(d) * t.ml + i] =
            (k_ok && m < s.m) ? run.load_a(m, k) : T(0);
      }
      for (int j = 0; j < t.nl; ++j) {
        const std::int64_t n = n0 + j;
        smem_b[static_cast<std::size_t>(d) * t.nl + j] =
            (k_ok && n < s.n) ? run.load_b(k, n) : T(0);
      }
    }
    // Inner product over the staged depth (all KL groups' slices).
    for (int d = 0; d < depth; ++d) {
      const T* arow = smem_a.data() + static_cast<std::size_t>(d) * t.ml;
      const T* brow = smem_b.data() + static_cast<std::size_t>(d) * t.nl;
      for (int j = 0; j < t.nl; ++j) {
        const T bv = brow[j];
        if (bv == T(0)) continue;
        T* acol = acc.data() + static_cast<std::size_t>(j) * t.ml;
        for (int i = 0; i < t.ml; ++i) acol[i] += arow[i] * bv;
      }
    }
  }

  // Epilogue: predicated stores; KG>1 accumulates (atomics analogue).
  const std::size_t lock_idx =
      static_cast<std::size_t>((tile_m * 31 + tile_n) % kNumLocks);
  std::unique_lock<std::mutex> guard(locks[lock_idx], std::defer_lock);
  if (run.tuning.kg > 1) guard.lock();

  for (int j = 0; j < t.nl; ++j) {
    const std::int64_t n = n0 + j;
    if (n >= s.n) continue;
    for (int i = 0; i < t.ml; ++i) {
      const std::int64_t m = m0 + i;
      if (m >= s.m) continue;
      run.c[m + n * run.ldc] +=
          run.alpha * acc[static_cast<std::size_t>(j) * t.ml + i];
    }
  }
}

template <typename T>
void execute_impl(const GemmShape& shape, const GemmTuning& tuning, T alpha, const T* a,
                  std::int64_t lda, const T* b, std::int64_t ldb, T beta, T* c,
                  std::int64_t ldc) {
  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) {
    throw std::invalid_argument("execute_gemm: empty problem");
  }
  if (tuning.ml % tuning.ms != 0 || tuning.nl % tuning.ns != 0) {
    throw std::invalid_argument("execute_gemm: tile divisibility violated");
  }
  const std::int64_t min_lda = shape.trans_a ? shape.k : shape.m;
  const std::int64_t min_ldb = shape.trans_b ? shape.n : shape.k;
  if (lda < min_lda || ldb < min_ldb || ldc < shape.m) {
    throw std::invalid_argument("execute_gemm: leading dimension too small");
  }

  // beta pass first (the zero-init / scale kernel that precedes KG-split
  // accumulation; for KG==1 it is fused but semantically identical).
  ThreadPool::global().parallel_for_each(static_cast<std::size_t>(shape.n), [&](std::size_t n) {
    T* col = c + static_cast<std::int64_t>(n) * ldc;
    if (beta == T(0)) {
      std::fill_n(col, shape.m, T(0));
    } else if (beta != T(1)) {
      for (std::int64_t m = 0; m < shape.m; ++m) col[m] *= beta;
    }
  });

  const std::int64_t grid_m = ceil_div(shape.m, tuning.ml);
  const std::int64_t grid_n = ceil_div(shape.n, tuning.nl);
  const std::int64_t blocks = grid_m * grid_n * tuning.kg;

  GemmRun<T> run{shape, tuning, alpha, a, lda, b, ldb, beta, c, ldc};
  std::vector<std::mutex> locks(kNumLocks);

  ThreadPool::global().parallel_for_each(static_cast<std::size_t>(blocks), [&](std::size_t bi) {
    // n-fastest, then m, then the KG slice (matches the scheduling order the
    // analyzer assumes for its reuse hints).
    const std::int64_t tn = static_cast<std::int64_t>(bi) % grid_n;
    const std::int64_t tm = (static_cast<std::int64_t>(bi) / grid_n) % grid_m;
    const std::int64_t g = static_cast<std::int64_t>(bi) / (grid_n * grid_m);
    run_block(run, tm, tn, g, locks);
  });
}

template <typename T>
void reference_impl(const GemmShape& shape, T alpha, const T* a, std::int64_t lda, const T* b,
                    std::int64_t ldb, T beta, T* c, std::int64_t ldc) {
  for (std::int64_t n = 0; n < shape.n; ++n) {
    for (std::int64_t m = 0; m < shape.m; ++m) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < shape.k; ++k) {
        const T av = shape.trans_a ? a[k + m * lda] : a[m + k * lda];
        const T bv = shape.trans_b ? b[n + k * ldb] : b[k + n * ldb];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      c[m + n * ldc] = alpha * static_cast<T>(acc) + beta * c[m + n * ldc];
    }
  }
}

}  // namespace

void execute_gemm(const GemmShape& shape, const GemmTuning& tuning, float alpha, const float* a,
                  std::int64_t lda, const float* b, std::int64_t ldb, float beta, float* c,
                  std::int64_t ldc) {
  ISAAC_FAILPOINT("execute.throw");
  execute_impl(shape, tuning, alpha, a, lda, b, ldb, beta, c, ldc);
}

void execute_gemm(const GemmShape& shape, const GemmTuning& tuning, double alpha,
                  const double* a, std::int64_t lda, const double* b, std::int64_t ldb,
                  double beta, double* c, std::int64_t ldc) {
  ISAAC_FAILPOINT("execute.throw");
  execute_impl(shape, tuning, alpha, a, lda, b, ldb, beta, c, ldc);
}

void reference_gemm(const GemmShape& shape, float alpha, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float beta, float* c, std::int64_t ldc) {
  reference_impl(shape, alpha, a, lda, b, ldb, beta, c, ldc);
}

void reference_gemm(const GemmShape& shape, double alpha, const double* a, std::int64_t lda,
                    const double* b, std::int64_t ldb, double beta, double* c,
                    std::int64_t ldc) {
  reference_impl(shape, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace isaac::codegen
