// PTX kernel generation for the GEMM parameterization.
//
// Emits a complete, runnable PTX-like kernel implementing Figure 3 of the
// paper: cooperative double-role staging of k-major A/B tiles into shared
// memory (with the in-flight transposes the layout requires), a fully
// unrolled U-deep inner product per reduction group, predicated edge
// handling, a K_L shared-memory reduction epilogue, and K_G accumulation via
// global atomics. The kernel is semantically validated by the interpreter
// against the functional executor in the test suite.
//
// Supported data types: F32 and F64 (the interpreter models f16 storage at
// f32 precision, so F16 kernels are profile-only; see DESIGN.md).
//
// Parameter order (all u64): A, B, C, M, N, K, LDA, LDB, LDC, KEFF
// where KEFF = ceil(K / KG) is the per-slice reduction depth.
#pragma once

#include "codegen/gemm.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/ir.hpp"

namespace isaac::codegen {

/// Build the kernel. Throws std::invalid_argument for F16 shapes or
/// inconsistent tile divisibility.
ptx::Kernel generate_gemm_ptx(const GemmShape& shape, const GemmTuning& tuning);

/// Launch geometry for the generated kernel on a given shape.
ptx::LaunchDims gemm_launch_dims(const GemmShape& shape, const GemmTuning& tuning);

/// Parameter vector for ptx::run (addresses first, then widened scalars).
std::vector<std::uint64_t> gemm_params(const GemmShape& shape, const GemmTuning& tuning,
                                       std::uint64_t a_addr, std::uint64_t b_addr,
                                       std::uint64_t c_addr);

}  // namespace isaac::codegen
