// Strided-batched GEMM — the deep-learning inference workload: many small
// independent products C_i = A_i · B_i with identical (M, N, K) and constant
// strides between consecutive batch operands (cuBLAS gemmStridedBatched).
//
// The kernel reuses the GEMM parameterization verbatim (the per-batch problem
// is a GEMM), with one search-space restriction: the grid-level reduction
// split KG is pinned to 1, because a batched launch already fills the grid
// with independent blocks and a global-atomics split across K would serialize
// the batch loop on the accumulation buffers. This is the "third operation"
// that exercises the generic Operation layer end-to-end (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

#include "codegen/gemm.hpp"

namespace isaac::codegen {

struct BatchedGemmShape {
  std::int64_t batch = 1;
  GemmShape gemm;  // the per-batch problem

  double flops() const noexcept { return static_cast<double>(batch) * gemm.flops(); }

  /// Feature-space encoding: a batched product behaves like one GEMM whose N
  /// extent is tiled `batch` times over the grid, so the regression model sees
  /// (M, N·batch, K). The reduction depth and layouts are per-batch.
  GemmShape equivalent_gemm() const noexcept;

  std::string to_string() const;
  bool operator==(const BatchedGemmShape&) const = default;
};

/// Legality: the per-batch GEMM must be legal and KG must be 1 (see header
/// comment). `why` receives the violated constraint on failure.
bool validate(const BatchedGemmShape& shape, const GemmTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why = nullptr);

/// Static analysis: the per-batch GEMM profile with grid size and per-launch
/// memory traffic scaled by the batch count. Per-thread instruction mix and
/// per-block resources are batch-invariant.
gpusim::KernelProfile analyze(const BatchedGemmShape& shape, const GemmTuning& tuning,
                              const gpusim::DeviceDescriptor& dev);

}  // namespace isaac::codegen
