#include "codegen/conv_executor.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/failpoint.hpp"
#include "common/thread_pool.hpp"

namespace isaac::codegen {

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

constexpr int kNumLocks = 64;

/// Decompose an implicit-GEMM row index into (n, p, q): rows enumerate the
/// output's N fastest, then Q, then P — matching the N-fastest O layout.
struct RowIndex {
  std::int64_t n, p, q;
};

RowIndex decompose_row(const ConvShape& s, std::int64_t row) {
  RowIndex out{};
  out.n = row % s.n;
  row /= s.n;
  out.q = row % s.q();
  row /= s.q();
  out.p = row;
  return out;
}

/// Decompose a reduction index into (c, r, sx): S fastest, then R, then C.
struct RedIndex {
  std::int64_t c, r, sx;
};

RedIndex decompose_red(const ConvShape& s, std::int64_t red) {
  RedIndex out{};
  out.sx = red % s.s;
  red /= s.s;
  out.r = red % s.r;
  red /= s.r;
  out.c = red;
  return out;
}

float gather_input(const ConvShape& s, const float* input, const RowIndex& row,
                   const RedIndex& red) {
  const std::int64_t hh = row.p * s.stride_h + red.r - s.pad_h;
  const std::int64_t ww = row.q * s.stride_w + red.sx - s.pad_w;
  if (hh < 0 || hh >= s.h || ww < 0 || ww >= s.w) return 0.0f;  // padding
  // I[c, h, w, n], n fastest.
  const std::int64_t idx = ((red.c * s.h + hh) * s.w + ww) * s.n + row.n;
  return input[idx];
}

float load_filter(const ConvShape& s, const float* filters, const RedIndex& red,
                  std::int64_t k) {
  // F[c, r, s, k], k fastest.
  const std::int64_t idx = ((red.c * s.r + red.r) * s.s + red.sx) * s.k + k;
  return filters[idx];
}

std::int64_t output_index(const ConvShape& s, const RowIndex& row, std::int64_t k) {
  // O[k, p, q, n], n fastest.
  return ((k * s.p() + row.p) * s.q() + row.q) * s.n + row.n;
}

}  // namespace

void execute_conv(const ConvShape& shape, const ConvTuning& tuning, float alpha,
                  const float* input, const float* filters, float beta, float* output) {
  ISAAC_FAILPOINT("execute.throw");
  const GemmTuning gt = conv_gemm_tuning(tuning);
  const std::int64_t m = shape.npq();   // implicit rows
  const std::int64_t nk = shape.k;      // implicit cols
  const std::int64_t crs = shape.crs();  // reduction depth
  if (m <= 0 || nk <= 0 || crs <= 0) {
    throw std::invalid_argument("execute_conv: empty problem");
  }

  const std::int64_t out_elems = m * nk;
  ThreadPool::global().parallel_for(static_cast<std::size_t>(out_elems),
                                    [&](std::size_t lo, std::size_t hi) {
                                      for (std::size_t i = lo; i < hi; ++i) {
                                        if (beta == 0.0f) {
                                          output[i] = 0.0f;
                                        } else if (beta != 1.0f) {
                                          output[i] *= beta;
                                        }
                                      }
                                    });

  const std::int64_t grid_m = ceil_div(m, gt.ml);
  const std::int64_t grid_n = ceil_div(nk, gt.nl);
  const std::int64_t blocks = grid_m * grid_n * gt.kg;
  const int depth = gt.u * gt.kl;

  std::vector<std::mutex> locks(kNumLocks);

  ThreadPool::global().parallel_for_each(static_cast<std::size_t>(blocks), [&](std::size_t bi) {
    const std::int64_t tn = static_cast<std::int64_t>(bi) % grid_n;
    const std::int64_t tm = (static_cast<std::int64_t>(bi) / grid_n) % grid_m;
    const std::int64_t g = static_cast<std::int64_t>(bi) / (grid_n * grid_m);

    const std::int64_t m0 = tm * gt.ml;
    const std::int64_t n0 = tn * gt.nl;
    const std::int64_t red_eff = ceil_div(crs, gt.kg);
    const std::int64_t red0 = g * red_eff;
    const std::int64_t red1 = std::min(crs, red0 + red_eff);
    if (red0 >= red1) return;

    // Indirection table for this block's row tile: precomputed (n,p,q)
    // decompositions — "scrambling" metadata the real kernel stores once.
    std::vector<RowIndex> rows(static_cast<std::size_t>(gt.ml));
    for (int i = 0; i < gt.ml; ++i) {
      const std::int64_t row = m0 + i;
      rows[static_cast<std::size_t>(i)] =
          row < m ? decompose_row(shape, row) : RowIndex{-1, -1, -1};
    }

    std::vector<float> smem_i(static_cast<std::size_t>(depth) * gt.ml);
    std::vector<float> smem_f(static_cast<std::size_t>(depth) * gt.nl);
    std::vector<float> acc(static_cast<std::size_t>(gt.ml) * gt.nl, 0.0f);

    for (std::int64_t rr = red0; rr < red1; rr += depth) {
      for (int d = 0; d < depth; ++d) {
        const std::int64_t red = rr + d;
        const bool red_ok = red < red1;
        const RedIndex ri = red_ok ? decompose_red(shape, red) : RedIndex{0, 0, 0};
        for (int i = 0; i < gt.ml; ++i) {
          const RowIndex& row = rows[static_cast<std::size_t>(i)];
          smem_i[static_cast<std::size_t>(d) * gt.ml + i] =
              (red_ok && row.n >= 0) ? gather_input(shape, input, row, ri) : 0.0f;
        }
        for (int j = 0; j < gt.nl; ++j) {
          const std::int64_t k = n0 + j;
          smem_f[static_cast<std::size_t>(d) * gt.nl + j] =
              (red_ok && k < nk) ? load_filter(shape, filters, ri, k) : 0.0f;
        }
      }
      for (int d = 0; d < depth; ++d) {
        const float* irow = smem_i.data() + static_cast<std::size_t>(d) * gt.ml;
        const float* frow = smem_f.data() + static_cast<std::size_t>(d) * gt.nl;
        for (int j = 0; j < gt.nl; ++j) {
          const float fv = frow[j];
          if (fv == 0.0f) continue;
          float* acol = acc.data() + static_cast<std::size_t>(j) * gt.ml;
          for (int i = 0; i < gt.ml; ++i) acol[i] += irow[i] * fv;
        }
      }
    }

    const std::size_t lock_idx = static_cast<std::size_t>((tm * 31 + tn) % kNumLocks);
    std::unique_lock<std::mutex> guard(locks[lock_idx], std::defer_lock);
    if (gt.kg > 1) guard.lock();

    for (int j = 0; j < gt.nl; ++j) {
      const std::int64_t k = n0 + j;
      if (k >= nk) continue;
      for (int i = 0; i < gt.ml; ++i) {
        const RowIndex& row = rows[static_cast<std::size_t>(i)];
        if (row.n < 0) continue;
        output[output_index(shape, row, k)] +=
            alpha * acc[static_cast<std::size_t>(j) * gt.ml + i];
      }
    }
  });
}

void reference_conv(const ConvShape& shape, float alpha, const float* input,
                    const float* filters, float beta, float* output) {
  const std::int64_t P = shape.p(), Q = shape.q();
  for (std::int64_t k = 0; k < shape.k; ++k) {
    for (std::int64_t p = 0; p < P; ++p) {
      for (std::int64_t q = 0; q < Q; ++q) {
        for (std::int64_t n = 0; n < shape.n; ++n) {
          double acc = 0.0;
          for (std::int64_t c = 0; c < shape.c; ++c) {
            for (std::int64_t r = 0; r < shape.r; ++r) {
              for (std::int64_t sx = 0; sx < shape.s; ++sx) {
                const std::int64_t hh = p * shape.stride_h + r - shape.pad_h;
                const std::int64_t ww = q * shape.stride_w + sx - shape.pad_w;
                if (hh < 0 || hh >= shape.h || ww < 0 || ww >= shape.w) continue;
                const float iv =
                    input[((c * shape.h + hh) * shape.w + ww) * shape.n + n];
                const float fv = filters[((c * shape.r + r) * shape.s + sx) * shape.k + k];
                acc += static_cast<double>(iv) * fv;
              }
            }
          }
          const std::int64_t oi = ((k * P + p) * Q + q) * shape.n + n;
          output[oi] = alpha * static_cast<float>(acc) + beta * output[oi];
        }
      }
    }
  }
}

}  // namespace isaac::codegen
