#include "codegen/batched_gemm_executor.hpp"

#include <stdexcept>

#include "codegen/gemm_executor.hpp"
#include "common/failpoint.hpp"
#include "common/strings.hpp"

namespace isaac::codegen {

namespace {

void check_strides(const BatchedGemmShape& shape, std::int64_t lda, std::int64_t stride_a,
                   std::int64_t ldb, std::int64_t stride_b, std::int64_t ldc,
                   std::int64_t stride_c) {
  if (shape.batch <= 0) throw std::invalid_argument("batched gemm: batch must be positive");
  if (shape.batch == 1) return;  // strides never dereferenced past batch 0
  const GemmShape& g = shape.gemm;
  const std::int64_t a_cols = g.trans_a ? g.m : g.k;
  const std::int64_t b_cols = g.trans_b ? g.k : g.n;
  if (stride_a < lda * a_cols || stride_b < ldb * b_cols || stride_c < ldc * g.n) {
    throw std::invalid_argument(
        strings::format("batched gemm: stride smaller than one operand footprint "
                        "(%lld/%lld/%lld)",
                        static_cast<long long>(stride_a), static_cast<long long>(stride_b),
                        static_cast<long long>(stride_c)));
  }
}

template <typename T>
void execute_impl(const BatchedGemmShape& shape, const GemmTuning& tuning, T alpha, const T* a,
                  std::int64_t lda, std::int64_t stride_a, const T* b, std::int64_t ldb,
                  std::int64_t stride_b, T beta, T* c, std::int64_t ldc,
                  std::int64_t stride_c) {
  check_strides(shape, lda, stride_a, ldb, stride_b, ldc, stride_c);
  ISAAC_FAILPOINT("execute.throw");
  for (std::int64_t i = 0; i < shape.batch; ++i) {
    execute_gemm(shape.gemm, tuning, alpha, a + i * stride_a, lda, b + i * stride_b, ldb, beta,
                 c + i * stride_c, ldc);
  }
}

}  // namespace

void execute_batched_gemm(const BatchedGemmShape& shape, const GemmTuning& tuning, float alpha,
                          const float* a, std::int64_t lda, std::int64_t stride_a,
                          const float* b, std::int64_t ldb, std::int64_t stride_b, float beta,
                          float* c, std::int64_t ldc, std::int64_t stride_c) {
  execute_impl(shape, tuning, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc, stride_c);
}

void execute_batched_gemm(const BatchedGemmShape& shape, const GemmTuning& tuning, double alpha,
                          const double* a, std::int64_t lda, std::int64_t stride_a,
                          const double* b, std::int64_t ldb, std::int64_t stride_b, double beta,
                          double* c, std::int64_t ldc, std::int64_t stride_c) {
  execute_impl(shape, tuning, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc, stride_c);
}

void reference_batched_gemm(const BatchedGemmShape& shape, float alpha, const float* a,
                            std::int64_t lda, std::int64_t stride_a, const float* b,
                            std::int64_t ldb, std::int64_t stride_b, float beta, float* c,
                            std::int64_t ldc, std::int64_t stride_c) {
  check_strides(shape, lda, stride_a, ldb, stride_b, ldc, stride_c);
  for (std::int64_t i = 0; i < shape.batch; ++i) {
    reference_gemm(shape.gemm, alpha, a + i * stride_a, lda, b + i * stride_b, ldb, beta,
                   c + i * stride_c, ldc);
  }
}

}  // namespace isaac::codegen
