// GEMM kernel parameterization (paper §3.2, Figure 3).
//
// C = A · B with C ∈ R^{M×N}, A ∈ R^{M×K}, B ∈ R^{K×N}, all column-major
// (BLAS convention, matching cuBLAS). trans_a/trans_b select the stored
// layout: when trans_a is set, A is stored K×M and the kernel reads A^T.
//
// Tuning parameters (blue in Figure 3):
//   ms, ns   — per-thread micro-tile of C (MS × NS accumulators)
//   ml, nl   — per-block tile of C (ML × NL)
//   u        — prefetch depth along K per reduction group
//   ks       — unroll grouping inside a thread (ILP shaping)
//   kl       — reduction split across warp groups inside a block
//   kg       — reduction split across the grid (atomics accumulation)
//   vec      — vector width of global loads (1/2/4)
//
// Layout note (why NT is the "easy" case): the block stages A as a k-major
// [U·KL][ML] shared tile and B as [U·KL][NL]. Column-major A ('N') is
// m-contiguous and matches the A tile directly, while B ('N') is k-contiguous
// and must be transposed while being stored to shared memory; symmetric for
// the 'T' cases. LINPACK's (N,T) therefore needs no transposes, DeepBench
// forward (N,N) needs one, and backward (T,N) needs both — exactly the
// paper's §7.3 narrative.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernel_profile.hpp"

namespace isaac::codegen {

struct GemmShape {
  std::int64_t m = 0, n = 0, k = 0;
  gpusim::DataType dtype = gpusim::DataType::F32;
  bool trans_a = false;
  bool trans_b = false;

  double flops() const noexcept { return 2.0 * static_cast<double>(m) * n * k; }
  std::string to_string() const;
  bool operator==(const GemmShape&) const = default;
};

struct GemmTuning {
  int ms = 4, ns = 4;
  int ml = 64, nl = 64;
  int u = 8;
  int ks = 1;
  int kl = 1;
  int kg = 1;
  int vec = 1;
  gpusim::BoundsMode bounds = gpusim::BoundsMode::Predicated;

  int threads_per_block() const noexcept { return (ml / ms) * (nl / ns) * kl; }
  std::string to_string() const;
  bool operator==(const GemmTuning&) const = default;

  /// Candidate values per parameter for samplers and exhaustive search.
  /// All powers of two; ranges follow the paper's §4.2 setup.
  static const std::vector<int>& candidates_ms();
  static const std::vector<int>& candidates_ns();
  static const std::vector<int>& candidates_ml();
  static const std::vector<int>& candidates_nl();
  static const std::vector<int>& candidates_u();
  static const std::vector<int>& candidates_ks();
  static const std::vector<int>& candidates_kl();
  static const std::vector<int>& candidates_kg();
  static const std::vector<int>& candidates_vec();
};

/// Is (shape, tuning) in the legal space X for `dev`? On failure, `why`
/// (optional) receives the violated constraint. Mirrors the paper's
/// distinction between the possible space X̂ (anything the sampler can emit)
/// and the legal space X (compilable *and* runnable).
bool validate(const GemmShape& shape, const GemmTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why = nullptr);

/// Static analysis: lower (shape, tuning) to the KernelProfile the simulator
/// consumes. Callers must validate() first; analyze() throws on illegal
/// configs.
gpusim::KernelProfile analyze(const GemmShape& shape, const GemmTuning& tuning,
                              const gpusim::DeviceDescriptor& dev);

/// Estimated registers per thread (shared by validate/analyze; exposed for
/// tests and the §8.1 analysis bench).
int estimate_registers(const GemmShape& shape, const GemmTuning& tuning);

/// Shared memory bytes per block (main loop staging + K_L reduction buffer).
int smem_bytes(const GemmShape& shape, const GemmTuning& tuning);

}  // namespace isaac::codegen
