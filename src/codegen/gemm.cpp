#include "codegen/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/strings.hpp"
#include "gpusim/occupancy.hpp"

namespace isaac::codegen {

using gpusim::DataType;

std::string GemmShape::to_string() const {
  return strings::format("gemm[%lldx%lldx%lld %s %c%c]", static_cast<long long>(m),
                         static_cast<long long>(n), static_cast<long long>(k),
                         gpusim::dtype_name(dtype), trans_a ? 'T' : 'N', trans_b ? 'T' : 'N');
}

std::string GemmTuning::to_string() const {
  return strings::format("ms%d ns%d ml%d nl%d u%d ks%d kl%d kg%d v%d", ms, ns, ml, nl, u, ks,
                         kl, kg, vec);
}

namespace {
// The possible space X̂ deliberately over-covers what hardware can run: most
// of it is illegal (register file, shared memory, thread-count and alignment
// constraints), which is exactly why the paper needs the §4.1 generative
// model rather than uniform sampling.
const std::vector<int> kPow2_1_64{1, 2, 4, 8, 16, 32, 64};
const std::vector<int> kPow2_8_512{8, 16, 32, 64, 128, 256, 512};
const std::vector<int> kPow2_4_128{4, 8, 16, 32, 64, 128};
const std::vector<int> kPow2_1_32{1, 2, 4, 8, 16, 32};
const std::vector<int> kPow2_1_512{1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
const std::vector<int> kVec{1, 2, 4, 8};
}  // namespace

const std::vector<int>& GemmTuning::candidates_ms() { return kPow2_1_64; }
const std::vector<int>& GemmTuning::candidates_ns() { return kPow2_1_64; }
const std::vector<int>& GemmTuning::candidates_ml() { return kPow2_8_512; }
const std::vector<int>& GemmTuning::candidates_nl() { return kPow2_8_512; }
const std::vector<int>& GemmTuning::candidates_u() { return kPow2_4_128; }
const std::vector<int>& GemmTuning::candidates_ks() { return kPow2_1_32; }
const std::vector<int>& GemmTuning::candidates_kl() { return kPow2_1_32; }
const std::vector<int>& GemmTuning::candidates_kg() { return kPow2_1_512; }
const std::vector<int>& GemmTuning::candidates_vec() { return kVec; }

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int dtype_reg_words(DataType dt) { return dt == DataType::F64 ? 2 : 1; }

}  // namespace

int estimate_registers(const GemmShape& shape, const GemmTuning& tuning) {
  // Accumulators dominate: MS*NS values, double-width for f64, packed in
  // pairs for fp16x2.
  int acc = tuning.ms * tuning.ns * dtype_reg_words(shape.dtype);
  if (shape.dtype == DataType::F16 && tuning.ns % 2 == 0) acc = (acc + 1) / 2;

  // Operand fetch registers for the inner product step (MS + NS) plus the
  // staging registers for the cooperative prefetch.
  const int threads = tuning.threads_per_block();
  const int fetch_elems =
      static_cast<int>(ceil_div(static_cast<std::int64_t>(tuning.ml + tuning.nl) * tuning.u *
                                    tuning.kl,
                                threads));
  int fetch = (tuning.ms + tuning.ns) * dtype_reg_words(shape.dtype) +
              std::max(2, fetch_elems) * dtype_reg_words(shape.dtype);

  // Addressing, loop counters, predicates spill space.
  int addressing = 18;
  if (tuning.kl > 1) addressing += 4;
  if (tuning.kg > 1) addressing += 2;
  if (shape.trans_a) addressing += 2;
  if (!shape.trans_b) addressing += 2;

  return std::max(24, acc + fetch + addressing);
}

int smem_bytes(const GemmShape& shape, const GemmTuning& tuning) {
  const int dsize = static_cast<int>(gpusim::dtype_size(shape.dtype));
  // Double-buffered k-major staging tiles: [U*KL][ML] for A, [U*KL][NL] for B.
  const int staging = (tuning.ml + tuning.nl) * tuning.u * tuning.kl * dsize * 2;
  // K_L reduction epilogue: fp32 partial tile exchanged through shared memory.
  const int epilogue = tuning.kl > 1 ? tuning.ml * tuning.nl * 4 : 0;
  return std::max(staging, epilogue);
}

bool validate(const GemmShape& shape, const GemmTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };

  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) return fail("empty problem");

  for (int v : {tuning.ms, tuning.ns, tuning.ml, tuning.nl, tuning.u, tuning.ks, tuning.kl,
                tuning.kg, tuning.vec}) {
    if (!is_pow2(v)) return fail("parameters must be positive powers of two");
  }

  if (tuning.ml % tuning.ms != 0) return fail("ML must be a multiple of MS");
  if (tuning.nl % tuning.ns != 0) return fail("NL must be a multiple of NS");
  if (tuning.u % tuning.ks != 0) return fail("U must be a multiple of KS");
  // Vectorized loads cap at 128 bits (ld.global.v4.f32 / v8.f16).
  if (tuning.vec * static_cast<int>(gpusim::dtype_size(shape.dtype)) > 16) {
    return fail("vectorized load wider than 128 bits");
  }

  const int threads = tuning.threads_per_block();
  if (threads > dev.max_threads_per_block) {
    return fail(strings::format("block of %d threads exceeds device limit %d", threads,
                                dev.max_threads_per_block));
  }
  // Real ISAAC kernels launch warp-aligned blocks: sub-warp or ragged blocks
  // waste scheduler slots and are rejected as illegal.
  if (threads < dev.warp_size) return fail("block smaller than a warp");
  if (threads % dev.warp_size != 0) return fail("block size not a multiple of the warp size");

  // The cooperative prefetch must divide evenly among the block's threads
  // (each thread loads the same number of elements), and each thread's share
  // must be divisible by the vector width.
  const std::int64_t tile_elems_a =
      static_cast<std::int64_t>(tuning.ml) * tuning.u * tuning.kl;
  const std::int64_t tile_elems_b =
      static_cast<std::int64_t>(tuning.nl) * tuning.u * tuning.kl;
  if (tile_elems_a % threads != 0 || tile_elems_b % threads != 0) {
    return fail("prefetch tile does not divide evenly among threads");
  }
  if ((tile_elems_a / threads) % tuning.vec != 0 ||
      (tile_elems_b / threads) % tuning.vec != 0) {
    return fail("per-thread fetch not divisible by vector width");
  }

  // Fully unrolled inner loop must stay within a sane code-size budget —
  // kernels beyond it blow up compile time and instruction cache (the
  // "compilable" half of the paper's legality definition).
  const std::int64_t unrolled_insts =
      static_cast<std::int64_t>(tuning.u) *
      (static_cast<std::int64_t>(tuning.ms) * tuning.ns + tuning.ms + tuning.ns);
  if (unrolled_insts > 4096) {
    return fail(strings::format("unrolled inner loop of %lld instructions exceeds budget",
                                static_cast<long long>(unrolled_insts)));
  }

  // Reduction splits must leave every group at least one prefetch round.
  if (tuning.kg > shape.k) return fail("KG exceeds K");
  const std::int64_t k_eff = ceil_div(shape.k, tuning.kg);
  if (static_cast<std::int64_t>(tuning.u) * tuning.kl > std::max<std::int64_t>(k_eff, 1)) {
    return fail("U*KL exceeds the per-block reduction depth");
  }

  // Global f16 atomics do not exist on these architectures: a grid-level
  // split cannot accumulate half precision.
  if (tuning.kg > 1 && shape.dtype == DataType::F16) {
    return fail("KG>1 requires global atomics, unavailable for f16");
  }

  const int smem = smem_bytes(shape, tuning);
  if (smem > dev.smem_per_block_bytes) {
    return fail(strings::format("shared memory %d B exceeds block limit %d B", smem,
                                dev.smem_per_block_bytes));
  }

  const int regs = estimate_registers(shape, tuning);
  if (regs > dev.max_registers_per_thread) {
    return fail(strings::format("estimated %d registers exceed limit %d", regs,
                                dev.max_registers_per_thread));
  }

  // Must be schedulable: at least one block per SM.
  const auto occ = gpusim::occupancy(dev, threads, regs, smem);
  if (occ.blocks_per_sm <= 0) {
    return fail(std::string("kernel cannot launch: ") + occ.limiter + " limit");
  }
  return true;
}

gpusim::KernelProfile analyze(const GemmShape& shape, const GemmTuning& tuning,
                              const gpusim::DeviceDescriptor& dev) {
  std::string why;
  if (!validate(shape, tuning, dev, &why)) {
    throw std::invalid_argument("analyze: illegal config: " + why);
  }

  gpusim::KernelProfile p;
  const int dsize = static_cast<int>(gpusim::dtype_size(shape.dtype));
  const int threads = tuning.threads_per_block();

  // Padded bounds handling inflates the effective problem to tile multiples;
  // the extra work is real work on padded data.
  std::int64_t m = shape.m, n = shape.n, k = shape.k;
  const bool padded = tuning.bounds == gpusim::BoundsMode::Padded;
  if (padded) {
    m = ceil_div(m, tuning.ml) * tuning.ml;
    n = ceil_div(n, tuning.nl) * tuning.nl;
    k = ceil_div(k, static_cast<std::int64_t>(tuning.u) * tuning.kl) * tuning.u * tuning.kl;
  }

  const std::int64_t grid_m = ceil_div(m, tuning.ml);
  const std::int64_t grid_n = ceil_div(n, tuning.nl);
  const std::int64_t k_eff = ceil_div(k, tuning.kg);  // per-block reduction depth
  const std::int64_t k_thread = ceil_div(k_eff, tuning.kl);  // per-thread depth
  const std::int64_t rounds = ceil_div(k_eff, static_cast<std::int64_t>(tuning.u) * tuning.kl);

  p.label = shape.to_string() + " / " + tuning.to_string();
  p.grid_blocks = grid_m * grid_n * tuning.kg;
  p.threads_per_block = threads;
  p.regs_per_thread = estimate_registers(shape, tuning);
  p.smem_bytes_per_block = smem_bytes(shape, tuning);
  p.dtype = shape.dtype;
  p.bounds = tuning.bounds;
  p.useful_flops = shape.flops();

  // fp16x2 pairing: two MACs per instruction when NS accumulates in pairs.
  p.uses_fp16x2 = shape.dtype == DataType::F16 && tuning.ns % 2 == 0;

  // ---- per-thread instruction mix ----
  const double mac_count = static_cast<double>(k_thread) * tuning.ms * tuning.ns;
  p.fma_insts = p.uses_fp16x2 ? mac_count / 2.0 : mac_count;

  const double fetch_a = static_cast<double>(tuning.ml) * tuning.u * tuning.kl / threads;
  const double fetch_b = static_cast<double>(tuning.nl) * tuning.u * tuning.kl / threads;
  p.ld_global_insts = static_cast<double>(rounds) * (fetch_a + fetch_b) / tuning.vec;

  // Shared-memory traffic. Staging stores vectorize unless that operand is
  // transposed in flight; operand loads in the inner loop vectorize by the
  // micro-tile evenness.
  const bool transpose_a = shape.trans_a;   // see layout note in gemm.hpp
  const bool transpose_b = !shape.trans_b;
  const double st_a = static_cast<double>(rounds) * fetch_a / (transpose_a ? 1 : tuning.vec);
  const double st_b = static_cast<double>(rounds) * fetch_b / (transpose_b ? 1 : tuning.vec);
  int smem_vec = 1;
  if (tuning.ms % 4 == 0 && tuning.ns % 4 == 0) {
    smem_vec = 4;
  } else if (tuning.ms % 2 == 0 && tuning.ns % 2 == 0) {
    smem_vec = 2;
  }
  p.st_shared_insts = st_a + st_b;
  p.ld_shared_insts =
      static_cast<double>(k_thread) * (tuning.ms + tuning.ns) / smem_vec;
  p.smem_conflict_ways = 1.0 + (transpose_a ? 0.5 : 0.0) + (transpose_b ? 0.5 : 0.0);

  p.bar_syncs = 2.0 * static_cast<double>(rounds);

  // Loop bookkeeping, address updates, predicate recomputation at tile edges.
  p.int_insts = static_cast<double>(rounds) *
                    (10.0 + 2.0 * (fetch_a + fetch_b) / tuning.vec) +
                static_cast<double>(k_thread) * 0.5 + 2.0 * tuning.ms * tuning.ns /
                    std::max(1, smem_vec);

  // Epilogue: K_L reduction through shared memory, then stores or atomics.
  const double out_elems = static_cast<double>(tuning.ms) * tuning.ns;
  if (tuning.kl > 1) {
    p.st_shared_insts += out_elems;
    p.ld_shared_insts += out_elems * (tuning.kl - 1) / tuning.kl;
    p.fma_insts += out_elems * (tuning.kl - 1) / tuning.kl;
    p.bar_syncs += 2.0;
  }
  const double stores = p.uses_fp16x2 ? out_elems / 2.0 : out_elems;
  if (tuning.kg > 1) {
    p.atom_global_insts = stores / tuning.kl;
    p.extra_launches = 1;  // C must be zero-initialized before accumulation
  } else {
    p.st_global_insts = stores / tuning.kl;
  }

  // ---- latency-hiding hints ----
  p.ilp_arith = std::min<double>(tuning.ms * tuning.ns, 16.0) *
                std::min<double>(tuning.ks, 2.0);
  p.mlp_mem = std::max(1.0, (fetch_a + fetch_b) / tuning.vec);
  p.ilp_smem = smem_vec * 2.0;

  // ---- DRAM traffic ----
  const double a_bytes = static_cast<double>(m) * k * dsize;
  const double b_bytes = static_cast<double>(k) * n * dsize;
  p.dram_read_bytes = a_bytes + b_bytes;
  p.requested_read_bytes =
      static_cast<double>(p.grid_blocks) * (tuning.ml + tuning.nl) * k_eff * dsize;

  // Coalescing from the contiguous run length each tile row fetch sees
  // (32-byte DRAM sectors).
  const double contig_a = (transpose_a ? tuning.u * tuning.kl : tuning.ml) * dsize;
  const double contig_b = (transpose_b ? tuning.u * tuning.kl : tuning.nl) * dsize;
  const double eff_a = std::min(1.0, contig_a / 32.0);
  const double eff_b = std::min(1.0, contig_b / 32.0);
  p.coalescing_efficiency =
      (a_bytes * eff_a + b_bytes * eff_b) / std::max(1.0, a_bytes + b_bytes);

  // Wave-level reuse hints: blocks are scheduled n-fastest, then m, then the
  // K_G slice, so co-resident blocks share B column panels and A row panels.
  const auto occ = gpusim::occupancy(dev, threads, p.regs_per_thread, p.smem_bytes_per_block);
  const double omega = std::max(1.0, static_cast<double>(occ.blocks_per_sm) * dev.num_sms);
  const double cols_dist = std::min<double>(static_cast<double>(grid_n), omega);
  const double rows_dist =
      std::min<double>(static_cast<double>(grid_m), std::ceil(omega / static_cast<double>(grid_n)));
  const double slices = std::clamp(
      std::ceil(omega / static_cast<double>(grid_m * grid_n)), 1.0,
      static_cast<double>(tuning.kg));
  p.wave_unique_bytes_hint =
      (rows_dist * tuning.ml + cols_dist * tuning.nl) * static_cast<double>(k_eff) * dsize *
      slices;
  p.slice_working_set_bytes = (rows_dist * tuning.ml + cols_dist * tuning.nl) *
                              tuning.u * tuning.kl * dsize * slices;

  // Writes: one C pass for KG==1; KG atomic passes (read-modify-write) plus
  // the zero-init pass otherwise.
  const double c_bytes = static_cast<double>(m) * n * dsize;
  p.dram_write_bytes = tuning.kg == 1 ? c_bytes : c_bytes * (1.0 + 2.0 * tuning.kg);
  if (padded) {
    // Pad/unpad copies stream A and B in and C out again, in separate passes
    // that cannot overlap the main kernel (read + write each).
    p.extra_stream_bytes = 2.0 * (a_bytes + b_bytes + c_bytes);
    p.extra_launches += 3;
  }

  // ---- boundary handling ----
  const bool has_edges = (shape.m % tuning.ml) || (shape.n % tuning.nl) ||
                         (shape.k % (static_cast<std::int64_t>(tuning.u) * tuning.kl *
                                     tuning.kg));
  if (padded || !has_edges) {
    p.bounds_overhead_factor = 1.0;
  } else if (tuning.bounds == gpusim::BoundsMode::Predicated) {
    p.bounds_overhead_factor = 1.02;  // §8.3: predication is nearly free
  } else {
    p.bounds_overhead_factor = 1.18;  // §8.3: CUDA-C style bounds checks
  }

  return p;
}

}  // namespace isaac::codegen
