#include "codegen/gemm_ptx.hpp"

#include <stdexcept>

#include "common/strings.hpp"
#include "ptx/builder.hpp"

namespace isaac::codegen {

using ptx::Cmp;
using ptx::KernelBuilder;
using ptx::Operand;
using ptx::SReg;
using ptx::Type;

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

Operand imm32(std::int64_t v) { return Operand::make_imm(v, Type::S32); }

}  // namespace

ptx::Kernel generate_gemm_ptx(const GemmShape& shape, const GemmTuning& tuning) {
  if (shape.dtype == gpusim::DataType::F16) {
    throw std::invalid_argument("generate_gemm_ptx: f16 kernels are profile-only");
  }
  if (tuning.ml % tuning.ms != 0 || tuning.nl % tuning.ns != 0) {
    throw std::invalid_argument("generate_gemm_ptx: tile divisibility violated");
  }
  const Type ft = shape.dtype == gpusim::DataType::F64 ? Type::F64 : Type::F32;
  const int ds = static_cast<int>(ptx::type_bytes(ft));
  const int threads = tuning.threads_per_block();
  const int rm = tuning.ml / tuning.ms;  // threads along M
  const int rn = tuning.nl / tuning.ns;  // threads along N
  const int depth = tuning.u * tuning.kl;
  const std::int64_t elems_a = static_cast<std::int64_t>(tuning.ml) * depth;
  const std::int64_t elems_b = static_cast<std::int64_t>(tuning.nl) * depth;
  if (elems_a % threads != 0 || elems_b % threads != 0) {
    throw std::invalid_argument("generate_gemm_ptx: prefetch does not divide among threads");
  }
  const int epa = static_cast<int>(elems_a / threads);
  const int epb = static_cast<int>(elems_b / threads);

  KernelBuilder b(strings::format("isaac_gemm_%s_%c%c_%dx%dx%d_%d_%d_%d",
                                  gpusim::dtype_name(shape.dtype), shape.trans_a ? 't' : 'n',
                                  shape.trans_b ? 't' : 'n', tuning.ml, tuning.nl, tuning.u,
                                  tuning.ms, tuning.ns, tuning.kl));

  const int pA = b.add_param("A");
  const int pB = b.add_param("B");
  const int pC = b.add_param("C");
  const int pM = b.add_param("M", false);
  const int pN = b.add_param("N", false);
  const int pK = b.add_param("K", false);
  const int pLDA = b.add_param("LDA", false);
  const int pLDB = b.add_param("LDB", false);
  const int pLDC = b.add_param("LDC", false);
  const int pKEFF = b.add_param("KEFF", false);

  // Shared staging tiles (k-major) — the epilogue reuses the same space.
  const int smem_a = b.alloc_shared(static_cast<int>(elems_a) * ds);
  const int smem_b_off = b.alloc_shared(static_cast<int>(elems_b) * ds);
  const int smem_red =
      tuning.kl > 1
          ? b.alloc_shared(static_cast<int>(static_cast<std::int64_t>(tuning.ml) * tuning.nl *
                                            ds))
          : 0;

  // ---- prologue: identities -------------------------------------------------
  const Operand baseA = b.ld_param(Type::U64, pA, "A base pointer");
  const Operand baseB = b.ld_param(Type::U64, pB);
  const Operand baseC = b.ld_param(Type::U64, pC);
  const Operand M = b.cvt(Type::S32, b.ld_param(Type::U64, pM));
  const Operand N = b.cvt(Type::S32, b.ld_param(Type::U64, pN));
  const Operand K = b.cvt(Type::S32, b.ld_param(Type::U64, pK));
  const Operand lda = b.cvt(Type::S32, b.ld_param(Type::U64, pLDA));
  const Operand ldb = b.cvt(Type::S32, b.ld_param(Type::U64, pLDB));
  const Operand ldc = b.cvt(Type::S32, b.ld_param(Type::U64, pLDC));
  const Operand keff = b.cvt(Type::S32, b.ld_param(Type::U64, pKEFF));

  const Operand tid = b.special(SReg::TidX);
  const Operand ctam = b.special(SReg::CtaIdX);
  const Operand ctan = b.special(SReg::CtaIdY);
  const Operand ctag = b.special(SReg::CtaIdZ);

  const Operand tx = b.rem(tid, imm32(rm));
  const Operand ty = b.rem(b.div(tid, imm32(rm)), imm32(rn));
  const Operand tz = b.div(tid, imm32(rm * rn));  // K_L group index

  const Operand m_block = b.mul(ctam, imm32(tuning.ml));  // first row of this block
  const Operand n_block = b.mul(ctan, imm32(tuning.nl));

  // Reduction slice [k0, k1).
  const Operand k0 = b.mul(ctag, keff);
  const Operand k1 = b.min(K, b.add(k0, keff));
  b.comment("reduction slice bounds");

  // Accumulators (zero-initialized).
  std::vector<Operand> acc(static_cast<std::size_t>(tuning.ms) * tuning.ns);
  for (auto& r : acc) r = b.mov_fimm(ft, 0.0);

  // Inner-loop shared read bases (depend only on thread identity).
  //   A reads at ((tz*U + d)*ML + tx*MS + i) * ds
  //   B reads at ((tz*U + d)*NL + ty*NS + j) * ds
  const Operand a_inner =
      b.add(b.mul(b.mul(tz, imm32(tuning.u)), imm32(tuning.ml * ds)),
            b.add(b.mul(tx, imm32(tuning.ms * ds)), imm32(smem_a)));
  const Operand b_inner =
      b.add(b.mul(b.mul(tz, imm32(tuning.u)), imm32(tuning.nl * ds)),
            b.add(b.mul(ty, imm32(tuning.ns * ds)), imm32(smem_b_off)));

  // Loop cursor.
  const Operand kk = b.new_reg(Type::S32);
  b.mov(kk, k0);

  // Empty-slice guard (possible when K % KG != 0): skip the whole loop.
  {
    const Operand enter = b.setp(Cmp::Lt, kk, k1);
    b.bra("EPILOGUE", enter.reg, /*negate=*/true);
  }

  b.label("LOOP_K");

  // ---- cooperative prefetch -------------------------------------------------
  // Each thread stages epa elements of A and epb of B; out-of-range lanes
  // stage zeros (mov 0 + predicated load), the predication trick of §8.3.
  auto stage = [&](bool is_a) {
    const int per_thread = is_a ? epa : epb;
    const int tile_w = is_a ? tuning.ml : tuning.nl;  // contiguous dim of smem tile
    const int smem_base = is_a ? smem_a : smem_b_off;
    const Operand& base = is_a ? baseA : baseB;
    const Operand& ld = is_a ? lda : ldb;
    const Operand& edge = is_a ? M : N;      // bound on the non-K dim
    const Operand& origin = is_a ? m_block : n_block;
    const bool transposed_layout = is_a ? shape.trans_a : shape.trans_b;

    for (int e = 0; e < per_thread; ++e) {
      // idx enumerates the tile in w-major order: w = idx % tile_w (position
      // along ML or NL), d = idx / tile_w (position along the staged depth).
      const Operand idx = b.add(tid, imm32(e * threads));
      const Operand w = b.rem(idx, imm32(tile_w));
      const Operand d = b.div(idx, imm32(tile_w));
      const Operand gw = b.add(origin, w);   // global m (or n)
      const Operand gk = b.add(kk, d);       // global k

      // pred = (gw < edge) && (gk < k1)
      const Operand p = b.new_pred();
      b.mov(p, Operand::make_imm(0, Type::Pred));
      const Operand p_w = b.setp(Cmp::Lt, gw, edge);
      {
        // @p_w setp: p = gk < k1
        const Operand tmp = b.setp(Cmp::Lt, gk, k1);
        // combine via predicated copy: @p_w mov p, tmp
        b.mov(p, tmp);
        b.predicate_last(p_w);
      }

      // Global element index, column-major with the op() layout:
      //   A 'N': (gm, gk) at gm + gk*LDA      A 'T': stored K×M: gk + gm*LDA
      //   B 'N': (gk, gn) at gk + gn*LDB      B 'T': stored N×K: gn + gk*LDB
      Operand elem;
      if (is_a) {
        elem = transposed_layout ? b.mad(gw, ld, gk) : b.mad(gk, ld, gw);
      } else {
        elem = transposed_layout ? b.mad(gk, ld, gw) : b.mad(gw, ld, gk);
      }
      const Operand byte = b.mul(b.cvt_u64(elem), Operand::make_imm(ds, Type::U64));
      const Operand addr = b.add(base, byte);

      // Zero-filled predicated load (the §8.3 predication idiom). The load
      // writes v in place: predicated-off lanes keep the zero.
      const Operand v = b.new_reg(ft);
      b.mov(v, Operand::make_fimm(0.0, ft));
      b.ld_global_into(v, addr, 0, p.reg);

      // Store k-major: smem[(d*tile_w + w) * ds].
      const Operand soff =
          b.add(b.mad(d, imm32(tile_w * ds), b.mul(w, imm32(ds))), imm32(smem_base));
      b.st_shared(ft, soff, v);
    }
  };
  stage(/*is_a=*/true);
  stage(/*is_a=*/false);
  b.bar_sync();

  // ---- fully unrolled inner product ----------------------------------------
  // Each K_L group consumes its own U-deep slice of the staged tile.
  for (int d = 0; d < tuning.u; ++d) {
    std::vector<Operand> ra(static_cast<std::size_t>(tuning.ms));
    std::vector<Operand> rb(static_cast<std::size_t>(tuning.ns));
    for (int i = 0; i < tuning.ms; ++i) {
      ra[static_cast<std::size_t>(i)] =
          b.ld_shared(ft, a_inner, (static_cast<std::int64_t>(d) * tuning.ml + i) * ds);
    }
    for (int j = 0; j < tuning.ns; ++j) {
      rb[static_cast<std::size_t>(j)] =
          b.ld_shared(ft, b_inner, (static_cast<std::int64_t>(d) * tuning.nl + j) * ds);
    }
    for (int j = 0; j < tuning.ns; ++j) {
      for (int i = 0; i < tuning.ms; ++i) {
        Operand& dst = acc[static_cast<std::size_t>(j) * tuning.ms + i];
        b.fma(dst, ra[static_cast<std::size_t>(i)], rb[static_cast<std::size_t>(j)], dst);
      }
    }
  }
  b.bar_sync();

  // ---- loop back-edge -------------------------------------------------------
  b.mov(kk, b.add(kk, imm32(depth)));
  {
    const Operand more = b.setp(Cmp::Lt, kk, k1);
    b.bra("LOOP_K", more.reg);
  }

  b.label("EPILOGUE");

  // ---- K_L shared-memory reduction ------------------------------------------
  // Threads with the same (tx, ty) but different tz hold partial sums of the
  // same C micro-tile; fold them into tz == 0 one group at a time.
  Operand store_pred = Operand::none();
  if (tuning.kl > 1) {
    // Tile-local slot of this thread's micro-tile inside the reduction buffer:
    // ((ty*rm + tx) * MS*NS) * ds.
    const Operand slot =
        b.add(b.mul(b.mad(ty, imm32(rm), tx), imm32(tuning.ms * tuning.ns * ds)),
              imm32(smem_red));
    const Operand is_zero = b.setp(Cmp::Eq, tz, imm32(0));
    for (int g = 1; g < tuning.kl; ++g) {
      const Operand is_g = b.setp(Cmp::Eq, tz, imm32(g));
      for (int x = 0; x < tuning.ms * tuning.ns; ++x) {
        b.st_shared(ft, slot, acc[static_cast<std::size_t>(x)],
                    static_cast<std::int64_t>(x) * ds);
        b.predicate_last(is_g);
      }
      b.bar_sync();
      for (int x = 0; x < tuning.ms * tuning.ns; ++x) {
        const Operand part = b.new_reg(ft);
        b.mov(part, Operand::make_fimm(0.0, ft));
        b.ld_shared_into(part, slot, static_cast<std::int64_t>(x) * ds, is_zero.reg);
        Operand& dst = acc[static_cast<std::size_t>(x)];
        const Operand one = b.mov_fimm(ft, 1.0);
        b.fma(dst, part, one, dst);
      }
      b.bar_sync();
    }
    store_pred = is_zero;
  }

  // ---- store / atomic accumulate --------------------------------------------
  for (int j = 0; j < tuning.ns; ++j) {
    for (int i = 0; i < tuning.ms; ++i) {
      // m = m_block + tx*MS + i ; n = n_block + ty*NS + j
      const Operand m = b.add(m_block, b.mad(tx, imm32(tuning.ms), imm32(i)));
      const Operand n = b.add(n_block, b.mad(ty, imm32(tuning.ns), imm32(j)));
      const Operand p = b.new_pred();
      b.mov(p, Operand::make_imm(0, Type::Pred));
      const Operand pm = b.setp(Cmp::Lt, m, M);
      {
        const Operand pn = b.setp(Cmp::Lt, n, N);
        b.mov(p, pn);
        b.predicate_last(pm);
      }
      Operand final_pred = p;
      if (tuning.kl > 1) {
        const Operand pz = b.new_pred();
        b.mov(pz, Operand::make_imm(0, Type::Pred));
        b.mov(pz, store_pred);
        b.predicate_last(p);
        final_pred = pz;
      }
      const Operand elem = b.mad(n, ldc, m);
      const Operand byte = b.mul(b.cvt_u64(elem), Operand::make_imm(ds, Type::U64));
      const Operand addr = b.add(baseC, byte);
      const Operand& value = acc[static_cast<std::size_t>(j) * tuning.ms + i];
      if (tuning.kg > 1) {
        b.atom_add(ft, addr, value, 0, final_pred.reg);
      } else {
        b.st_global(ft, addr, value, 0, final_pred.reg);
      }
    }
  }

  return b.take();
}

ptx::LaunchDims gemm_launch_dims(const GemmShape& shape, const GemmTuning& tuning) {
  ptx::LaunchDims dims;
  dims.grid_x = static_cast<int>(ceil_div(shape.m, tuning.ml));
  dims.grid_y = static_cast<int>(ceil_div(shape.n, tuning.nl));
  dims.grid_z = tuning.kg;
  dims.block_x = tuning.threads_per_block();
  return dims;
}

std::vector<std::uint64_t> gemm_params(const GemmShape& shape, const GemmTuning& tuning,
                                       std::uint64_t a_addr, std::uint64_t b_addr,
                                       std::uint64_t c_addr) {
  const std::int64_t lda = shape.trans_a ? shape.k : shape.m;
  const std::int64_t ldb = shape.trans_b ? shape.n : shape.k;
  const std::int64_t keff = ceil_div(shape.k, tuning.kg);
  return {a_addr,
          b_addr,
          c_addr,
          static_cast<std::uint64_t>(shape.m),
          static_cast<std::uint64_t>(shape.n),
          static_cast<std::uint64_t>(shape.k),
          static_cast<std::uint64_t>(lda),
          static_cast<std::uint64_t>(ldb),
          static_cast<std::uint64_t>(shape.m),
          static_cast<std::uint64_t>(keff)};
}

}  // namespace isaac::codegen
