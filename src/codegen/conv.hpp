// Multi-channel convolution (paper §3.3).
//
//   O[k, p, q, n] = sum_{c, r, s} I[c, p·stride+r-pad, q·stride+s-pad, n] * F[c, r, s, k]
//
// with tensor layouts exactly as the paper defines them:
//   O ∈ R^{K×P×Q×N}, I ∈ R^{C×H×W×N}, F ∈ R^{C×R×S×K}   (last index fastest)
//
// The kernel treats the (N,P,Q,K,C,R,S) convolution as an *implicit* matrix
// multiplication of shape (NPQ, K, CRS): tiles of I are gathered ("scrambled
// while being stored to shared memory") through a precomputed indirection
// table, so the inner loop is the same MS·NS·U unrolled FMA stream as GEMM.
// Tiling spans five dimensions (K, P, Q, N + the C reduction) instead of
// three; the reduction along C·R·S splits with CS/CL/CG exactly like K in
// GEMM. Analysis therefore lowers to the GEMM analyzer on the equivalent
// shape, with conv-specific costs added (indirection loads, gather
// coalescing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/gemm.hpp"

namespace isaac::codegen {

struct ConvShape {
  std::int64_t n = 1;   // batch
  std::int64_t c = 1;   // input channels
  std::int64_t h = 1, w = 1;  // input spatial dims
  std::int64_t k = 1;   // output channels
  std::int64_t r = 1, s = 1;  // filter spatial dims
  std::int64_t pad_h = 0, pad_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  gpusim::DataType dtype = gpusim::DataType::F32;

  std::int64_t p() const noexcept { return (h + 2 * pad_h - r) / stride_h + 1; }
  std::int64_t q() const noexcept { return (w + 2 * pad_w - s) / stride_w + 1; }
  std::int64_t npq() const noexcept { return n * p() * q(); }
  std::int64_t crs() const noexcept { return c * r * s; }
  double flops() const noexcept {
    return 2.0 * static_cast<double>(npq()) * static_cast<double>(k) *
           static_cast<double>(crs());
  }
  std::string to_string() const;

  /// Construct from the paper's Table 5 row format (N,P,Q,K,C,R,S) assuming
  /// stride 1 and no padding, so H = P + R - 1 and W = Q + S - 1.
  static ConvShape from_npq(std::int64_t n, std::int64_t p, std::int64_t q, std::int64_t k,
                            std::int64_t c, std::int64_t r, std::int64_t s,
                            gpusim::DataType dtype = gpusim::DataType::F32);
};

/// Tuning parameters: per-thread tile (tk×tp×tq×tn of O), per-block tile
/// (bk×bp×bq×bn), prefetch depth u along C·R·S, and the three-way reduction
/// split cs/cl/cg of §3.3.
struct ConvTuning {
  int tk = 4, tp = 1, tq = 1, tn = 2;
  int bk = 32, bp = 2, bq = 2, bn = 8;
  int u = 8;
  int cs = 1, cl = 1, cg = 1;
  int vec = 1;
  gpusim::BoundsMode bounds = gpusim::BoundsMode::Predicated;

  int threads_per_block() const noexcept {
    return (bk / tk) * (bp / tp) * (bq / tq) * (bn / tn) * cl;
  }
  std::string to_string() const;
  bool operator==(const ConvTuning&) const = default;

  static const std::vector<int>& candidates_tk();
  static const std::vector<int>& candidates_tp();
  static const std::vector<int>& candidates_tq();
  static const std::vector<int>& candidates_tn();
  static const std::vector<int>& candidates_bk();
  static const std::vector<int>& candidates_bp();
  static const std::vector<int>& candidates_bq();
  static const std::vector<int>& candidates_bn();
  static const std::vector<int>& candidates_u();
  static const std::vector<int>& candidates_cl();
  static const std::vector<int>& candidates_cg();
};

/// The implicit-GEMM equivalent of (shape, tuning): rows = NPQ tile, cols = K
/// tile, reduction = CRS. Used by analysis and by the runtime feature vector.
GemmShape conv_gemm_shape(const ConvShape& shape);
GemmTuning conv_gemm_tuning(const ConvTuning& tuning);

bool validate(const ConvShape& shape, const ConvTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why = nullptr);

gpusim::KernelProfile analyze(const ConvShape& shape, const ConvTuning& tuning,
                              const gpusim::DeviceDescriptor& dev);

}  // namespace isaac::codegen
