#include "codegen/batched_gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strings.hpp"

namespace isaac::codegen {

GemmShape BatchedGemmShape::equivalent_gemm() const noexcept {
  GemmShape s = gemm;
  s.n = gemm.n * std::max<std::int64_t>(batch, 1);
  return s;
}

std::string BatchedGemmShape::to_string() const {
  return strings::format("bgemm[%lldx %s]", static_cast<long long>(batch),
                         gemm.to_string().c_str());
}

bool validate(const BatchedGemmShape& shape, const GemmTuning& tuning,
              const gpusim::DeviceDescriptor& dev, std::string* why) {
  if (shape.batch <= 0) {
    if (why) *why = "batch must be positive";
    return false;
  }
  if (tuning.kg != 1) {
    if (why) *why = "batched GEMM requires KG == 1 (no grid-level reduction split)";
    return false;
  }
  return validate(shape.gemm, tuning, dev, why);
}

gpusim::KernelProfile analyze(const BatchedGemmShape& shape, const GemmTuning& tuning,
                              const gpusim::DeviceDescriptor& dev) {
  std::string why;
  if (!validate(shape, tuning, dev, &why)) {
    throw std::invalid_argument("analyze: illegal batched config: " + why);
  }

  gpusim::KernelProfile p = analyze(shape.gemm, tuning, dev);
  const double b = static_cast<double>(shape.batch);
  p.label = shape.to_string() + " / " + tuning.to_string();
  p.grid_blocks *= shape.batch;
  p.useful_flops = shape.flops();
  // Per-launch traffic scales with the batch; co-residency reuse hints stay
  // per-batch (blocks of one batch share panels, cross-batch blocks share
  // nothing), which leaves the L2 model conservative for tiny batch problems.
  p.dram_read_bytes *= b;
  p.requested_read_bytes *= b;
  p.dram_write_bytes *= b;
  p.extra_stream_bytes *= b;
  return p;
}

}  // namespace isaac::codegen
