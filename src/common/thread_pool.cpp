#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  std::uint64_t enqueue_us = 0;
  if (telemetry::enabled()) {
    ISAAC_TM_COUNT("pool.submitted");
    static telemetry::Gauge& g_size = telemetry::gauge("pool.size");
    g_size.set(static_cast<std::int64_t>(size()));
    enqueue_us = telemetry::now_us();
  }
  {
    sync::MutexLock lock(mutex_);
    queue_.push(Task{std::move(task), enqueue_us});
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    Task task;
    {
      sync::MutexLock lock(mutex_);
      // Explicit predicate loop: the lambda overload of wait() would hide the
      // guarded stop_/queue_ reads from the thread-safety analysis.
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (task.enqueue_us) {
      ISAAC_TM_RECORD("pool.queue_delay_us", telemetry::now_us() - task.enqueue_us);
    }
    try {
      task.fn();
    } catch (...) {
      // A task that throws across the pool boundary has nowhere to deliver
      // its exception — without this catch the unwind would std::terminate
      // the whole process. parallel_for routes errors through its own
      // exception_ptr channel; for bare submit() tasks, count and drop.
      ISAAC_TM_COUNT("pool.task_exceptions");
    }
  }
}

namespace {

/// Shared between the caller and any helper tasks still queued in the pool.
/// Helpers hold a shared_ptr, so a task that wakes up after the caller has
/// already collected the results finds the state alive (it simply sees all
/// chunks claimed and exits).
struct ParallelForState {
  std::size_t n = 0;
  std::size_t chunk = 0;
  std::size_t chunks = 0;
  std::function<void(std::size_t, std::size_t)> fn;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  sync::Mutex done_mutex{lock_rank::Rank::leaf};
  sync::CondVar done_cv;
  sync::Mutex error_mutex{lock_rank::Rank::leaf};
  std::exception_ptr first_error ISAAC_GUARDED_BY(error_mutex);
  std::size_t first_error_chunk ISAAC_GUARDED_BY(error_mutex) = 0;

  void run_chunks() {
    while (true) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) break;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        fn(begin, end);
      } catch (...) {
        // First error *by index order* wins, not by wall-clock race: the
        // caller sees the same exception no matter how chunks interleave.
        sync::MutexLock lock(error_mutex);
        if (!first_error || c < first_error_chunk) {
          first_error = std::current_exception();
          first_error_chunk = c;
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        sync::MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  ISAAC_TM_COUNT("pool.parallel_for");
  // Oversubscribe chunks 4x so uneven work (e.g. predicated edge blocks in the
  // functional executors) balances across workers.
  const std::size_t want_chunks = std::max<std::size_t>(1, size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (n + want_chunks - 1) / want_chunks);
  const std::size_t chunks = (n + chunk - 1) / chunk;

  if (chunks == 1) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->chunk = chunk;
  state->chunks = chunks;
  state->fn = fn;

  // Hand one task per worker; the calling thread also drains chunks so the
  // pool cannot deadlock when parallel_for is called from inside a task.
  const std::size_t helpers = std::min(chunks - 1, size());
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state] { state->run_chunks(); });
  }
  state->run_chunks();

  {
    sync::MutexLock lock(state->done_mutex);
    while (state->done.load(std::memory_order_acquire) != state->chunks) {
      state->done_cv.wait(state->done_mutex);
    }
  }
  // first_error is guarded: a helper that lost the done-count race may still
  // be inside its catch block, so read under the lock (finding from the
  // annotation pass — the old code read it bare).
  std::exception_ptr err;
  {
    sync::MutexLock lock(state->error_mutex);
    err = state->first_error;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ISAAC_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace isaac
