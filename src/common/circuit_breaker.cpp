#include "common/circuit_breaker.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"

namespace isaac {

namespace {

void count_transition(const char* event, const std::string& name) {
  if (!telemetry::enabled()) return;
  telemetry::counter(event).add(1);
  if (!name.empty()) telemetry::counter(std::string(event) + "." + name).add(1);
}

}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, std::string name)
    : config_(config), name_(std::move(name)) {
  if (config_.failure_threshold == 0) config_.failure_threshold = 1;
  if (config_.cooldown_ms < 0.0) config_.cooldown_ms = 0.0;
}

std::uint64_t CircuitBreaker::now_us() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void CircuitBreaker::open_locked(std::uint64_t now) {
  state_ = State::open;
  opened_at_us_ = now;
  trial_inflight_ = false;
  ++opens_;
  count_transition("breaker.opened", name_);
  ISAAC_LOG_WARN() << "circuit breaker" << (name_.empty() ? "" : " ") << name_ << " opened after "
                   << failures_ << " consecutive failures";
}

bool CircuitBreaker::allow_request() {
  sync::MutexLock lock(mutex_);
  switch (state_) {
    case State::closed:
      return true;
    case State::open: {
      const std::uint64_t now = now_us();
      if (now - opened_at_us_ < static_cast<std::uint64_t>(config_.cooldown_ms * 1000.0)) {
        return false;
      }
      // Cooldown over: this caller becomes the half-open trial.
      state_ = State::half_open;
      trial_inflight_ = true;
      count_transition("breaker.half_open", name_);
      return true;
    }
    case State::half_open:
      // One trial at a time; everyone else keeps degrading until it reports.
      if (trial_inflight_) return false;
      trial_inflight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::record_success() {
  sync::MutexLock lock(mutex_);
  failures_ = 0;
  trial_inflight_ = false;
  if (state_ != State::closed) {
    state_ = State::closed;
    count_transition("breaker.closed", name_);
    ISAAC_LOG_INFO() << "circuit breaker" << (name_.empty() ? "" : " ") << name_
                     << " closed (trial succeeded)";
  }
}

void CircuitBreaker::record_failure() {
  sync::MutexLock lock(mutex_);
  ++failures_;
  switch (state_) {
    case State::closed:
      if (failures_ >= config_.failure_threshold) open_locked(now_us());
      break;
    case State::half_open:
      // The trial failed: back to open with a fresh cooldown.
      open_locked(now_us());
      break;
    case State::open:
      // A straggling admitted request (from before the trip) failed; the
      // breaker is already open, just refresh nothing.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  sync::MutexLock lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::opens() const {
  sync::MutexLock lock(mutex_);
  return opens_;
}

std::size_t CircuitBreaker::consecutive_failures() const {
  sync::MutexLock lock(mutex_);
  return failures_;
}

}  // namespace isaac
