// Clang thread-safety capability annotations + annotated mutex wrappers.
//
// Two layers (DESIGN.md, "Static analysis & lock discipline"):
//
//  1. The ISAAC_* attribute macros wrap Clang's thread-safety-analysis
//     attributes (guarded_by, requires_capability, acquire/release, ...).
//     Under Clang with -Wthread-safety the compiler proves, per translation
//     unit, that every ISAAC_GUARDED_BY member is only touched while its
//     capability is held. Under any other compiler (the tier-1 GCC build)
//     they expand to nothing.
//
//  2. sync::Mutex / sync::SharedMutex / the RAII lock types are the
//     *annotated* std::mutex / std::shared_mutex: the analysis does not
//     understand std::lock_guard over a plain std::mutex, so every named
//     mutex in the runtime is one of these wrappers, locked through
//     sync::MutexLock / ReaderMutexLock / WriterMutexLock. The wrappers also
//     carry the mutex's lock_rank::Rank and (in checking builds, see
//     lock_rank.hpp) feed the runtime acquisition-order detector — one
//     declaration buys both analyses.
//
// Condition variables: sync::CondVar::wait(mu) requires `mu` held and keeps
// the capability held across the wait from the analysis's point of view
// (std::condition_variable re-acquires before returning). Use the explicit
// `while (!predicate) cv.wait(mu);` form — the predicate-lambda overload of
// std::condition_variable::wait hides the guarded reads inside an unanalyzed
// closure, which is exactly the blind spot this header exists to close.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ISAAC_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef ISAAC_THREAD_ANNOTATION__
#define ISAAC_THREAD_ANNOTATION__(x)  // not Clang: annotations compile away
#endif

#define ISAAC_CAPABILITY(x) ISAAC_THREAD_ANNOTATION__(capability(x))
#define ISAAC_SCOPED_CAPABILITY ISAAC_THREAD_ANNOTATION__(scoped_lockable)
#define ISAAC_GUARDED_BY(x) ISAAC_THREAD_ANNOTATION__(guarded_by(x))
#define ISAAC_PT_GUARDED_BY(x) ISAAC_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ISAAC_ACQUIRED_BEFORE(...) ISAAC_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ISAAC_ACQUIRED_AFTER(...) ISAAC_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define ISAAC_REQUIRES(...) ISAAC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define ISAAC_REQUIRES_SHARED(...) \
  ISAAC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ISAAC_ACQUIRE(...) ISAAC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ISAAC_ACQUIRE_SHARED(...) \
  ISAAC_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define ISAAC_RELEASE(...) ISAAC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define ISAAC_RELEASE_SHARED(...) \
  ISAAC_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define ISAAC_RELEASE_GENERIC(...) \
  ISAAC_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define ISAAC_TRY_ACQUIRE(...) ISAAC_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define ISAAC_EXCLUDES(...) ISAAC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ISAAC_RETURN_CAPABILITY(x) ISAAC_THREAD_ANNOTATION__(lock_returned(x))
#define ISAAC_NO_THREAD_SAFETY_ANALYSIS ISAAC_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace isaac::sync {

/// Annotated std::mutex carrying a lock rank. Declare with the rank from the
/// DESIGN.md table: `sync::Mutex mu{lock_rank::Rank::inflight};`.
class ISAAC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(lock_rank::Rank rank) noexcept : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ISAAC_ACQUIRE() {
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_);
#endif
    mu_.lock();
  }

  void unlock() ISAAC_RELEASE() {
    mu_.unlock();
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_release(rank_);
#endif
  }

  bool try_lock() ISAAC_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_try_acquire(rank_);
#endif
    return true;
  }

  lock_rank::Rank rank() const noexcept { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  lock_rank::Rank rank_ = lock_rank::Rank::leaf;
};

/// Annotated std::shared_mutex (the profile-cache shards, the failpoint
/// registry). Shared acquisitions rank-check too: a reader can block on a
/// writer, so shared holds participate in deadlock cycles all the same.
class ISAAC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(lock_rank::Rank rank) noexcept : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ISAAC_ACQUIRE() {
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_);
#endif
    mu_.lock();
  }

  void unlock() ISAAC_RELEASE() {
    mu_.unlock();
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_release(rank_);
#endif
  }

  void lock_shared() ISAAC_ACQUIRE_SHARED() {
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_acquire(rank_);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() ISAAC_RELEASE_SHARED() {
    mu_.unlock_shared();
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_release(rank_);
#endif
  }

  lock_rank::Rank rank() const noexcept { return rank_; }

 private:
  std::shared_mutex mu_;
  lock_rank::Rank rank_ = lock_rank::Rank::leaf;
};

/// std::lock_guard over sync::Mutex, visible to the analysis.
class ISAAC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ISAAC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ISAAC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Shared (reader) scope over sync::SharedMutex.
class ISAAC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ISAAC_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() ISAAC_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Exclusive (writer) scope over sync::SharedMutex.
class ISAAC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ISAAC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterMutexLock() ISAAC_RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over sync::Mutex. wait() requires the capability and
/// holds it (from the analysis's view) across the call; the rank detector is
/// told the truth — the mutex leaves the held stack for the wait's duration.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) ISAAC_REQUIRES(mu) {
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_wait_release(mu.rank_);
#endif
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // the native mutex stays locked; ownership returns to mu
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_wait_reacquire(mu.rank_);
#endif
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      ISAAC_REQUIRES(mu) {
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_wait_release(mu.rank_);
#endif
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(ul, timeout);
    ul.release();
#if ISAAC_LOCK_RANK_CHECKS
    lock_rank::on_wait_reacquire(mu.rank_);
#endif
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace isaac::sync
