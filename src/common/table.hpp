// Console table / CSV writer used by every bench harness.
//
// Benches print the paper's rows alongside measured values; Table renders an
// aligned ASCII table to stdout and can also dump CSV for post-processing.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace isaac {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; it is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Aligned ASCII rendering with a separator under the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes fields containing commas/quotes/newlines).
  void write_csv(std::ostream& os) const;

  static std::string fmt_double(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace isaac
