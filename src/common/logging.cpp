#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace isaac::log {

namespace {

std::atomic<Level> g_threshold{Level::Warn};
std::mutex g_write_mutex;

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::Debug:
      return "DEBUG";
    case Level::Info:
      return "INFO ";
    case Level::Warn:
      return "WARN ";
    case Level::Error:
      return "ERROR";
    default:
      return "?????";
  }
}

// Honor ISAAC_LOG on first use so benches/tests can be made chatty without
// code changes.
struct EnvInit {
  EnvInit() {
    if (const char* env = std::getenv("ISAAC_LOG")) {
      set_threshold_from_string(env);
    }
  }
};

}  // namespace

Level threshold() noexcept {
  static EnvInit init;
  return g_threshold.load(std::memory_order_relaxed);
}

void set_threshold(Level lvl) noexcept {
  g_threshold.store(lvl, std::memory_order_relaxed);
}

bool set_threshold_from_string(const std::string& name) noexcept {
  const std::string s = strings::to_lower(name);
  if (s == "debug") {
    set_threshold(Level::Debug);
  } else if (s == "info") {
    set_threshold(Level::Info);
  } else if (s == "warn" || s == "warning") {
    set_threshold(Level::Warn);
  } else if (s == "error") {
    set_threshold(Level::Error);
  } else if (s == "off" || s == "none") {
    set_threshold(Level::Off);
  } else {
    return false;
  }
  return true;
}

void write(Level lvl, const std::string& msg) {
  if (!enabled(lvl)) return;
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[isaac %s] %s\n", tag(lvl), msg.c_str());
}

}  // namespace isaac::log
