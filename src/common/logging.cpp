#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"
#include "common/thread_annotations.hpp"

namespace isaac::log {

namespace {

std::atomic<Level> g_threshold{Level::Warn};
sync::Mutex g_write_mutex{lock_rank::Rank::logging};

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::Debug:
      return "DEBUG";
    case Level::Info:
      return "INFO ";
    case Level::Warn:
      return "WARN ";
    case Level::Error:
      return "ERROR";
    default:
      return "?????";
  }
}

// Honor ISAAC_LOG once, at library initialization (the namespace-scope
// initializer below) — not only when a bench opts in or a first message is
// emitted — so examples and tests get the env-configured verbosity from
// their very first statement. threshold() keeps a lazy re-check for callers
// that log before this TU's static initializers have run.
struct EnvInit {
  EnvInit() { init_from_env(); }
};

const EnvInit g_env_init_at_load;

}  // namespace

void init_from_env() noexcept {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("ISAAC_LOG")) {
      set_threshold_from_string(env);
    }
  });
}

Level threshold() noexcept {
  static EnvInit init;
  return g_threshold.load(std::memory_order_relaxed);
}

void set_threshold(Level lvl) noexcept {
  g_threshold.store(lvl, std::memory_order_relaxed);
}

bool set_threshold_from_string(const std::string& name) noexcept {
  const std::string s = strings::to_lower(name);
  if (s == "debug") {
    set_threshold(Level::Debug);
  } else if (s == "info") {
    set_threshold(Level::Info);
  } else if (s == "warn" || s == "warning") {
    set_threshold(Level::Warn);
  } else if (s == "error") {
    set_threshold(Level::Error);
  } else if (s == "off" || s == "none") {
    set_threshold(Level::Off);
  } else {
    return false;
  }
  return true;
}

void write(Level lvl, const std::string& msg) {
  if (!enabled(lvl)) return;
  sync::MutexLock lock(g_write_mutex);
  std::fprintf(stderr, "[isaac %s] %s\n", tag(lvl), msg.c_str());
}

}  // namespace isaac::log
