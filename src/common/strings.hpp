// Small string helpers shared across modules (no locale, ASCII only).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace isaac::strings {

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Split on a single delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1234567" -> "1,234,567" (for human-readable bench output).
std::string with_commas(long long value);

}  // namespace isaac::strings
