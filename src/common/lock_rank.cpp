#include "common/lock_rank.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace isaac::lock_rank {

namespace {

// Deepest legal nesting today is 4 (breaker_map -> breaker -> telemetry ->
// logging class of chains); 32 leaves room and keeps the thread-local small.
constexpr std::size_t kMaxHeld = 32;

thread_local Rank t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

std::atomic<ViolationHandler> g_handler{nullptr};

void append(char* buf, std::size_t cap, std::size_t& len, const char* s) {
  while (*s && len + 1 < cap) buf[len++] = *s++;
  buf[len] = '\0';
}

void report_violation(Rank acquiring) {
  // Build the message with no allocation: the default path is about to
  // abort, and a heap in an unknown state must not stop the diagnosis.
  char msg[512];
  std::size_t len = 0;
  append(msg, sizeof msg, len, "lock-rank violation: blocking acquisition of '");
  append(msg, sizeof msg, len, name(acquiring));
  append(msg, sizeof msg, len, "' while holding [");
  for (std::size_t i = 0; i < t_depth && i < kMaxHeld; ++i) {
    if (i) append(msg, sizeof msg, len, " > ");
    append(msg, sizeof msg, len, name(t_held[i]));
  }
  append(msg, sizeof msg, len,
         "] (outer > inner; acquisitions must descend strictly)");

  if (ViolationHandler handler = g_handler.load(std::memory_order_acquire)) {
    handler(msg);
    return;
  }
  std::fprintf(stderr, "[isaac lock-rank] %s\n", msg);
  std::abort();
}

}  // namespace

const char* name(Rank r) noexcept {
  switch (r) {
    case Rank::none: return "none";
    case Rank::leaf: return "leaf";
    case Rank::logging: return "logging";
    case Rank::telemetry_trace: return "telemetry_trace";
    case Rank::telemetry_registry: return "telemetry_registry";
    case Rank::telemetry_flush: return "telemetry_flush";
    case Rank::failpoint_registry: return "failpoint_registry";
    case Rank::pool: return "pool";
    case Rank::cache_shard: return "cache_shard";
    case Rank::skeleton: return "skeleton";
    case Rank::drift: return "drift";
    case Rank::obslog: return "obslog";
    case Rank::inflight: return "inflight";
    case Rank::background: return "background";
    case Rank::model: return "model";
    case Rank::breaker: return "breaker";
    case Rank::breaker_map: return "breaker_map";
  }
  return "unknown";
}

void on_acquire(Rank r) noexcept {
  // Check against the *minimum* held rank, not just the innermost push:
  // try_lock pushes without checking, so the stack is not guaranteed
  // monotonic — but any held rank <= r still closes a potential cycle.
  for (std::size_t i = 0; i < t_depth && i < kMaxHeld; ++i) {
    if (static_cast<int>(r) >= static_cast<int>(t_held[i])) {
      report_violation(r);
      break;  // handler chose to continue; record the acquisition anyway
    }
  }
  if (t_depth < kMaxHeld) t_held[t_depth] = r;
  ++t_depth;
}

void on_try_acquire(Rank r) noexcept {
  if (t_depth < kMaxHeld) t_held[t_depth] = r;
  ++t_depth;
}

void on_release(Rank r) noexcept {
  if (t_depth == 0) return;  // unbalanced release: never compound the bug
  const std::size_t top = t_depth <= kMaxHeld ? t_depth : kMaxHeld;
  // Innermost occurrence first: RAII releases are LIFO, but unique_lock-style
  // manual unlocks may interleave, so scan from the top.
  for (std::size_t i = top; i-- > 0;) {
    if (t_held[i] == r) {
      for (std::size_t j = i + 1; j < top; ++j) t_held[j - 1] = t_held[j];
      --t_depth;
      return;
    }
  }
  --t_depth;  // rank not found (overflowed past kMaxHeld): keep depth sane
}

void on_wait_release(Rank r) noexcept { on_release(r); }

void on_wait_reacquire(Rank r) noexcept { on_try_acquire(r); }

std::size_t held_count() noexcept { return t_depth; }

ViolationHandler set_violation_handler(ViolationHandler handler) noexcept {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

}  // namespace isaac::lock_rank
