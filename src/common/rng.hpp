// Deterministic random number generation.
//
// Every stochastic component (generative sampler, dataset shuffling, MLP
// initialization, simulator measurement noise) owns an Rng seeded explicitly,
// so all experiments are reproducible from the command-line seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace isaac {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5151AACDULL) : engine_(seed) {}

  /// Derive an independent stream (e.g. one per worker thread).
  Rng fork(std::uint64_t stream) const {
    std::uint64_t s = seed_mix(state_hash() ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
    return Rng(s);
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Multiplicative noise factor: exp(N(0, sigma)). Used by the simulator to
  /// model run-to-run timing variance.
  double lognormal_factor(double sigma) { return std::exp(normal(0.0, sigma)); }

  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Pick an index according to non-negative weights (need not be normalized).
  std::size_t categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("Rng::categorical: zero total weight");
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice: empty set");
    return items[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t state_hash() const {
    // Cheap digest of engine state via a copy draw; adequate for stream forking.
    std::mt19937_64 copy = engine_;
    return copy();
  }

  static std::uint64_t seed_mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }

  std::mt19937_64 engine_;
};

}  // namespace isaac
