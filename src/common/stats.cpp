#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isaac::stats {

namespace {
void require_nonempty(const std::vector<double>& xs, const char* who) {
  if (xs.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
}  // namespace

double mean(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::mean");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::variance");
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double standard_error(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::standard_error");
  return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

double percentile(std::vector<double> xs, double q) {
  require_nonempty(xs, "stats::percentile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("stats::percentile: q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::min");
  return *std::min_element(xs.begin(), xs.end());
}

double max(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::max");
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(const std::vector<double>& xs) {
  require_nonempty(xs, "stats::geomean");
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("stats::geomean: non-positive input");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double mse(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("stats::mse: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) {
    throw std::invalid_argument("stats::pearson: size mismatch or too small");
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace isaac::stats
