// Failpoints: named fault-injection sites compiled into the runtime
// permanently and armed only for chaos testing (DESIGN.md, "Failure
// domains").
//
// A failpoint is a *site* (a stable dotted name like "measure.throw" baked
// into the code it guards) plus a *trigger* (armed at runtime): one-shot,
// first-N-hits, or per-hit probability. Disarmed sites cost one relaxed
// atomic load and a predictable branch — the same discipline as the
// ISAAC_TM_* telemetry macros — so production binaries keep every site live.
//
// Arming is programmatic (failpoint::arm) or environmental:
//
//   ISAAC_FAILPOINTS="measure.throw=prob:0.1:42,cache.write_fail=count:3"
//
// comma-separated name=spec items, where spec is one of
//
//   off          disarm the site
//   once         fire on the first evaluation only
//   count:N      fire on the first N evaluations
//   prob:P       fire each evaluation with probability P in [0, 1]
//   prob:P:SEED  same, with an explicit hash seed
//
// Determinism: the fire decision for hit index i is a pure function of
// (spec, seed, i) — a counting hash, not a shared RNG stream — so the same
// spec + seed reproduces the same injected-fault *sequence* run to run, and
// concurrent threads draw consistent decisions for whatever hit indices they
// happen to claim. Re-arming resets the hit counter, restarting the sequence.
//
// Each fire increments the telemetry counters `fault.injected` and
// `fault.injected.<name>`, plus a per-site fires() odometer that works with
// telemetry disabled (tests and the --chaos bench assert on it).
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace isaac::failpoint {

/// Trigger spec for one site. Inactive (Mode::off) by default.
struct Spec {
  enum class Mode { off, once, count, prob };
  Mode mode = Mode::off;
  std::uint64_t count = 0;  // fire on hits [0, count) for Mode::count/once
  double probability = 0.0;  // per-hit fire probability for Mode::prob
  std::uint64_t seed = 0;    // hash seed for Mode::prob (0 = derive from name)

  /// Parse the textual grammar above ("off", "once", "count:N", "prob:P",
  /// "prob:P:SEED"). Throws std::invalid_argument with the offending token.
  static Spec parse(std::string_view text);
};

/// The error ISAAC_FAILPOINT throws when its site fires.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(std::string_view name)
      : std::runtime_error("failpoint fired: " + std::string(name)), name_(name) {}
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

namespace detail {
extern std::atomic<int> g_armed_count;  // sites currently armed, process-wide
}

/// True when any site is armed — the macros' cheap first-level gate.
inline bool any_armed() noexcept {
  return detail::g_armed_count.load(std::memory_order_relaxed) > 0;
}

/// One registered site. Stable address for the whole process (registry nodes
/// are never erased), so macro call sites may cache the reference.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  /// Evaluate the site once: claims the next hit index and returns whether
  /// the armed trigger fires on it. Disarmed sites return false without
  /// consuming an index, so arming mid-run starts a fresh sequence.
  bool should_fire() noexcept;

  const std::string& name() const noexcept { return name_; }
  std::uint64_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fires() const noexcept { return fires_.load(std::memory_order_relaxed); }

 private:
  friend void arm(const std::string&, Spec);
  friend void disarm(const std::string&);
  friend void disarm_all();

  void arm_locked(Spec spec);
  void disarm_locked();

  std::string name_;
  // The spec is published field-by-field through these atomics; a should_fire
  // racing an arm/disarm sees either the old or the new trigger, never a torn
  // one that matters (mode gates which other fields are read).
  std::atomic<Spec::Mode> mode_{Spec::Mode::off};
  std::atomic<std::uint64_t> limit_{0};
  std::atomic<double> probability_{0.0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
};

/// Look up (creating on first use) the site named `name`. The returned
/// reference is valid for the process lifetime.
Failpoint& site(std::string_view name);

/// Arm `name` with `spec` (or its textual form). Resets the hit counter so
/// the injected sequence restarts deterministically. The string overload
/// throws std::invalid_argument on a malformed spec.
void arm(const std::string& name, Spec spec);
void arm(const std::string& name, const std::string& spec);

/// Disarm one site / every site. Hit and fire odometers are preserved.
void disarm(const std::string& name);
void disarm_all();

/// Odometers for a site (0 for a never-evaluated name).
std::uint64_t hits(std::string_view name);
std::uint64_t fires(std::string_view name);

/// Apply ISAAC_FAILPOINTS from the environment (idempotent; malformed items
/// are skipped with a warning rather than aborting startup).
void init_from_env();

/// Slow-path helper for the expression macro: registry lookup + evaluation.
/// Only called once any_armed() passed.
bool fired_slow(std::string_view name);

}  // namespace isaac::failpoint

/// Throw-style failpoint: when armed and firing, throws FailpointError. The
/// static reference caches the registry lookup after the first armed pass
/// (mirrors ISAAC_TM_COUNT); disarmed cost is one relaxed load + branch.
#define ISAAC_FAILPOINT(name)                                       \
  do {                                                              \
    if (::isaac::failpoint::any_armed()) {                          \
      static ::isaac::failpoint::Failpoint& isaac_fp =              \
          ::isaac::failpoint::site(name);                           \
      if (isaac_fp.should_fire())                                   \
        throw ::isaac::failpoint::FailpointError(name);             \
    }                                                               \
  } while (0)

/// Expression-style failpoint for sites whose failure mode is not a throw
/// (failed write, hang, invalid result): evaluates to true when the site
/// fires. Registry lookup only happens once any site is armed.
#define ISAAC_FAILPOINT_FIRED(name) \
  (::isaac::failpoint::any_armed() && ::isaac::failpoint::fired_slow(name))
