#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace isaac {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out += "\"";
    return out;
  };
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string Table::fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace isaac
