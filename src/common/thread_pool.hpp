// Fixed-size worker pool with a blocking parallel_for.
//
// The pool is the only threading primitive in the repo: the functional kernel
// executors iterate GPU thread-blocks over it, the MLP trainer shards
// minibatch GEMMs over it, and the runtime inference scores candidate kernels
// over it. parallel_for captures chunk exceptions and rethrows the first (by
// index order) on the calling thread; an exception escaping a bare submit()
// task has no caller to deliver to, so the worker swallows it and counts
// `pool.task_exceptions` instead of letting the unwind terminate the process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace isaac {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue fire-and-forget work. Prefer parallel_for for data parallelism.
  void submit(std::function<void()> task);

  /// Run fn(begin, end) over [0, n) split into roughly pool-size chunks and
  /// block until all chunks finish. The calling thread participates, so
  /// parallel_for(n, ...) with a 1-thread pool degrades to a serial loop.
  /// The first exception thrown by any chunk is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Convenience: per-index body.
  void parallel_for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized from ISAAC_THREADS (default: hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// The enqueue timestamp rides in the queue entry (0 = telemetry off at
  /// submit time) so the queue-delay histogram needs no wrapping closure —
  /// the enabled path costs two clock reads, never an extra allocation.
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_us = 0;
  };

  std::vector<std::thread> workers_;
  sync::Mutex mutex_{lock_rank::Rank::pool};
  sync::CondVar cv_;
  std::queue<Task> queue_ ISAAC_GUARDED_BY(mutex_);
  bool stop_ ISAAC_GUARDED_BY(mutex_) = false;
};

}  // namespace isaac
