// Tiny command-line flag parser for benches and examples.
//
// Supported syntax: --name value, --name=value, bare --flag (boolean true).
// Unknown flags are an error so typos in bench scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace isaac {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Declare flags before parse(). Defaults render in --help.
  void add_flag(const std::string& name, const std::string& help, bool default_value);
  void add_int(const std::string& name, const std::string& help, std::int64_t default_value);
  void add_double(const std::string& name, const std::string& help, double default_value);
  void add_string(const std::string& name, const std::string& help, std::string default_value);

  /// Returns false if --help was requested (usage already printed) and throws
  /// std::invalid_argument on malformed input.
  bool parse(int argc, const char* const* argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;

  void print_usage(std::ostream& os) const;

 private:
  enum class Kind { Flag, Int, Double, String };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on get
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace isaac
