#include "common/cli.hpp"

#include <iostream>
#include <stdexcept>

#include "common/strings.hpp"

namespace isaac {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help, bool default_value) {
  options_[name] = Option{Kind::Flag, help, default_value ? "true" : "false"};
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, const std::string& help,
                        std::int64_t default_value) {
  options_[name] = Option{Kind::Int, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, const std::string& help,
                           double default_value) {
  options_[name] = Option{Kind::Double, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name, const std::string& help,
                           std::string default_value) {
  options_[name] = Option{Kind::String, help, std::move(default_value)};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return false;
    }
    if (!strings::starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown flag: --" + arg);
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      if (has_value) {
        const std::string lower = strings::to_lower(value);
        if (lower != "true" && lower != "false" && lower != "0" && lower != "1") {
          throw std::invalid_argument("bad boolean for --" + arg + ": " + value);
        }
        opt.value = (lower == "true" || lower == "1") ? "true" : "false";
      } else {
        opt.value = "true";
      }
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for --" + arg);
      value = argv[++i];
    }
    opt.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  if (it == options_.end()) throw std::logic_error("flag was never declared: --" + name);
  if (it->second.kind != kind) throw std::logic_error("flag type mismatch: --" + name);
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "true";
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const Option& opt = find(name, Kind::Int);
  try {
    return std::stoll(opt.value);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer for --" + name + ": " + opt.value);
  }
}

double CliParser::get_double(const std::string& name) const {
  const Option& opt = find(name, Kind::Double);
  try {
    return std::stod(opt.value);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad double for --" + name + ": " + opt.value);
  }
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

void CliParser::print_usage(std::ostream& os) const {
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    switch (opt.kind) {
      case Kind::Flag:
        break;
      case Kind::Int:
        os << " <int>";
        break;
      case Kind::Double:
        os << " <float>";
        break;
      case Kind::String:
        os << " <str>";
        break;
    }
    os << "  (default: " << opt.value << ")\n      " << opt.help << "\n";
  }
}

}  // namespace isaac
