// Minimal thread-safe logging for the ISAAC reproduction.
//
// The library is quiet by default (Level::Warn); benches and examples raise
// verbosity with --verbose or ISAAC_LOG=debug. Logging never allocates on the
// hot path beyond the message itself and is safe to call from pool workers.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace isaac::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
Level threshold() noexcept;
void set_threshold(Level lvl) noexcept;

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings leave the threshold unchanged and return false.
bool set_threshold_from_string(const std::string& name) noexcept;

/// Apply ISAAC_LOG from the environment (idempotent). This runs once at
/// library initialization (a static initializer in logging.cpp) and again
/// from Context's constructor, so examples and tests honor ISAAC_LOG without
/// opting in; exposed for anything that needs to force it earlier.
void init_from_env() noexcept;

/// Emit one line to stderr with a level tag. Thread-safe.
void write(Level lvl, const std::string& msg);

namespace detail {

class LineStream {
 public:
  explicit LineStream(Level lvl) : lvl_(lvl) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { write(lvl_, os_.str()); }

  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

}  // namespace detail

inline bool enabled(Level lvl) noexcept { return lvl >= threshold(); }

}  // namespace isaac::log

// Stream-style macros: ISAAC_LOG_INFO() << "collected " << n << " samples";
// The stream is only constructed when the level is enabled.
#define ISAAC_LOG_AT(lvl)                   \
  if (!::isaac::log::enabled(lvl)) {        \
  } else                                    \
    ::isaac::log::detail::LineStream(lvl)

#define ISAAC_LOG_DEBUG() ISAAC_LOG_AT(::isaac::log::Level::Debug)
#define ISAAC_LOG_INFO() ISAAC_LOG_AT(::isaac::log::Level::Info)
#define ISAAC_LOG_WARN() ISAAC_LOG_AT(::isaac::log::Level::Warn)
#define ISAAC_LOG_ERROR() ISAAC_LOG_AT(::isaac::log::Level::Error)
