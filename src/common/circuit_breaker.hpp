// CircuitBreaker: the classic closed → open → half-open state machine,
// guarding the dispatch leader path against persistent downstream failure
// (DESIGN.md, "Failure domains").
//
//   closed     normal operation; consecutive failures are counted and
//              `failure_threshold` of them in a row trip the breaker open
//   open       requests are refused (the caller serves its degraded
//              fallback) until `cooldown_ms` elapses
//   half-open  one trial request is let through after the cooldown; success
//              closes the breaker, failure re-opens it and restarts the
//              cooldown
//
// Thread-safe behind one mutex — the breaker sits on the *cold* leader path
// (a cache miss that is about to run a model ranking or a search), never on
// the cache-hit fast path, so lock cost is irrelevant. Telemetry counters
// `breaker.opened` / `breaker.closed` / `breaker.half_open` record every
// transition; state()/opens() are for tests and the --chaos bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/thread_annotations.hpp"

namespace isaac {

struct CircuitBreakerConfig {
  /// Consecutive record_failure() calls (with no success between) that trip
  /// the breaker open.
  std::size_t failure_threshold = 3;
  /// How long the breaker stays open before probing with one trial request.
  double cooldown_ms = 250.0;
};

class CircuitBreaker {
 public:
  enum class State { closed, open, half_open };

  explicit CircuitBreaker(CircuitBreakerConfig config = {}, std::string name = "");

  /// May this request attempt the real operation? Closed: yes. Open: no,
  /// until the cooldown expires — then the breaker turns half-open and
  /// admits exactly one trial (the caller that got `true` must report back
  /// via record_success/record_failure). Half-open: no for everyone but the
  /// in-flight trial.
  bool allow_request();

  /// Report the outcome of an admitted request. A success closes the breaker
  /// and clears the failure streak; a failure feeds the streak (closed) or
  /// re-opens with a fresh cooldown (half-open trial failed).
  void record_success();
  void record_failure();

  State state() const;
  /// Times the breaker tripped open (including half-open re-opens).
  std::uint64_t opens() const;
  /// Consecutive failures recorded since the last success (diagnostic).
  std::size_t consecutive_failures() const;

  const CircuitBreakerConfig& config() const noexcept { return config_; }

 private:
  std::uint64_t now_us() const;
  void open_locked(std::uint64_t now) ISAAC_REQUIRES(mutex_);

  CircuitBreakerConfig config_;
  std::string name_;  // suffix for per-breaker telemetry ("" = anonymous)

  mutable sync::Mutex mutex_{lock_rank::Rank::breaker};
  State state_ ISAAC_GUARDED_BY(mutex_) = State::closed;
  // consecutive failures, since last success
  std::size_t failures_ ISAAC_GUARDED_BY(mutex_) = 0;
  // steady-clock stamp of the last open
  std::uint64_t opened_at_us_ ISAAC_GUARDED_BY(mutex_) = 0;
  // the half-open probe has been handed out
  bool trial_inflight_ ISAAC_GUARDED_BY(mutex_) = false;
  std::uint64_t opens_ ISAAC_GUARDED_BY(mutex_) = 0;
};

}  // namespace isaac
