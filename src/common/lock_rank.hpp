// Lock-rank registry: the runtime complement to the Clang thread-safety
// capability annotations (common/thread_annotations.hpp). Capabilities prove
// "this member is only touched under its mutex"; they cannot prove the
// *global acquisition order* across mutexes. This module can: every named
// mutex in the runtime carries a Rank, each thread keeps a stack of the ranks
// it currently holds, and a blocking acquisition that is not strictly inward
// (toward lower ranks) aborts immediately with both stacks' names — turning
// a would-be deadlock that needs an unlucky interleaving into a
// deterministic failure on the *first* out-of-order acquisition, on any
// thread, in any test.
//
// Convention: higher rank = outer lock. While holding rank r, a thread may
// block-acquire only ranks strictly below r. The table below is the one
// DESIGN.md ("Static analysis & lock discipline") documents; the gaps leave
// room for future subsystems without renumbering.
//
// try_lock is special: a successful try_lock cannot *block*, so it skips the
// order check — but it still pushes onto the held stack, because later
// blocking acquisitions under it absolutely can deadlock against it.
// Condition-variable waits release the mutex inside the wait, so the rank
// pops for the wait's duration and re-pushes (uncheck) on wake.
//
// Cost model: the checking hooks are compiled into the annotated mutex
// wrappers only when ISAAC_LOCK_RANK_CHECKS is 1 — debug builds by default,
// any build with -DISAAC_LOCK_RANK=ON (the CI concurrency jobs). In a plain
// Release build the wrappers compile to bare std::mutex operations: no
// thread-local traffic, no branches, nothing. The hook *implementations* are
// always compiled, so tests can drive the detection logic directly in every
// build type.
#pragma once

#include <cstddef>

// Gate for the wrapper-integrated checks. Uniform across every TU linking
// the isaac target: the CMake option ISAAC_LOCK_RANK=ON/OFF applies
// ISAAC_LOCK_RANK_FORCE / ISAAC_LOCK_RANK_DISABLE as PUBLIC compile
// definitions, so the inline Mutex methods never differ across TUs (no ODR
// hazard).
#if (!defined(NDEBUG) || defined(ISAAC_LOCK_RANK_FORCE)) && !defined(ISAAC_LOCK_RANK_DISABLE)
#define ISAAC_LOCK_RANK_CHECKS 1
#else
#define ISAAC_LOCK_RANK_CHECKS 0
#endif

namespace isaac::lock_rank {

/// The global acquisition order (higher = outer; block-acquire strictly
/// descending). Derived from the nestings the runtime actually performs:
///
///   breaker_map > breaker > model > background > inflight > obslog > drift
///   > skeleton > cache_shard > pool > failpoint_registry > telemetry_flush
///   > telemetry_registry > telemetry_trace > logging > leaf
///
/// Load-bearing edges: inflight -> cache_shard (select()'s under-lock cache
/// recheck), cache_shard -> failpoint_registry -> logging (disk-append chaos
/// site), {cache_shard, breaker, inflight} -> telemetry_registry (ISAAC_TM_*
/// under a lock), breaker -> logging (transition lines).
enum class Rank : int {
  none = 0,
  leaf = 2,                // function-local coordination (parallel_for, warmup)
  logging = 5,             // log::write serialization
  telemetry_trace = 8,     // span ring
  telemetry_registry = 10, // counter/gauge/histogram family maps
  telemetry_flush = 12,    // periodic dump thread
  failpoint_registry = 15, // failpoint site map
  pool = 20,               // ThreadPool queue
  cache_shard = 30,        // ProfileCache shard (shared)
  skeleton = 40,           // structural-skeleton single-flight map
  drift = 42,              // DriftDetector windows
  obslog = 44,             // ObservationLog ring
  inflight = 50,           // Context single-flight / refinement bookkeeping
  background = 60,         // Context background-task counter + cv
  model = 70,              // Context hot-swappable model slot
  breaker = 80,            // one CircuitBreaker's state machine
  breaker_map = 90,        // Context's per-op breaker map
};

/// Stable display name for a rank ("cache_shard", "inflight", ...).
const char* name(Rank r) noexcept;

/// True when the annotated mutex wrappers call the hooks below (debug builds
/// or -DISAAC_LOCK_RANK=ON). The hooks themselves exist in every build.
constexpr bool checks_compiled_in() noexcept { return ISAAC_LOCK_RANK_CHECKS != 0; }

/// Blocking acquisition: verify `r` is strictly below every rank this thread
/// holds, then push it. On violation the handler runs (default: print both
/// the held stack and the offending rank to stderr, abort()).
void on_acquire(Rank r) noexcept;

/// Successful try_lock: push without the order check (a try_lock cannot
/// block, but later blocking acquisitions must still see it held).
void on_try_acquire(Rank r) noexcept;

/// Release: pop the innermost held occurrence of `r`.
void on_release(Rank r) noexcept;

/// Condition-variable wait protocol: the wait releases the mutex inside, so
/// its rank leaves the stack for the wait's duration and returns (unchecked,
/// like a re-acquisition of something logically never released) on wake.
void on_wait_release(Rank r) noexcept;
void on_wait_reacquire(Rank r) noexcept;

/// Depth of this thread's held-rank stack (tests).
std::size_t held_count() noexcept;

/// Violation hook. The default (nullptr) prints both stack names and
/// abort()s; tests install a recording handler to observe violations
/// in-process. A non-null handler that returns lets the acquisition proceed.
/// Returns the previous handler.
using ViolationHandler = void (*)(const char* message);
ViolationHandler set_violation_handler(ViolationHandler handler) noexcept;

}  // namespace isaac::lock_rank
