// Descriptive statistics used by benches and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace isaac::stats {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // sample variance (n-1)
double stddev(const std::vector<double>& xs);
double standard_error(const std::vector<double>& xs);
double median(std::vector<double> xs);

/// q in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double q);

double min(const std::vector<double>& xs);
double max(const std::vector<double>& xs);

/// Geometric mean; all inputs must be > 0.
double geomean(const std::vector<double>& xs);

/// Mean squared error between two equally sized vectors.
double mse(const std::vector<double>& a, const std::vector<double>& b);

/// Pearson correlation coefficient.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace isaac::stats
