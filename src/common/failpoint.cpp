#include "common/failpoint.hpp"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "common/thread_annotations.hpp"
#include "common/strings.hpp"
#include "telemetry/metrics.hpp"

namespace isaac::failpoint {

namespace detail {
std::atomic<int> g_armed_count{0};
}

namespace {

// Registry: node-based map so Failpoint addresses stay stable forever (macro
// call sites cache references). Sites are created on first use and never
// erased; disarming only flips their trigger off.
struct Registry {
  sync::SharedMutex mutex{lock_rank::Rank::failpoint_registry};
  std::map<std::string, Failpoint, std::less<>> sites ISAAC_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal: sites outlive static dtors
  return *r;
}

/// splitmix64-style finalizer: the per-hit decision hash for Mode::prob.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t name_hash(std::string_view name) {
  // FNV-1a: stable across processes (std::hash is not), so env-armed runs on
  // different machines draw the same default-seeded sequences.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

}  // namespace

Spec Spec::parse(std::string_view text) {
  const auto fields = strings::split(strings::trim(text), ':');
  Spec spec;
  const std::string& mode = fields[0];
  if (mode == "off") {
    if (fields.size() != 1) throw std::invalid_argument("failpoint spec: off takes no argument");
    return spec;
  }
  if (mode == "once") {
    if (fields.size() != 1) throw std::invalid_argument("failpoint spec: once takes no argument");
    spec.mode = Mode::once;
    spec.count = 1;
    return spec;
  }
  if (mode == "count") {
    if (fields.size() != 2 || !parse_u64(fields[1], spec.count)) {
      throw std::invalid_argument("failpoint spec: expected count:N, got '" +
                                  std::string(text) + "'");
    }
    spec.mode = Mode::count;
    return spec;
  }
  if (mode == "prob") {
    if (fields.size() != 2 && fields.size() != 3) {
      throw std::invalid_argument("failpoint spec: expected prob:P[:SEED], got '" +
                                  std::string(text) + "'");
    }
    char* end = nullptr;
    spec.probability = std::strtod(fields[1].c_str(), &end);
    if (end != fields[1].c_str() + fields[1].size() || !(spec.probability >= 0.0) ||
        !(spec.probability <= 1.0)) {
      throw std::invalid_argument("failpoint spec: probability must be in [0, 1], got '" +
                                  fields[1] + "'");
    }
    if (fields.size() == 3 && !parse_u64(fields[2], spec.seed)) {
      throw std::invalid_argument("failpoint spec: bad seed '" + fields[2] + "'");
    }
    spec.mode = Mode::prob;
    return spec;
  }
  throw std::invalid_argument("failpoint spec: unknown mode '" + mode + "'");
}

bool Failpoint::should_fire() noexcept {
  const Spec::Mode mode = mode_.load(std::memory_order_acquire);
  if (mode == Spec::Mode::off) return false;
  // Claim the next hit index; the decision is a pure function of (spec, i),
  // so the per-site fire sequence is deterministic however threads interleave.
  const std::uint64_t i = hits_.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  switch (mode) {
    case Spec::Mode::once:
    case Spec::Mode::count:
      fire = i < limit_.load(std::memory_order_relaxed);
      break;
    case Spec::Mode::prob: {
      const double p = probability_.load(std::memory_order_relaxed);
      const std::uint64_t h = mix64(seed_.load(std::memory_order_relaxed) ^ mix64(i));
      // Top 53 bits -> uniform double in [0, 1).
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      fire = u < p;
      break;
    }
    case Spec::Mode::off:
      break;
  }
  if (fire) {
    fires_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      telemetry::counter("fault.injected").add(1);
      telemetry::counter(std::string("fault.injected.") + name_).add(1);
    }
  }
  return fire;
}

void Failpoint::arm_locked(Spec spec) {
  const bool was_armed = mode_.load(std::memory_order_relaxed) != Spec::Mode::off;
  limit_.store(spec.count, std::memory_order_relaxed);
  probability_.store(spec.probability, std::memory_order_relaxed);
  seed_.store(spec.seed != 0 ? spec.seed : name_hash(name_), std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);  // restart the sequence
  mode_.store(spec.mode, std::memory_order_release);
  const bool now_armed = spec.mode != Spec::Mode::off;
  if (now_armed && !was_armed) detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  if (!now_armed && was_armed) detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoint::disarm_locked() {
  if (mode_.exchange(Spec::Mode::off, std::memory_order_release) != Spec::Mode::off) {
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

Failpoint& site(std::string_view name) {
  // Escaping the reference past the lock is sound: sites are never erased,
  // so the map node (and its Failpoint, which is all-atomic) is immortal.
  Registry& r = registry();
  {
    sync::ReaderMutexLock lock(r.mutex);
    const auto it = r.sites.find(name);
    if (it != r.sites.end()) return it->second;
  }
  sync::WriterMutexLock lock(r.mutex);
  return r.sites.try_emplace(std::string(name), std::string(name)).first->second;
}

void arm(const std::string& name, Spec spec) {
  Failpoint& fp = site(name);
  sync::WriterMutexLock lock(registry().mutex);  // serialize arm/arm races
  fp.arm_locked(spec);
  ISAAC_LOG_INFO() << "failpoint armed: " << name;
}

void arm(const std::string& name, const std::string& spec) { arm(name, Spec::parse(spec)); }

void disarm(const std::string& name) {
  Registry& r = registry();
  sync::WriterMutexLock lock(r.mutex);
  const auto it = r.sites.find(name);
  if (it != r.sites.end()) it->second.disarm_locked();
}

void disarm_all() {
  Registry& r = registry();
  sync::WriterMutexLock lock(r.mutex);
  for (auto& [name, fp] : r.sites) fp.disarm_locked();
}

std::uint64_t hits(std::string_view name) { return site(name).hits(); }
std::uint64_t fires(std::string_view name) { return site(name).fires(); }

void init_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("ISAAC_FAILPOINTS");
    if (!env || !*env) return;
    for (const auto& item : strings::split(env, ',')) {
      const std::string trimmed = strings::trim(item);
      if (trimmed.empty()) continue;
      const auto eq = trimmed.find('=');
      if (eq == std::string::npos || eq == 0) {
        ISAAC_LOG_WARN() << "ISAAC_FAILPOINTS: skipping malformed item '" << trimmed << "'";
        continue;
      }
      try {
        arm(trimmed.substr(0, eq), trimmed.substr(eq + 1));
      } catch (const std::exception& e) {
        ISAAC_LOG_WARN() << "ISAAC_FAILPOINTS: skipping '" << trimmed << "': " << e.what();
      }
    }
  });
}

bool fired_slow(std::string_view name) { return site(name).should_fire(); }

}  // namespace isaac::failpoint
