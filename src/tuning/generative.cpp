#include "tuning/generative.hpp"

#include <stdexcept>

namespace isaac::tuning {

CategoricalModel::CategoricalModel(std::vector<ParameterDomain> domains, double alpha)
    : domains_(std::move(domains)), alpha_(alpha) {
  if (alpha_ <= 0.0) throw std::invalid_argument("CategoricalModel: alpha must be positive");
  counts_.reserve(domains_.size());
  for (const auto& d : domains_) {
    if (d.values.empty()) throw std::invalid_argument("CategoricalModel: empty domain");
    counts_.emplace_back(d.values.size(), alpha_);
  }
}

AcceptanceStats CategoricalModel::fit(const LegalFn& legal, std::size_t probe_samples,
                                      Rng& rng) {
  AcceptanceStats stats;
  std::vector<std::size_t> choice(domains_.size());
  for (std::size_t s = 0; s < probe_samples; ++s) {
    for (std::size_t d = 0; d < domains_.size(); ++d) {
      choice[d] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(domains_[d].values.size()) - 1));
    }
    ++stats.attempted;
    if (legal(choice)) {
      ++stats.accepted;
      for (std::size_t d = 0; d < domains_.size(); ++d) counts_[d][choice[d]] += 1.0;
    }
  }
  return stats;
}

std::vector<std::size_t> CategoricalModel::sample(Rng& rng) const {
  std::vector<std::size_t> choice(domains_.size());
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    choice[d] = rng.categorical(counts_[d]);
  }
  return choice;
}

bool CategoricalModel::sample_legal(const LegalFn& legal, Rng& rng,
                                    std::vector<std::size_t>& out, AcceptanceStats& stats,
                                    std::size_t max_attempts) const {
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    out = sample(rng);
    ++stats.attempted;
    if (legal(out)) {
      ++stats.accepted;
      return true;
    }
  }
  return false;
}

double CategoricalModel::probability(std::size_t param, std::size_t value_index) const {
  if (param >= counts_.size() || value_index >= counts_[param].size()) {
    throw std::out_of_range("CategoricalModel::probability");
  }
  double total = 0.0;
  for (double c : counts_[param]) total += c;
  return counts_[param][value_index] / total;
}

}  // namespace isaac::tuning
