// Search spaces over tuning parameters.
//
// The paper distinguishes the *possible* space X̂ (anything the sampler can
// emit — the cartesian product of per-parameter candidate lists) from the
// *legal* space X (configurations that compile and run within hardware
// limits). SearchSpace enumerates/draws from X̂; legality is always judged by
// codegen::validate against a concrete (shape, device).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"
#include "common/rng.hpp"

namespace isaac::tuning {

/// One tunable parameter: a name and its candidate values.
struct ParameterDomain {
  std::string name;
  std::vector<int> values;
};

/// Generic cartesian-product space driven by per-parameter domains, with a
/// decoder turning an index vector into a concrete tuning struct.
class GemmSearchSpace {
 public:
  /// Default domains follow GemmTuning::candidates_*. `cap16` restricts every
  /// domain to powers of two in [1, 16] — the constraint Table 1 uses.
  explicit GemmSearchSpace(bool cap16 = false);

  const std::vector<ParameterDomain>& domains() const noexcept { return domains_; }
  std::size_t num_parameters() const noexcept { return domains_.size(); }

  /// Total size of X̂.
  std::size_t size() const noexcept;

  /// Decode per-parameter value indices into a tuning struct.
  codegen::GemmTuning decode(const std::vector<std::size_t>& choice) const;

  /// Inverse of decode: find the index vector producing `t`. False when some
  /// field's value is not in this space's domains (e.g. a KG > 1 seed against
  /// the batched space) — the tuning then lies outside X̂.
  bool encode(const codegen::GemmTuning& t, std::vector<std::size_t>& choice) const;

  /// Uniform draw from X̂.
  codegen::GemmTuning sample_uniform(Rng& rng, std::vector<std::size_t>* choice = nullptr) const;

  /// Visit every point of X̂ (used by exhaustive runtime inference). The
  /// callback returns false to stop early.
  void for_each(const std::function<bool(const codegen::GemmTuning&)>& fn) const;

 protected:
  std::vector<ParameterDomain> domains_;
};

/// The GEMM space with the grid-level reduction split pinned to KG = 1 — the
/// legal space for strided-batched GEMM (see codegen/batched_gemm.hpp).
class BatchedGemmSearchSpace : public GemmSearchSpace {
 public:
  explicit BatchedGemmSearchSpace(bool cap16 = false);
};

class ConvSearchSpace {
 public:
  explicit ConvSearchSpace(bool cap16 = false);

  const std::vector<ParameterDomain>& domains() const noexcept { return domains_; }
  std::size_t num_parameters() const noexcept { return domains_.size(); }
  std::size_t size() const noexcept;

  codegen::ConvTuning decode(const std::vector<std::size_t>& choice) const;
  bool encode(const codegen::ConvTuning& t, std::vector<std::size_t>& choice) const;
  codegen::ConvTuning sample_uniform(Rng& rng, std::vector<std::size_t>* choice = nullptr) const;
  void for_each(const std::function<bool(const codegen::ConvTuning&)>& fn) const;

 protected:
  // Protected (like GemmSearchSpace's) so restricted spaces — e.g. a
  // seed-grid core for search-strategy comparisons — can subclass and narrow
  // the domains.
  std::vector<ParameterDomain> domains_;
};

}  // namespace isaac::tuning
