// Search spaces over tuning parameters.
//
// The paper distinguishes the *possible* space X̂ (anything the sampler can
// emit — the cartesian product of per-parameter candidate lists) from the
// *legal* space X (configurations that compile and run within hardware
// limits). SearchSpace enumerates/draws from X̂; legality is always judged by
// codegen::validate against a concrete (shape, device).
//
// Getting from X̂ to X used to cost a full generate-and-test sweep (only ~3%
// of the GEMM X̂ survives). The ConstraintSet layer below propagates
// per-dimension *necessary* conditions while walking the space instead:
// walk_legal binds parameters from the highest dimension down, evaluates each
// predicate the moment its inputs are bound, and skips the entire subtree
// under any failing prefix — so legal-space iteration cost scales with X (plus
// the plausible fringe), not |X̂|. A final codegen::validate gate keeps the
// result exactly X.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"

namespace isaac::tuning {

/// One tunable parameter: a name and its candidate values.
struct ParameterDomain {
  std::string name;
  std::vector<int> values;
};

/// One partial-validity predicate over a *prefix* of bound parameter values.
/// `check` receives the full values-by-dimension array but may only read
/// dimensions ≥ eval_dim — the pruned walk binds dimensions from the highest
/// index down, so exactly those are bound when the predicate first runs.
///
/// Contract: a predicate must be a *necessary* condition for legality — if it
/// fails, no completion of the bound prefix passes codegen::validate. A
/// lenient predicate only costs pruning power; a too-strict one would
/// silently drop legal points (the exhaustive-vs-pruned parity tests guard
/// against that).
struct PrefixPredicate {
  std::string name;                             // diagnostic label
  std::size_t eval_dim = 0;                     // lowest dimension it reads
  bool unary = false;                           // reads values[eval_dim] only
  std::function<bool(const int* values)> check;
};

/// The per-dimension predicate layer over a ParameterDomain list, bucketed by
/// the dimension at which each predicate becomes decidable.
class ConstraintSet {
 public:
  void add(std::string name, std::size_t eval_dim, std::function<bool(const int*)> check);

  /// A predicate that reads only its own dimension's value. The walker
  /// pre-evaluates these once per domain value into an admissibility mask, so
  /// they cost an array lookup per node instead of a std::function call.
  void add_unary(std::string name, std::size_t eval_dim,
                 std::function<bool(const int*)> check);

  bool empty() const noexcept { return count_ == 0; }
  std::size_t num_predicates() const noexcept { return count_; }

  /// Every predicate that becomes decidable when `dim` binds passes?
  bool check_at(std::size_t dim, const int* values) const {
    if (dim >= by_dim_.size()) return true;
    for (const auto& p : by_dim_[dim]) {
      if (!p.check(values)) return false;
    }
    return true;
  }

  /// check_at restricted to multi-dimension predicates — the walker's inner
  /// loop, paired with the value_masks() fast path for the unary ones. The
  /// multi checks live in their own bucket list so this never touches (or
  /// flag-tests) the unary entries.
  bool check_multi_at(std::size_t dim, const int* values) const {
    if (dim >= multi_by_dim_.size()) return true;
    for (const auto& f : multi_by_dim_[dim]) {
      if (!f(values)) return false;
    }
    return true;
  }

  /// Per-dimension, per-value-index admissibility under the unary predicates
  /// (1 = may be legal). Empty when the set has no unary predicates. Values
  /// failing their mask can be pruned without binding the dimension at all.
  std::vector<std::vector<unsigned char>> value_masks(
      const std::vector<ParameterDomain>& domains) const;

  /// Full-point test (every dimension bound): all predicates pass. A cheap
  /// pre-gate in front of codegen::validate for point-wise probing. Buckets
  /// run highest dimension first — the same order the walk binds them — so a
  /// predicate may rely on guards (positivity, pow2) at higher dimensions
  /// having passed, exactly as during a walk.
  bool accepts(const int* values) const {
    for (std::size_t dim = by_dim_.size(); dim-- > 0;) {
      for (const auto& p : by_dim_[dim]) {
        if (!p.check(values)) return false;
      }
    }
    return true;
  }

 private:
  std::vector<std::vector<PrefixPredicate>> by_dim_;  // indexed by eval_dim
  // Multi-dimension checks only, same indexing — the walker's hot path.
  std::vector<std::vector<std::function<bool(const int*)>>> multi_by_dim_;
  std::size_t count_ = 0;
  bool has_unary_ = false;
};

/// Point accounting for one pruned walk: `emitted + pruned` is the number of
/// X̂ points covered (exactly |X̂| when a walk over all dimensions runs to
/// completion) — each pruned prefix accounts for its whole subtree in bulk.
struct WalkStats {
  std::uint64_t emitted = 0;  // points that reached the callback
  std::uint64_t pruned = 0;   // points skipped under failing prefixes
};

/// Per-dimension strides of the flat (odometer) index — dimension 0 least
/// significant, matching advance_choice/for_each order. Wraps modularly for
/// spaces past 2^64; callers doing exact flat arithmetic must bound |X̂|
/// first (see the saturating size()).
inline std::vector<std::uint64_t> flat_strides(const std::vector<ParameterDomain>& domains) {
  std::vector<std::uint64_t> stride(domains.size(), 1);
  for (std::size_t d = 1; d < domains.size(); ++d) {
    stride[d] = stride[d - 1] * domains[d - 1].values.size();
  }
  return stride;
}

namespace walk_detail {

template <typename Fn>
bool descend(const std::vector<ParameterDomain>& domains, const ConstraintSet* constraints,
             const std::vector<std::vector<unsigned char>>* masks,
             const std::vector<std::uint64_t>& stride, std::size_t level, std::size_t stop,
             std::vector<std::size_t>& choice, std::vector<int>& values,
             std::uint64_t flat_base, const Fn& fn, WalkStats* stats) {
  const auto& vals = domains[level].values;
  const unsigned char* mask = masks ? (*masks)[level].data() : nullptr;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Unary predicates were pre-evaluated into the mask: one lookup replaces
    // their std::function calls on every node of this level.
    if (mask && !mask[i]) {
      if (stats) stats->pruned += stride[level];
      continue;
    }
    choice[level] = i;
    values[level] = vals[i];
    if (constraints && !constraints->check_multi_at(level, values.data())) {
      if (stats) stats->pruned += stride[level];
      continue;
    }
    const std::uint64_t flat = flat_base + i * stride[level];
    if (level == stop) {
      if (stats) ++stats->emitted;
      if (!fn(choice, flat)) return false;
    } else {
      if (!descend(domains, constraints, masks, stride, level - 1, stop, choice, values, flat,
                   fn, stats)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace walk_detail

/// Lower-level walk over the dimension range [stop..from], with dimensions
/// above `from` already bound in choice/values (their partial flat index
/// passed as flat_base); emits at `stop`. The building block the chunked
/// parallel walk (search/legal_walk.hpp) splits prefixes/subtrees with —
/// most callers want walk_legal below. WalkStats::emitted counts callback
/// hits, i.e. points only when stop == 0.
template <typename Fn>
bool walk_legal_levels(const std::vector<ParameterDomain>& domains,
                       const ConstraintSet* constraints, std::size_t from, std::size_t stop,
                       std::vector<std::size_t>& choice, std::vector<int>& values,
                       std::uint64_t flat_base, const Fn& fn, WalkStats* stats = nullptr) {
  const std::vector<std::uint64_t> stride = flat_strides(domains);
  std::vector<std::vector<unsigned char>> masks;
  const std::vector<std::vector<unsigned char>>* mp = nullptr;
  if (constraints) {
    masks = constraints->value_masks(domains);
    if (!masks.empty()) mp = &masks;
  }
  return walk_detail::descend(domains, constraints, mp, stride, from, stop, choice, values,
                              flat_base, fn, stats);
}

/// The constraint-propagating lazy enumeration: visit every point of X̂ that
/// survives the constraint set's prefix predicates (a superset of the legal
/// space — pair with codegen::validate for exactness), in ascending flat
/// order, i.e. exactly for_each()/advance_choice order. A failing prefix
/// skips its entire subtree without visiting a single point of it. With a
/// null or empty constraint set this degenerates to a plain (still lazy)
/// cartesian walk. `fn(choice, flat)` returns false to stop early; the
/// function returns false iff the callback stopped the walk.
template <typename Fn>
bool walk_legal(const std::vector<ParameterDomain>& domains, const ConstraintSet* constraints,
                const Fn& fn, WalkStats* stats = nullptr) {
  if (domains.empty()) return true;
  for (const auto& d : domains) {
    if (d.values.empty()) return true;  // some domain empty: X̂ itself is empty
  }
  std::vector<std::size_t> choice(domains.size(), 0);
  std::vector<int> values(domains.size(), 0);
  return walk_legal_levels(domains, constraints, domains.size() - 1, 0, choice, values, 0, fn,
                           stats);
}

/// Generic cartesian-product space driven by per-parameter domains, with a
/// decoder turning an index vector into a concrete tuning struct.
class GemmSearchSpace {
 public:
  /// Default domains follow GemmTuning::candidates_*. `cap16` restricts every
  /// domain to powers of two in [1, 16] — the constraint Table 1 uses.
  explicit GemmSearchSpace(bool cap16 = false);

  const std::vector<ParameterDomain>& domains() const noexcept { return domains_; }
  std::size_t num_parameters() const noexcept { return domains_.size(); }

  /// Total size of X̂.
  std::size_t size() const noexcept;

  /// Decode per-parameter value indices into a tuning struct.
  codegen::GemmTuning decode(const std::vector<std::size_t>& choice) const;

  /// Inverse of decode: find the index vector producing `t`. False when some
  /// field's value is not in this space's domains (e.g. a KG > 1 seed against
  /// the batched space) — the tuning then lies outside X̂.
  bool encode(const codegen::GemmTuning& t, std::vector<std::size_t>& choice) const;

  /// Uniform draw from X̂.
  codegen::GemmTuning sample_uniform(Rng& rng, std::vector<std::size_t>* choice = nullptr) const;

  /// Visit every point of X̂ (used by exhaustive runtime inference). The
  /// callback returns false to stop early.
  void for_each(const std::function<bool(const codegen::GemmTuning&)>& fn) const;

  /// The per-dimension partial-validity layer for (shape, device): necessary
  /// conditions of codegen::validate mirrored onto prefixes — tile-size
  /// divisibility, shared-memory and occupancy bounds (gpusim/occupancy),
  /// reduction-split (KG) limits. Predicates resolve dimensions by name, so
  /// restricted subclass spaces (narrowed or pinned domains, e.g. the batched
  /// space's KG = {1}) inherit the layer unchanged.
  ConstraintSet prefix_constraints(const codegen::GemmShape& shape,
                                   const gpusim::DeviceDescriptor& dev) const;

  /// Visit every point of the *legal* space X for (shape, device), in
  /// for_each() order: the pruned walk over prefix_constraints, gated by the
  /// full codegen::validate so the result is exactly X. The callback returns
  /// false to stop early.
  void for_each_legal(const codegen::GemmShape& shape, const gpusim::DeviceDescriptor& dev,
                      const std::function<bool(const codegen::GemmTuning&)>& fn) const;

 protected:
  std::vector<ParameterDomain> domains_;
};

/// The GEMM space with the grid-level reduction split pinned to KG = 1 — the
/// legal space for strided-batched GEMM (see codegen/batched_gemm.hpp).
class BatchedGemmSearchSpace : public GemmSearchSpace {
 public:
  explicit BatchedGemmSearchSpace(bool cap16 = false);
};

class ConvSearchSpace {
 public:
  explicit ConvSearchSpace(bool cap16 = false);

  const std::vector<ParameterDomain>& domains() const noexcept { return domains_; }
  std::size_t num_parameters() const noexcept { return domains_.size(); }
  std::size_t size() const noexcept;

  codegen::ConvTuning decode(const std::vector<std::size_t>& choice) const;
  bool encode(const codegen::ConvTuning& t, std::vector<std::size_t>& choice) const;
  codegen::ConvTuning sample_uniform(Rng& rng, std::vector<std::size_t>* choice = nullptr) const;
  void for_each(const std::function<bool(const codegen::ConvTuning&)>& fn) const;

  /// Prefix predicates for the implicit-GEMM lowering: output-extent and
  /// reduction-split (CG over C·R·S) limits plus the lowered GEMM's
  /// shared-memory/occupancy/divisibility conditions. Same contract as
  /// GemmSearchSpace::prefix_constraints.
  ConstraintSet prefix_constraints(const codegen::ConvShape& shape,
                                   const gpusim::DeviceDescriptor& dev) const;

  /// Pruned + validate-gated walk of the legal conv space in for_each() order.
  void for_each_legal(const codegen::ConvShape& shape, const gpusim::DeviceDescriptor& dev,
                      const std::function<bool(const codegen::ConvTuning&)>& fn) const;

 protected:
  // Protected (like GemmSearchSpace's) so restricted spaces — e.g. a
  // seed-grid core for search-strategy comparisons — can subclass and narrow
  // the domains.
  std::vector<ParameterDomain> domains_;
};

}  // namespace isaac::tuning
