// Benchmark-data collection (paper §4): sample (shape, tuning) pairs from the
// generative model, time each kernel on the simulated device, and emit the
// (features, GFLOPS) dataset the regression model trains on.
//
// Shapes are drawn log-uniformly across the input domain the paper's
// evaluation spans (square LINPACK blocks through deep ICA reductions and
// skinny DeepBench panels), with random transposition layouts and data types,
// so the learned model is input-aware by construction.
#pragma once

#include <cstdint>

#include "gpusim/simulator.hpp"
#include "tuning/dataset.hpp"
#include "tuning/generative.hpp"

namespace isaac::tuning {

struct CollectorConfig {
  std::size_t num_samples = 10000;
  /// Uniform probing budget used to fit the categorical model before
  /// collection starts. Probing only runs the validator (no simulation), so
  /// it is cheap; with the α = 100 Dirichlet prior and a ~1% legal fraction
  /// the posterior needs tens of thousands of probes to sharpen.
  std::size_t probe_samples = 60000;
  double alpha = 100.0;  // Dirichlet prior (paper §4.1)
  /// Adaptive sampling (MLKAPS-style): when non-empty, tunings are drawn by
  /// driving this model-free stochastic search strategy ("random", "genetic"
  /// or "annealing" — see search/factory.hpp) per sampled shape, and *every*
  /// measured point of the trajectory becomes a training sample, so the
  /// dataset concentrates where the strategy spends its budget. Empty = the
  /// paper's §4.1 categorical generative model.
  std::string search_strategy;
  /// Measured evaluations (= samples contributed) per sampled shape when
  /// search_strategy is set.
  std::size_t search_budget_per_shape = 8;
  std::uint64_t seed = 0xDA7A;
  /// Shape domain (log-uniform). K ranges deeper than M/N to cover the
  /// covariance-matrix regime (§3).
  std::int64_t min_mn = 16, max_mn = 4096;
  std::int64_t min_k = 16, max_k = 65536;
  bool sample_dtypes = true;       // f32/f16/f64 mix (f32-weighted)
  bool sample_layouts = true;      // random transpositions
  int timing_reps = 3;             // median-of-reps measurement
};

struct CollectionReport {
  Dataset dataset;
  AcceptanceStats probe;       // uniform probing acceptance
  AcceptanceStats generation;  // categorical-model acceptance during collection
  double wall_seconds_simulated = 0.0;  // sum of simulated kernel times
};

/// Collect GEMM training data on the given simulator.
CollectionReport collect_gemm(const gpusim::Simulator& sim, const CollectorConfig& config);

/// Collect CONV training data (features are the implicit-GEMM encoding).
CollectionReport collect_conv(const gpusim::Simulator& sim, const CollectorConfig& config);

/// Collect strided-batched GEMM training data (features are the equivalent
/// flattened-GEMM encoding, so one regression model serves all operations).
CollectionReport collect_batched_gemm(const gpusim::Simulator& sim,
                                      const CollectorConfig& config);

/// Draw a random shape from the collector's shape distribution
/// (exposed for tests and the Fig. 5 bench).
codegen::GemmShape random_gemm_shape(const CollectorConfig& config, Rng& rng);
codegen::ConvShape random_conv_shape(const CollectorConfig& config, Rng& rng);
codegen::BatchedGemmShape random_batched_gemm_shape(const CollectorConfig& config, Rng& rng);

}  // namespace isaac::tuning
