// Training datasets for the regression model (paper §4).
//
// A sample pairs the 15-dimensional feature vector
//   [M, N, K, dtype_bytes, 1+trans_a, 1+trans_b,        (6 input parameters)
//    MS, NS, ML, NL, U, KS, KL, KG, vec]                (9 tuning parameters)
// with the measured performance y in GFLOPS. Every feature is >= 1 by
// construction, so the log transform of §5.2 is always well defined. CONV
// samples use the implicit-GEMM equivalent features, so one regression model
// serves both generators.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "codegen/batched_gemm.hpp"
#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"
#include "common/rng.hpp"

namespace isaac::tuning {

inline constexpr std::size_t kNumFeatures = 15;

struct Sample {
  std::vector<double> x;  // kNumFeatures entries
  double y = 0.0;         // measured GFLOPS
};

/// Feature encodings.
std::vector<double> features(const codegen::GemmShape& shape, const codegen::GemmTuning& t);
std::vector<double> features(const codegen::ConvShape& shape, const codegen::ConvTuning& t);
std::vector<double> features(const codegen::BatchedGemmShape& shape,
                             const codegen::GemmTuning& t);

/// In-place feature encodings: write exactly kNumFeatures doubles to `out`.
/// The allocation-free scoring pipeline featurizes straight into a
/// FeatureBatch row through these (OperationTraits<Op>::featurize_into).
void features_into(const codegen::GemmShape& shape, const codegen::GemmTuning& t, double* out);
void features_into(const codegen::ConvShape& shape, const codegen::ConvTuning& t, double* out);
void features_into(const codegen::BatchedGemmShape& shape, const codegen::GemmTuning& t,
                   double* out);

class Dataset {
 public:
  void add(Sample s);
  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  void shuffle(Rng& rng);

  /// Split off the first `count` samples (after shuffling) as one dataset and
  /// the rest as another.
  std::pair<Dataset, Dataset> split(std::size_t count) const;

  /// First `count` samples (for Fig-5 style dataset-size sweeps).
  Dataset take(std::size_t count) const;

  /// CSV round trip: header "f0,...,f14,y".
  void save_csv(std::ostream& os) const;
  static Dataset load_csv(std::istream& is);

 private:
  std::vector<Sample> samples_;
};

}  // namespace isaac::tuning
