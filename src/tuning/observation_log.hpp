// ObservationLog: the runtime's training-data flight recorder.
//
// The paper's §5 bootstrap observation — runtime measurements *are* the
// model's training data — closes into a loop here: every measured candidate
// a refinement or blocking search produces is folded into a bounded log of
// (op, features, measured gflops, model-predicted gflops, model version)
// records. The retrainer (tuning/online.hpp) periodically folds the log into
// a Dataset and warm-start-trains the next model version.
//
// The in-memory log is a drop-oldest ring (bounded: an immortal server must
// not grow without bound); when a directory is configured every observation
// is additionally appended to `isaac_observations.txt` under an exclusive
// flock — the same single-syscall O_APPEND discipline as the profile cache —
// so concurrent threads and processes interleave whole lines, never torn
// ones, and offline analysis can replay production traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "tuning/dataset.hpp"

namespace isaac::tuning {

/// One production measurement, tagged with what the serving model believed
/// at the time — the (predicted, measured) pair is the drift signal.
struct Observation {
  std::string op;                   // OperationTraits<Op>::kind()
  std::vector<double> features;     // kNumFeatures raw features (shape + tuning)
  double measured_gflops = 0.0;
  double predicted_gflops = 0.0;
  std::uint64_t model_version = 0;  // version that served the prediction
};

class ObservationLog {
 public:
  /// `capacity` bounds the in-memory ring (oldest records drop first);
  /// `directory` != "" additionally flock-appends every record to
  /// `directory/isaac_observations.txt`.
  explicit ObservationLog(std::size_t capacity = 4096, std::string directory = "");

  void append(Observation obs);

  /// Records currently retained in the ring (≤ capacity).
  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  /// Records ever appended, including ones the ring has since dropped.
  std::uint64_t total_appended() const;

  std::vector<Observation> snapshot() const;
  /// Take every retained record and clear the ring (the disk log, if any, is
  /// untouched — it is the durable history, not a queue).
  std::vector<Observation> drain();

  /// Fold observations into a training dataset: features → x, measured
  /// gflops → y. Records whose feature arity does not match kNumFeatures are
  /// skipped (a foreign-schema disk log must not poison training).
  static Dataset to_dataset(const std::vector<Observation>& observations);

  /// Parse the on-disk format back (malformed lines are skipped — the log is
  /// append-only across processes and a torn tail must not kill replay).
  static std::vector<Observation> load(std::istream& is);

  static const char* filename() noexcept { return "isaac_observations.txt"; }

  /// Disk-write health: a failed append degrades the log to memory-only, with
  /// one re-probe per retry interval (default 1s). The ring is unaffected —
  /// training never stalls on a sick disk, only the durable replay file does.
  bool disk_degraded() const noexcept { return disk_degraded_.load(std::memory_order_relaxed); }
  std::uint64_t disk_writes_skipped() const noexcept {
    return disk_writes_skipped_.load(std::memory_order_relaxed);
  }
  void set_disk_retry_ms(double ms) noexcept {
    disk_retry_us_.store(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0),
                         std::memory_order_relaxed);
  }

 private:
  void append_to_disk(const Observation& obs) const;
  bool write_line_to_disk(const std::string& line) const;

  // obslog is a leaf-side rank: append() writes the disk line *before*
  // taking it, so no failpoint/telemetry/logging lock ever nests inside.
  mutable sync::Mutex mutex_{lock_rank::Rank::obslog};
  std::deque<Observation> ring_ ISAAC_GUARDED_BY(mutex_);
  std::size_t capacity_;
  std::string directory_;
  std::uint64_t total_ ISAAC_GUARDED_BY(mutex_) = 0;
  mutable std::atomic<bool> disk_degraded_{false};
  mutable std::atomic<std::uint64_t> disk_retry_at_us_{0};
  std::atomic<std::uint64_t> disk_retry_us_{1000000};
  mutable std::atomic<std::uint64_t> disk_writes_skipped_{0};
};

}  // namespace isaac::tuning
