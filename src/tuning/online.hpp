// Online model lifecycle primitives: drift detection and warm-start
// retraining (DESIGN.md, "Online model lifecycle").
//
// DriftDetector keeps a rolling per-op window of the model-vs-measured
// relative error |predicted − measured| / measured. When a window holds
// enough samples and its mean error crosses the threshold, the detector
// trips once and re-arms with a fresh window — the caller (Context) turns a
// trip into a scheduled retrain. Every error sample is mirrored into the
// telemetry histograms `model.rel_err_pct` and `model.rel_err_pct.<op>`
// (PR 7 infrastructure) for observability; the trip decision itself runs on
// the detector's own window so it works with telemetry disabled.
//
// Retrainer is the fold step: observations → Dataset →
// mlp::train_warm_start → the successor VersionedModel (version + 1,
// provenance "warm_start"). It is deliberately free of scheduling — the
// caller decides when and on which thread to run it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"
#include "mlp/versioned_model.hpp"
#include "tuning/observation_log.hpp"

namespace isaac::tuning {

struct DriftConfig {
  /// Mean relative error over a window that trips retraining. 0.35 means the
  /// model is off by 35% on average — far beyond measurement noise, squarely
  /// "the device changed under us".
  double threshold = 0.35;
  std::size_t window = 32;            // rolling samples per op
  std::size_t min_observations = 16;  // no trip before a window holds this many
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {});

  /// Record one (predicted, measured) pair for `op`. Returns true when this
  /// sample trips the detector; the tripped op's window resets so the next
  /// trip needs fresh post-trip evidence.
  bool observe(std::string_view op, double predicted_gflops, double measured_gflops);

  /// Mean relative error of `op`'s current window (0 when empty).
  double mean_rel_error(std::string_view op) const;

  /// Forget every window — called after a hot swap so the successor model is
  /// judged only on its own predictions.
  void reset();

  const DriftConfig& config() const noexcept { return config_; }

 private:
  struct Window {
    std::vector<double> errors;  // ring of the last `window` rel errors
    std::size_t next = 0;
    std::size_t filled = 0;
  };

  DriftConfig config_;
  mutable sync::Mutex mutex_{lock_rank::Rank::drift};
  std::map<std::string, Window, std::less<>> per_op_ ISAAC_GUARDED_BY(mutex_);
};

struct RetrainConfig {
  /// Don't fold fewer observations than this into a retrain — a handful of
  /// samples would overfit the successor to one shape.
  std::size_t min_observations = 48;
  /// Warm-start optimizer settings. The delta dataset is small (a bounded
  /// log, not the offline corpus), so more epochs with a smaller batch and a
  /// hotter learning rate than offline training.
  int epochs = 30;
  int batch_size = 32;
  double learning_rate = 2e-3;
  /// A failed retrain (corrupt log fold, training blow-up) must not hot-loop
  /// the background worker: consecutive failures back off exponentially from
  /// `failure_backoff_ms` up to `failure_backoff_cap_ms` before the next
  /// attempt is scheduled. One success resets the streak.
  double failure_backoff_ms = 250.0;
  double failure_backoff_cap_ms = 30000.0;
};

class Retrainer {
 public:
  explicit Retrainer(RetrainConfig config = {});

  const RetrainConfig& config() const noexcept { return config_; }

  /// Fold `observations` into a dataset and warm-start-train `base`'s
  /// successor: version + 1, provenance source "warm_start". Throws
  /// std::invalid_argument when fewer than min_observations usable records
  /// survive the fold. Pure compute — safe to run on any thread while `base`
  /// keeps serving.
  mlp::VersionedModel retrain(const mlp::VersionedModel& base,
                              const std::vector<Observation>& observations) const;

 private:
  RetrainConfig config_;
};

}  // namespace isaac::tuning
