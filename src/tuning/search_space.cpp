#include "tuning/search_space.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace isaac::tuning {

namespace {

// Table 1's setup: "each parameter is constrained to be a power of two
// between 1 and 16" — literally, for every parameter. This includes values a
// curated candidate list would never offer (1-wide block tiles, U = 1), which
// is exactly what makes uniform sampling of X̂ so wasteful in the paper.
std::vector<int> maybe_cap(const std::vector<int>& values, bool cap16) {
  if (!cap16) return values;
  return {1, 2, 4, 8, 16};
}

// Saturating |X̂|: conv-scale domain sets can overflow 64 bits, and a
// silently wrapped size() corrupts budget clamps and flat-stride math
// downstream. SIZE_MAX is the explicit "too large to index flat" sentinel —
// consumers doing exact flat arithmetic (skeleton materialization, strided
// probing) must check for it and take the lazy-walk path instead.
std::size_t product_size(const std::vector<ParameterDomain>& domains) {
  std::size_t total = 1;
  for (const auto& d : domains) {
    if (__builtin_mul_overflow(total, d.values.size(), &total)) {
      return std::numeric_limits<std::size_t>::max();
    }
  }
  return total;
}

template <typename Decode>
void cartesian_for_each(const std::vector<ParameterDomain>& domains, const Decode& decode_fn) {
  std::vector<std::size_t> choice(domains.size(), 0);
  while (true) {
    if (!decode_fn(choice)) return;
    // odometer increment
    std::size_t d = 0;
    for (; d < domains.size(); ++d) {
      if (++choice[d] < domains[d].values.size()) break;
      choice[d] = 0;
    }
    if (d == domains.size()) return;
  }
}

/// Find each field value's index in its domain; false when any is absent.
bool encode_values(const std::vector<ParameterDomain>& domains, const std::vector<int>& values,
                   std::vector<std::size_t>& choice) {
  choice.assign(domains.size(), 0);
  for (std::size_t d = 0; d < domains.size(); ++d) {
    const auto& list = domains[d].values;
    const auto it = std::find(list.begin(), list.end(), values[d]);
    if (it == list.end()) return false;
    choice[d] = static_cast<std::size_t>(it - list.begin());
  }
  return true;
}

std::vector<std::size_t> uniform_choice(const std::vector<ParameterDomain>& domains, Rng& rng) {
  std::vector<std::size_t> choice(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    choice[d] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(domains[d].values.size()) - 1));
  }
  return choice;
}

// ------------------------------------------- prefix-constraint builders --
//
// Every predicate below is a *necessary* condition of the corresponding
// codegen::validate — mostly the validate checks themselves evaluated at the
// earliest dimension where their inputs are bound, plus monotone lower
// bounds (shared memory grows with every participating parameter, so
// substituting unbound domains' minima keeps a bound necessary; thread
// counts are bracketed via the micro-tile domains' extrema). The
// exhaustive-vs-pruned parity tests in tests/test_search.cpp are the proof
// these never drop a legal point.

constexpr std::size_t kNoDim = std::numeric_limits<std::size_t>::max();

std::size_t find_dim(const std::vector<ParameterDomain>& domains, const std::string& name) {
  for (std::size_t d = 0; d < domains.size(); ++d) {
    if (domains[d].name == name && !domains[d].values.empty()) return d;
  }
  return kNoDim;
}

int domain_min(const std::vector<ParameterDomain>& domains, std::size_t d) {
  return *std::min_element(domains[d].values.begin(), domains[d].values.end());
}

int domain_max(const std::vector<ParameterDomain>& domains, std::size_t d) {
  return *std::max_element(domains[d].values.begin(), domains[d].values.end());
}

bool is_pow2_value(int v) { return v > 0 && (v & (v - 1)) == 0; }

std::int64_t ceil_div64(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

/// Register a predicate whose support is `dims`, evaluated at the lowest of
/// them (the last to bind in the highest-dimension-first walk). Skipped
/// entirely when any referenced dimension is absent from this space — the
/// layer stays valid for restricted/renamed subclass spaces.
template <typename Check>
void add_pred(ConstraintSet& cs, const char* name, std::initializer_list<std::size_t> dims,
              Check check) {
  std::size_t lo = kNoDim;
  for (std::size_t d : dims) {
    if (d == kNoDim) return;
    lo = std::min(lo, d);
  }
  if (lo == kNoDim) return;
  cs.add(name, lo, std::move(check));
}

/// codegen::smem_bytes plus the occupancy by_smem clause: the double-buffered
/// staging tiles (and the KL reduction epilogue) must fit the per-block limit,
/// and one allocation-granular block must fit the SM. Pure-int mirror of
/// gemm.cpp/occupancy.cpp so it can run on partially bound prefixes.
bool smem_fits(std::int64_t ml, std::int64_t nl, std::int64_t u, std::int64_t kl, int dsize,
               int smem_per_block, int smem_per_sm, int smem_granularity) {
  const std::int64_t staging = (ml + nl) * u * kl * dsize * 2;
  const std::int64_t epilogue = kl > 1 ? ml * nl * 4 : 0;
  const std::int64_t smem = std::max(staging, epilogue);
  if (smem > smem_per_block) return false;
  if (smem > 0 && smem_per_sm > 0 && smem_granularity > 0) {
    if (ceil_div64(smem, smem_granularity) * smem_granularity > smem_per_sm) return false;
  }
  return true;
}

/// Thread-count corridor and the occupancy ceilings it implies, decidable
/// before the micro-tile (MS/NS-like) dimensions bind: with elems =
/// ML·NL·KL, threads = elems / (MS·NS) lies in [elems / (MS_max·NS_max),
/// elems], so elems < warp_size or elems > max_threads·MS_max·NS_max rules
/// out every completion; the implied warp-count lower bound must also clear
/// the per-SM warp-slot and register-file limits (registers never estimate
/// below codegen's floor of 24 per thread).
struct ThreadCorridor {
  std::int64_t micro_max = 1;        // MS_max · NS_max
  std::int64_t warp = 32;
  std::int64_t max_threads = 1024;
  std::int64_t max_warps = 64;
  std::int64_t regs_per_sm = 0;
  std::int64_t regs_warp_floor = 0;  // allocation-granular warp cost at 24 regs

  ThreadCorridor(const gpusim::DeviceDescriptor& dev, std::int64_t micro)
      : micro_max(micro),
        warp(dev.warp_size),
        max_threads(dev.max_threads_per_block),
        max_warps(dev.max_warps_per_sm),
        regs_per_sm(dev.registers_per_sm) {
    const std::int64_t gran = dev.reg_alloc_granularity;
    regs_warp_floor = gran > 0 ? ceil_div64(24 * warp, gran) * gran : 24 * warp;
  }

  bool plausible(std::int64_t elems) const {
    if (elems < warp) return false;
    if (elems > max_threads * micro_max) return false;
    const std::int64_t warps_lb = ceil_div64(elems, micro_max * warp);
    if (warps_lb > max_warps) return false;
    if (regs_per_sm > 0 && warps_lb * regs_warp_floor > regs_per_sm) return false;
    return true;
  }
};

ConstraintSet gemm_prefix_constraints(const std::vector<ParameterDomain>& domains,
                                      const codegen::GemmShape& shape,
                                      const gpusim::DeviceDescriptor& dev) {
  ConstraintSet cs;
  const std::size_t nd = domains.size();
  if (nd == 0) return cs;

  // Degenerate shape: nothing is legal. One constant predicate at the
  // outermost dimension prunes the whole walk in O(arity) instead of O(|X̂|).
  if (shape.m <= 0 || shape.n <= 0 || shape.k <= 0) {
    cs.add_unary("empty problem", nd - 1, [](const int*) { return false; });
    return cs;
  }

  const std::size_t ms = find_dim(domains, "ms"), ns = find_dim(domains, "ns"),
                    ml = find_dim(domains, "ml"), nl = find_dim(domains, "nl"),
                    u = find_dim(domains, "u"), ks = find_dim(domains, "ks"),
                    kl = find_dim(domains, "kl"), kg = find_dim(domains, "kg"),
                    vec = find_dim(domains, "vec");
  const int dsize = static_cast<int>(gpusim::dtype_size(shape.dtype));
  const std::int64_t k = shape.k;

  // Single-dimension conditions, decidable the moment each dimension binds.
  for (std::size_t d = 0; d < nd; ++d) {
    cs.add_unary(domains[d].name + " pow2", d, [d](const int* v) { return is_pow2_value(v[d]); });
  }
  if (vec != kNoDim) {
    cs.add_unary("vec<=128b", vec, [vec, dsize](const int* v) { return v[vec] * dsize <= 16; });
  }
  if (kg != kNoDim) {
    cs.add_unary("kg<=k", kg, [kg, k](const int* v) { return v[kg] <= k; });
    if (shape.dtype == gpusim::DataType::F16) {
      cs.add_unary("kg f16", kg, [kg](const int* v) { return v[kg] == 1; });
    }
  }

  const int smem_blk = dev.smem_per_block_bytes;
  const int smem_sm = dev.smem_per_sm_bytes;
  const int smem_gran = dev.smem_alloc_granularity;
  const std::int64_t warp = dev.warp_size;
  const std::int64_t maxt = dev.max_threads_per_block;

  // Multi-dimension conditions. When the space carries the full parameter
  // set, predicates sharing an evaluation dimension are fused into one gate
  // lambda — the walk's inner loop then pays a single indirect call per node
  // instead of one per condition. Each gate checks its conditions in guard
  // order (divisibility before the divisions that rely on it).
  if (ms != kNoDim && ns != kNoDim && ml != kNoDim && nl != kNoDim && u != kNoDim &&
      ks != kNoDim && kl != kNoDim && kg != kNoDim && vec != kNoDim) {
    const int ml_min = domain_min(domains, ml);
    const int nl_min = domain_min(domains, nl);
    const std::int64_t ms_min = domain_min(domains, ms);
    const std::int64_t ms_max = domain_max(domains, ms);
    const ThreadCorridor corridor(dev, ms_max * domain_max(domains, ns));

    // U gate: U%KS, reduction depth, and the smem lower bound at the
    // ML/NL domain minima.
    add_pred(cs, "u gate", {u, ks, kl, kg}, [=](const int* v) {
      if (v[u] % v[ks] != 0) return false;
      if (std::int64_t{v[u]} * v[kl] >
          std::max<std::int64_t>(ceil_div64(k, std::max(v[kg], 1)), 1)) {
        return false;
      }
      return smem_fits(ml_min, nl_min, v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran);
    });
    add_pred(cs, "smem lb@nl", {nl, u, kl}, [=](const int* v) {
      return smem_fits(ml_min, v[nl], v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran);
    });
    // ML gate: exact shared memory plus the coarse thread-count corridor.
    add_pred(cs, "ml gate", {ml, nl, u, kl}, [=](const int* v) {
      if (!smem_fits(v[ml], v[nl], v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran)) {
        return false;
      }
      return corridor.plausible(std::int64_t{v[ml]} * v[nl] * v[kl]);
    });
    // NS gate: NL%NS, the unroll lower bound at MS_min, and the corridor
    // tightened to MS's domain range (threads = ML·NL·KL / (MS·NS);
    // multiplication-form bounds stay exact in int64).
    add_pred(cs, "ns gate", {ns, ml, nl, u, kl}, [=](const int* v) {
      if (v[nl] % v[ns] != 0) return false;
      if (std::int64_t{v[u]} * (ms_min * v[ns] + ms_min + v[ns]) > 4096) return false;
      const std::int64_t e = std::int64_t{v[ml]} * v[nl] * v[kl];
      return e >= warp * v[ns] * ms_min && e <= maxt * v[ns] * ms_max;
    });
    // MS gate (leaf): ML%MS, the exact unroll budget, then the exact block
    // geometry — threads range / warp multiple / prefetch-tile divisibility
    // in pure integer math, so the large share of X̂ failing them never
    // reaches the string-formatting validate slow path.
    add_pred(cs, "ms gate", {ms, ns, ml, nl, u, kl, vec}, [=](const int* v) {
      if (v[ml] % v[ms] != 0) return false;
      if (std::int64_t{v[u]} * (std::int64_t{v[ms]} * v[ns] + v[ms] + v[ns]) > 4096) {
        return false;
      }
      const std::int64_t threads = (std::int64_t{v[ml]} / v[ms]) * (v[nl] / v[ns]) * v[kl];
      if (threads < warp || threads > maxt || threads % warp != 0) return false;
      const std::int64_t ta = std::int64_t{v[ml]} * v[u] * v[kl];
      const std::int64_t tb = std::int64_t{v[nl]} * v[u] * v[kl];
      if (ta % threads != 0 || tb % threads != 0) return false;
      return (ta / threads) % v[vec] == 0 && (tb / threads) % v[vec] == 0;
    });
    return cs;
  }

  // Generic fallback for restricted spaces missing dimensions: the same
  // conditions as individual predicates, each skipped when its support is
  // absent.
  add_pred(cs, "u%ks", {u, ks}, [u, ks](const int* v) { return v[u] % v[ks] == 0; });
  add_pred(cs, "u*kl<=k/kg", {u, kl, kg}, [u, kl, kg, k](const int* v) {
    return std::int64_t{v[u]} * v[kl] <=
           std::max<std::int64_t>(ceil_div64(k, std::max(v[kg], 1)), 1);
  });
  add_pred(cs, "smem", {ml, nl, u, kl}, [=](const int* v) {
    return smem_fits(v[ml], v[nl], v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran);
  });
  if (ml != kNoDim) {
    const int ml_min = domain_min(domains, ml);
    add_pred(cs, "smem lb@nl", {nl, u, kl}, [=](const int* v) {
      return smem_fits(ml_min, v[nl], v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran);
    });
    if (nl != kNoDim) {
      const int nl_min = domain_min(domains, nl);
      add_pred(cs, "smem lb@u", {u, kl}, [=](const int* v) {
        return smem_fits(ml_min, nl_min, v[u], v[kl], dsize, smem_blk, smem_sm, smem_gran);
      });
    }
  }
  if (ms != kNoDim && ns != kNoDim) {
    const ThreadCorridor corridor(
        dev, std::int64_t{domain_max(domains, ms)} * domain_max(domains, ns));
    add_pred(cs, "threads", {ml, nl, kl}, [=](const int* v) {
      return corridor.plausible(std::int64_t{v[ml]} * v[nl] * v[kl]);
    });
  }
  if (ms != kNoDim) {
    const std::int64_t ms_min = domain_min(domains, ms);
    add_pred(cs, "unroll lb@ns", {ns, u}, [=](const int* v) {
      return std::int64_t{v[u]} * (ms_min * v[ns] + ms_min + v[ns]) <= 4096;
    });
  }
  add_pred(cs, "unroll", {ms, ns, u}, [=](const int* v) {
    return std::int64_t{v[u]} * (std::int64_t{v[ms]} * v[ns] + v[ms] + v[ns]) <= 4096;
  });
  add_pred(cs, "nl%ns", {nl, ns}, [=](const int* v) { return v[nl] % v[ns] == 0; });
  add_pred(cs, "ml%ms", {ml, ms}, [=](const int* v) { return v[ml] % v[ms] == 0; });

  return cs;
}

ConstraintSet conv_prefix_constraints(const std::vector<ParameterDomain>& domains,
                                      const codegen::ConvShape& shape,
                                      const gpusim::DeviceDescriptor& dev) {
  ConstraintSet cs;
  const std::size_t nd = domains.size();
  if (nd == 0) return cs;

  if (shape.n <= 0 || shape.c <= 0 || shape.k <= 0 || shape.p() <= 0 || shape.q() <= 0) {
    cs.add_unary("empty problem", nd - 1, [](const int*) { return false; });
    return cs;
  }

  const std::size_t tk = find_dim(domains, "tk"), tp = find_dim(domains, "tp"),
                    tq = find_dim(domains, "tq"), tn = find_dim(domains, "tn"),
                    bk = find_dim(domains, "bk"), bp = find_dim(domains, "bp"),
                    bq = find_dim(domains, "bq"), bn = find_dim(domains, "bn"),
                    u = find_dim(domains, "u"), cl = find_dim(domains, "cl"),
                    cg = find_dim(domains, "cg");
  const int dsize = static_cast<int>(gpusim::dtype_size(shape.dtype));
  const std::int64_t crs = shape.crs();

  // The lowering multiplies thread/block tiles into the GEMM's MS/ML, and a
  // product of positive ints is a power of two iff every factor is — so
  // per-dimension pow2 stays a necessary condition of the lowered validate.
  for (std::size_t d = 0; d < nd; ++d) {
    cs.add_unary(domains[d].name + " pow2", d, [d](const int* v) { return is_pow2_value(v[d]); });
  }

  // Conv-specific output-extent checks, each decidable at its own dimension.
  const std::int64_t p2 = 2 * shape.p(), q2 = 2 * shape.q(), n2 = 2 * shape.n;
  if (bp != kNoDim) cs.add_unary("bp<=2P", bp, [bp, p2](const int* v) { return v[bp] <= p2; });
  if (bq != kNoDim) cs.add_unary("bq<=2Q", bq, [bq, q2](const int* v) { return v[bq] <= q2; });
  if (bn != kNoDim) cs.add_unary("bn<=2N", bn, [bn, n2](const int* v) { return v[bn] <= n2; });

  // Reduction split over C·R·S (the lowering's K).
  if (cg != kNoDim) {
    cs.add_unary("cg<=crs", cg, [cg, crs](const int* v) { return v[cg] <= crs; });
    if (shape.dtype == gpusim::DataType::F16) {
      cs.add_unary("cg f16", cg, [cg](const int* v) { return v[cg] == 1; });
    }
  }
  add_pred(cs, "u*cl<=crs/cg", {u, cl, cg}, [u, cl, cg, crs](const int* v) {
    return std::int64_t{v[u]} * v[cl] <=
           std::max<std::int64_t>(ceil_div64(crs, std::max(v[cg], 1)), 1);
  });

  // Shared memory through the lowering (ML = BP·BQ·BN, NL = BK, KL = CL):
  // exact once BK binds, lower-bounded at BN and BQ via domain minima.
  const int smem_blk = dev.smem_per_block_bytes;
  const int smem_sm = dev.smem_per_sm_bytes;
  const int smem_gran = dev.smem_alloc_granularity;
  const std::int64_t warp = dev.warp_size;
  const std::int64_t maxt = dev.max_threads_per_block;

  // Fused per-bucket gates when the space carries the full parameter set
  // (one indirect call per walk node — see the GEMM builder for the scheme);
  // individual predicates otherwise.
  if (tk != kNoDim && tp != kNoDim && tq != kNoDim && tn != kNoDim && bk != kNoDim &&
      bp != kNoDim && bq != kNoDim && bn != kNoDim && u != kNoDim && cl != kNoDim) {
    const int bk_min = domain_min(domains, bk);
    const std::int64_t bp_min = domain_min(domains, bp);
    const std::int64_t bpq_min = bp_min * domain_min(domains, bq);
    const std::int64_t tk_min = domain_min(domains, tk), tk_max = domain_max(domains, tk);
    const std::int64_t tp_min = domain_min(domains, tp), tp_max = domain_max(domains, tp);
    const std::int64_t tq_min = domain_min(domains, tq), tq_max = domain_max(domains, tq);
    const ThreadCorridor corridor(
        dev, tk_max * tp_max * tq_max * domain_max(domains, tn));
    const auto elems = [=](const int* v) {
      return std::int64_t{v[bk]} * v[bp] * v[bq] * v[bn] * v[cl];
    };

    add_pred(cs, "smem lb@bn", {bn, u, cl}, [=](const int* v) {
      return smem_fits(bpq_min * v[bn], bk_min, v[u], v[cl], dsize, smem_blk, smem_sm,
                       smem_gran);
    });
    add_pred(cs, "smem lb@bq", {bq, bn, u, cl}, [=](const int* v) {
      return smem_fits(bp_min * v[bq] * v[bn], bk_min, v[u], v[cl], dsize, smem_blk, smem_sm,
                       smem_gran);
    });
    add_pred(cs, "smem lb@bp", {bp, bq, bn, u, cl}, [=](const int* v) {
      return smem_fits(std::int64_t{v[bp]} * v[bq] * v[bn], bk_min, v[u], v[cl], dsize,
                       smem_blk, smem_sm, smem_gran);
    });
    // BK gate: exact shared memory plus the coarse thread-count corridor.
    add_pred(cs, "bk gate", {bk, bp, bq, bn, u, cl}, [=](const int* v) {
      if (!smem_fits(std::int64_t{v[bp]} * v[bq] * v[bn], v[bk], v[u], v[cl], dsize, smem_blk,
                     smem_sm, smem_gran)) {
        return false;
      }
      return corridor.plausible(elems(v));
    });
    // Micro-tile gates: thread-tile divisibility fused with the corridor
    // progressively tightened as each dimension binds (threads =
    // E / (TN·TQ·TP·TK) with E = BK·BP·BQ·BN·CL; multiplication-form bounds
    // stay exact in int64), the unroll budget once TP binds, and at the TK
    // leaf the exact lowered block geometry — threads range / warp multiple /
    // prefetch-tile divisibility in pure integer math, so the large share of
    // X̂ failing them never reaches the string-formatting validate slow path.
    // Every value the gates read has already passed its pow2 unary mask, so
    // tile divisibility (a % b == 0) reduces to a comparison (a >= b) — for
    // positive powers of two the two are equivalent, and for the value 0
    // (conceivable only in subclass domains, where pow2 masking kills it
    // first anyway) the comparison is the stricter side, which can never
    // drop a validate-legal point. This removes one integer division per
    // node from the walk's hottest levels.
    add_pred(cs, "tn gate", {tn, bk, bp, bq, bn, cl}, [=](const int* v) {
      if (v[bn] < v[tn]) return false;
      const std::int64_t e = elems(v);
      return e >= warp * v[tn] * tp_min * tq_min * tk_min &&
             e <= maxt * v[tn] * tp_max * tq_max * tk_max;
    });
    add_pred(cs, "tq gate", {tq, tn, bk, bp, bq, bn, cl}, [=](const int* v) {
      if (v[bq] < v[tq]) return false;
      const std::int64_t d = std::int64_t{v[tq]} * v[tn];
      const std::int64_t e = elems(v);
      return e >= warp * d * tp_min * tk_min && e <= maxt * d * tp_max * tk_max;
    });
    add_pred(cs, "tp gate", {tp, tq, tn, bk, bp, bq, bn, u, cl}, [=](const int* v) {
      if (v[bp] < v[tp]) return false;
      const std::int64_t msv = std::int64_t{v[tp]} * v[tq] * v[tn];
      if (std::int64_t{v[u]} * (msv * tk_min + msv + tk_min) > 4096) return false;
      const std::int64_t e = elems(v);
      return e >= warp * msv * tk_min && e <= maxt * msv * tk_max;
    });
    // Register pressure through the lowering, mirroring codegen's
    // estimate_registers in pure ints. CG is still unbound at the TK leaf, so
    // its addressing term is taken at the minimum (CG = 1 contributes 0) —
    // the estimate is a lower bound and the limit checks stay necessary. The
    // lowered conv GEMM is always NT (trans_a = false, trans_b = true), which
    // contributes no addressing registers.
    const bool f64 = shape.dtype == gpusim::DataType::F64;
    const bool f16 = shape.dtype == gpusim::DataType::F16;
    const std::int64_t max_regs = dev.max_registers_per_thread;
    // Occupancy's by_regs >= 1 clause, inverted per warps-per-block:
    // round_up(r·warp, gran)·wpb <= regs_sm  ⟺  r·warp <= gran-floor of
    // regs_sm / wpb. Tabulated once so the gate pays an array lookup instead
    // of a rounding division per node.
    const std::int64_t wpb_cap =
        std::min<std::int64_t>(dev.max_warps_per_sm, warp > 0 ? maxt / warp : 0);
    std::vector<std::int64_t> max_rw(
        static_cast<std::size_t>(std::max<std::int64_t>(wpb_cap, 0)) + 1, 0);
    for (std::size_t w = 1; w < max_rw.size(); ++w) {
      if (dev.registers_per_sm <= 0) {
        max_rw[w] = std::int64_t{1} << 62;  // unknown register file: no bound
      } else {
        const std::int64_t per_block = dev.registers_per_sm / static_cast<std::int64_t>(w);
        const std::int64_t gran = dev.reg_alloc_granularity;
        max_rw[w] = gran > 0 ? per_block / gran * gran : per_block;
      }
    }
    add_pred(cs, "tk gate", {tk, tp, tq, tn, bk, bp, bq, bn, u, cl}, [=](const int* v) {
      if (v[bk] < v[tk]) return false;  // BK % TK for pow2 values
      const std::int64_t msv = std::int64_t{v[tp]} * v[tq] * v[tn];
      const std::int64_t nsv = v[tk];
      if (std::int64_t{v[u]} * (msv * nsv + msv + nsv) > 4096) return false;
      const std::int64_t mlv = std::int64_t{v[bp]} * v[bq] * v[bn];
      // Exact for pow2 values with ML >= MS and BK >= TK (both established by
      // the earlier comparison gates), matching threads_per_block().
      const std::int64_t threads = mlv * v[bk] * v[cl] / (msv * nsv);
      if (threads < warp || threads > maxt || threads % warp != 0) return false;
      // Prefetch-tile divisibility: tile_a/threads = U·MS·NS/NL and
      // tile_b/threads = U·MS·NS/ML are exact pow2 quotients, integer iff
      // the numerator covers the divisor. (VEC is pinned to 1 by the
      // lowering, so the per-thread vector-width clause is vacuous.)
      const std::int64_t un = v[u] * msv * nsv;
      if (un < v[bk] || un < mlv) return false;
      // Register pressure through the lowering, mirroring codegen's
      // estimate_registers in pure ints. CG is still unbound at the TK leaf,
      // so its addressing term is taken at the minimum (CG = 1 contributes
      // 0) — the estimate is a lower bound and the limit checks stay
      // necessary. The lowered conv GEMM is always NT (trans_a = false,
      // trans_b = true), which contributes no addressing registers.
      const int dw = f64 ? 2 : 1;
      std::int64_t acc = msv * nsv * dw;
      if (f16 && nsv % 2 == 0) acc = (acc + 1) / 2;
      const std::int64_t fetch_elems = ceil_div64((mlv + v[bk]) * v[u] * v[cl], threads);
      const std::int64_t fetch =
          (msv + nsv) * dw + std::max<std::int64_t>(2, fetch_elems) * dw;
      const std::int64_t regs_lb =
          std::max<std::int64_t>(24, acc + fetch + 18 + (v[cl] > 1 ? 4 : 0));
      if (regs_lb > max_regs) return false;
      const std::int64_t wpb = threads / warp;
      if (wpb >= static_cast<std::int64_t>(max_rw.size())) return false;
      return regs_lb * warp <= max_rw[static_cast<std::size_t>(wpb)];
    });
    return cs;
  }

  // Generic fallback for restricted spaces missing dimensions.
  add_pred(cs, "smem", {bk, bp, bq, bn, u, cl}, [=](const int* v) {
    return smem_fits(std::int64_t{v[bp]} * v[bq] * v[bn], v[bk], v[u], v[cl], dsize, smem_blk,
                     smem_sm, smem_gran);
  });
  if (bk != kNoDim) {
    const int bk_min = domain_min(domains, bk);
    add_pred(cs, "smem lb@bp", {bp, bq, bn, u, cl}, [=](const int* v) {
      return smem_fits(std::int64_t{v[bp]} * v[bq] * v[bn], bk_min, v[u], v[cl], dsize,
                       smem_blk, smem_sm, smem_gran);
    });
    if (bp != kNoDim) {
      const std::int64_t bp_min = domain_min(domains, bp);
      add_pred(cs, "smem lb@bq", {bq, bn, u, cl}, [=](const int* v) {
        return smem_fits(bp_min * v[bq] * v[bn], bk_min, v[u], v[cl], dsize, smem_blk, smem_sm,
                         smem_gran);
      });
      if (bq != kNoDim) {
        const std::int64_t t_min = bp_min * domain_min(domains, bq);
        add_pred(cs, "smem lb@bn", {bn, u, cl}, [=](const int* v) {
          return smem_fits(t_min * v[bn], bk_min, v[u], v[cl], dsize, smem_blk, smem_sm,
                           smem_gran);
        });
      }
    }
  }
  if (tk != kNoDim && tp != kNoDim && tq != kNoDim && tn != kNoDim) {
    const ThreadCorridor corridor(dev, std::int64_t{domain_max(domains, tk)} *
                                           domain_max(domains, tp) * domain_max(domains, tq) *
                                           domain_max(domains, tn));
    add_pred(cs, "threads", {bk, bp, bq, bn, cl}, [=](const int* v) {
      return corridor.plausible(std::int64_t{v[bk]} * v[bp] * v[bq] * v[bn] * v[cl]);
    });
  }
  add_pred(cs, "bn%tn", {bn, tn}, [=](const int* v) { return v[bn] % v[tn] == 0; });
  add_pred(cs, "bq%tq", {bq, tq}, [=](const int* v) { return v[bq] % v[tq] == 0; });
  add_pred(cs, "bp%tp", {bp, tp}, [=](const int* v) { return v[bp] % v[tp] == 0; });
  add_pred(cs, "bk%tk", {bk, tk}, [=](const int* v) { return v[bk] % v[tk] == 0; });
  if (tk != kNoDim) {
    const std::int64_t tk_min = domain_min(domains, tk);
    add_pred(cs, "unroll lb@tp", {tp, tq, tn, u}, [=](const int* v) {
      const std::int64_t msv = std::int64_t{v[tp]} * v[tq] * v[tn];
      return std::int64_t{v[u]} * (msv * tk_min + msv + tk_min) <= 4096;
    });
  }
  add_pred(cs, "unroll", {tk, tp, tq, tn, u}, [=](const int* v) {
    const std::int64_t msv = std::int64_t{v[tp]} * v[tq] * v[tn];
    const std::int64_t nsv = v[tk];
    return std::int64_t{v[u]} * (msv * nsv + msv + nsv) <= 4096;
  });

  return cs;
}

}  // namespace

void ConstraintSet::add(std::string name, std::size_t eval_dim,
                        std::function<bool(const int*)> check) {
  if (by_dim_.size() <= eval_dim) by_dim_.resize(eval_dim + 1);
  if (multi_by_dim_.size() <= eval_dim) multi_by_dim_.resize(eval_dim + 1);
  multi_by_dim_[eval_dim].push_back(check);
  by_dim_[eval_dim].push_back({std::move(name), eval_dim, false, std::move(check)});
  ++count_;
}

void ConstraintSet::add_unary(std::string name, std::size_t eval_dim,
                              std::function<bool(const int*)> check) {
  if (by_dim_.size() <= eval_dim) by_dim_.resize(eval_dim + 1);
  by_dim_[eval_dim].push_back({std::move(name), eval_dim, true, std::move(check)});
  ++count_;
  has_unary_ = true;
}

std::vector<std::vector<unsigned char>> ConstraintSet::value_masks(
    const std::vector<ParameterDomain>& domains) const {
  std::vector<std::vector<unsigned char>> masks;
  if (!has_unary_) return masks;
  masks.resize(domains.size());
  // A unary predicate reads only values[eval_dim], so evaluating it with the
  // rest of the scratch buffer zeroed is exact.
  std::vector<int> scratch(domains.size(), 0);
  for (std::size_t d = 0; d < domains.size(); ++d) {
    const auto& vals = domains[d].values;
    masks[d].assign(vals.size(), 1);
    if (d >= by_dim_.size()) continue;
    for (const auto& p : by_dim_[d]) {
      if (!p.unary) continue;
      for (std::size_t i = 0; i < vals.size(); ++i) {
        if (!masks[d][i]) continue;
        scratch[d] = vals[i];
        if (!p.check(scratch.data())) masks[d][i] = 0;
      }
    }
  }
  return masks;
}

// ------------------------------------------------------------------- GEMM --

GemmSearchSpace::GemmSearchSpace(bool cap16) {
  using T = codegen::GemmTuning;
  domains_ = {
      {"ms", maybe_cap(T::candidates_ms(), cap16)},
      {"ns", maybe_cap(T::candidates_ns(), cap16)},
      {"ml", maybe_cap(T::candidates_ml(), cap16)},
      {"nl", maybe_cap(T::candidates_nl(), cap16)},
      {"u", maybe_cap(T::candidates_u(), cap16)},
      {"ks", maybe_cap(T::candidates_ks(), cap16)},
      {"kl", maybe_cap(T::candidates_kl(), cap16)},
      {"kg", maybe_cap(T::candidates_kg(), cap16)},
      {"vec", maybe_cap(T::candidates_vec(), cap16)},
  };
}

std::size_t GemmSearchSpace::size() const noexcept { return product_size(domains_); }

codegen::GemmTuning GemmSearchSpace::decode(const std::vector<std::size_t>& choice) const {
  if (choice.size() != domains_.size()) throw std::invalid_argument("decode: arity mismatch");
  codegen::GemmTuning t;
  t.ms = domains_[0].values[choice[0]];
  t.ns = domains_[1].values[choice[1]];
  t.ml = domains_[2].values[choice[2]];
  t.nl = domains_[3].values[choice[3]];
  t.u = domains_[4].values[choice[4]];
  t.ks = domains_[5].values[choice[5]];
  t.kl = domains_[6].values[choice[6]];
  t.kg = domains_[7].values[choice[7]];
  t.vec = domains_[8].values[choice[8]];
  return t;
}

bool GemmSearchSpace::encode(const codegen::GemmTuning& t,
                             std::vector<std::size_t>& choice) const {
  return encode_values(domains_, {t.ms, t.ns, t.ml, t.nl, t.u, t.ks, t.kl, t.kg, t.vec},
                       choice);
}

codegen::GemmTuning GemmSearchSpace::sample_uniform(Rng& rng,
                                                    std::vector<std::size_t>* choice) const {
  auto c = uniform_choice(domains_, rng);
  if (choice) *choice = c;
  return decode(c);
}

void GemmSearchSpace::for_each(
    const std::function<bool(const codegen::GemmTuning&)>& fn) const {
  cartesian_for_each(domains_,
                     [&](const std::vector<std::size_t>& choice) { return fn(decode(choice)); });
}

ConstraintSet GemmSearchSpace::prefix_constraints(const codegen::GemmShape& shape,
                                                  const gpusim::DeviceDescriptor& dev) const {
  return gemm_prefix_constraints(domains_, shape, dev);
}

void GemmSearchSpace::for_each_legal(
    const codegen::GemmShape& shape, const gpusim::DeviceDescriptor& dev,
    const std::function<bool(const codegen::GemmTuning&)>& fn) const {
  const ConstraintSet cs = prefix_constraints(shape, dev);
  walk_legal(domains_, cs.empty() ? nullptr : &cs,
             [&](const std::vector<std::size_t>& choice, std::uint64_t) {
               const codegen::GemmTuning t = decode(choice);
               if (!codegen::validate(shape, t, dev)) return true;
               return fn(t);
             });
}

// --------------------------------------------------------------- BATCHED --

BatchedGemmSearchSpace::BatchedGemmSearchSpace(bool cap16) : GemmSearchSpace(cap16) {
  for (auto& d : domains_) {
    if (d.name == "kg") d.values = {1};
  }
}

// ------------------------------------------------------------------- CONV --

ConvSearchSpace::ConvSearchSpace(bool cap16) {
  using T = codegen::ConvTuning;
  domains_ = {
      {"tk", maybe_cap(T::candidates_tk(), cap16)},
      {"tp", maybe_cap(T::candidates_tp(), cap16)},
      {"tq", maybe_cap(T::candidates_tq(), cap16)},
      {"tn", maybe_cap(T::candidates_tn(), cap16)},
      {"bk", maybe_cap(T::candidates_bk(), cap16)},
      {"bp", maybe_cap(T::candidates_bp(), cap16)},
      {"bq", maybe_cap(T::candidates_bq(), cap16)},
      {"bn", maybe_cap(T::candidates_bn(), cap16)},
      {"u", maybe_cap(T::candidates_u(), cap16)},
      {"cl", maybe_cap(T::candidates_cl(), cap16)},
      {"cg", maybe_cap(T::candidates_cg(), cap16)},
  };
}

std::size_t ConvSearchSpace::size() const noexcept { return product_size(domains_); }

codegen::ConvTuning ConvSearchSpace::decode(const std::vector<std::size_t>& choice) const {
  if (choice.size() != domains_.size()) throw std::invalid_argument("decode: arity mismatch");
  codegen::ConvTuning t;
  t.tk = domains_[0].values[choice[0]];
  t.tp = domains_[1].values[choice[1]];
  t.tq = domains_[2].values[choice[2]];
  t.tn = domains_[3].values[choice[3]];
  t.bk = domains_[4].values[choice[4]];
  t.bp = domains_[5].values[choice[5]];
  t.bq = domains_[6].values[choice[6]];
  t.bn = domains_[7].values[choice[7]];
  t.u = domains_[8].values[choice[8]];
  t.cl = domains_[9].values[choice[9]];
  t.cg = domains_[10].values[choice[10]];
  return t;
}

bool ConvSearchSpace::encode(const codegen::ConvTuning& t,
                             std::vector<std::size_t>& choice) const {
  return encode_values(domains_,
                       {t.tk, t.tp, t.tq, t.tn, t.bk, t.bp, t.bq, t.bn, t.u, t.cl, t.cg},
                       choice);
}

codegen::ConvTuning ConvSearchSpace::sample_uniform(Rng& rng,
                                                    std::vector<std::size_t>* choice) const {
  auto c = uniform_choice(domains_, rng);
  if (choice) *choice = c;
  return decode(c);
}

void ConvSearchSpace::for_each(
    const std::function<bool(const codegen::ConvTuning&)>& fn) const {
  cartesian_for_each(domains_,
                     [&](const std::vector<std::size_t>& choice) { return fn(decode(choice)); });
}

ConstraintSet ConvSearchSpace::prefix_constraints(const codegen::ConvShape& shape,
                                                  const gpusim::DeviceDescriptor& dev) const {
  return conv_prefix_constraints(domains_, shape, dev);
}

void ConvSearchSpace::for_each_legal(
    const codegen::ConvShape& shape, const gpusim::DeviceDescriptor& dev,
    const std::function<bool(const codegen::ConvTuning&)>& fn) const {
  const ConstraintSet cs = prefix_constraints(shape, dev);
  walk_legal(domains_, cs.empty() ? nullptr : &cs,
             [&](const std::vector<std::size_t>& choice, std::uint64_t) {
               const codegen::ConvTuning t = decode(choice);
               if (!codegen::validate(shape, t, dev)) return true;
               return fn(t);
             });
}

}  // namespace isaac::tuning
