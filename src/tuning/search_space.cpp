#include "tuning/search_space.hpp"

#include <algorithm>
#include <stdexcept>

namespace isaac::tuning {

namespace {

// Table 1's setup: "each parameter is constrained to be a power of two
// between 1 and 16" — literally, for every parameter. This includes values a
// curated candidate list would never offer (1-wide block tiles, U = 1), which
// is exactly what makes uniform sampling of X̂ so wasteful in the paper.
std::vector<int> maybe_cap(const std::vector<int>& values, bool cap16) {
  if (!cap16) return values;
  return {1, 2, 4, 8, 16};
}

std::size_t product_size(const std::vector<ParameterDomain>& domains) {
  std::size_t total = 1;
  for (const auto& d : domains) total *= d.values.size();
  return total;
}

template <typename Decode>
void cartesian_for_each(const std::vector<ParameterDomain>& domains, const Decode& decode_fn) {
  std::vector<std::size_t> choice(domains.size(), 0);
  while (true) {
    if (!decode_fn(choice)) return;
    // odometer increment
    std::size_t d = 0;
    for (; d < domains.size(); ++d) {
      if (++choice[d] < domains[d].values.size()) break;
      choice[d] = 0;
    }
    if (d == domains.size()) return;
  }
}

/// Find each field value's index in its domain; false when any is absent.
bool encode_values(const std::vector<ParameterDomain>& domains, const std::vector<int>& values,
                   std::vector<std::size_t>& choice) {
  choice.assign(domains.size(), 0);
  for (std::size_t d = 0; d < domains.size(); ++d) {
    const auto& list = domains[d].values;
    const auto it = std::find(list.begin(), list.end(), values[d]);
    if (it == list.end()) return false;
    choice[d] = static_cast<std::size_t>(it - list.begin());
  }
  return true;
}

std::vector<std::size_t> uniform_choice(const std::vector<ParameterDomain>& domains, Rng& rng) {
  std::vector<std::size_t> choice(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    choice[d] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(domains[d].values.size()) - 1));
  }
  return choice;
}

}  // namespace

// ------------------------------------------------------------------- GEMM --

GemmSearchSpace::GemmSearchSpace(bool cap16) {
  using T = codegen::GemmTuning;
  domains_ = {
      {"ms", maybe_cap(T::candidates_ms(), cap16)},
      {"ns", maybe_cap(T::candidates_ns(), cap16)},
      {"ml", maybe_cap(T::candidates_ml(), cap16)},
      {"nl", maybe_cap(T::candidates_nl(), cap16)},
      {"u", maybe_cap(T::candidates_u(), cap16)},
      {"ks", maybe_cap(T::candidates_ks(), cap16)},
      {"kl", maybe_cap(T::candidates_kl(), cap16)},
      {"kg", maybe_cap(T::candidates_kg(), cap16)},
      {"vec", maybe_cap(T::candidates_vec(), cap16)},
  };
}

std::size_t GemmSearchSpace::size() const noexcept { return product_size(domains_); }

codegen::GemmTuning GemmSearchSpace::decode(const std::vector<std::size_t>& choice) const {
  if (choice.size() != domains_.size()) throw std::invalid_argument("decode: arity mismatch");
  codegen::GemmTuning t;
  t.ms = domains_[0].values[choice[0]];
  t.ns = domains_[1].values[choice[1]];
  t.ml = domains_[2].values[choice[2]];
  t.nl = domains_[3].values[choice[3]];
  t.u = domains_[4].values[choice[4]];
  t.ks = domains_[5].values[choice[5]];
  t.kl = domains_[6].values[choice[6]];
  t.kg = domains_[7].values[choice[7]];
  t.vec = domains_[8].values[choice[8]];
  return t;
}

bool GemmSearchSpace::encode(const codegen::GemmTuning& t,
                             std::vector<std::size_t>& choice) const {
  return encode_values(domains_, {t.ms, t.ns, t.ml, t.nl, t.u, t.ks, t.kl, t.kg, t.vec},
                       choice);
}

codegen::GemmTuning GemmSearchSpace::sample_uniform(Rng& rng,
                                                    std::vector<std::size_t>* choice) const {
  auto c = uniform_choice(domains_, rng);
  if (choice) *choice = c;
  return decode(c);
}

void GemmSearchSpace::for_each(
    const std::function<bool(const codegen::GemmTuning&)>& fn) const {
  cartesian_for_each(domains_,
                     [&](const std::vector<std::size_t>& choice) { return fn(decode(choice)); });
}

// --------------------------------------------------------------- BATCHED --

BatchedGemmSearchSpace::BatchedGemmSearchSpace(bool cap16) : GemmSearchSpace(cap16) {
  for (auto& d : domains_) {
    if (d.name == "kg") d.values = {1};
  }
}

// ------------------------------------------------------------------- CONV --

ConvSearchSpace::ConvSearchSpace(bool cap16) {
  using T = codegen::ConvTuning;
  domains_ = {
      {"tk", maybe_cap(T::candidates_tk(), cap16)},
      {"tp", maybe_cap(T::candidates_tp(), cap16)},
      {"tq", maybe_cap(T::candidates_tq(), cap16)},
      {"tn", maybe_cap(T::candidates_tn(), cap16)},
      {"bk", maybe_cap(T::candidates_bk(), cap16)},
      {"bp", maybe_cap(T::candidates_bp(), cap16)},
      {"bq", maybe_cap(T::candidates_bq(), cap16)},
      {"bn", maybe_cap(T::candidates_bn(), cap16)},
      {"u", maybe_cap(T::candidates_u(), cap16)},
      {"cl", maybe_cap(T::candidates_cl(), cap16)},
      {"cg", maybe_cap(T::candidates_cg(), cap16)},
  };
}

std::size_t ConvSearchSpace::size() const noexcept { return product_size(domains_); }

codegen::ConvTuning ConvSearchSpace::decode(const std::vector<std::size_t>& choice) const {
  if (choice.size() != domains_.size()) throw std::invalid_argument("decode: arity mismatch");
  codegen::ConvTuning t;
  t.tk = domains_[0].values[choice[0]];
  t.tp = domains_[1].values[choice[1]];
  t.tq = domains_[2].values[choice[2]];
  t.tn = domains_[3].values[choice[3]];
  t.bk = domains_[4].values[choice[4]];
  t.bp = domains_[5].values[choice[5]];
  t.bq = domains_[6].values[choice[6]];
  t.bn = domains_[7].values[choice[7]];
  t.u = domains_[8].values[choice[8]];
  t.cl = domains_[9].values[choice[9]];
  t.cg = domains_[10].values[choice[10]];
  return t;
}

bool ConvSearchSpace::encode(const codegen::ConvTuning& t,
                             std::vector<std::size_t>& choice) const {
  return encode_values(domains_,
                       {t.tk, t.tp, t.tq, t.tn, t.bk, t.bp, t.bq, t.bn, t.u, t.cl, t.cg},
                       choice);
}

codegen::ConvTuning ConvSearchSpace::sample_uniform(Rng& rng,
                                                    std::vector<std::size_t>* choice) const {
  auto c = uniform_choice(domains_, rng);
  if (choice) *choice = c;
  return decode(c);
}

void ConvSearchSpace::for_each(
    const std::function<bool(const codegen::ConvTuning&)>& fn) const {
  cartesian_for_each(domains_,
                     [&](const std::vector<std::size_t>& choice) { return fn(decode(choice)); });
}

}  // namespace isaac::tuning
