// Flat row-major feature storage for whole-space model scoring.
//
// The ranking hot path scores hundreds of thousands of candidates per
// dispatch; a vector-of-vectors representation costs one heap allocation and
// one pointer chase per candidate. FeatureBatch keeps every row in a single
// contiguous `rows × arity` double buffer: producers write rows in place
// through `row(i)` (OperationTraits<Op>::featurize_into), consumers stream
// the whole batch with one pointer walk, and `clear()`/`resize()` recycle
// capacity so a reused batch allocates only when it grows past its largest
// prior extent.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace isaac::tuning {

class FeatureBatch {
 public:
  FeatureBatch() = default;
  explicit FeatureBatch(std::size_t arity, std::size_t rows = 0) { reset(arity, rows); }

  /// Re-arm for a new batch: sets the arity, sizes to `rows` zero rows, keeps
  /// whatever capacity earlier batches grew.
  void reset(std::size_t arity, std::size_t rows = 0) {
    if (arity == 0) throw std::invalid_argument("FeatureBatch: arity must be positive");
    arity_ = arity;
    resize(rows);
  }

  /// Grow/shrink to `rows` rows (contents of surviving rows kept; new rows
  /// zero). Capacity is never released.
  void resize(std::size_t rows) {
    rows_ = rows;
    data_.resize(rows * arity_);
  }

  /// Drop all rows, keep arity and capacity.
  void clear() { resize(0); }

  /// Append one zero row and return its storage for in-place featurization.
  double* append_row() {
    data_.resize((rows_ + 1) * arity_);
    return data_.data() + (rows_++) * arity_;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t arity() const noexcept { return arity_; }
  bool empty() const noexcept { return rows_ == 0; }

  double* row(std::size_t r) noexcept { return data_.data() + r * arity_; }
  const double* row(std::size_t r) const noexcept { return data_.data() + r * arity_; }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

 private:
  std::size_t arity_ = 0;
  std::size_t rows_ = 0;
  std::vector<double> data_;
};

}  // namespace isaac::tuning
