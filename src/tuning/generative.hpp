// Generative model over the legal configuration space (paper §4.1).
//
// Treats the tuning vector as independent categorical variables:
//
//   p(x ∈ X) ≈ p(x_0) · p(x_1) · ... · p(x_N)
//
// Each p(x_i = v) is estimated as the proportion of accepted samples with
// x_i = v during a short uniform probing phase, smoothed with a Dirichlet
// prior by initializing every count at α > 0 (the paper — and this
// implementation — uses α = 100), so no value's probability is ever exactly
// zero. Sampling from the fitted model concentrates draws in the legal space
// X without having to enumerate it.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "tuning/search_space.hpp"

namespace isaac::tuning {

/// Acceptance statistics from a sampling run.
struct AcceptanceStats {
  std::size_t attempted = 0;
  std::size_t accepted = 0;
  double rate() const noexcept {
    return attempted ? static_cast<double>(accepted) / static_cast<double>(attempted) : 0.0;
  }
};

/// Categorical model over an arbitrary cartesian space described by
/// ParameterDomains, with legality judged by a caller-supplied predicate on
/// the per-parameter value-index vector.
class CategoricalModel {
 public:
  using LegalFn = std::function<bool(const std::vector<std::size_t>&)>;

  /// alpha: Dirichlet prior pseudo-count per category (paper value 100).
  CategoricalModel(std::vector<ParameterDomain> domains, double alpha = 100.0);

  /// Uniformly probe X̂ `probe_samples` times and accumulate per-value
  /// acceptance counts. Returns the probing acceptance stats (the "Uniform"
  /// column of Table 1).
  AcceptanceStats fit(const LegalFn& legal, std::size_t probe_samples, Rng& rng);

  /// Draw one choice vector from the fitted factorized distribution.
  std::vector<std::size_t> sample(Rng& rng) const;

  /// Draw until `legal` accepts (at most max_attempts); returns whether a
  /// legal sample was found and updates `stats` with attempt/acceptance
  /// counts (the "Categorical" column of Table 1).
  bool sample_legal(const LegalFn& legal, Rng& rng, std::vector<std::size_t>& out,
                    AcceptanceStats& stats, std::size_t max_attempts = 1000) const;

  /// Normalized p(x_i = v).
  double probability(std::size_t param, std::size_t value_index) const;

  const std::vector<ParameterDomain>& domains() const noexcept { return domains_; }

 private:
  std::vector<ParameterDomain> domains_;
  double alpha_;
  std::vector<std::vector<double>> counts_;  // per parameter, per value
};

}  // namespace isaac::tuning
