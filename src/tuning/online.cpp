#include "tuning/online.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/failpoint.hpp"
#include "common/strings.hpp"
#include "telemetry/metrics.hpp"

namespace isaac::tuning {

DriftDetector::DriftDetector(DriftConfig config) : config_(std::move(config)) {
  if (config_.window == 0) config_.window = 1;
  if (config_.min_observations == 0) config_.min_observations = 1;
  if (config_.min_observations > config_.window) config_.min_observations = config_.window;
}

bool DriftDetector::observe(std::string_view op, double predicted_gflops,
                            double measured_gflops) {
  if (!(measured_gflops > 0.0) || !(predicted_gflops > 0.0)) return false;
  const double rel = std::abs(predicted_gflops - measured_gflops) / measured_gflops;

  // Observability mirror: the aggregate and per-op error distributions land
  // in the PR 7 histogram registry. The names are dynamic (one per op), so
  // this goes through histogram() directly instead of the static-ref macro.
  if (telemetry::enabled()) {
    telemetry::histogram("model.rel_err_pct").record(rel * 100.0);
    telemetry::histogram(std::string("model.rel_err_pct.") += op).record(rel * 100.0);
  }

  sync::MutexLock lock(mutex_);
  auto it = per_op_.find(op);
  if (it == per_op_.end()) {
    it = per_op_.emplace(std::string(op), Window{}).first;
    it->second.errors.assign(config_.window, 0.0);
  }
  Window& w = it->second;
  w.errors[w.next] = rel;
  w.next = (w.next + 1) % config_.window;
  if (w.filled < config_.window) ++w.filled;

  if (w.filled < config_.min_observations) return false;
  double sum = 0.0;
  for (std::size_t i = 0; i < w.filled; ++i) sum += w.errors[i];
  const double mean = sum / static_cast<double>(w.filled);
  if (mean < config_.threshold) return false;

  // Tripped: re-arm with an empty window so the next trip requires fresh
  // post-trip evidence instead of re-firing on the same stale samples.
  w.next = 0;
  w.filled = 0;
  return true;
}

double DriftDetector::mean_rel_error(std::string_view op) const {
  sync::MutexLock lock(mutex_);
  const auto it = per_op_.find(op);
  if (it == per_op_.end() || it->second.filled == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < it->second.filled; ++i) sum += it->second.errors[i];
  return sum / static_cast<double>(it->second.filled);
}

void DriftDetector::reset() {
  sync::MutexLock lock(mutex_);
  per_op_.clear();
}

Retrainer::Retrainer(RetrainConfig config) : config_(std::move(config)) {}

mlp::VersionedModel Retrainer::retrain(const mlp::VersionedModel& base,
                                       const std::vector<Observation>& observations) const {
  // Chaos site: training can genuinely throw (degenerate fold, numeric
  // blow-up); Context's retrain backoff is what absorbs repeated failures.
  ISAAC_FAILPOINT("retrain.throw");
  const Dataset delta = ObservationLog::to_dataset(observations);
  if (delta.size() < config_.min_observations) {
    throw std::invalid_argument(
        strings::format("Retrainer: %zu usable observations, need at least %zu", delta.size(),
                        config_.min_observations));
  }

  mlp::TrainConfig train_cfg;
  train_cfg.epochs = config_.epochs;
  train_cfg.batch_size = config_.batch_size;
  train_cfg.learning_rate = config_.learning_rate;
  // Seeded from the version so successive retrains shuffle differently but
  // any given (base version, log) fold is reproducible.
  train_cfg.seed = 0x0911E ^ base.version();

  mlp::Regressor next = mlp::train_warm_start(base.regressor(), delta, train_cfg);

  mlp::TrainProvenance prov;
  prov.source = "warm_start";
  prov.parent_version = base.version();
  prov.samples = delta.size();
  prov.epochs = config_.epochs;
  return mlp::VersionedModel(std::move(next), base.version() + 1, std::move(prov));
}

}  // namespace isaac::tuning
