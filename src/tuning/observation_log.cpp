#include "tuning/observation_log.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/failpoint.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"
#include "telemetry/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define ISAAC_HAVE_FLOCK 1
#endif

namespace isaac::tuning {

namespace {

std::filesystem::path log_file(const std::string& directory) {
  return std::filesystem::path(directory) / ObservationLog::filename();
}

/// One observation per line:
///   op \t model_version \t predicted \t measured \t f0,f1,...,f14
/// Numbers carry max_digits10 precision so a replayed log reproduces the
/// exact doubles that were measured.
std::string format_line(const Observation& obs) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << obs.op << '\t' << obs.model_version << '\t' << obs.predicted_gflops << '\t'
     << obs.measured_gflops << '\t';
  for (std::size_t i = 0; i < obs.features.size(); ++i) {
    if (i) os << ',';
    os << obs.features[i];
  }
  os << '\n';
  return os.str();
}

bool parse_double(const std::string& token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && std::isfinite(out);
}

bool parse_line(const std::string& line, Observation& obs) {
  const auto parts = strings::split(line, '\t');
  if (parts.size() != 5 || parts[0].empty()) return false;
  obs.op = parts[0];
  {
    const char* begin = parts[1].data();
    const char* end = begin + parts[1].size();
    const auto [ptr, ec] = std::from_chars(begin, end, obs.model_version);
    if (ec != std::errc{} || ptr != end) return false;
  }
  if (!parse_double(parts[2], obs.predicted_gflops)) return false;
  if (!parse_double(parts[3], obs.measured_gflops)) return false;
  const auto fields = strings::split(parts[4], ',');
  obs.features.clear();
  obs.features.reserve(fields.size());
  for (const auto& field : fields) {
    double v = 0.0;
    if (!parse_double(field, v)) return false;
    obs.features.push_back(v);
  }
  return !obs.features.empty();
}

}  // namespace

ObservationLog::ObservationLog(std::size_t capacity, std::string directory)
    : capacity_(capacity == 0 ? 1 : capacity), directory_(std::move(directory)) {}

void ObservationLog::append(Observation obs) {
  append_to_disk(obs);
  {
    sync::MutexLock lock(mutex_);
    if (ring_.size() >= capacity_) ring_.pop_front();
    ring_.push_back(std::move(obs));
    ++total_;
  }
  ISAAC_TM_COUNT("model.observations");
}

std::size_t ObservationLog::size() const {
  sync::MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t ObservationLog::total_appended() const {
  sync::MutexLock lock(mutex_);
  return total_;
}

std::vector<Observation> ObservationLog::snapshot() const {
  sync::MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<Observation> ObservationLog::drain() {
  sync::MutexLock lock(mutex_);
  std::vector<Observation> out{std::make_move_iterator(ring_.begin()),
                               std::make_move_iterator(ring_.end())};
  ring_.clear();
  return out;
}

Dataset ObservationLog::to_dataset(const std::vector<Observation>& observations) {
  Dataset out;
  for (const auto& obs : observations) {
    if (obs.features.size() != kNumFeatures) continue;
    if (!(obs.measured_gflops > 0.0)) continue;
    Sample s;
    s.x = obs.features;
    s.y = obs.measured_gflops;
    out.add(std::move(s));
  }
  return out;
}

std::vector<Observation> ObservationLog::load(std::istream& is) {
  std::vector<Observation> out;
  std::string line;
  while (std::getline(is, line)) {
    if (strings::trim(line).empty()) continue;
    Observation obs;
    if (parse_line(line, obs)) {
      out.push_back(std::move(obs));
    } else {
      ISAAC_TM_COUNT("obslog.load_corrupt");
      ISAAC_LOG_WARN() << "observation log: skipping malformed line: " << line;
    }
  }
  return out;
}

bool ObservationLog::write_line_to_disk(const std::string& line) const {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  const std::filesystem::path file = log_file(directory_);
  // Chaos site: disk-full / revoked-mount storms surface here as a failed
  // write, exercising the memory-only degrade below.
  if (ISAAC_FAILPOINT_FIRED("obslog.write_fail")) return false;
#if ISAAC_HAVE_FLOCK
  // Exclusive-flocked O_APPEND write of the whole line in one syscall, so
  // concurrent writers (threads or separate processes) cannot tear it.
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = false;
  if (::flock(fd, LOCK_EX) == 0) {
    std::size_t written = 0;
    ok = true;
    while (written < line.size()) {
      const ssize_t n = ::write(fd, line.data() + written, line.size() - written);
      if (n <= 0) {
        ok = false;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    ::flock(fd, LOCK_UN);
  }
  ::close(fd);
  return ok;
#else
  std::ofstream os(file, std::ios::app);
  if (!os) return false;
  os << line;
  return static_cast<bool>(os);
#endif
}

void ObservationLog::append_to_disk(const Observation& obs) const {
  if (directory_.empty()) return;
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  // Degraded: keep only the in-memory ring until the next re-probe window —
  // a sick disk must not slow or break the measurement path. Skipped records
  // are lost to the replay file but still reach training through the ring.
  if (disk_degraded_.load(std::memory_order_relaxed) &&
      now < disk_retry_at_us_.load(std::memory_order_relaxed)) {
    disk_writes_skipped_.fetch_add(1, std::memory_order_relaxed);
    ISAAC_TM_COUNT("obslog.disk_write_skipped");
    return;
  }
  if (write_line_to_disk(format_line(obs))) {
    if (disk_degraded_.exchange(false, std::memory_order_relaxed)) {
      ISAAC_TM_COUNT("obslog.disk_recovered");
      ISAAC_LOG_INFO() << "observation log: disk writes recovered, leaving memory-only mode";
    }
    return;
  }
  disk_retry_at_us_.store(now + disk_retry_us_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  if (!disk_degraded_.exchange(true, std::memory_order_relaxed)) {
    ISAAC_TM_COUNT("obslog.disk_degraded");
    ISAAC_LOG_WARN() << "observation log: disk append failed; degrading to memory-only with "
                     << "periodic re-probe";
  } else {
    ISAAC_TM_COUNT("obslog.disk_reprobe_failed");
  }
}

}  // namespace isaac::tuning
