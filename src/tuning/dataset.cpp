#include "tuning/dataset.hpp"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/strings.hpp"

namespace isaac::tuning {

void features_into(const codegen::GemmShape& shape, const codegen::GemmTuning& t, double* out) {
  out[0] = static_cast<double>(shape.m);
  out[1] = static_cast<double>(shape.n);
  out[2] = static_cast<double>(shape.k);
  out[3] = static_cast<double>(gpusim::dtype_size(shape.dtype));
  out[4] = shape.trans_a ? 2.0 : 1.0;
  out[5] = shape.trans_b ? 2.0 : 1.0;
  out[6] = static_cast<double>(t.ms);
  out[7] = static_cast<double>(t.ns);
  out[8] = static_cast<double>(t.ml);
  out[9] = static_cast<double>(t.nl);
  out[10] = static_cast<double>(t.u);
  out[11] = static_cast<double>(t.ks);
  out[12] = static_cast<double>(t.kl);
  out[13] = static_cast<double>(t.kg);
  out[14] = static_cast<double>(t.vec);
}

void features_into(const codegen::ConvShape& shape, const codegen::ConvTuning& t, double* out) {
  features_into(codegen::conv_gemm_shape(shape), codegen::conv_gemm_tuning(t), out);
}

void features_into(const codegen::BatchedGemmShape& shape, const codegen::GemmTuning& t,
                   double* out) {
  features_into(shape.equivalent_gemm(), t, out);
}

std::vector<double> features(const codegen::GemmShape& shape, const codegen::GemmTuning& t) {
  std::vector<double> out(kNumFeatures);
  features_into(shape, t, out.data());
  return out;
}

std::vector<double> features(const codegen::ConvShape& shape, const codegen::ConvTuning& t) {
  return features(codegen::conv_gemm_shape(shape), codegen::conv_gemm_tuning(t));
}

std::vector<double> features(const codegen::BatchedGemmShape& shape,
                             const codegen::GemmTuning& t) {
  return features(shape.equivalent_gemm(), t);
}

void Dataset::add(Sample s) {
  if (s.x.size() != kNumFeatures) {
    throw std::invalid_argument(strings::format("Dataset::add: expected %zu features, got %zu",
                                                kNumFeatures, s.x.size()));
  }
  samples_.push_back(std::move(s));
}

void Dataset::shuffle(Rng& rng) { rng.shuffle(samples_); }

std::pair<Dataset, Dataset> Dataset::split(std::size_t count) const {
  if (count > samples_.size()) throw std::invalid_argument("Dataset::split: count too large");
  Dataset head, tail;
  head.samples_.assign(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(count));
  tail.samples_.assign(samples_.begin() + static_cast<std::ptrdiff_t>(count), samples_.end());
  return {std::move(head), std::move(tail)};
}

Dataset Dataset::take(std::size_t count) const {
  Dataset out;
  const std::size_t n = std::min(count, samples_.size());
  out.samples_.assign(samples_.begin(), samples_.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

void Dataset::save_csv(std::ostream& os) const {
  for (std::size_t f = 0; f < kNumFeatures; ++f) os << "f" << f << ",";
  os << "y\n";
  for (const Sample& s : samples_) {
    for (double v : s.x) os << v << ",";
    os << s.y << "\n";
  }
}

namespace {

/// Strict full-token numeric parse: std::stod would silently accept a junk
/// suffix ("1.5abc" → 1.5) and throw a context-free std::invalid_argument on
/// garbage; a half-parsed dataset row must instead fail loudly with where
/// and what.
double parse_csv_field(const std::string& token, std::size_t line_no, std::size_t column) {
  const std::string t = strings::trim(token);
  if (t.empty()) {
    throw std::runtime_error(
        strings::format("Dataset::load_csv: line %zu, column %zu: empty field", line_no, column));
  }
  double value = 0.0;
  const char* begin = t.data();
  const char* end = begin + t.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error(
        strings::format("Dataset::load_csv: line %zu, column %zu: '%s' is not a number", line_no,
                        column, t.c_str()));
  }
  if (!std::isfinite(value)) {
    throw std::runtime_error(strings::format(
        "Dataset::load_csv: line %zu, column %zu: non-finite value '%s'", line_no, column,
        t.c_str()));
  }
  return value;
}

}  // namespace

Dataset Dataset::load_csv(std::istream& is) {
  Dataset out;
  std::string line;
  std::size_t line_no = 0;
  bool header = true;
  while (std::getline(is, line)) {
    ++line_no;
    if (header) {
      header = false;
      continue;
    }
    if (strings::trim(line).empty()) continue;
    const auto parts = strings::split(line, ',');
    if (parts.size() != kNumFeatures + 1) {
      throw std::runtime_error(strings::format(
          "Dataset::load_csv: line %zu: expected %zu comma-separated fields, got %zu", line_no,
          kNumFeatures + 1, parts.size()));
    }
    Sample s;
    s.x.reserve(kNumFeatures);
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      s.x.push_back(parse_csv_field(parts[i], line_no, i + 1));
    }
    s.y = parse_csv_field(parts.back(), line_no, kNumFeatures + 1);
    out.add(std::move(s));
  }
  return out;
}

}  // namespace isaac::tuning
