#include "tuning/collector.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "core/operation.hpp"
#include "search/driver.hpp"
#include "search/factory.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac::tuning {

namespace {

std::int64_t log_uniform(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const double v = rng.uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi)));
  return std::max<std::int64_t>(lo, std::min<std::int64_t>(hi,
                                                           static_cast<std::int64_t>(std::exp(v))));
}

gpusim::DataType random_dtype(Rng& rng) {
  // f32-weighted mix: most training traffic is single precision, as in the
  // paper's tuning runs.
  const double r = rng.uniform();
  if (r < 0.6) return gpusim::DataType::F32;
  if (r < 0.8) return gpusim::DataType::F16;
  return gpusim::DataType::F64;
}

}  // namespace

codegen::GemmShape random_gemm_shape(const CollectorConfig& config, Rng& rng) {
  codegen::GemmShape s;
  s.m = log_uniform(rng, config.min_mn, config.max_mn);
  s.n = log_uniform(rng, config.min_mn, config.max_mn);
  s.k = log_uniform(rng, config.min_k, config.max_k);
  s.dtype = config.sample_dtypes ? random_dtype(rng) : gpusim::DataType::F32;
  if (config.sample_layouts) {
    s.trans_a = rng.bernoulli(0.5);
    s.trans_b = rng.bernoulli(0.5);
  }
  return s;
}

codegen::ConvShape random_conv_shape(const CollectorConfig& config, Rng& rng) {
  // Spatial extents and channel counts spanning Table 5's applications.
  codegen::ConvShape s;
  s.n = log_uniform(rng, 1, 32);
  s.c = log_uniform(rng, 1, 1024);
  s.k = log_uniform(rng, 8, 1024);
  const std::int64_t p = log_uniform(rng, 4, 128);
  const std::int64_t q = log_uniform(rng, 4, 128);
  const std::int64_t rs = rng.choice(std::vector<std::int64_t>{1, 3, 5, 7});
  s.r = rs;
  s.s = rs;
  s.h = p + rs - 1;
  s.w = q + rs - 1;
  s.dtype = config.sample_dtypes
                ? (rng.uniform() < 0.75 ? gpusim::DataType::F32 : gpusim::DataType::F16)
                : gpusim::DataType::F32;
  return s;
}

codegen::BatchedGemmShape random_batched_gemm_shape(const CollectorConfig& config, Rng& rng) {
  // Deep-learning inference regime: many small per-batch problems. The batch
  // count is log-uniform and the per-batch panel stays modest so the product
  // of both matches the data sizes GEMM collection spans.
  codegen::BatchedGemmShape s;
  s.batch = log_uniform(rng, 1, 256);
  CollectorConfig per_batch = config;
  per_batch.max_mn = std::min<std::int64_t>(config.max_mn, 512);
  per_batch.max_k = std::min<std::int64_t>(config.max_k, 4096);
  s.gemm = random_gemm_shape(per_batch, rng);
  return s;
}

namespace {

/// Shared implementation: the Op trait selects the generator; only the shape
/// distribution (config-dependent) is passed in.
template <typename Op, typename ShapeFn>
CollectionReport collect_impl(const gpusim::Simulator& sim, const CollectorConfig& config,
                              const ShapeFn& shape_fn) {
  using Traits = core::OperationTraits<Op>;
  using ShapeT = typename Traits::Shape;

  telemetry::Span span("collect");
  ISAAC_TM_COUNT("collect.runs");
  const std::uint64_t t0 = telemetry::enabled() ? telemetry::now_us() : 0;
  const typename Traits::SearchSpace space;
  const auto& dev = sim.device();
  const auto validate_fn = [&](const ShapeT& s, const typename Traits::Tuning& t) {
    return Traits::validate(s, t, dev);
  };

  CollectionReport report;
  Rng fit_rng(config.seed);

  // Collection owns its noise stream: two collect() calls with the same
  // config produce bit-identical datasets regardless of what else ran on the
  // caller's simulator.
  const gpusim::Simulator local_sim(sim.device(), sim.noise_sigma(), config.seed ^ 0x51A0);

  const bool adaptive = !config.search_strategy.empty();
  if (adaptive) {
    if (!search::strategy_is_known(config.search_strategy)) {
      throw std::invalid_argument("collect: unknown search strategy '" +
                                  config.search_strategy + "'");
    }
    if (!search::strategy_is_model_free(config.search_strategy)) {
      throw std::invalid_argument(
          "collect: adaptive sampling requires a model-free search strategy, got '" +
          config.search_strategy + "'");
    }
    if (config.search_strategy == "exhaustive") {
      // Every per-shape run would restart at the same lexicographic origin of
      // X̂, collecting the identical handful of tunings for every shape — a
      // degenerate training set.
      throw std::invalid_argument(
          "collect: adaptive sampling needs a stochastic strategy; 'exhaustive' would "
          "resample the same lexicographic prefix for every shape");
    }
  }

  // Fit the categorical model by probing legality against shapes drawn from
  // the same distribution collection will use — the model learns which
  // parameter values survive resource limits *in general*. Adaptive
  // collection replaces the generative model entirely (strategies are
  // constraint-aware on their own), so the probing phase is skipped.
  CategoricalModel model(space.domains(), config.alpha);
  if (!adaptive) {
    Rng shape_rng = fit_rng.fork(17);
    report.probe = model.fit(
        [&](const std::vector<std::size_t>& choice) {
          const auto tuning = space.decode(choice);
          const ShapeT shape = shape_fn(shape_rng);
          return validate_fn(shape, tuning);
        },
        config.probe_samples, fit_rng);
  }

  // Parallel collection: each worker owns a forked RNG stream; samples are
  // gathered per-chunk and spliced in order for determinism.
  const std::size_t n = config.num_samples;
  std::vector<std::vector<Sample>> chunks(n == 0 ? 0 : (n + 499) / 500);
  std::atomic<std::uint64_t> attempted{0}, accepted{0};
  std::mutex time_mutex;
  double simulated_time = 0.0;

  ThreadPool::global().parallel_for_each(chunks.size(), [&](std::size_t ci) {
    Rng rng = Rng(config.seed).fork(1000 + ci);
    const std::size_t begin = ci * 500;
    const std::size_t end = std::min(n, begin + 500);
    auto& out = chunks[ci];
    out.reserve(end - begin);
    double local_time = 0.0;
    std::uint64_t local_attempted = 0, local_accepted = 0;

    if (adaptive) {
      // MLKAPS-style adaptive sampling: per sampled shape, drive a model-free
      // search strategy for a small measurement budget and keep the whole
      // measured trajectory. The strategy concentrates evaluations inside the
      // legal space (and, for adaptive strategies, toward its fast region)
      // instead of spreading them uniformly.
      std::size_t shape_attempts = 50 + 50 * (end - begin);
      while (out.size() < end - begin && shape_attempts-- > 0) {
        const ShapeT shape = shape_fn(rng);
        search::SearchProblem<Op> problem;
        problem.shape = &shape;
        problem.device = &dev;
        problem.space = &space;
        search::SearchConfig sc;
        sc.strategy = config.search_strategy;
        sc.budget = std::min(config.search_budget_per_shape, end - begin - out.size());
        sc.seed = rng.next_u64();
        sc.reeval_reps = config.timing_reps;
        const auto strategy = search::make_strategy<Op>(problem, sc);
        const double shape_flops = Traits::flops(shape);
        search::drive(
            *strategy, sc.budget,
            // Thread-safe (drive measures batches in parallel): touches only
            // const state.
            [&](const typename Traits::Tuning& t) {
              const auto profile = Traits::analyze(shape, t, dev);
              const auto result = local_sim.launch_median(profile, config.timing_reps);
              return result.valid ? result.tflops * 1000.0 : 0.0;
            },
            // Sequential: accumulates the dataset and the simulated-time
            // ledger (seconds recovered from GFLOPS = flops / seconds·1e9).
            [&](const auto& proposal, double gflops) {
              if (gflops <= 0.0) return;
              Sample s;
              s.x.resize(kNumFeatures);
              Traits::featurize_into(shape, proposal.tuning, s.x.data());
              s.y = gflops;
              out.push_back(std::move(s));
              local_time += shape_flops / (gflops * 1e9) * config.timing_reps;
            });
        local_attempted += strategy->stats().visited;
        local_accepted += strategy->stats().legal;
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        // Rejection-sample a legal (shape, tuning) pair from the model.
        for (int tries = 0; tries < 200; ++tries) {
          const ShapeT shape = shape_fn(rng);
          const auto choice = model.sample(rng);
          const auto tuning = space.decode(choice);
          ++local_attempted;
          if (!validate_fn(shape, tuning)) continue;
          ++local_accepted;

          const auto profile = Traits::analyze(shape, tuning, dev);
          const auto result = local_sim.launch_median(profile, config.timing_reps);
          if (!result.valid) continue;

          Sample s;
          s.x.resize(kNumFeatures);
          Traits::featurize_into(shape, tuning, s.x.data());
          s.y = result.tflops * 1000.0;  // GFLOPS
          out.push_back(std::move(s));
          local_time += result.seconds * config.timing_reps;
          break;
        }
      }
    }
    attempted += local_attempted;
    accepted += local_accepted;
    std::lock_guard<std::mutex> lock(time_mutex);
    simulated_time += local_time;
  });

  for (auto& chunk : chunks) {
    for (auto& s : chunk) report.dataset.add(std::move(s));
  }
  report.generation.attempted = attempted;
  report.generation.accepted = accepted;
  report.wall_seconds_simulated = simulated_time;

  ISAAC_TM_COUNT_N("collect.samples", report.dataset.size());
  ISAAC_TM_COUNT_N("collect.attempted", report.generation.attempted);
  ISAAC_TM_COUNT_N("collect.accepted", report.generation.accepted);
  if (t0) ISAAC_TM_RECORD("collect.run_us", telemetry::now_us() - t0);

  ISAAC_LOG_INFO() << "collected " << report.dataset.size() << " samples (model acceptance "
                   << report.generation.rate() * 100.0 << "%, simulated device time "
                   << simulated_time << " s)";
  return report;
}

}  // namespace

CollectionReport collect_gemm(const gpusim::Simulator& sim, const CollectorConfig& config) {
  return collect_impl<core::GemmOp>(sim, config,
                                    [&](Rng& rng) { return random_gemm_shape(config, rng); });
}

CollectionReport collect_conv(const gpusim::Simulator& sim, const CollectorConfig& config) {
  return collect_impl<core::ConvOp>(sim, config,
                                    [&](Rng& rng) { return random_conv_shape(config, rng); });
}

CollectionReport collect_batched_gemm(const gpusim::Simulator& sim,
                                      const CollectorConfig& config) {
  return collect_impl<core::BatchedGemmOp>(
      sim, config, [&](Rng& rng) { return random_batched_gemm_shape(config, rng); });
}

}  // namespace isaac::tuning
