// Blocked, threaded BLAS-like routines on Matrix.
//
// Only what the MLP and the reference checks need: GEMM with optional
// transposes, GEMV, rank-agnostic elementwise ops, and row/col reductions.
//
// The GEMM is a register-blocked panel kernel (see blas.cpp): op(A) is packed
// into MR-interleaved row panels, op(B) into NR-wide column panels, and an
// MR×NR accumulator tile lives in registers across the whole K loop — no
// per-element branches, no C traffic inside the inner loop. The same tile
// code backs both entry points below, so `gemm` and `gemm_serial` produce
// bit-identical results for equal inputs regardless of thread count.
#pragma once

#include "linalg/matrix.hpp"

namespace isaac::linalg {

enum class Trans { No, Yes };

/// C = alpha * op(A) * op(B) + beta * C.
/// op(A) is rows(A) x cols(A) after the optional transpose; shapes are
/// validated against C. Parallelized over row blocks *and* column panels of C
/// on the global pool; falls back to the serial kernel when the problem is
/// too small to split.
void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c);

/// Same math and bit-identical results as `gemm`, guaranteed to run entirely
/// on the calling thread. This is the entry point for callers that already
/// execute on the global pool (the chunked model-scoring pipeline runs one
/// forward pass per worker) — nesting the parallel `gemm` there would only
/// fight its own siblings for the queue.
void gemm_serial(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                 float beta, Matrix& c);

/// Naive triple loop, serial; used to validate the blocked kernel.
void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                    float beta, Matrix& c);

/// y = alpha * op(A) * x + beta * y (x, y are n x 1 matrices).
void gemv(Trans trans_a, float alpha, const Matrix& a, const Matrix& x, float beta, Matrix& y);

/// y += alpha * x (elementwise over equal shapes).
void axpy(float alpha, const Matrix& x, Matrix& y);

/// x *= alpha.
void scale(float alpha, Matrix& x);

/// Per-column sum of rows: returns 1 x cols.
Matrix col_sums(const Matrix& a);

/// Broadcast-add a 1 x cols row vector onto every row of a.
void add_row_vector(Matrix& a, const Matrix& row);

}  // namespace isaac::linalg
