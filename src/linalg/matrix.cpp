#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace isaac::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<float>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

float& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

float Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

void Matrix::fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::randomize_uniform(Rng& rng, float lo, float hi) {
  for (float& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
}

void Matrix::randomize_normal(Rng& rng, float mean, float stddev) {
  for (float& x : data_) x = static_cast<float>(rng.normal(mean, stddev));
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a.data()[i] - b.data()[i])));
  }
  return m;
}

}  // namespace isaac::linalg
