// Dense row-major single-precision matrix.
//
// This is the CPU substrate the MLP trains on. The paper remarks (§5) that
// MLPs over ~20-dimensional feature vectors reduce to highly rectangular
// GEMMs — exactly the input-sensitivity regime ISAAC targets — so the
// in-repo BLAS keeps that workload honest instead of delegating to an
// external library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace isaac::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major literal: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  float& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  void fill(float v) noexcept;
  void set_zero() noexcept { fill(0.0f); }

  /// Re-dimension in place, keeping the underlying buffer: existing contents
  /// are invalidated, but capacity is never released and only grows when the
  /// new extent exceeds every previous one. Workspace matrices reshaped per
  /// chunk therefore allocate at most once (at the largest batch seen).
  void reshape(std::size_t rows, std::size_t cols);

  /// i.i.d. uniform in [lo, hi).
  void randomize_uniform(Rng& rng, float lo, float hi);
  /// i.i.d. normal(mean, stddev).
  void randomize_normal(Rng& rng, float mean, float stddev);

  Matrix transposed() const;

  /// Frobenius norm.
  double norm() const;

  /// max_ij |a_ij - b_ij|; throws on shape mismatch.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace isaac::linalg
