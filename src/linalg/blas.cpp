#include "linalg/blas.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace isaac::linalg {

namespace {

struct GemmDims {
  std::size_t m, n, k;
};

GemmDims check_gemm_shapes(Trans trans_a, Trans trans_b, const Matrix& a, const Matrix& b,
                           const Matrix& c) {
  const std::size_t m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const std::size_t ka = (trans_a == Trans::No) ? a.cols() : a.rows();
  const std::size_t kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const std::size_t n = (trans_b == Trans::No) ? b.cols() : b.rows();
  if (ka != kb) throw std::invalid_argument("gemm: inner dimensions disagree");
  if (c.rows() != m || c.cols() != n) throw std::invalid_argument("gemm: C shape mismatch");
  return {m, n, ka};
}

// ---- register-blocked panel kernel ----------------------------------------
//
// op(A) is packed into kMR-interleaved row panels (k × kMR, column r of the
// panel is row r of the block), op(B) into kNR-wide column panels (k × kNR).
// The micro-kernel keeps a kMR×kNR accumulator tile in registers across the
// whole K loop: per K step it streams kMR+kNR floats and performs kMR·kNR
// FMAs, with no C traffic and no per-element branches (a zero in A multiplies
// through, so 0·Inf correctly propagates NaN exactly like gemm_reference).
// Partial edge panels are zero-padded by the packers; the padding lanes
// accumulate zeros and are simply not written back, so the blocking factors
// never change the per-element accumulation order — results are identical
// for every (kMR, kNR, block size, thread count) within a build.

constexpr std::size_t kMR = 4;
#if defined(__AVX512F__) || defined(__AVX2__)
constexpr std::size_t kNR = 16;  // 4×16 tile: 8 YMM accumulators
#else
constexpr std::size_t kNR = 8;  // 4×8 tile: 8 XMM accumulators, no spills
#endif
constexpr std::size_t kMC = 128;         // rows per packed A block
constexpr std::size_t kNC = 256;         // columns per parallel task group
static_assert(kNC % kNR == 0, "column groups must split at panel boundaries");
constexpr std::size_t kSmallN = 4;       // ≤ this many columns: dot-product path
constexpr std::size_t kTinyM = 4;        // ≤ this many rows: no-packing path

// Reusable packing arenas, one pair per thread: grown once, reused across
// every gemm on that thread, so steady-state calls allocate nothing.
thread_local std::vector<float> tl_pack_a;
thread_local std::vector<float> tl_pack_b;

std::size_t round_up(std::size_t v, std::size_t to) { return (v + to - 1) / to * to; }

/// Pack op(A) rows [r0, r1) as kMR-interleaved panels: panel p holds rows
/// [r0 + p·kMR, …), laid out k-major so the micro-kernel reads kMR
/// consecutive floats per K step. Rows past r1 are zero-padded.
void pack_a_block(Trans trans_a, const Matrix& a, std::size_t r0, std::size_t r1,
                  std::size_t k, float* dst) {
  for (std::size_t p0 = r0; p0 < r1; p0 += kMR) {
    const std::size_t rows = std::min(kMR, r1 - p0);
    if (trans_a == Trans::No) {
      const float* src = a.data() + p0 * a.cols();
      const std::size_t lda = a.cols();
      for (std::size_t x = 0; x < k; ++x) {
        for (std::size_t r = 0; r < kMR; ++r) *dst++ = (r < rows) ? src[r * lda + x] : 0.0f;
      }
    } else {
      // op(A) row i is column i of the stored k × m matrix.
      for (std::size_t x = 0; x < k; ++x) {
        const float* src = a.data() + x * a.cols() + p0;
        for (std::size_t r = 0; r < kMR; ++r) *dst++ = (r < rows) ? src[r] : 0.0f;
      }
    }
  }
}

/// Pack all column panels of op(B): panel j holds columns [j·kNR, …), k-major
/// (kNR consecutive floats per K step), zero-padded past n.
void pack_b_panels(Trans trans_b, const Matrix& b, std::size_t n, std::size_t k, float* dst) {
  for (std::size_t c0 = 0; c0 < n; c0 += kNR) {
    const std::size_t cols = std::min(kNR, n - c0);
    if (trans_b == Trans::No) {
      const std::size_t ldb = b.cols();
      for (std::size_t x = 0; x < k; ++x) {
        const float* src = b.data() + x * ldb + c0;
        for (std::size_t j = 0; j < kNR; ++j) *dst++ = (j < cols) ? src[j] : 0.0f;
      }
    } else {
      // op(B)(x, c) = b(c, x) over the stored n × k matrix.
      const std::size_t ldb = b.cols();
      const float* base = b.data() + c0 * ldb;
      for (std::size_t x = 0; x < k; ++x) {
        for (std::size_t j = 0; j < kNR; ++j) *dst++ = (j < cols) ? base[j * ldb + x] : 0.0f;
      }
    }
  }
}

/// One kMR×kNR tile of C: accumulate over the packed panels, then write back
/// alpha/beta-scaled, clipped to the real (rows × cols) extent.
void tile_kernel(std::size_t k, const float* __restrict__ ap, const float* __restrict__ bp,
                 float alpha, float beta, float* __restrict__ c, std::size_t ldc,
                 std::size_t rows, std::size_t cols) {
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < k; ++p) {
#pragma GCC unroll 4
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = ap[r];
#pragma GCC unroll 16
      for (std::size_t j = 0; j < kNR; ++j) acc[r][j] += av * bp[j];
    }
    ap += kMR;
    bp += kNR;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < cols; ++j) crow[j] = alpha * acc[r][j];
    } else {
      for (std::size_t j = 0; j < cols; ++j) crow[j] = alpha * acc[r][j] + beta * crow[j];
    }
  }
}

/// C rows [r0, r1) × columns [j0, j1): pack the A block once, then walk its
/// row panels under each column panel so the kNR×k B panel stays cache-hot
/// across the whole block.
void run_block(Trans trans_a, float alpha, const Matrix& a, float beta, Matrix& c,
               std::size_t k, std::size_t n, std::size_t r0, std::size_t r1, std::size_t j0,
               std::size_t j1, const float* pb, std::vector<float>& pa) {
  pa.resize(round_up(r1 - r0, kMR) * k);
  pack_a_block(trans_a, a, r0, r1, k, pa.data());
  for (std::size_t c0 = j0; c0 < j1; c0 += kNR) {
    const float* bp = pb + (c0 / kNR) * kNR * k;
    const std::size_t cols = std::min(kNR, n - c0);
    for (std::size_t p0 = r0; p0 < r1; p0 += kMR) {
      tile_kernel(k, pa.data() + (p0 - r0) * k, bp, alpha, beta,
                  c.data() + p0 * n + c0, n, std::min(kMR, r1 - p0), cols);
    }
  }
}

/// Deterministic 4-lane dot product (fixed reduction tree, vectorizable
/// without reassociation licenses).
float dot_k(const float* __restrict__ x, const float* __restrict__ y, std::size_t k) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    s0 += x[p] * y[p];
    s1 += x[p + 1] * y[p + 1];
    s2 += x[p + 2] * y[p + 2];
    s3 += x[p + 3] * y[p + 3];
  }
  float tail = 0.0f;
  for (; p < k; ++p) tail += x[p] * y[p];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

/// Narrow-output fast path (n ≤ kSmallN — the MLP's scalar prediction head,
/// and gemv): per-row dot products against k-contiguous B columns. Skips the
/// panel machinery entirely; the packed-to-NR tile kernel would spend
/// kNR/n of its work multiplying padding.
void gemm_small_n(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                  float beta, Matrix& c, const GemmDims& d, bool threaded) {
  const auto [m, n, k] = d;
  // B columns, k-contiguous: a transposed B already stores them as rows.
  const float* bcols;
  if (trans_b == Trans::Yes) {
    bcols = b.data();
  } else {
    tl_pack_b.resize(n * k);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t x = 0; x < k; ++x) tl_pack_b[j * k + x] = b(x, j);
    }
    bcols = tl_pack_b.data();
  }
  // A rows, k-contiguous: a non-transposed A already stores them as rows.
  const float* arows;
  if (trans_a == Trans::No) {
    arows = a.data();
  } else {
    tl_pack_a.resize(m * k);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t x = 0; x < k; ++x) tl_pack_a[i * k + x] = a(x, i);
    }
    arows = tl_pack_a.data();
  }
  const auto rows = [&, n = n, k = k](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      float* crow = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float dot = alpha * dot_k(arows + i * k, bcols + j * k, k);
        crow[j] = (beta == 0.0f) ? dot : dot + beta * crow[j];
      }
    }
  };
  if (threaded && m > 2 * kMC) {
    ThreadPool::global().parallel_for(m, rows);
  } else {
    rows(0, m);
  }
}

/// Tiny-row fast path (m ≤ kTinyM, both operands untransposed — the
/// single-candidate prediction shape): stream B rows once per K step with no
/// packing at all.
void gemm_tiny_m(float alpha, const Matrix& a, const Matrix& b, float beta, Matrix& c,
                 const GemmDims& d) {
  const auto [m, n, k] = d;
  for (std::size_t r = 0; r < m; ++r) {
    float* crow = c.data() + r * n;
    if (beta == 0.0f) {
      std::fill_n(crow, n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a.data() + r * k;
    for (std::size_t x = 0; x < k; ++x) {
      const float av = alpha * arow[x];
      const float* brow = b.data() + x * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_blocked(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                  float beta, Matrix& c, bool threaded) {
  const GemmDims d = check_gemm_shapes(trans_a, trans_b, a, b, c);
  const auto [m, n, k] = d;
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale(beta, c);
    return;
  }
  // Dispatch depends only on the problem shape, never on `threaded` or pool
  // size, so every entry point lands in the same kernel for equal inputs.
  if (n <= kSmallN) {
    gemm_small_n(trans_a, trans_b, alpha, a, b, beta, c, d, threaded);
    return;
  }
  if (m <= kTinyM && trans_a == Trans::No && trans_b == Trans::No) {
    gemm_tiny_m(alpha, a, b, beta, c, d);
    return;
  }

  tl_pack_b.resize(round_up(n, kNR) * k);
  pack_b_panels(trans_b, b, n, k, tl_pack_b.data());
  const float* pb = tl_pack_b.data();

  const std::size_t row_blocks = (m + kMC - 1) / kMC;
  const std::size_t col_groups = threaded ? (n + kNC - 1) / kNC : 1;
  const std::size_t tasks = row_blocks * col_groups;
  if (!threaded || tasks == 1) {
    for (std::size_t rb = 0; rb < row_blocks; ++rb) {
      const std::size_t r0 = rb * kMC;
      run_block(trans_a, alpha, a, beta, c, k, n, r0, std::min(m, r0 + kMC), 0, n, pb,
                tl_pack_a);
    }
    return;
  }
  // 2D task grid over row blocks × column groups: skinny-but-wide shapes
  // (few row blocks, many columns) still fill the pool. Workers pack into
  // their own thread-local arenas; the shared packed B is read-only.
  ThreadPool::global().parallel_for_each(
      tasks, [&, m = m, n = n, k = k, col_groups](std::size_t t) {
        const std::size_t r0 = (t / col_groups) * kMC;
        const std::size_t j0 = (t % col_groups) * kNC;
        run_block(trans_a, alpha, a, beta, c, k, n, r0, std::min(m, r0 + kMC), j0,
                  std::min(n, j0 + kNC), pb, tl_pack_a);
      });
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, /*threaded=*/true);
}

void gemm_serial(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                 float beta, Matrix& c) {
  gemm_blocked(trans_a, trans_b, alpha, a, b, beta, c, /*threaded=*/false);
}

void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                    float beta, Matrix& c) {
  const auto [m, n, k] = check_gemm_shapes(trans_a, trans_b, a, b, c);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t x = 0; x < k; ++x) {
        const float av = (trans_a == Trans::No) ? a(i, x) : a(x, i);
        const float bv = (trans_b == Trans::No) ? b(x, j) : b(j, x);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = alpha * static_cast<float>(acc) + beta * c(i, j);
    }
  }
}

void gemv(Trans trans_a, float alpha, const Matrix& a, const Matrix& x, float beta, Matrix& y) {
  if (x.cols() != 1 || y.cols() != 1) throw std::invalid_argument("gemv: x/y must be column vectors");
  gemm(trans_a, Trans::No, alpha, a, x, beta, y);
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  const float* xp = x.data();
  float* yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] += alpha * xp[i];
}

void scale(float alpha, Matrix& x) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) p[i] *= alpha;
}

Matrix col_sums(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += row[c];
  }
  return out;
}

void add_row_vector(Matrix& a, const Matrix& row) {
  if (row.rows() != 1 || row.cols() != a.cols()) {
    throw std::invalid_argument("add_row_vector: shape mismatch");
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* arow = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) arow[c] += row(0, c);
  }
}

}  // namespace isaac::linalg
