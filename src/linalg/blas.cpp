#include "linalg/blas.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace isaac::linalg {

namespace {

struct GemmDims {
  std::size_t m, n, k;
};

GemmDims check_gemm_shapes(Trans trans_a, Trans trans_b, const Matrix& a, const Matrix& b,
                           const Matrix& c) {
  const std::size_t m = (trans_a == Trans::No) ? a.rows() : a.cols();
  const std::size_t ka = (trans_a == Trans::No) ? a.cols() : a.rows();
  const std::size_t kb = (trans_b == Trans::No) ? b.rows() : b.cols();
  const std::size_t n = (trans_b == Trans::No) ? b.cols() : b.rows();
  if (ka != kb) throw std::invalid_argument("gemm: inner dimensions disagree");
  if (c.rows() != m || c.cols() != n) throw std::invalid_argument("gemm: C shape mismatch");
  return {m, n, ka};
}

// Pack op(A) rows [r0, r1) into a contiguous (r1-r0) x k buffer so the inner
// kernel always streams unit-stride.
void pack_a(Trans trans_a, const Matrix& a, std::size_t r0, std::size_t r1, std::size_t k,
            std::vector<float>& buf) {
  buf.resize((r1 - r0) * k);
  if (trans_a == Trans::No) {
    for (std::size_t r = r0; r < r1; ++r) {
      std::copy_n(a.data() + r * a.cols(), k, buf.data() + (r - r0) * k);
    }
  } else {
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t x = 0; x < k; ++x) buf[(r - r0) * k + x] = a(x, r);
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
          float beta, Matrix& c) {
  const auto [m, n, k] = check_gemm_shapes(trans_a, trans_b, a, b, c);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale(beta, c);
    return;
  }

  // Pre-transpose B once when needed; for the MLP workloads (n is a layer
  // width, k a batch) this costs far less than strided inner loops.
  const Matrix* bp = &b;
  Matrix b_packed;
  if (trans_b == Trans::Yes) {
    b_packed = b.transposed();
    bp = &b_packed;
  }

  constexpr std::size_t kRowBlock = 32;
  const std::size_t blocks = (m + kRowBlock - 1) / kRowBlock;

  ThreadPool::global().parallel_for(blocks, [&](std::size_t blk_begin, std::size_t blk_end) {
    std::vector<float> a_buf;
    for (std::size_t blk = blk_begin; blk < blk_end; ++blk) {
      const std::size_t r0 = blk * kRowBlock;
      const std::size_t r1 = std::min(m, r0 + kRowBlock);
      pack_a(trans_a, a, r0, r1, k, a_buf);
      for (std::size_t r = r0; r < r1; ++r) {
        float* crow = c.data() + r * n;
        if (beta == 0.0f) {
          std::fill_n(crow, n, 0.0f);
        } else if (beta != 1.0f) {
          for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
        const float* arow = a_buf.data() + (r - r0) * k;
        for (std::size_t x = 0; x < k; ++x) {
          const float av = alpha * arow[x];
          if (av == 0.0f) continue;
          const float* brow = bp->data() + x * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void gemm_reference(Trans trans_a, Trans trans_b, float alpha, const Matrix& a, const Matrix& b,
                    float beta, Matrix& c) {
  const auto [m, n, k] = check_gemm_shapes(trans_a, trans_b, a, b, c);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t x = 0; x < k; ++x) {
        const float av = (trans_a == Trans::No) ? a(i, x) : a(x, i);
        const float bv = (trans_b == Trans::No) ? b(x, j) : b(j, x);
        acc += static_cast<double>(av) * bv;
      }
      c(i, j) = alpha * static_cast<float>(acc) + beta * c(i, j);
    }
  }
}

void gemv(Trans trans_a, float alpha, const Matrix& a, const Matrix& x, float beta, Matrix& y) {
  if (x.cols() != 1 || y.cols() != 1) throw std::invalid_argument("gemv: x/y must be column vectors");
  gemm(trans_a, Trans::No, alpha, a, x, beta, y);
}

void axpy(float alpha, const Matrix& x, Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) {
    throw std::invalid_argument("axpy: shape mismatch");
  }
  const float* xp = x.data();
  float* yp = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yp[i] += alpha * xp[i];
}

void scale(float alpha, Matrix& x) {
  float* p = x.data();
  for (std::size_t i = 0; i < x.size(); ++i) p[i] *= alpha;
}

Matrix col_sums(const Matrix& a) {
  Matrix out(1, a.cols(), 0.0f);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const float* row = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) out(0, c) += row[c];
  }
  return out;
}

void add_row_vector(Matrix& a, const Matrix& row) {
  if (row.rows() != 1 || row.cols() != a.cols()) {
    throw std::invalid_argument("add_row_vector: shape mismatch");
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    float* arow = a.data() + r * a.cols();
    for (std::size_t c = 0; c < a.cols(); ++c) arow[c] += row(0, c);
  }
}

}  // namespace isaac::linalg
