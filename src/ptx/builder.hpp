// KernelBuilder: fluent construction of PTX-like kernels.
//
// Allocates virtual registers per class, appends instructions, and tracks the
// static shared-memory allocation. The GEMM/CONV generators are the only
// intended clients, but the builder is generic.
#pragma once

#include <string>

#include "ptx/ir.hpp"

namespace isaac::ptx {

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string kernel_name);

  /// Declare a kernel parameter; returns its index for ld_param.
  int add_param(const std::string& name, bool is_pointer = true);

  /// Reserve `bytes` of .shared memory; returns the byte offset of the chunk.
  int alloc_shared(int bytes);

  // ---- register allocation ----
  Operand new_reg(Type t);
  Operand new_pred() { return new_reg(Type::Pred); }

  // ---- instruction emission (returns dst where meaningful) ----
  Operand ld_param(Type t, int param_index, const std::string& comment = "");
  void mov(Operand dst, Operand src);
  Operand mov_imm(Type t, std::int64_t v);
  Operand mov_fimm(Type t, double v);
  Operand special(SReg s);  // mov.s32 %r, %tid.x etc.

  Operand add(Operand a, Operand b);
  Operand sub(Operand a, Operand b);
  Operand mul(Operand a, Operand b);
  Operand div(Operand a, Operand b);
  Operand rem(Operand a, Operand b);
  Operand min(Operand a, Operand b);
  /// d = a * b + c (integer mad.lo)
  Operand mad(Operand a, Operand b, Operand c);
  /// d = fma(a, b, c) with d == c allowed (accumulate in place).
  void fma(Operand dst, Operand a, Operand b, Operand c);

  /// Widen s32 -> u64 (cvt.u64.s32).
  Operand cvt_u64(Operand s32);
  /// Convert between float types (cvt.f32.f64 etc.).
  Operand cvt(Type dst_type, Operand src);

  Operand setp(Cmp cmp, Operand a, Operand b);

  /// addr (u64) + imm byte offset.
  Operand ld_global(Type t, Operand addr, std::int64_t imm_off = 0, int pred = -1,
                    bool pred_negate = false);
  /// Predicated load into an existing register: predicated-off threads keep
  /// the register's prior value (pre-zero it for the §8.3 idiom).
  void ld_global_into(Operand dst, Operand addr, std::int64_t imm_off = 0, int pred = -1,
                      bool pred_negate = false);
  void st_global(Type t, Operand addr, Operand value, std::int64_t imm_off = 0, int pred = -1,
                 bool pred_negate = false);
  void atom_add(Type t, Operand addr, Operand value, std::int64_t imm_off = 0, int pred = -1,
                bool pred_negate = false);
  /// Shared memory is addressed by s32 byte offsets.
  Operand ld_shared(Type t, Operand addr_bytes, std::int64_t imm_off = 0);
  void ld_shared_into(Operand dst, Operand addr_bytes, std::int64_t imm_off = 0, int pred = -1,
                      bool pred_negate = false);
  void st_shared(Type t, Operand addr_bytes, Operand value, std::int64_t imm_off = 0);

  void bar_sync();
  void label(const std::string& name);
  /// Unconditional or predicated (uniform!) branch to a label.
  void bra(const std::string& target, int pred = -1, bool pred_negate = false);
  void ret();
  void comment(const std::string& text);

  /// Apply a guard predicate to the most recently emitted instruction.
  void predicate_last(Operand pred, bool negate = false);

  Kernel take();  // finalize (appends ret if missing) and move out

 private:
  Instruction& emit(Instruction inst);

  Kernel kernel_;
  int shared_cursor_ = 0;
};

}  // namespace isaac::ptx
