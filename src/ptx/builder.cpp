#include "ptx/builder.hpp"

#include <stdexcept>

namespace isaac::ptx {

KernelBuilder::KernelBuilder(std::string kernel_name) { kernel_.name = std::move(kernel_name); }

int KernelBuilder::add_param(const std::string& name, bool is_pointer) {
  kernel_.params.push_back(Param{name, is_pointer});
  return static_cast<int>(kernel_.params.size()) - 1;
}

int KernelBuilder::alloc_shared(int bytes) {
  // Align chunks to 16 bytes like the PTX assembler would.
  const int aligned = (shared_cursor_ + 15) / 16 * 16;
  shared_cursor_ = aligned + bytes;
  kernel_.smem_bytes = shared_cursor_;
  return aligned;
}

Operand KernelBuilder::new_reg(Type t) {
  int* counter = nullptr;
  switch (t) {
    case Type::Pred:
      counter = &kernel_.num_pred;
      break;
    case Type::S32:
      counter = &kernel_.num_s32;
      break;
    case Type::U64:
      counter = &kernel_.num_u64;
      break;
    case Type::F16:
      counter = &kernel_.num_f16;
      break;
    case Type::F32:
      counter = &kernel_.num_f32;
      break;
    case Type::F64:
      counter = &kernel_.num_f64;
      break;
  }
  return Operand::make_reg(t, (*counter)++);
}

Instruction& KernelBuilder::emit(Instruction inst) {
  kernel_.body.push_back(std::move(inst));
  return kernel_.body.back();
}

Operand KernelBuilder::ld_param(Type t, int param_index, const std::string& comment) {
  if (param_index < 0 || param_index >= static_cast<int>(kernel_.params.size())) {
    throw std::out_of_range("ld_param: bad parameter index");
  }
  Operand dst = new_reg(t);
  Instruction inst;
  inst.op = Opcode::LdParam;
  inst.type = t;
  inst.param_index = param_index;
  inst.dst = {dst};
  inst.comment = comment;
  emit(std::move(inst));
  return dst;
}

void KernelBuilder::mov(Operand dst, Operand src) {
  Instruction inst;
  inst.op = Opcode::Mov;
  inst.type = dst.type;
  inst.dst = {dst};
  inst.src = {src};
  emit(std::move(inst));
}

Operand KernelBuilder::mov_imm(Type t, std::int64_t v) {
  Operand dst = new_reg(t);
  mov(dst, Operand::make_imm(v, t));
  return dst;
}

Operand KernelBuilder::mov_fimm(Type t, double v) {
  Operand dst = new_reg(t);
  mov(dst, Operand::make_fimm(v, t));
  return dst;
}

Operand KernelBuilder::special(SReg s) {
  Operand dst = new_reg(Type::S32);
  mov(dst, Operand::make_sreg(s));
  return dst;
}

namespace {
void check_same_type(const Operand& a, const Operand& b, const char* who) {
  if (a.type != b.type) throw std::invalid_argument(std::string(who) + ": operand type mismatch");
}
}  // namespace

Operand KernelBuilder::add(Operand a, Operand b) {
  check_same_type(a, b, "add");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Add;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::sub(Operand a, Operand b) {
  check_same_type(a, b, "sub");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Sub;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::mul(Operand a, Operand b) {
  check_same_type(a, b, "mul");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Mul;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::div(Operand a, Operand b) {
  check_same_type(a, b, "div");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Div;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::rem(Operand a, Operand b) {
  check_same_type(a, b, "rem");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Rem;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::min(Operand a, Operand b) {
  check_same_type(a, b, "min");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Min;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::mad(Operand a, Operand b, Operand c) {
  check_same_type(a, b, "mad");
  check_same_type(a, c, "mad");
  Operand dst = new_reg(a.type);
  Instruction inst;
  inst.op = Opcode::Mad;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b, c};
  emit(std::move(inst));
  return dst;
}

void KernelBuilder::fma(Operand dst, Operand a, Operand b, Operand c) {
  check_same_type(a, b, "fma");
  check_same_type(a, c, "fma");
  check_same_type(a, dst, "fma");
  Instruction inst;
  inst.op = Opcode::Fma;
  inst.type = a.type;
  inst.dst = {dst};
  inst.src = {a, b, c};
  emit(std::move(inst));
}

Operand KernelBuilder::cvt_u64(Operand s32) {
  Operand dst = new_reg(Type::U64);
  Instruction inst;
  inst.op = Opcode::Cvt;
  inst.type = Type::U64;
  inst.aux_type = s32.type;
  inst.dst = {dst};
  inst.src = {s32};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::cvt(Type dst_type, Operand src) {
  Operand dst = new_reg(dst_type);
  Instruction inst;
  inst.op = Opcode::Cvt;
  inst.type = dst_type;
  inst.aux_type = src.type;
  inst.dst = {dst};
  inst.src = {src};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::setp(Cmp cmp, Operand a, Operand b) {
  check_same_type(a, b, "setp");
  Operand dst = new_pred();
  Instruction inst;
  inst.op = Opcode::Setp;
  inst.type = a.type;
  inst.cmp = cmp;
  inst.dst = {dst};
  inst.src = {a, b};
  emit(std::move(inst));
  return dst;
}

Operand KernelBuilder::ld_global(Type t, Operand addr, std::int64_t imm_off, int pred,
                                 bool pred_negate) {
  Operand dst = new_reg(t);
  ld_global_into(dst, addr, imm_off, pred, pred_negate);
  return dst;
}

void KernelBuilder::ld_global_into(Operand dst, Operand addr, std::int64_t imm_off, int pred,
                                   bool pred_negate) {
  if (!dst.is_reg()) throw std::invalid_argument("ld_global_into: dst must be a register");
  Instruction inst;
  inst.op = Opcode::LdGlobal;
  inst.type = dst.type;
  inst.dst = {dst};
  inst.src = {addr, Operand::make_imm(imm_off, Type::U64)};
  inst.pred_reg = pred;
  inst.pred_negate = pred_negate;
  emit(std::move(inst));
}

void KernelBuilder::st_global(Type t, Operand addr, Operand value, std::int64_t imm_off,
                              int pred, bool pred_negate) {
  Instruction inst;
  inst.op = Opcode::StGlobal;
  inst.type = t;
  inst.src = {addr, Operand::make_imm(imm_off, Type::U64), value};
  inst.pred_reg = pred;
  inst.pred_negate = pred_negate;
  emit(std::move(inst));
}

void KernelBuilder::atom_add(Type t, Operand addr, Operand value, std::int64_t imm_off,
                             int pred, bool pred_negate) {
  Instruction inst;
  inst.op = Opcode::AtomAdd;
  inst.type = t;
  inst.src = {addr, Operand::make_imm(imm_off, Type::U64), value};
  inst.pred_reg = pred;
  inst.pred_negate = pred_negate;
  emit(std::move(inst));
}

Operand KernelBuilder::ld_shared(Type t, Operand addr_bytes, std::int64_t imm_off) {
  Operand dst = new_reg(t);
  ld_shared_into(dst, addr_bytes, imm_off);
  return dst;
}

void KernelBuilder::ld_shared_into(Operand dst, Operand addr_bytes, std::int64_t imm_off,
                                   int pred, bool pred_negate) {
  if (!dst.is_reg()) throw std::invalid_argument("ld_shared_into: dst must be a register");
  Instruction inst;
  inst.op = Opcode::LdShared;
  inst.type = dst.type;
  inst.dst = {dst};
  inst.src = {addr_bytes, Operand::make_imm(imm_off, Type::S32)};
  inst.pred_reg = pred;
  inst.pred_negate = pred_negate;
  emit(std::move(inst));
}

void KernelBuilder::st_shared(Type t, Operand addr_bytes, Operand value, std::int64_t imm_off) {
  Instruction inst;
  inst.op = Opcode::StShared;
  inst.type = t;
  inst.src = {addr_bytes, Operand::make_imm(imm_off, Type::S32), value};
  emit(std::move(inst));
}

void KernelBuilder::bar_sync() {
  Instruction inst;
  inst.op = Opcode::Bar;
  emit(std::move(inst));
}

void KernelBuilder::label(const std::string& name) {
  Instruction inst;
  inst.op = Opcode::Label;
  inst.label = name;
  emit(std::move(inst));
}

void KernelBuilder::bra(const std::string& target, int pred, bool pred_negate) {
  Instruction inst;
  inst.op = Opcode::Bra;
  inst.label = target;
  inst.pred_reg = pred;
  inst.pred_negate = pred_negate;
  emit(std::move(inst));
}

void KernelBuilder::ret() {
  Instruction inst;
  inst.op = Opcode::Ret;
  emit(std::move(inst));
}

void KernelBuilder::comment(const std::string& text) {
  if (kernel_.body.empty()) return;
  kernel_.body.back().comment = text;
}

void KernelBuilder::predicate_last(Operand pred, bool negate) {
  if (kernel_.body.empty()) throw std::logic_error("predicate_last: empty body");
  if (pred.type != Type::Pred || !pred.is_reg()) {
    throw std::invalid_argument("predicate_last: operand is not a predicate register");
  }
  kernel_.body.back().pred_reg = pred.reg;
  kernel_.body.back().pred_negate = negate;
}

Kernel KernelBuilder::take() {
  if (kernel_.body.empty() || kernel_.body.back().op != Opcode::Ret) ret();
  return std::move(kernel_);
}

}  // namespace isaac::ptx
