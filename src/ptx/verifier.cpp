#include "ptx/verifier.hpp"

#include <set>

#include "common/strings.hpp"

namespace isaac::ptx {

std::string VerifyResult::summary() const {
  if (ok) return "ok";
  return strings::join(errors, "; ");
}

namespace {

bool is_float(Type t) { return t == Type::F16 || t == Type::F32 || t == Type::F64; }

void check_operand(VerifyResult& out, const Kernel& k, const Instruction& inst,
                   const Operand& op, std::size_t idx, bool is_dst) {
  switch (op.kind) {
    case Operand::Kind::None:
      out.fail(strings::format("inst %zu (%s): empty operand", idx, opcode_name(inst.op)));
      break;
    case Operand::Kind::Reg:
      if (op.reg < 0 || op.reg >= k.reg_count(op.type)) {
        out.fail(strings::format("inst %zu (%s): register %s%d outside allocated range", idx,
                                 opcode_name(inst.op), reg_prefix(op.type), op.reg));
      }
      break;
    case Operand::Kind::Imm:
      if (is_dst) {
        out.fail(strings::format("inst %zu (%s): immediate as destination", idx,
                                 opcode_name(inst.op)));
      }
      break;
    case Operand::Kind::Special:
      if (is_dst) {
        out.fail(strings::format("inst %zu (%s): special register as destination", idx,
                                 opcode_name(inst.op)));
      }
      break;
  }
}

}  // namespace

VerifyResult verify(const Kernel& k) {
  VerifyResult out;

  if (k.name.empty()) out.fail("kernel has no name");
  if (k.body.empty()) out.fail("kernel body is empty");
  if (k.smem_bytes < 0) out.fail("negative shared memory size");

  // Collect labels.
  std::set<std::string> labels;
  for (const Instruction& inst : k.body) {
    if (inst.op == Opcode::Label) {
      if (!labels.insert(inst.label).second) {
        out.fail("duplicate label: " + inst.label);
      }
    }
  }

  bool saw_ret = false;
  for (std::size_t i = 0; i < k.body.size(); ++i) {
    const Instruction& inst = k.body[i];

    // Predicate register must be allocated.
    if (inst.has_pred() && inst.pred_reg >= k.num_pred) {
      out.fail(strings::format("inst %zu (%s): predicate %%p%d outside allocated range", i,
                               opcode_name(inst.op), inst.pred_reg));
    }

    // Barriers may not be guarded: divergent barriers deadlock real GPUs.
    if (inst.op == Opcode::Bar && inst.has_pred()) {
      out.fail(strings::format("inst %zu: predicated bar.sync (divergent barrier)", i));
    }

    for (const Operand& d : inst.dst) check_operand(out, k, inst, d, i, /*is_dst=*/true);
    for (const Operand& s : inst.src) check_operand(out, k, inst, s, i, /*is_dst=*/false);

    switch (inst.op) {
      case Opcode::Bra:
        if (!labels.count(inst.label)) {
          out.fail(strings::format("inst %zu: branch to undefined label '%s'", i,
                                   inst.label.c_str()));
        }
        break;
      case Opcode::LdParam:
        if (inst.param_index < 0 ||
            inst.param_index >= static_cast<int>(k.params.size())) {
          out.fail(strings::format("inst %zu: ld.param index %d out of range", i,
                                   inst.param_index));
        }
        break;
      case Opcode::Fma:
        if (!is_float(inst.type)) {
          out.fail(strings::format("inst %zu: fma on non-float type", i));
        }
        if (inst.src.size() != 3 || inst.dst.size() != 1) {
          out.fail(strings::format("inst %zu: fma operand arity", i));
        }
        break;
      case Opcode::Mad:
        if (is_float(inst.type)) {
          out.fail(strings::format("inst %zu: mad.lo on float type (use fma)", i));
        }
        break;
      case Opcode::LdShared:
      case Opcode::StShared: {
        // The dynamic part of the address is only known at run time, but a
        // negative immediate or an immediate past the static allocation is a
        // generator bug either way.
        const Operand& imm = inst.src[1];
        if (imm.imm < 0) {
          out.fail(strings::format("inst %zu: negative shared-memory offset", i));
        } else if (imm.imm + static_cast<std::int64_t>(type_bytes(inst.type)) >
                   k.smem_bytes) {
          // Base may still be dynamic; only flag when the base is a literal 0.
          if (inst.src[0].kind == Operand::Kind::Imm && inst.src[0].imm == 0) {
            out.fail(strings::format("inst %zu: static shared-memory access out of bounds", i));
          }
        }
        break;
      }
      case Opcode::Ret:
        saw_ret = true;
        break;
      default:
        break;
    }

    // Type discipline: dst type equals instruction type for compute ops.
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::Min:
      case Opcode::Mad:
      case Opcode::Fma:
      case Opcode::Mov:
        if (!inst.dst.empty() && inst.dst[0].is_reg() && inst.dst[0].type != inst.type) {
          out.fail(strings::format("inst %zu (%s): destination type != instruction type", i,
                                   opcode_name(inst.op)));
        }
        break;
      case Opcode::Setp:
        if (!inst.dst.empty() && inst.dst[0].type != Type::Pred) {
          out.fail(strings::format("inst %zu: setp destination is not a predicate", i));
        }
        break;
      default:
        break;
    }
  }

  if (!saw_ret) out.fail("kernel does not terminate with ret");
  return out;
}

}  // namespace isaac::ptx
