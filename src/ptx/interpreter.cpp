#include "ptx/interpreter.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"

namespace isaac::ptx {

// ------------------------------------------------------------ GlobalMemory --

std::uint64_t GlobalMemory::alloc(std::size_t bytes) {
  const std::size_t base = (bytes_.size() + 15) / 16 * 16;
  bytes_.resize(base + bytes, 0);
  return base;
}

void GlobalMemory::check(std::uint64_t addr, std::size_t n) const {
  if (addr + n > bytes_.size()) {
    throw std::out_of_range(strings::format(
        "global memory access at %llu+%zu outside %zu-byte space",
        static_cast<unsigned long long>(addr), n, bytes_.size()));
  }
}

float GlobalMemory::load_f32(std::uint64_t addr) const {
  check(addr, 4);
  float v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

void GlobalMemory::store_f32(std::uint64_t addr, float v) {
  check(addr, 4);
  std::memcpy(bytes_.data() + addr, &v, 4);
}

double GlobalMemory::load_f64(std::uint64_t addr) const {
  check(addr, 8);
  double v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

void GlobalMemory::store_f64(std::uint64_t addr, double v) {
  check(addr, 8);
  std::memcpy(bytes_.data() + addr, &v, 8);
}

std::int32_t GlobalMemory::load_s32(std::uint64_t addr) const {
  check(addr, 4);
  std::int32_t v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

void GlobalMemory::store_s32(std::uint64_t addr, std::int32_t v) {
  check(addr, 4);
  std::memcpy(bytes_.data() + addr, &v, 4);
}

void GlobalMemory::write_f32(std::uint64_t addr, const std::vector<float>& data) {
  check(addr, data.size() * 4);
  std::memcpy(bytes_.data() + addr, data.data(), data.size() * 4);
}

std::vector<float> GlobalMemory::read_f32(std::uint64_t addr, std::size_t count) const {
  check(addr, count * 4);
  std::vector<float> out(count);
  std::memcpy(out.data(), bytes_.data() + addr, count * 4);
  return out;
}

void GlobalMemory::write_f64(std::uint64_t addr, const std::vector<double>& data) {
  check(addr, data.size() * 8);
  std::memcpy(bytes_.data() + addr, data.data(), data.size() * 8);
}

std::vector<double> GlobalMemory::read_f64(std::uint64_t addr, std::size_t count) const {
  check(addr, count * 8);
  std::vector<double> out(count);
  std::memcpy(out.data(), bytes_.data() + addr, count * 8);
  return out;
}

void GlobalMemory::write_s32(std::uint64_t addr, const std::vector<std::int32_t>& data) {
  check(addr, data.size() * 4);
  std::memcpy(bytes_.data() + addr, data.data(), data.size() * 4);
}

// -------------------------------------------------------------- interpreter --

namespace {

/// Per-thread register file. Values stored as raw 64-bit with the type known
/// from the instruction stream (PTX registers are typed by class).
struct RegFile {
  std::vector<std::uint8_t> pred;
  std::vector<std::int32_t> s32;
  std::vector<std::uint64_t> u64;
  std::vector<float> f16;  // f16 modelled at f32 storage precision
  std::vector<float> f32;
  std::vector<double> f64;
};

struct ThreadCtx {
  int tid_x = 0, tid_y = 0;
  RegFile regs;
  bool exited = false;
};

struct BlockCtx {
  int ctaid_x = 0, ctaid_y = 0, ctaid_z = 0;
  std::vector<std::uint8_t> smem;
  std::vector<ThreadCtx> threads;
};

double read_value(const ThreadCtx& t, const BlockCtx& b, const LaunchDims& dims,
                  const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::Imm:
      if (op.type == Type::F16 || op.type == Type::F32 || op.type == Type::F64) return op.fimm;
      return static_cast<double>(op.imm);
    case Operand::Kind::Special:
      switch (op.sreg) {
        case SReg::TidX:
          return t.tid_x;
        case SReg::TidY:
          return t.tid_y;
        case SReg::CtaIdX:
          return b.ctaid_x;
        case SReg::CtaIdY:
          return b.ctaid_y;
        case SReg::CtaIdZ:
          return b.ctaid_z;
        case SReg::NTidX:
          return dims.block_x;
        case SReg::NTidY:
          return dims.block_y;
      }
      return 0;
    case Operand::Kind::Reg:
      switch (op.type) {
        case Type::Pred:
          return t.regs.pred[op.reg];
        case Type::S32:
          return t.regs.s32[op.reg];
        case Type::U64:
          return static_cast<double>(t.regs.u64[op.reg]);
        case Type::F16:
          return t.regs.f16[op.reg];
        case Type::F32:
          return t.regs.f32[op.reg];
        case Type::F64:
          return t.regs.f64[op.reg];
      }
      return 0;
    default:
      throw std::logic_error("read_value: empty operand");
  }
}

/// u64 reads must not round-trip through double (pointer precision).
std::uint64_t read_u64(const ThreadCtx& t, const Operand& op) {
  if (op.kind == Operand::Kind::Imm) return static_cast<std::uint64_t>(op.imm);
  if (op.kind == Operand::Kind::Reg && op.type == Type::U64) return t.regs.u64[op.reg];
  throw std::logic_error("read_u64: operand is not u64");
}

std::int64_t read_int(const ThreadCtx& t, const BlockCtx& b, const LaunchDims& dims,
                      const Operand& op) {
  if (op.kind == Operand::Kind::Reg && op.type == Type::U64) {
    return static_cast<std::int64_t>(t.regs.u64[op.reg]);
  }
  return static_cast<std::int64_t>(read_value(t, b, dims, op));
}

void write_reg(ThreadCtx& t, const Operand& dst, double v) {
  switch (dst.type) {
    case Type::Pred:
      t.regs.pred[dst.reg] = v != 0.0 ? 1 : 0;
      break;
    case Type::S32:
      t.regs.s32[dst.reg] = static_cast<std::int32_t>(v);
      break;
    case Type::U64:
      t.regs.u64[dst.reg] = static_cast<std::uint64_t>(v);
      break;
    case Type::F16:
      t.regs.f16[dst.reg] = static_cast<float>(v);
      break;
    case Type::F32:
      t.regs.f32[dst.reg] = static_cast<float>(v);
      break;
    case Type::F64:
      t.regs.f64[dst.reg] = v;
      break;
  }
}

void write_u64(ThreadCtx& t, const Operand& dst, std::uint64_t v) {
  if (dst.type != Type::U64) throw std::logic_error("write_u64: dst not u64");
  t.regs.u64[dst.reg] = v;
}

bool pred_active(const ThreadCtx& t, const Instruction& inst) {
  if (!inst.has_pred()) return true;
  const bool p = t.regs.pred[inst.pred_reg] != 0;
  return inst.pred_negate ? !p : p;
}

float load_smem_f32(const BlockCtx& b, std::int64_t off) {
  if (off < 0 || off + 4 > static_cast<std::int64_t>(b.smem.size())) {
    throw std::out_of_range(strings::format("shared load at %lld outside %zu bytes",
                                            static_cast<long long>(off), b.smem.size()));
  }
  float v;
  std::memcpy(&v, b.smem.data() + off, 4);
  return v;
}

double load_smem_f64(const BlockCtx& b, std::int64_t off) {
  if (off < 0 || off + 8 > static_cast<std::int64_t>(b.smem.size())) {
    throw std::out_of_range("shared f64 load out of bounds");
  }
  double v;
  std::memcpy(&v, b.smem.data() + off, 8);
  return v;
}

void store_smem(BlockCtx& b, std::int64_t off, const void* src, std::size_t n) {
  if (off < 0 || off + static_cast<std::int64_t>(n) > static_cast<std::int64_t>(b.smem.size())) {
    throw std::out_of_range(strings::format("shared store at %lld outside %zu bytes",
                                            static_cast<long long>(off), b.smem.size()));
  }
  std::memcpy(b.smem.data() + off, src, n);
}

struct LocalStats {
  std::uint64_t insts = 0, fma = 0, gld = 0, gst = 0, sh = 0, bar = 0;
};

/// Execute one block to completion (lockstep). Throws on semantic errors.
void run_block(const Kernel& k, const LaunchDims& dims,
               const std::vector<std::uint64_t>& params,
               const std::map<std::string, std::size_t>& labels, GlobalMemory& mem,
               std::mutex& mem_mutex, BlockCtx& block, std::uint64_t max_insts,
               LocalStats& stats) {
  std::size_t pc = 0;
  const std::size_t body_size = k.body.size();

  while (pc < body_size) {
    const Instruction& inst = k.body[pc];

    if (stats.insts > max_insts) {
      throw std::runtime_error("dynamic instruction budget exceeded (runaway loop?)");
    }

    switch (inst.op) {
      case Opcode::Label:
        ++pc;
        continue;
      case Opcode::Ret:
        return;
      case Opcode::Bar:
        // Lockstep execution: all threads are here together by construction.
        stats.bar += 1;
        ++pc;
        continue;
      case Opcode::Bra: {
        // Uniformity check over active threads.
        int taken = -1;
        for (const ThreadCtx& t : block.threads) {
          const bool a = pred_active(t, inst);
          if (taken == -1) {
            taken = a ? 1 : 0;
          } else if (taken != (a ? 1 : 0)) {
            throw std::runtime_error("non-uniform branch at '" + inst.label + "'");
          }
        }
        if (taken == 1) {
          auto it = labels.find(inst.label);
          if (it == labels.end()) throw std::runtime_error("undefined label " + inst.label);
          pc = it->second;
        } else {
          ++pc;
        }
        stats.insts += block.threads.size();
        continue;
      }
      default:
        break;
    }

    // Per-thread SIMT execution of a non-control instruction.
    for (ThreadCtx& t : block.threads) {
      if (!pred_active(t, inst)) continue;
      stats.insts += 1;

      switch (inst.op) {
        case Opcode::LdParam:
          write_u64(t, inst.dst[0], params[inst.param_index]);
          break;
        case Opcode::Mov:
          if (inst.dst[0].type == Type::U64) {
            write_u64(t, inst.dst[0],
                      static_cast<std::uint64_t>(read_int(t, block, dims, inst.src[0])));
          } else {
            write_reg(t, inst.dst[0], read_value(t, block, dims, inst.src[0]));
          }
          break;
        case Opcode::Cvt:
          if (inst.type == Type::U64) {
            write_u64(t, inst.dst[0],
                      static_cast<std::uint64_t>(read_int(t, block, dims, inst.src[0])));
          } else {
            write_reg(t, inst.dst[0], read_value(t, block, dims, inst.src[0]));
          }
          break;
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Mul:
        case Opcode::Div:
        case Opcode::Rem:
        case Opcode::Min: {
          if (inst.type == Type::U64) {
            const std::uint64_t a = read_u64(t, inst.src[0]);
            const std::uint64_t b =
                inst.src[1].kind == Operand::Kind::Imm && inst.src[1].type != Type::U64
                    ? static_cast<std::uint64_t>(inst.src[1].imm)
                    : read_u64(t, inst.src[1]);
            std::uint64_t r = 0;
            switch (inst.op) {
              case Opcode::Add:
                r = a + b;
                break;
              case Opcode::Sub:
                r = a - b;
                break;
              case Opcode::Mul:
                r = a * b;
                break;
              case Opcode::Div:
                r = b ? a / b : 0;
                break;
              case Opcode::Rem:
                r = b ? a % b : 0;
                break;
              case Opcode::Min:
                r = a < b ? a : b;
                break;
              default:
                break;
            }
            write_u64(t, inst.dst[0], r);
          } else if (inst.type == Type::S32) {
            const auto a = static_cast<std::int32_t>(read_value(t, block, dims, inst.src[0]));
            const auto b = static_cast<std::int32_t>(read_value(t, block, dims, inst.src[1]));
            std::int32_t r = 0;
            switch (inst.op) {
              case Opcode::Add:
                r = a + b;
                break;
              case Opcode::Sub:
                r = a - b;
                break;
              case Opcode::Mul:
                r = a * b;
                break;
              case Opcode::Div:
                if (b == 0) throw std::runtime_error("s32 division by zero");
                r = a / b;
                break;
              case Opcode::Rem:
                if (b == 0) throw std::runtime_error("s32 remainder by zero");
                r = a % b;
                break;
              case Opcode::Min:
                r = a < b ? a : b;
                break;
              default:
                break;
            }
            write_reg(t, inst.dst[0], r);
          } else {
            const double a = read_value(t, block, dims, inst.src[0]);
            const double b = read_value(t, block, dims, inst.src[1]);
            double r = 0;
            switch (inst.op) {
              case Opcode::Add:
                r = a + b;
                break;
              case Opcode::Sub:
                r = a - b;
                break;
              case Opcode::Mul:
                r = a * b;
                break;
              case Opcode::Div:
                r = a / b;
                break;
              case Opcode::Rem:
                r = std::fmod(a, b);
                break;
              case Opcode::Min:
                r = std::min(a, b);
                break;
              default:
                break;
            }
            write_reg(t, inst.dst[0], r);
          }
          break;
        }
        case Opcode::Mad: {
          const auto a = read_int(t, block, dims, inst.src[0]);
          const auto b = read_int(t, block, dims, inst.src[1]);
          const auto c = read_int(t, block, dims, inst.src[2]);
          if (inst.type == Type::U64) {
            write_u64(t, inst.dst[0], static_cast<std::uint64_t>(a * b + c));
          } else {
            write_reg(t, inst.dst[0], static_cast<std::int32_t>(a * b + c));
          }
          break;
        }
        case Opcode::Fma: {
          stats.fma += 1;
          if (inst.type == Type::F64) {
            const double a = read_value(t, block, dims, inst.src[0]);
            const double b = read_value(t, block, dims, inst.src[1]);
            const double c = read_value(t, block, dims, inst.src[2]);
            write_reg(t, inst.dst[0], std::fma(a, b, c));
          } else {
            const float a = static_cast<float>(read_value(t, block, dims, inst.src[0]));
            const float b = static_cast<float>(read_value(t, block, dims, inst.src[1]));
            const float c = static_cast<float>(read_value(t, block, dims, inst.src[2]));
            write_reg(t, inst.dst[0], std::fma(a, b, c));
          }
          break;
        }
        case Opcode::Setp: {
          const double a = read_value(t, block, dims, inst.src[0]);
          const double b = read_value(t, block, dims, inst.src[1]);
          bool r = false;
          switch (inst.cmp) {
            case Cmp::Lt:
              r = a < b;
              break;
            case Cmp::Le:
              r = a <= b;
              break;
            case Cmp::Gt:
              r = a > b;
              break;
            case Cmp::Ge:
              r = a >= b;
              break;
            case Cmp::Eq:
              r = a == b;
              break;
            case Cmp::Ne:
              r = a != b;
              break;
          }
          t.regs.pred[inst.dst[0].reg] = r ? 1 : 0;
          break;
        }
        case Opcode::LdGlobal: {
          stats.gld += 1;
          const std::uint64_t addr = read_u64(t, inst.src[0]) +
                                     static_cast<std::uint64_t>(inst.src[1].imm);
          std::lock_guard<std::mutex> lock(mem_mutex);
          switch (inst.type) {
            case Type::F64:
              write_reg(t, inst.dst[0], mem.load_f64(addr));
              break;
            case Type::S32:
              write_reg(t, inst.dst[0], mem.load_s32(addr));
              break;
            default:
              write_reg(t, inst.dst[0], mem.load_f32(addr));
              break;
          }
          break;
        }
        case Opcode::StGlobal: {
          stats.gst += 1;
          const std::uint64_t addr = read_u64(t, inst.src[0]) +
                                     static_cast<std::uint64_t>(inst.src[1].imm);
          const double v = read_value(t, block, dims, inst.src[2]);
          std::lock_guard<std::mutex> lock(mem_mutex);
          switch (inst.type) {
            case Type::F64:
              mem.store_f64(addr, v);
              break;
            case Type::S32:
              mem.store_s32(addr, static_cast<std::int32_t>(v));
              break;
            default:
              mem.store_f32(addr, static_cast<float>(v));
              break;
          }
          break;
        }
        case Opcode::AtomAdd: {
          stats.gst += 1;
          const std::uint64_t addr = read_u64(t, inst.src[0]) +
                                     static_cast<std::uint64_t>(inst.src[1].imm);
          const double v = read_value(t, block, dims, inst.src[2]);
          std::lock_guard<std::mutex> lock(mem_mutex);
          if (inst.type == Type::F64) {
            mem.store_f64(addr, mem.load_f64(addr) + v);
          } else {
            mem.store_f32(addr, mem.load_f32(addr) + static_cast<float>(v));
          }
          break;
        }
        case Opcode::LdShared: {
          stats.sh += 1;
          const std::int64_t off =
              read_int(t, block, dims, inst.src[0]) + inst.src[1].imm;
          if (inst.type == Type::F64) {
            write_reg(t, inst.dst[0], load_smem_f64(block, off));
          } else {
            write_reg(t, inst.dst[0], load_smem_f32(block, off));
          }
          break;
        }
        case Opcode::StShared: {
          stats.sh += 1;
          const std::int64_t off =
              read_int(t, block, dims, inst.src[0]) + inst.src[1].imm;
          if (inst.type == Type::F64) {
            const double v = read_value(t, block, dims, inst.src[2]);
            store_smem(block, off, &v, 8);
          } else {
            const float v = static_cast<float>(read_value(t, block, dims, inst.src[2]));
            store_smem(block, off, &v, 4);
          }
          break;
        }
        default:
          throw std::logic_error(std::string("unhandled opcode ") + opcode_name(inst.op));
      }
    }
    ++pc;
  }
}

}  // namespace

InterpResult run(const Kernel& kernel, const LaunchDims& dims,
                 const std::vector<std::uint64_t>& param_values, GlobalMemory& memory,
                 std::uint64_t max_dynamic_insts) {
  InterpResult out;
  if (param_values.size() != kernel.params.size()) {
    out.error = strings::format("expected %zu params, got %zu", kernel.params.size(),
                                param_values.size());
    return out;
  }

  std::map<std::string, std::size_t> labels;
  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    if (kernel.body[i].op == Opcode::Label) labels[kernel.body[i].label] = i;
  }

  std::mutex mem_mutex;
  std::mutex err_mutex;
  std::string first_error;
  std::atomic<std::uint64_t> insts{0}, fma{0}, gld{0}, gst{0}, sh{0}, bar{0};

  const std::int64_t nblocks = dims.total_blocks();
  const std::uint64_t per_block_budget =
      max_dynamic_insts / std::max<std::uint64_t>(1, static_cast<std::uint64_t>(nblocks));

  ThreadPool::global().parallel_for_each(static_cast<std::size_t>(nblocks), [&](std::size_t bi) {
    {
      std::lock_guard<std::mutex> lock(err_mutex);
      if (!first_error.empty()) return;  // fail fast
    }
    BlockCtx block;
    const int gx = dims.grid_x, gy = dims.grid_y;
    block.ctaid_x = static_cast<int>(bi % gx);
    block.ctaid_y = static_cast<int>((bi / gx) % gy);
    block.ctaid_z = static_cast<int>(bi / (static_cast<std::size_t>(gx) * gy));
    block.smem.assign(static_cast<std::size_t>(kernel.smem_bytes), 0);
    block.threads.resize(static_cast<std::size_t>(dims.threads_per_block()));
    for (int ty = 0; ty < dims.block_y; ++ty) {
      for (int tx = 0; tx < dims.block_x; ++tx) {
        ThreadCtx& t = block.threads[static_cast<std::size_t>(ty) * dims.block_x + tx];
        t.tid_x = tx;
        t.tid_y = ty;
        t.regs.pred.assign(static_cast<std::size_t>(kernel.num_pred), 0);
        t.regs.s32.assign(static_cast<std::size_t>(kernel.num_s32), 0);
        t.regs.u64.assign(static_cast<std::size_t>(kernel.num_u64), 0);
        t.regs.f16.assign(static_cast<std::size_t>(kernel.num_f16), 0.0f);
        t.regs.f32.assign(static_cast<std::size_t>(kernel.num_f32), 0.0f);
        t.regs.f64.assign(static_cast<std::size_t>(kernel.num_f64), 0.0);
      }
    }
    LocalStats stats;
    try {
      run_block(kernel, dims, param_values, labels, memory, mem_mutex, block,
                per_block_budget, stats);
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(err_mutex);
      if (first_error.empty()) {
        first_error = strings::format("block (%d,%d,%d): %s", block.ctaid_x, block.ctaid_y,
                                      block.ctaid_z, e.what());
      }
    }
    insts += stats.insts;
    fma += stats.fma;
    gld += stats.gld;
    gst += stats.gst;
    sh += stats.sh;
    bar += stats.bar;
  });

  if (!first_error.empty()) {
    out.error = first_error;
    return out;
  }
  out.ok = true;
  out.stats.instructions_executed = insts;
  out.stats.fma_executed = fma;
  out.stats.global_loads = gld;
  out.stats.global_stores = gst;
  out.stats.shared_accesses = sh;
  out.stats.barriers = bar;
  return out;
}

}  // namespace isaac::ptx
