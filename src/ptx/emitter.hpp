// Text emission: render a Module as PTX-like assembly.
//
// The output mirrors real PTX closely enough to be read with PTX eyes
// (directives, register declarations, predication syntax), which makes the
// generated kernels inspectable artifacts — the reproduction's analogue of
// the paper's "relatively low-level intermediate language" claim.
#pragma once

#include <string>

#include "ptx/ir.hpp"

namespace isaac::ptx {

std::string emit(const Kernel& kernel);
std::string emit(const Module& module);

}  // namespace isaac::ptx
