// Functional interpreter for PTX-like kernels.
//
// Executes a kernel over a (grid, block) launch exactly as SIMT hardware
// would observe it: all threads of a block advance in lockstep one
// instruction at a time, predicated threads skip, barriers are block-wide
// no-ops under lockstep, and branches must be uniform across the block's
// active threads (checked; non-uniform branches abort with an error).
//
// The interpreter exists for *semantic* cross-validation: on tiny problems it
// proves that the generated PTX computes the same result as the functional
// executors and the naive reference. It is not a timing model — timing comes
// from gpusim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ptx/ir.hpp"

namespace isaac::ptx {

/// Flat global memory. Buffers are allocated sequentially; kernel pointer
/// parameters are byte offsets into this space (passed as u64 values).
class GlobalMemory {
 public:
  /// Allocate `bytes` and return its base address. 16-byte aligned.
  std::uint64_t alloc(std::size_t bytes);

  /// Typed accessors (bounds-checked).
  float load_f32(std::uint64_t addr) const;
  void store_f32(std::uint64_t addr, float v);
  double load_f64(std::uint64_t addr) const;
  void store_f64(std::uint64_t addr, double v);
  std::int32_t load_s32(std::uint64_t addr) const;
  void store_s32(std::uint64_t addr, std::int32_t v);

  /// Bulk helpers for setting up test problems.
  void write_f32(std::uint64_t addr, const std::vector<float>& data);
  std::vector<float> read_f32(std::uint64_t addr, std::size_t count) const;
  void write_f64(std::uint64_t addr, const std::vector<double>& data);
  std::vector<double> read_f64(std::uint64_t addr, std::size_t count) const;
  void write_s32(std::uint64_t addr, const std::vector<std::int32_t>& data);

  std::size_t size() const noexcept { return bytes_.size(); }

 private:
  void check(std::uint64_t addr, std::size_t n) const;
  std::vector<std::uint8_t> bytes_;
};

struct LaunchDims {
  int grid_x = 1, grid_y = 1, grid_z = 1;
  int block_x = 1, block_y = 1;
  std::int64_t total_blocks() const noexcept {
    return static_cast<std::int64_t>(grid_x) * grid_y * grid_z;
  }
  int threads_per_block() const noexcept { return block_x * block_y; }
};

struct InterpStats {
  std::uint64_t instructions_executed = 0;  // dynamic, summed over threads
  std::uint64_t fma_executed = 0;
  std::uint64_t global_loads = 0;
  std::uint64_t global_stores = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t barriers = 0;
};

struct InterpResult {
  bool ok = false;
  std::string error;
  InterpStats stats;
};

/// Execute `kernel` with the given pointer/scalar parameters (all u64).
/// Blocks run in parallel on the global thread pool; threads within a block
/// run in lockstep. `max_dynamic_insts` guards against runaway loops.
InterpResult run(const Kernel& kernel, const LaunchDims& dims,
                 const std::vector<std::uint64_t>& param_values, GlobalMemory& memory,
                 std::uint64_t max_dynamic_insts = 1ull << 32);

}  // namespace isaac::ptx
