#include "ptx/ir.hpp"

#include "common/strings.hpp"

namespace isaac::ptx {

const char* type_suffix(Type t) noexcept {
  switch (t) {
    case Type::Pred:
      return ".pred";
    case Type::S32:
      return ".s32";
    case Type::U64:
      return ".u64";
    case Type::F16:
      return ".f16";
    case Type::F32:
      return ".f32";
    case Type::F64:
      return ".f64";
  }
  return ".?";
}

std::size_t type_bytes(Type t) noexcept {
  switch (t) {
    case Type::Pred:
      return 1;
    case Type::S32:
      return 4;
    case Type::U64:
      return 8;
    case Type::F16:
      return 2;
    case Type::F32:
      return 4;
    case Type::F64:
      return 8;
  }
  return 4;
}

const char* reg_prefix(Type t) noexcept {
  switch (t) {
    case Type::Pred:
      return "%p";
    case Type::S32:
      return "%r";
    case Type::U64:
      return "%rd";
    case Type::F16:
      return "%h";
    case Type::F32:
      return "%f";
    case Type::F64:
      return "%d";
  }
  return "%?";
}

const char* opcode_name(Opcode op) noexcept {
  switch (op) {
    case Opcode::Mov:
      return "mov";
    case Opcode::Cvt:
      return "cvt";
    case Opcode::LdParam:
      return "ld.param";
    case Opcode::LdGlobal:
      return "ld.global";
    case Opcode::StGlobal:
      return "st.global";
    case Opcode::LdShared:
      return "ld.shared";
    case Opcode::StShared:
      return "st.shared";
    case Opcode::AtomAdd:
      return "atom.global.add";
    case Opcode::Add:
      return "add";
    case Opcode::Sub:
      return "sub";
    case Opcode::Mul:
      return "mul";
    case Opcode::Div:
      return "div";
    case Opcode::Rem:
      return "rem";
    case Opcode::Min:
      return "min";
    case Opcode::Mad:
      return "mad.lo";
    case Opcode::Fma:
      return "fma.rn";
    case Opcode::Setp:
      return "setp";
    case Opcode::Bra:
      return "bra";
    case Opcode::Bar:
      return "bar.sync";
    case Opcode::Ret:
      return "ret";
    case Opcode::Label:
      return "<label>";
  }
  return "?";
}

const char* cmp_name(Cmp c) noexcept {
  switch (c) {
    case Cmp::Lt:
      return "lt";
    case Cmp::Le:
      return "le";
    case Cmp::Gt:
      return "gt";
    case Cmp::Ge:
      return "ge";
    case Cmp::Eq:
      return "eq";
    case Cmp::Ne:
      return "ne";
  }
  return "?";
}

const char* sreg_name(SReg s) noexcept {
  switch (s) {
    case SReg::TidX:
      return "%tid.x";
    case SReg::TidY:
      return "%tid.y";
    case SReg::CtaIdX:
      return "%ctaid.x";
    case SReg::CtaIdY:
      return "%ctaid.y";
    case SReg::CtaIdZ:
      return "%ctaid.z";
    case SReg::NTidX:
      return "%ntid.x";
    case SReg::NTidY:
      return "%ntid.y";
  }
  return "%?";
}

std::string Operand::to_string() const {
  switch (kind) {
    case Kind::None:
      return "<none>";
    case Kind::Reg:
      return strings::format("%s%d", reg_prefix(type), reg);
    case Kind::Imm:
      if (type == Type::F16 || type == Type::F32 || type == Type::F64) {
        return strings::format("%g", fimm);
      }
      return std::to_string(imm);
    case Kind::Special:
      return sreg_name(sreg);
  }
  return "<?>";
}

int Kernel::reg_count(Type t) const noexcept {
  switch (t) {
    case Type::Pred:
      return num_pred;
    case Type::S32:
      return num_s32;
    case Type::U64:
      return num_u64;
    case Type::F16:
      return num_f16;
    case Type::F32:
      return num_f32;
    case Type::F64:
      return num_f64;
  }
  return 0;
}

}  // namespace isaac::ptx
