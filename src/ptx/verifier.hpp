// Static verification of PTX-like kernels.
//
// Catches generator bugs before a kernel reaches the interpreter or the
// performance model: unallocated registers, type mismatches, undefined branch
// targets, barriers under non-uniform predication, and out-of-bounds static
// shared-memory immediates.
#pragma once

#include <string>
#include <vector>

#include "ptx/ir.hpp"

namespace isaac::ptx {

struct VerifyResult {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
  std::string summary() const;
};

VerifyResult verify(const Kernel& kernel);

}  // namespace isaac::ptx
