// PTX-like intermediate representation.
//
// The paper's §3/§8.3 argument for targeting PTX instead of CUDA-C is that
// (1) instruction selection is predictable, so static performance models stay
// accurate, and (2) predication makes bounds checking nearly free. This IR
// captures the PTX subset ISAAC's generators need: typed virtual registers,
// straight-line predicated instructions, uniform backward branches for the
// K-loop, shared memory, barriers, and global atomics.
//
// Control flow is deliberately restricted: branches must be *block-uniform*
// (every active thread takes the same direction), which the interpreter
// checks at runtime and the verifier encourages structurally. ISAAC's kernels
// are fully unrolled except for the reduction loop, so this restriction costs
// nothing and keeps lockstep execution exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace isaac::ptx {

/// Scalar types, in PTX spelling.
enum class Type {
  Pred,  // .pred
  S32,   // .s32
  U64,   // .u64
  F16,   // .f16 (stored as f32 in the interpreter; see DESIGN.md)
  F32,   // .f32
  F64,   // .f64
};

const char* type_suffix(Type t) noexcept;       // ".s32" etc.
std::size_t type_bytes(Type t) noexcept;        // memory footprint

/// Register classes follow PTX conventions: %p for predicates, %r for s32,
/// %rd for u64, %h for f16, %f for f32, %d for f64.
const char* reg_prefix(Type t) noexcept;

enum class Opcode {
  // data movement
  Mov,       // mov.<t> d, a
  Cvt,       // cvt.<dst_t>.<src_t> d, a  (type field = dst, aux_type = src)
  LdParam,   // ld.param.<t> d, [param_index]
  LdGlobal,  // ld.global.<t> d, [addr + imm]
  StGlobal,  // st.global.<t> [addr + imm], a
  LdShared,  // ld.shared.<t> d, [addr_s32 + imm]
  StShared,  // st.shared.<t> [addr_s32 + imm], a
  AtomAdd,   // atom.global.add.<t> [addr + imm], a

  // arithmetic
  Add,       // add.<t> d, a, b
  Sub,       // sub.<t> d, a, b
  Mul,       // mul(.lo).<t> d, a, b
  Div,       // div.<t> d, a, b
  Rem,       // rem.<t> d, a, b
  Min,       // min.<t> d, a, b
  Mad,       // mad.lo.<t> d, a, b, c     (integer multiply-add)
  Fma,       // fma.rn.<t> d, a, b, c     (floating multiply-accumulate)

  // predicates & control
  Setp,      // setp.<cmp>.<t> p, a, b
  Bra,       // @p bra LABEL  (uniform)
  Bar,       // bar.sync 0
  Ret,       // ret

  // structural pseudo-op
  Label,     // LABEL:
};

const char* opcode_name(Opcode op) noexcept;

enum class Cmp { Lt, Le, Gt, Ge, Eq, Ne };
const char* cmp_name(Cmp c) noexcept;

/// Special (read-only) hardware registers.
enum class SReg { TidX, TidY, CtaIdX, CtaIdY, CtaIdZ, NTidX, NTidY };
const char* sreg_name(SReg s) noexcept;

/// Operand: virtual register, immediate, or special register.
struct Operand {
  enum class Kind { None, Reg, Imm, Special };
  Kind kind = Kind::None;
  Type type = Type::S32;
  int reg = -1;          // virtual register index within its class
  std::int64_t imm = 0;  // integer immediate (also carries f32 bits for fp imm)
  double fimm = 0.0;     // floating immediate
  SReg sreg = SReg::TidX;

  static Operand none() { return {}; }
  static Operand make_reg(Type t, int index) {
    Operand o;
    o.kind = Kind::Reg;
    o.type = t;
    o.reg = index;
    return o;
  }
  static Operand make_imm(std::int64_t v, Type t = Type::S32) {
    Operand o;
    o.kind = Kind::Imm;
    o.type = t;
    o.imm = v;
    return o;
  }
  static Operand make_fimm(double v, Type t = Type::F32) {
    Operand o;
    o.kind = Kind::Imm;
    o.type = t;
    o.fimm = v;
    return o;
  }
  static Operand make_sreg(SReg s) {
    Operand o;
    o.kind = Kind::Special;
    o.type = Type::S32;
    o.sreg = s;
    return o;
  }

  bool is_reg() const noexcept { return kind == Kind::Reg; }
  std::string to_string() const;
};

struct Instruction {
  Opcode op = Opcode::Ret;
  Type type = Type::S32;   // primary type (.f32 of fma.rn.f32)
  Type aux_type = Type::S32;  // source type for Cvt
  Cmp cmp = Cmp::Lt;       // for Setp

  /// Guard predicate: execute only where the predicate register holds
  /// (negated when pred_negate). PTX spelling: "@p" / "@!p".
  int pred_reg = -1;
  bool pred_negate = false;

  std::vector<Operand> dst;
  std::vector<Operand> src;

  int param_index = -1;    // for LdParam
  std::string label;       // for Label / Bra targets
  std::string comment;     // carried into emitted text

  bool has_pred() const noexcept { return pred_reg >= 0; }
};

/// Kernel parameter (all parameters are 64-bit: pointers or widened scalars).
struct Param {
  std::string name;
  bool is_pointer = true;
};

struct Kernel {
  std::string name;
  std::vector<Param> params;
  std::vector<Instruction> body;
  int smem_bytes = 0;  // static .shared allocation

  /// Virtual register counts per class, maintained by the builder.
  int num_pred = 0;
  int num_s32 = 0;
  int num_u64 = 0;
  int num_f16 = 0;
  int num_f32 = 0;
  int num_f64 = 0;

  int reg_count(Type t) const noexcept;
};

struct Module {
  std::string target = "sm_60";  // sm_52 for Maxwell, sm_60 for Pascal
  std::string version = "5.0";
  std::vector<Kernel> kernels;
};

}  // namespace isaac::ptx
