// SimulatedAnnealing: a single Metropolis chain over choice indices. Neighbor
// moves nudge one parameter to an adjacent domain index (occasionally jumping
// to a random one); acceptance on the *relative* GFLOPS change, so the
// temperature scale is shape-independent. The temperature decays
// geometrically over the evaluation budget, turning the chain from an
// explorer into a hill-climber as the budget drains.
//
// Inherently sequential (each move depends on the previous measurement), so
// propose() hands out one candidate at a time regardless of max_batch.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "search/strategy.hpp"

namespace isaac::search {

template <typename Op>
class SimulatedAnnealing final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  using Base::Base;

  const char* name() const override { return "annealing"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    std::vector<Proposal<Tuning>> out;
    if (max_batch == 0) return out;
    if (auto c = current_ ? neighbor() : random_legal()) {
      proposed_ = *c;
      out.push_back(this->make_proposal(std::move(*c)));
    }
    return out;
  }

  void observe(const Choice& choice, double measured_gflops) override {
    if (choice != proposed_) return;  // stale feedback (e.g. a replayed candidate)
    ++evals_;
    if (!current_ || measured_gflops >= current_score_) {
      current_ = choice;
      current_score_ = measured_gflops;
      return;
    }
    // Metropolis: downhill moves accepted with exp(Δrel / T).
    const double rel =
        (measured_gflops - current_score_) / std::max(current_score_, 1e-9);
    if (this->rng_.uniform() < std::exp(rel / temperature())) {
      current_ = choice;
      current_score_ = measured_gflops;
    }
  }

  static constexpr double kTempHot = 0.25;   // accepts ~25% relative regressions
  static constexpr double kTempCold = 0.01;  // effectively greedy

  /// Public for tests: the cooling schedule must track the *effective*
  /// (driver-clamped) budget. Scheduling against the raw config budget kept
  /// "unlimited" (SIZE_MAX, or > |X̂|) runs at kTempHot forever — the chain
  /// never turned into a hill-climber.
  double temperature() const {
    const std::size_t budget = this->effective_budget();
    if (budget == 0 || budget == SIZE_MAX) return kTempHot;
    const double progress =
        std::min(1.0, static_cast<double>(evals_) / static_cast<double>(budget));
    return kTempHot * std::pow(kTempCold / kTempHot, progress);
  }

 private:
  std::optional<Choice> neighbor() {
    const auto& domains = this->problem_.space->domains();
    for (int attempt = 0; attempt < 256; ++attempt) {
      Choice c = *current_;
      const auto d = static_cast<std::size_t>(
          this->rng_.uniform_int(0, static_cast<std::int64_t>(domains.size()) - 1));
      const auto arity = static_cast<std::int64_t>(domains[d].values.size());
      if (arity > 1 && this->rng_.uniform() < 0.7) {
        // Adjacent step: domains are sorted value lists, so ±1 is the smallest
        // meaningful perturbation.
        const std::int64_t delta = this->rng_.bernoulli(0.5) ? 1 : -1;
        const auto idx = static_cast<std::int64_t>(c[d]) + delta;
        c[d] = static_cast<std::size_t>(std::clamp<std::int64_t>(idx, 0, arity - 1));
      } else {
        c[d] = static_cast<std::size_t>(this->rng_.uniform_int(0, arity - 1));
      }
      if (c == *current_) continue;
      if (this->check(c)) return c;
    }
    // Stuck in an illegal neighborhood: restart the chain somewhere legal.
    return random_legal();
  }

  std::optional<Choice> random_legal() {
    for (int attempt = 0; attempt < 4096; ++attempt) {
      Choice c = this->random_choice();
      if (this->check(c)) return c;
    }
    // Sparse legal space (fractions of 1e-4 exist): fall back to the
    // guaranteed repair — the constraint-propagating pruned walk — so a
    // tunable shape never reports "no legal config" and the fallback costs
    // the plausible space, not |X̂|.
    return this->scan_for_legal(this->random_choice());
  }

  std::optional<Choice> current_;
  double current_score_ = 0.0;
  Choice proposed_;
  std::size_t evals_ = 0;
};

}  // namespace isaac::search
