#include "search/factory.hpp"

#include <algorithm>

namespace isaac::search {

const std::vector<std::string>& strategy_names() {
  static const std::vector<std::string> names = {"exhaustive", "random", "genetic", "annealing",
                                                 "model_topk"};
  return names;
}

bool strategy_is_known(const std::string& name) {
  const auto& names = strategy_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

bool strategy_is_model_free(const std::string& name) {
  // Explicit allowlist: an unknown (or future model-guided) name must never
  // be classified model-free by default — callers without a regressor rely
  // on this answer before constructing the strategy.
  return name == "exhaustive" || name == "random" || name == "genetic" || name == "annealing";
}

}  // namespace isaac::search
