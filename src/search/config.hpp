// SearchConfig: how much a tuning search may spend and which strategy spends
// it. Shared by runtime inference (core/inference.hpp), the cached dispatch
// path (core::Context) and offline data collection (tuning/collector.hpp).
//
// The budget counts *measured device evaluations* — the expensive resource.
// Model scoring, legality checks and proposal generation are considered free:
// strategies may consult the validator (and, for model-guided strategies, the
// regressor) as much as they like before spending a unit of budget. Every
// strategy is *anytime*: stopping the drive loop early still yields the best
// configuration among the evaluations performed so far.
//
// Zero-valued fields mean "use the operation's default" and are resolved
// against OperationTraits<Op>::default_search() by core::tune<Op>().
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace isaac::search {

struct SearchConfig {
  /// Strategy name: "exhaustive", "random", "genetic", "annealing" or
  /// "model_topk" (see search/factory.hpp). Empty (the default) = the op's
  /// default from OperationTraits<Op>::default_search() — "model_topk" for
  /// every current op.
  std::string strategy;

  /// Maximum measured device evaluations. 0 (the default) = the op's
  /// default; SIZE_MAX = unlimited (ExhaustiveSearch then sweeps the whole
  /// legal space, the pre-subsystem ground truth). The driver clamps any
  /// budget to |X̂| — the space's distinct point count — so unlimited
  /// budgets terminate for every strategy.
  std::size_t budget = 0;

  /// Seed for stochastic strategies — identical (config, shape, device)
  /// searches reproduce identical trajectories.
  std::uint64_t seed = 0x5EA47C4ULL;

  /// Timing repetitions per measured candidate (median taken).
  int reeval_reps = 5;

  /// MLP scoring batch for model-guided strategies. Sized so one chunk's
  /// activations (batch × widest layer floats) stay L2-resident during the
  /// forward pass; scores are bit-identical for any chunking, so this is a
  /// pure throughput knob.
  std::size_t batch = 2048;

  /// Cap on the legal candidates a model-guided strategy ranks (0 = the op's
  /// default; for ops whose default is 0, the ranking is dense). Applied by
  /// deterministic striding with the op's seed grid re-appended, for spaces
  /// too large to score densely.
  std::size_t max_candidates = 0;

  /// Measured candidates retained (best first) in TuneResult::top.
  std::size_t keep_top = 100;

  // ---- failure-domain knobs (DESIGN.md, "Failure domains") ----

  /// Extra attempts per failing measurement before the failure propagates.
  /// A throwing measure() is retried in place with capped exponential
  /// backoff — transient injected/transient device faults never abort a
  /// search; persistent ones still fail deterministically after the retries.
  int measure_retries = 2;

  /// Base backoff before the first retry; doubles per attempt up to the cap.
  double retry_backoff_ms = 0.5;
  double retry_backoff_cap_ms = 8.0;

  /// Wall-clock deadline for the whole drive loop (0 = none). Anytime
  /// semantics: an expired search stops between batches and returns its
  /// best-so-far instead of throwing.
  double timeout_ms = 0.0;

  /// Cooperative cancellation (non-owning; nullptr = never cancelled). The
  /// drive loop polls it between batches — Context points refinements at its
  /// shutdown flag so teardown never waits out a full search.
  const std::atomic<bool>* cancel = nullptr;

  /// Throw std::invalid_argument with the offending field for values that
  /// have no sane meaning (NaN/negative time budgets, negative retries).
  /// Zero-valued size fields stay legal — they mean "use the op default".
  /// `resolved` additionally requires the post-resolution invariants
  /// (reeval_reps/batch/keep_top ≥ 1) that core::tune relies on downstream.
  void validate(bool resolved = false) const {
    if (measure_retries < 0) {
      throw std::invalid_argument("SearchConfig: measure_retries must be >= 0");
    }
    if (!(retry_backoff_ms >= 0.0) || std::isnan(retry_backoff_ms)) {
      throw std::invalid_argument("SearchConfig: retry_backoff_ms must be >= 0");
    }
    if (!(retry_backoff_cap_ms >= 0.0) || std::isnan(retry_backoff_cap_ms)) {
      throw std::invalid_argument("SearchConfig: retry_backoff_cap_ms must be >= 0");
    }
    if (std::isnan(timeout_ms) || timeout_ms < 0.0) {
      throw std::invalid_argument("SearchConfig: timeout_ms must be >= 0");
    }
    if (reeval_reps < 0) {
      throw std::invalid_argument("SearchConfig: reeval_reps must be >= 0 (0 = op default)");
    }
    if (resolved) {
      if (reeval_reps < 1) throw std::invalid_argument("SearchConfig: resolved reeval_reps < 1");
      if (batch < 1) throw std::invalid_argument("SearchConfig: resolved batch < 1");
      if (keep_top < 1) throw std::invalid_argument("SearchConfig: resolved keep_top < 1");
      if (budget < 1) throw std::invalid_argument("SearchConfig: resolved budget < 1");
    }
  }
};

}  // namespace isaac::search
