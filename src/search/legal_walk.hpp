// Chunking the constraint-propagating pruned walk (tuning/search_space.hpp)
// across the thread pool without materializing index vectors.
//
// The serial walk binds dimensions from the highest index down; splitting it
// at a dimension S turns every surviving prefix over dimensions [S..D-1] into
// an independent subtree walk over [0..S-1]. Prefixes are enumerated serially
// (the prefix predicates prune there too, so this is cheap relative to the
// subtrees) and handed to the pool as chunks. Chunk i's points all precede
// chunk i+1's in flat (odometer) order, so per-chunk results concatenated in
// chunk order reproduce the serial walk — and therefore the generate-and-test
// sweep filtered by codegen::validate — exactly. That order identity is what
// lets rank_legal_space and the skeleton builder swap enumeration engines
// without moving a single candidate.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "search/strategy.hpp"

namespace isaac::search {

/// A pruned walk split for the pool: dimensions [split..D-1] pre-bound to
/// each surviving prefix, subtrees over [0..split-1] left to walk. Prefixes
/// are stored in ascending flat order; flat_bases[i] is the flat-index
/// contribution of prefix i's bound dimensions (exact only when |X̂| fits
/// 64 bits — callers on saturated spaces must ignore it).
struct WalkChunkPlan {
  std::size_t split = 0;
  std::vector<Choice> prefixes;
  std::vector<std::uint64_t> flat_bases;
};

/// Choose the split dimension and enumerate the surviving prefixes. Aims for
/// enough chunks to keep the pool busy with headroom for imbalance (pruned
/// subtrees vary wildly in size) while the serial prefix pass stays
/// negligible. An empty plan (no prefixes) means the pruned space — or X̂
/// itself — is empty.
inline WalkChunkPlan plan_legal_walk(const std::vector<tuning::ParameterDomain>& domains,
                                     const tuning::ConstraintSet* constraints) {
  WalkChunkPlan plan;
  const std::size_t nd = domains.size();
  if (nd == 0) return plan;
  for (const auto& d : domains) {
    if (d.values.empty()) return plan;
  }
  if (nd == 1) {
    // Single dimension: one chunk covering the whole (tiny) walk.
    plan.split = 1;
    plan.prefixes.push_back(Choice(1, 0));
    plan.flat_bases.push_back(0);
    return plan;
  }
  const std::size_t target = std::max<std::size_t>(64, 8 * ThreadPool::global().size());
  std::size_t split = nd - 1;
  std::size_t count = domains[split].values.size();
  while (split > 1 && count < target) {
    --split;
    count *= domains[split].values.size();
  }
  plan.split = split;
  Choice choice(nd, 0);
  std::vector<int> values(nd, 0);
  tuning::walk_legal_levels(domains, constraints, nd - 1, split, choice, values, 0,
                            [&](const Choice& c, std::uint64_t flat) {
                              plan.prefixes.push_back(c);
                              plan.flat_bases.push_back(flat);
                              return true;
                            });
  return plan;
}

/// Walk chunk `ci` of a plan: bind its prefix, then walk the subtree over
/// dimensions [0..split-1], emitting `fn(choice, flat)` leaves in ascending
/// flat order. Predicates with eval_dim ≥ split already passed during
/// planning and are not re-evaluated. Safe to call concurrently for distinct
/// chunks — each call owns its cursors.
template <typename Fn>
void run_walk_chunk(const std::vector<tuning::ParameterDomain>& domains,
                    const tuning::ConstraintSet* constraints, const WalkChunkPlan& plan,
                    std::size_t ci, const Fn& fn) {
  const std::size_t nd = domains.size();
  Choice choice = plan.prefixes[ci];
  std::vector<int> values(nd, 0);
  for (std::size_t d = plan.split; d < nd; ++d) {
    values[d] = domains[d].values[choice[d]];
  }
  tuning::walk_legal_levels(domains, constraints, plan.split - 1, 0, choice, values,
                            plan.flat_bases[ci], fn);
}

}  // namespace isaac::search
