// RandomSearch: i.i.d. uniform draws from X̂, de-duplicated and filtered to
// the legal space before any budget is spent. The classic strong baseline —
// and the fallback the adaptive strategies reduce to when their structure
// cannot help.
#pragma once

#include <unordered_set>

#include "search/strategy.hpp"

namespace isaac::search {

/// FNV-1a over the index vector; collisions only cost a duplicate proposal.
inline std::uint64_t choice_hash(const Choice& c) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::size_t v : c) {
    h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename Op>
class RandomSearch final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  using Base::Base;

  const char* name() const override { return "random"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    std::vector<Proposal<Tuning>> out;
    // Legal fractions of ~1% are normal (Table 1), so allow generous
    // rejection headroom before concluding the space is drained.
    std::size_t attempts = 512 * max_batch + 4096;
    while (out.size() < max_batch && attempts-- > 0) {
      Choice c = this->random_choice();
      if (!seen_.insert(choice_hash(c)).second) continue;  // duplicate
      if (!this->check(c)) continue;
      out.push_back(this->make_proposal(std::move(c)));
    }
    if (out.empty() && max_batch > 0) {
      // Rejection sampling ran dry (sparse legal space): repair through the
      // constraint-propagating pruned walk — the first unseen legal point
      // at-or-after a random start in flat order, wrapping around. Covering
      // the whole (pruned) walk without a hit proves the legal space is
      // genuinely exhausted, so returning empty is then truthful.
      const auto& domains = this->problem_.space->domains();
      const tuning::ConstraintSet& cs = this->constraints();
      const Choice start = this->random_choice();
      std::optional<Choice> found;  // first unseen legal at-or-after start
      std::optional<Choice> wrap;   // first unseen legal overall
      tuning::WalkStats ws;
      tuning::walk_legal(
          domains, cs.empty() ? nullptr : &cs,
          [&](const Choice& c, std::uint64_t) {
            if (choice_flat_less(c, start)) {
              if (!wrap && !seen_.contains(choice_hash(c)) && this->problem_.legal(c)) {
                wrap = c;
              }
              return true;
            }
            if (seen_.contains(choice_hash(c)) || !this->problem_.legal(c)) return true;
            found = c;
            return false;
          },
          &ws);
      this->stats_.visited += static_cast<std::size_t>(ws.emitted + ws.pruned);
      if (found || wrap) {
        ++this->stats_.legal;
        Choice c = found ? std::move(*found) : std::move(*wrap);
        seen_.insert(choice_hash(c));
        out.push_back(this->make_proposal(std::move(c)));
      }
    }
    return out;
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace isaac::search
