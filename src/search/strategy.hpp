// The SearchStrategy<Op> contract — the pluggable heart of runtime tuning.
//
// A strategy walks the op's possible space X̂ through per-parameter choice
// indices (tuning/search_space.hpp) and is driven by search::drive()
// (search/driver.hpp) in propose/observe rounds:
//
//   1. propose(n)   — up to n *new, legality-checked* candidates. Proposals
//                     are constraint-aware by construction: a strategy
//                     consults SearchProblem::legal (codegen::validate) before
//                     handing a candidate over, so the driver never spends a
//                     unit of measurement budget on an illegal point.
//   2. observe(c,y) — the measured GFLOPS of an earlier proposal, fed back so
//                     adaptive strategies (genetic, annealing) can steer.
//   3. repeat until the budget is exhausted or propose() returns empty
//                     (space exhausted / strategy converged).
//
// Anytime semantics: the driver keeps every measured candidate, so stopping
// after any prefix of the budget yields the best-so-far. Determinism: all
// randomness flows from the Rng seeded by SearchConfig::seed, and strategies
// are driven single-threaded, so equal (config, shape, device) runs produce
// identical trajectories.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/operation.hpp"
#include "gpusim/device.hpp"
#include "mlp/regressor.hpp"
#include "search/config.hpp"

namespace isaac::search {

/// Per-parameter value indices into the search space's domains.
using Choice = std::vector<std::size_t>;

/// Advance `c` one step in the lexicographic (odometer) enumeration of the
/// domains' cartesian product; false when the odometer wraps around, i.e.
/// every point has been visited. Shared by every strategy that enumerates X̂
/// so they agree on visit order (the determinism and tie-break guarantees
/// lean on it).
inline bool advance_choice(Choice& c, const std::vector<tuning::ParameterDomain>& domains) {
  for (std::size_t d = 0; d < domains.size(); ++d) {
    if (++c[d] < domains[d].values.size()) return true;
    c[d] = 0;
  }
  return false;
}

/// Strict "earlier in flat (odometer) order" over choice vectors of equal
/// arity — dimension D-1 is most significant. Comparing index vectors instead
/// of flat integers keeps the order exact even when |X̂| saturates size()
/// (no 64-bit flat index exists to compare).
inline bool choice_flat_less(const Choice& a, const Choice& b) {
  for (std::size_t d = a.size(); d-- > 0;) {
    if (a[d] != b[d]) return a[d] < b[d];
  }
  return false;
}

/// The op's prefix-constraint layer for a problem instance — empty when the
/// traits don't declare the optional prefix_constraints hook (enumeration
/// then degenerates to generate-and-test; exactly as correct, just slower).
template <typename Op>
tuning::ConstraintSet prefix_constraints_for(
    const typename core::OperationTraits<Op>::Shape& shape,
    const gpusim::DeviceDescriptor& dev,
    const typename core::OperationTraits<Op>::SearchSpace& space) {
  using Traits = core::OperationTraits<Op>;
  if constexpr (requires { Traits::prefix_constraints(shape, dev, space); }) {
    return Traits::prefix_constraints(shape, dev, space);
  } else {
    return {};
  }
}

/// Everything a strategy may consult about the problem instance. Non-owning:
/// the caller keeps shape/device/space/model alive for the search's duration.
template <typename Op>
struct SearchProblem {
  using Traits = core::OperationTraits<Op>;
  using Shape = typename Traits::Shape;
  using Tuning = typename Traits::Tuning;
  using Space = typename Traits::SearchSpace;

  const Shape* shape = nullptr;
  const gpusim::DeviceDescriptor* device = nullptr;
  const Space* space = nullptr;
  /// Optional: model-guided strategies require it, measurement-driven ones
  /// (random/genetic/annealing/exhaustive) ignore it. Non-owning: the model
  /// must outlive the search — callers dispatching against a hot-swappable
  /// Context pin one model_snapshot() for the whole search and pass its
  /// regressor here, so the ranking is internally consistent across swaps.
  const mlp::Regressor* model = nullptr;

  Tuning decode(const Choice& c) const { return space->decode(c); }
  bool legal(const Choice& c) const {
    return Traits::validate(*shape, space->decode(c), *device);
  }
  std::vector<double> featurize(const Tuning& t) const { return Traits::featurize(*shape, t); }

  /// In-place featurization for the allocation-free ranking pipeline. Ops
  /// whose traits lack the featurize_into hook fall back to an adapter over
  /// the allocating featurize (same values, one transient vector).
  void featurize_into(const Tuning& t, double* out) const {
    if constexpr (requires { Traits::featurize_into(*shape, t, out); }) {
      Traits::featurize_into(*shape, t, out);
    } else {
      const std::vector<double> row = Traits::featurize(*shape, t);
      std::copy(row.begin(), row.end(), out);
    }
  }
};

/// One candidate handed from a strategy to the driver. `predicted_gflops` is
/// nonzero only for model-guided strategies.
template <typename Tuning>
struct Proposal {
  Choice choice;
  Tuning tuning{};
  double predicted_gflops = 0.0;
};

template <typename Op>
class SearchStrategy {
 public:
  using Traits = core::OperationTraits<Op>;
  using Tuning = typename Traits::Tuning;

  /// X̂ traffic: `visited` counts legality checks (points of X̂ touched),
  /// `legal` the subset that passed codegen::validate.
  struct Stats {
    std::size_t visited = 0;
    std::size_t legal = 0;
  };

  SearchStrategy(const SearchProblem<Op>& problem, const SearchConfig& config)
      : problem_(problem), config_(config), rng_(config.seed) {}
  virtual ~SearchStrategy() = default;

  SearchStrategy(const SearchStrategy&) = delete;
  SearchStrategy& operator=(const SearchStrategy&) = delete;

  virtual const char* name() const = 0;

  /// Up to `max_batch` new legal proposals; empty means the strategy is done.
  virtual std::vector<Proposal<Tuning>> propose(std::size_t max_batch) = 0;

  /// Measured feedback for a proposal returned earlier. Default: ignore
  /// (non-adaptive strategies).
  virtual void observe(const Choice& choice, double measured_gflops) {
    (void)choice;
    (void)measured_gflops;
  }

  const Stats& stats() const noexcept { return stats_; }

  /// |X̂| — the number of distinct points the strategy could ever propose.
  /// The driver clamps the evaluation budget to it so "unlimited" budgets
  /// terminate even for strategies that never stop proposing (the GA's
  /// fallback re-proposals, the annealer's restarts).
  std::size_t space_points() const { return problem_.space->size(); }

  /// The evaluation budget the driver will actually spend — config_.budget
  /// clamped to |X̂|. The driver threads it in before the first proposal
  /// round so schedule-dependent strategies (the annealer's temperature
  /// decay) pace themselves against the real run length, not a raw SIZE_MAX
  /// "unlimited" request that would freeze their schedule at t = 0.
  void set_effective_budget(std::size_t budget) noexcept { effective_budget_ = budget; }
  std::size_t effective_budget() const noexcept {
    return effective_budget_ != 0 ? effective_budget_ : config_.budget;
  }

 protected:
  /// Counted legality check — every strategy funnels X̂ probes through here
  /// so TuneResult::enumerated/legal stay meaningful across strategies.
  bool check(const Choice& c) {
    ++stats_.visited;
    if (!problem_.legal(c)) return false;
    ++stats_.legal;
    return true;
  }

  Proposal<Tuning> make_proposal(Choice c, double predicted = 0.0) const {
    Proposal<Tuning> p;
    p.tuning = problem_.decode(c);
    p.choice = std::move(c);
    p.predicted_gflops = predicted;
    return p;
  }

  /// Uniform draw of a choice vector from X̂ (not legality-checked).
  Choice random_choice() {
    const auto& domains = problem_.space->domains();
    Choice c(domains.size());
    for (std::size_t d = 0; d < domains.size(); ++d) {
      c[d] = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(domains[d].values.size()) - 1));
    }
    return c;
  }

  /// The op's prefix-constraint layer for this problem, built lazily on the
  /// first repair scan (most runs never need one). Only the guaranteed-repair
  /// paths consult it: the rejection samplers stay validate-checked and
  /// distribution-identical, so RNG trajectories are unchanged — the scans
  /// just stopped costing O(|X̂|).
  const tuning::ConstraintSet& constraints() {
    if (!constraints_built_) {
      constraints_ =
          prefix_constraints_for<Op>(*problem_.shape, *problem_.device, *problem_.space);
      constraints_built_ = true;
    }
    return constraints_;
  }

  /// Guaranteed legal-point finder for sparse legal spaces where rejection
  /// sampling runs dry (legal fractions of 1e-4 and below exist): the first
  /// legal point at-or-after `start` in flat (odometer) order, wrapping
  /// around to the first legal point overall — the same answer the old
  /// point-by-point scan gave, now found through the constraint-propagating
  /// pruned walk so the cost scales with the plausible space, not |X̂|.
  /// Visited stats account covered subtrees in bulk (a fruitless full wrap
  /// still counts all of |X̂|, matching the scan it replaced). Returns
  /// nullopt only when the legal space is truly empty.
  std::optional<Choice> scan_for_legal(Choice start) {
    const auto& domains = problem_.space->domains();
    if (start.size() != domains.size()) start.assign(domains.size(), 0);
    const tuning::ConstraintSet& cs = constraints();
    std::optional<Choice> found;  // first legal at-or-after start
    std::optional<Choice> wrap;   // first legal overall (the wrap-around answer)
    tuning::WalkStats ws;
    tuning::walk_legal(
        domains, cs.empty() ? nullptr : &cs,
        [&](const Choice& c, std::uint64_t) {
          if (choice_flat_less(c, start)) {
            if (!wrap && problem_.legal(c)) wrap = c;
            return true;  // keep walking: a hit at-or-after start still wins
          }
          if (!problem_.legal(c)) return true;
          found = c;
          return false;  // ascending walk: first hit at-or-after start
        },
        &ws);
    stats_.visited += static_cast<std::size_t>(ws.emitted + ws.pruned);
    if (!found && !wrap) return std::nullopt;
    ++stats_.legal;
    return found ? found : wrap;
  }

  SearchProblem<Op> problem_;
  SearchConfig config_;
  Rng rng_;
  Stats stats_;

 private:
  std::size_t effective_budget_ = 0;  // 0 = not told yet, fall back to config
  tuning::ConstraintSet constraints_;
  bool constraints_built_ = false;
};

}  // namespace isaac::search
