// ModelGuidedTopK: the paper's §6 runtime recipe as an explicit, budgeted
// strategy. Rank the whole legal space with the trained regressor (cheap:
// batched MLP forward passes in parallel), then spend the measurement budget
// on the k best predictions only — the re-timing that "smooths out the
// inherent noise of our predictive model".
//
// Ranking cost is bounded by SearchConfig::max_candidates: oversized legal
// spaces are deterministically strided and the op's seed grid re-appended so
// subsampling can never lose the well-known-good region.
#pragma once

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "search/random.hpp"  // choice_hash

namespace isaac::search {

template <typename Op>
class ModelGuidedTopK final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  ModelGuidedTopK(const SearchProblem<Op>& problem, const SearchConfig& config)
      : Base(problem, config) {
    if (this->problem_.model == nullptr) {
      throw std::invalid_argument("model_topk: this strategy requires a trained model");
    }
  }

  const char* name() const override { return "model_topk"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    if (!ranked_) rank();
    std::vector<Proposal<Tuning>> out;
    while (out.size() < max_batch && next_ < order_.size()) {
      const std::size_t i = order_[next_++];
      out.push_back(this->make_proposal(candidates_[i], scores_[i]));
    }
    return out;
  }

 private:
  void rank() {
    ranked_ = true;
    using Traits = typename Base::Traits;
    const auto& space = *this->problem_.space;
    const auto& domains = space.domains();

    // ---- enumerate the legal space --------------------------------------
    Choice odometer(domains.size(), 0);
    do {
      if (this->check(odometer)) candidates_.push_back(odometer);
    } while (advance_choice(odometer, domains));
    if (candidates_.empty()) return;

    // ---- subsample oversized spaces, keeping the seed grid --------------
    const std::size_t cap = this->config_.max_candidates;
    if (cap > 0 && candidates_.size() > cap) {
      std::vector<Choice> kept;
      kept.reserve(cap + 64);
      std::unordered_set<std::uint64_t> in_kept;
      const double step =
          static_cast<double>(candidates_.size()) / static_cast<double>(cap);
      for (std::size_t i = 0; i < cap; ++i) {
        Choice& c = candidates_[static_cast<std::size_t>(i * step)];
        if (in_kept.insert(choice_hash(c)).second) kept.push_back(std::move(c));
      }
      for (const Tuning& t : Traits::seed_grid()) {
        Choice c;
        if (!space.encode(t, c)) continue;  // value outside this space's domains
        // Probe uncounted: the odometer sweep above already visited (and
        // counted) every point of X̂, this only re-selects from it.
        if (!this->problem_.legal(c)) continue;
        if (in_kept.insert(choice_hash(c)).second) kept.push_back(std::move(c));
      }
      candidates_ = std::move(kept);
    }

    // ---- batched model scoring ------------------------------------------
    std::vector<std::vector<double>> rows(candidates_.size());
    ThreadPool::global().parallel_for_each(candidates_.size(), [&](std::size_t i) {
      rows[i] = this->problem_.featurize(space.decode(candidates_[i]));
    });
    scores_ = this->problem_.model->predict_gflops_chunked(rows, this->config_.batch);

    // ---- rank by predicted GFLOPS ---------------------------------------
    // Only the first `budget` ranks can ever be proposed, so a partial sort
    // suffices — O(n log k) on the latency-critical cache-miss path.
    order_.resize(candidates_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    const std::size_t k =
        std::min<std::size_t>(std::max<std::size_t>(this->config_.budget, 1), order_.size());
    std::partial_sort(order_.begin(), order_.begin() + static_cast<std::ptrdiff_t>(k),
                      order_.end(), [&](std::size_t a, std::size_t b) {
                        if (scores_[a] != scores_[b]) return scores_[a] > scores_[b];
                        return candidates_[a] < candidates_[b];  // deterministic tie-break
                      });
    order_.resize(k);
  }

  bool ranked_ = false;
  std::vector<Choice> candidates_;
  std::vector<double> scores_;
  std::vector<std::size_t> order_;
  std::size_t next_ = 0;
};

}  // namespace isaac::search
