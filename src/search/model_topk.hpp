// ModelGuidedTopK: the paper's §6 runtime recipe as an explicit, budgeted
// strategy. Rank the whole legal space with the trained regressor (cheap:
// batched MLP forward passes in parallel), then spend the measurement budget
// on the k best predictions only — the re-timing that "smooths out the
// inherent noise of our predictive model".
//
// The ranking itself — enumerate/probe X̂, filter to the legal space, score
// with the model, order best-first — is factored out as a reusable core:
// `rank_legal_space` (dense, what the strategy drives) and
// `rank_strided_probe` (bounded-work, what the zero-measurement dispatch
// fast path in core::predict<Op>() takes on cold shapes).
//
// Two properties keep ranking cheap enough to sit on the dispatch path:
//
//  * The scoring pipeline is allocation-free: candidates featurize in place
//    into one flat FeatureBatch (no vector-of-vectors), and the model scores
//    it through thread-local forward workspaces (mlp/regressor.hpp).
//
//  * Dense enumeration runs over a *structural skeleton* — a per-process,
//    per-(op, device, structural shape class, domains) cache of the X̂ points
//    that pass every shape-independent legality check, computed once with
//    OperationTraits<Op>::relax_shape and reused by every subsequent ranking.
//    For the GEMM space ~3% of X̂ survives the structural checks, so a dense
//    rank touches ~30× fewer points after the first sweep. The skeleton is a
//    superset of every shape's legal set (relax_shape's contract), each
//    surviving point is re-validated against the real shape, and flat-index
//    order equals odometer order — candidate sets and orderings are exactly
//    those of a full sweep.
//
//  * Enumeration itself — the skeleton *build*, the dense fallback for ops
//    without relax_shape or spaces too large to materialize, and the repair
//    scans — goes through the constraint-propagating pruned walk
//    (tuning::walk_legal + the op's prefix_constraints): whole illegal
//    subtrees are skipped unvisited, so iteration cost scales with the legal
//    space X, not |X̂|. The walk emits in exactly odometer order and every
//    survivor still passes the full validate gate, so candidate sets, scores
//    and orderings stay bit-identical to the generate-and-test sweep.
//
// Ranking cost is bounded by SearchConfig::max_candidates: oversized legal
// spaces are deterministically strided and the op's seed grid re-appended so
// subsampling can never lose the well-known-good region.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "search/legal_walk.hpp"
#include "search/random.hpp"  // choice_hash
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "tuning/feature_batch.hpp"

namespace isaac::search {

/// A model-ranked slice of the legal space. `order` indexes `candidates`/
/// `scores` best-first and is truncated to the requested k; `visited`/`legal`
/// account the X̂ traffic the ranking spent so callers can merge it into
/// their own stats.
template <typename Op>
struct RankedCandidates {
  std::vector<Choice> candidates;  // legal (possibly subsampled), seed grid kept
  std::vector<double> scores;      // predicted GFLOPS, aligned with candidates
  std::vector<std::size_t> order;  // best-first indices into candidates, ≤ k
  std::size_t visited = 0;         // X̂ points legality-checked
  std::size_t legal = 0;           // subset that passed validation
};

/// Decode a flat lexicographic index into an existing choice vector
/// (dimension 0 least significant — the same order advance_choice walks),
/// reusing the caller's storage.
inline void choice_from_flat_into(std::size_t flat,
                                  const std::vector<tuning::ParameterDomain>& domains,
                                  Choice& c) {
  c.resize(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    c[d] = flat % domains[d].values.size();
    flat /= domains[d].values.size();
  }
}

/// Decode a flat lexicographic index into a fresh choice vector.
inline Choice choice_from_flat(std::size_t flat,
                               const std::vector<tuning::ParameterDomain>& domains) {
  Choice c;
  choice_from_flat_into(flat, domains, c);
  return c;
}

namespace detail {

/// Append the op's seed grid to `candidates` (legality-checked, de-duplicated
/// against what is already there) so no subsampled ranking can lose the
/// well-known-good region.
template <typename Op>
void append_seed_grid(const SearchProblem<Op>& problem, std::vector<Choice>& candidates,
                      std::unordered_set<std::uint64_t>& present) {
  using Traits = typename SearchProblem<Op>::Traits;
  for (const auto& t : Traits::seed_grid()) {
    Choice c;
    if (!problem.space->encode(t, c)) continue;  // value outside this space's domains
    if (!problem.legal(c)) continue;
    if (present.insert(choice_hash(c)).second) candidates.push_back(std::move(c));
  }
}

/// The device fields legality actually depends on (codegen::validate and the
/// occupancy rules behind it), folded into the skeleton key so descriptors
/// that share a name but differ in limits never share a skeleton.
inline std::string device_limits_signature(const gpusim::DeviceDescriptor& dev) {
  std::string sig;
  for (const int v : {dev.max_threads_per_block, dev.warp_size, dev.max_warps_per_sm,
                      dev.max_blocks_per_sm, dev.registers_per_sm, dev.max_registers_per_thread,
                      dev.smem_per_sm_bytes, dev.smem_per_block_bytes,
                      dev.reg_alloc_granularity, dev.smem_alloc_granularity}) {
    sig += std::to_string(v);
    sig += ',';
  }
  return sig;
}

/// One stable signature per domain list, so spaces with restricted domains
/// (subclassed test spaces, future per-device prunes) never share a skeleton
/// with the full space.
inline std::string domains_signature(const std::vector<tuning::ParameterDomain>& domains) {
  std::string sig;
  for (const auto& d : domains) {
    sig += d.name;
    sig += ':';
    for (int v : d.values) {
      sig += std::to_string(v);
      sig += ',';
    }
    sig += ';';
  }
  return sig;
}

/// Largest |X̂| a structural skeleton is materialized for. Spaces past it —
/// and saturated size() sentinels — take the lazy pruned-walk path in
/// rank_legal_space instead. 64-bit indices make this a memory-policy bound,
/// not an overflow hazard (the old 32-bit indices silently capped the
/// representable space at the same 2^32 the guard now enforces explicitly).
inline constexpr std::size_t kSkeletonMaxPoints = std::size_t{1} << 32;

/// Uncached core of the skeleton build: the constraint-propagating pruned
/// walk over the relaxed shape's plausible subtrees, gated by the full
/// validate and chunked for the pool by surviving prefix — ascending flat
/// indices, exactly the generate-and-test sweep's survivor set. Exposed
/// separately from the cache so the bench can time it against the sweep it
/// replaced.
template <typename Op>
std::vector<std::uint64_t> build_skeleton_points(
    const SearchProblem<Op>& problem,
    const typename SearchProblem<Op>::Traits::Shape& relaxed) {
  using Traits = typename SearchProblem<Op>::Traits;
  telemetry::Span build_span("rank.skeleton_build");
  ISAAC_TM_COUNT("rank.skeleton_builds");
  // RAII rather than a record-before-return: the function has two exits
  // (direct walk vs. pooled chunks) and both should feed the histogram.
  struct BuildProbe {
    std::uint64_t t0;
    BuildProbe() : t0(telemetry::enabled() ? telemetry::now_us() : 0) {}
    ~BuildProbe() {
      if (t0) ISAAC_TM_RECORD("rank.skeleton_build_us", telemetry::now_us() - t0);
    }
  } build_probe;
  const auto& domains = problem.space->domains();
  const tuning::ConstraintSet cs =
      prefix_constraints_for<Op>(relaxed, *problem.device, *problem.space);
  const tuning::ConstraintSet* csp = cs.empty() ? nullptr : &cs;
  // One worker: the chunk plan buys no parallelism, so walk directly — no
  // prefix planning, no per-chunk part vectors, no concatenation.
  if (ThreadPool::global().size() <= 1) {
    std::vector<std::uint64_t> skeleton;
    skeleton.reserve(std::size_t{1} << 16);
    tuning::walk_legal(domains, csp, [&](const Choice& c, std::uint64_t flat) {
      if (Traits::validate(relaxed, problem.space->decode(c), *problem.device)) {
        skeleton.push_back(flat);
      }
      return true;
    });
    ISAAC_TM_COUNT_N("rank.skeleton_points", skeleton.size());
    return skeleton;
  }
  const WalkChunkPlan plan = plan_legal_walk(domains, csp);
  std::vector<std::vector<std::uint64_t>> parts(plan.prefixes.size());
  ThreadPool::global().parallel_for_each(plan.prefixes.size(), [&](std::size_t ci) {
    auto& part = parts[ci];
    run_walk_chunk(domains, csp, plan, ci, [&](const Choice& c, std::uint64_t flat) {
      if (Traits::validate(relaxed, problem.space->decode(c), *problem.device)) {
        part.push_back(flat);
      }
      return true;
    });
  });
  std::vector<std::uint64_t> skeleton;
  std::size_t n = 0;
  for (const auto& part : parts) n += part.size();
  skeleton.reserve(n);
  for (const auto& part : parts) {
    skeleton.insert(skeleton.end(), part.begin(), part.end());
  }
  ISAAC_TM_COUNT_N("rank.skeleton_points", skeleton.size());
  return skeleton;
}

/// The process-wide skeleton cache, shared by every op (keys embed
/// Traits::kind(), so one map serves all instantiations). Previously a pair
/// of function-local statics per template instantiation behind an anonymous
/// std::mutex; naming it gives the lock a capability the thread-safety
/// analysis can see and a rank the deadlock detector can order — skeleton
/// (40) sits above cache_shard and pool because a builder thread holds no
/// other lock, but the single-flight future it publishes is awaited by
/// rankings that may hold nothing either; the build itself (parallel_for)
/// runs with the map mutex released.
struct SkeletonCache {
  using Skeleton = std::shared_ptr<const std::vector<std::uint64_t>>;
  sync::Mutex mutex{lock_rank::Rank::skeleton};
  std::unordered_map<std::string, std::shared_future<Skeleton>> futures
      ISAAC_GUARDED_BY(mutex);
};

inline SkeletonCache& skeleton_cache() {
  static SkeletonCache* c = new SkeletonCache();  // immortal: outlives static dtors
  return *c;
}

/// The structural skeleton: ascending flat indices of every X̂ point that
/// passes validation against the op's relaxed shape (shape-independent
/// checks only, by relax_shape's contract). Computed once per process per
/// (op kind, device, structural shape class, domains) and shared read-only;
/// nullptr when the op has no relax_shape hook or |X̂| exceeds the
/// materialization bound. Ascending flat order is exactly odometer order, so
/// consumers produce the same candidate sequences as a full sweep.
template <typename Op>
std::shared_ptr<const std::vector<std::uint64_t>> structural_skeleton(
    const SearchProblem<Op>& problem) {
  using Traits = typename SearchProblem<Op>::Traits;
  if constexpr (!requires { Traits::relax_shape(*problem.shape); }) {
    return nullptr;
  } else {
    const auto& domains = problem.space->domains();
    const std::size_t total = problem.space->size();
    if (total > kSkeletonMaxPoints) return nullptr;

    const typename Traits::Shape relaxed = Traits::relax_shape(*problem.shape);
    const std::string key = std::string(Traits::kind()) + '|' + problem.device->name + '|' +
                            device_limits_signature(*problem.device) + '|' +
                            Traits::shape_key(relaxed) + '|' + domains_signature(domains);

    using Skeleton = SkeletonCache::Skeleton;
    SkeletonCache& sk = skeleton_cache();
    // Single-flight *per key*: the first ranking of a class pays the one
    // full sweep (which the pre-skeleton code paid on *every* ranking) and
    // publishes through a future, so concurrent rankings of the same class
    // wait for it while different classes build or hit independently — the
    // map mutex is only held for the lookup/insert.
    std::promise<Skeleton> promise;
    std::shared_future<Skeleton> fut;
    bool builder = false;
    {
      sync::MutexLock lock(sk.mutex);
      auto it = sk.futures.find(key);
      if (it != sk.futures.end()) {
        fut = it->second;
      } else {
        fut = sk.futures.emplace(key, promise.get_future().share()).first->second;
        builder = true;
      }
    }
    if (!builder) return fut.get();

    auto skeleton = std::make_shared<std::vector<std::uint64_t>>();
    try {
      // Constraint-propagating build: walk only the subtrees the relaxed
      // shape's prefix predicates allow (the validate gate inside keeps the
      // result exactly the generate-and-test survivor set, in the same
      // ascending flat order).
      *skeleton = build_skeleton_points(problem, relaxed);
    } catch (...) {
      // Un-publish the failed build so a later ranking can retry, and wake
      // any waiters with the error instead of leaving them hung.
      {
        sync::MutexLock lock(sk.mutex);
        sk.futures.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
    promise.set_value(skeleton);
    return skeleton;
  }
}

/// Score `out.candidates` with the model and fill `out.order` with the
/// best-first top k (predicted GFLOPS, deterministic choice tie-break).
/// Featurization writes in place into one flat batch; scoring reuses
/// per-thread forward workspaces — no per-candidate allocations.
/// problem.model is read for the whole pass, so under hot-swappable models
/// the caller must pin one snapshot per ranking (Context::model_snapshot());
/// the whole order then reflects a single model version, never a mid-swap
/// mixture.
template <typename Op>
void score_and_order(const SearchProblem<Op>& problem, const SearchConfig& config,
                     std::size_t top_k, RankedCandidates<Op>& out) {
  if (out.candidates.empty()) return;
  // Size rows by the *op's* feature arity (probed once via the allocating
  // featurize), not the model's: featurize_into writes the op's full width,
  // and a model trained with a different feature set must surface as the
  // scorer's clean arity throw, not as out-of-row writes.
  const std::vector<double> probe =
      problem.featurize(problem.space->decode(out.candidates.front()));
  tuning::FeatureBatch batch(probe.size(), out.candidates.size());
  std::copy(probe.begin(), probe.end(), batch.row(0));
  ThreadPool::global().parallel_for_each(out.candidates.size() - 1, [&](std::size_t i) {
    problem.featurize_into(problem.space->decode(out.candidates[i + 1]), batch.row(i + 1));
  });
  const std::size_t chunk = config.batch > 0 ? config.batch : 8192;
  out.scores = problem.model->predict_gflops_chunked(batch, chunk);

  // Only the first k ranks are ever consumed, so a partial sort suffices —
  // O(n log k) on the latency-critical dispatch path.
  out.order.resize(out.candidates.size());
  for (std::size_t i = 0; i < out.order.size(); ++i) out.order[i] = i;
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(top_k, 1), out.order.size());
  std::partial_sort(out.order.begin(), out.order.begin() + static_cast<std::ptrdiff_t>(k),
                    out.order.end(), [&](std::size_t a, std::size_t b) {
                      if (out.scores[a] != out.scores[b]) return out.scores[a] > out.scores[b];
                      return out.candidates[a] < out.candidates[b];  // deterministic tie-break
                    });
  out.order.resize(k);
}

}  // namespace detail

/// Dense ranking — the strategy's path: enumerate all of X̂ (through the
/// structural skeleton when the op supports it), keep the legal points,
/// stride oversized sets down to config.max_candidates (re-appending the
/// seed grid), then model-score and order the top k. Requires problem.model.
template <typename Op>
RankedCandidates<Op> rank_legal_space(const SearchProblem<Op>& problem,
                                      const SearchConfig& config, std::size_t top_k) {
  telemetry::Span span("rank.dense");
  ISAAC_TM_COUNT("rank.dense");
  RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();

  // ---- enumerate the legal space ----------------------------------------
  if (const auto skeleton = detail::structural_skeleton(problem)) {
    // Only the structural survivors need a real legality check; the result
    // (and its order) is identical to a full odometer sweep, which
    // conceptually still visited all of X̂ — keep the stats on that footing.
    out.visited = problem.space->size();
    const std::size_t chunk = 1 << 14;
    const std::size_t chunks = (skeleton->size() + chunk - 1) / chunk;
    std::vector<std::vector<Choice>> parts(chunks);
    ThreadPool::global().parallel_for_each(chunks, [&](std::size_t ci) {
      const std::size_t begin = ci * chunk;
      const std::size_t end = std::min(skeleton->size(), begin + chunk);
      auto& part = parts[ci];
      Choice c;
      for (std::size_t i = begin; i < end; ++i) {
        choice_from_flat_into((*skeleton)[i], domains, c);
        if (problem.legal(c)) part.push_back(c);
      }
    });
    std::size_t n = 0;
    for (const auto& part : parts) n += part.size();
    out.candidates.reserve(n);
    for (auto& part : parts) {
      std::move(part.begin(), part.end(), std::back_inserter(out.candidates));
    }
    out.legal = out.candidates.size();
  } else {
    // No skeleton (op without relax_shape, or |X̂| past the materialization
    // bound — including a saturated size()): rank through the lazy pruned
    // walk, chunked for the pool without materializing index vectors. The
    // per-point legality gate keeps the result exactly the legal space, and
    // chunk concatenation preserves odometer order; the walk conceptually
    // covers all of X̂, so the stats stay on the skeleton path's footing.
    const tuning::ConstraintSet cs =
        prefix_constraints_for<Op>(*problem.shape, *problem.device, *problem.space);
    const tuning::ConstraintSet* csp = cs.empty() ? nullptr : &cs;
    const WalkChunkPlan plan = plan_legal_walk(domains, csp);
    std::vector<std::vector<Choice>> parts(plan.prefixes.size());
    ThreadPool::global().parallel_for_each(plan.prefixes.size(), [&](std::size_t ci) {
      auto& part = parts[ci];
      run_walk_chunk(domains, csp, plan, ci, [&](const Choice& c, std::uint64_t) {
        if (problem.legal(c)) part.push_back(c);
        return true;
      });
    });
    out.visited = problem.space->size();
    std::size_t n = 0;
    for (const auto& part : parts) n += part.size();
    out.candidates.reserve(n);
    for (auto& part : parts) {
      std::move(part.begin(), part.end(), std::back_inserter(out.candidates));
    }
    out.legal = out.candidates.size();
  }
  if (out.candidates.empty()) return out;

  // ---- subsample oversized spaces, keeping the seed grid ----------------
  const std::size_t cap = config.max_candidates;
  if (cap > 0 && out.candidates.size() > cap) {
    std::vector<Choice> kept;
    kept.reserve(cap + 64);
    std::unordered_set<std::uint64_t> in_kept;
    const double step =
        static_cast<double>(out.candidates.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      Choice& c = out.candidates[static_cast<std::size_t>(i * step)];
      if (in_kept.insert(choice_hash(c)).second) kept.push_back(std::move(c));
    }
    // Probe uncounted: the enumeration above already accounted every point
    // of X̂, this only re-selects from it.
    detail::append_seed_grid(problem, kept, in_kept);
    out.candidates = std::move(kept);
  }

  detail::score_and_order(problem, config, top_k, out);
  return out;
}

/// Bounded-work ranking — the dispatch fast path: instead of sweeping all of
/// X̂, probe at most config.max_candidates points by deterministic flat-index
/// striding, filter those to the legal space, and always re-append the seed
/// grid. Total work is O(cap) legality checks plus one batched model pass, no
/// matter how large X̂ is — this is what lets a cold `select()` answer in
/// microseconds-to-milliseconds rather than sweep-the-space time. The
/// returned `order` may be empty for degenerate shapes whose sparse legal set
/// the stride misses; callers fall back to `rank_legal_space` (and from
/// there, to reporting "no legal configuration").
template <typename Op>
RankedCandidates<Op> rank_strided_probe(const SearchProblem<Op>& problem,
                                        const SearchConfig& config, std::size_t top_k) {
  telemetry::Span span("rank.probe");
  ISAAC_TM_COUNT("rank.probe");
  RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();
  const std::size_t total = problem.space->size();
  const std::size_t cap =
      config.max_candidates > 0 ? std::min(config.max_candidates, total) : total;
  const tuning::ConstraintSet cs =
      prefix_constraints_for<Op>(*problem.shape, *problem.device, *problem.space);

  std::unordered_set<std::uint64_t> present;
  if (total == std::numeric_limits<std::size_t>::max()) {
    // Saturated size(): no exact flat index exists to stride over. Probe the
    // pruned walk instead — the first `cap` legal points in flat order.
    // Still deterministic, and still bounded work: the walk skips illegal
    // subtrees rather than striding across an X̂ it cannot even measure.
    tuning::walk_legal(domains, cs.empty() ? nullptr : &cs,
                       [&](const Choice& walked, std::uint64_t) {
                         ++out.visited;
                         if (!problem.legal(walked)) return true;
                         ++out.legal;
                         if (present.insert(choice_hash(walked)).second) {
                           out.candidates.push_back(walked);
                         }
                         return out.candidates.size() < cap;
                       });
  } else {
    // The stride arithmetic below is exact only because product_size
    // saturates instead of wrapping (guarded above).
    assert(total < std::numeric_limits<std::size_t>::max());
    // Cheap necessary-condition pre-gate in front of the full validate.
    // Predicates can only reject points validate would also reject, so the
    // probed candidate set is bit-identical to the unfiltered probe's — the
    // definite failures just skip the decode + validate.
    std::vector<int> values(domains.size());
    const auto plausible = [&](const Choice& probe) {
      if (cs.empty()) return true;
      for (std::size_t d = 0; d < domains.size(); ++d) {
        values[d] = domains[d].values[probe[d]];
      }
      return cs.accepts(values.data());
    };
    const double step =
        static_cast<double>(total) / static_cast<double>(std::max<std::size_t>(cap, 1));
    Choice c;
    for (std::size_t i = 0; i < cap; ++i) {
      choice_from_flat_into(static_cast<std::size_t>(i * step), domains, c);
      ++out.visited;
      if (!plausible(c)) continue;
      if (!problem.legal(c)) continue;
      ++out.legal;
      if (present.insert(choice_hash(c)).second) out.candidates.push_back(c);
    }
  }
  detail::append_seed_grid(problem, out.candidates, present);

  detail::score_and_order(problem, config, top_k, out);
  return out;
}

template <typename Op>
class ModelGuidedTopK final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  ModelGuidedTopK(const SearchProblem<Op>& problem, const SearchConfig& config)
      : Base(problem, config) {
    if (this->problem_.model == nullptr) {
      throw std::invalid_argument("model_topk: this strategy requires a trained model");
    }
  }

  const char* name() const override { return "model_topk"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    if (!ranked_) rank();
    std::vector<Proposal<Tuning>> out;
    while (out.size() < max_batch && next_ < ranked_space_.order.size()) {
      const std::size_t i = ranked_space_.order[next_++];
      out.push_back(
          this->make_proposal(ranked_space_.candidates[i], ranked_space_.scores[i]));
    }
    return out;
  }

 private:
  void rank() {
    ranked_ = true;
    // Only the first `budget` ranks can ever be proposed.
    ranked_space_ = rank_legal_space(this->problem_, this->config_,
                                     std::max<std::size_t>(this->config_.budget, 1));
    this->stats_.visited += ranked_space_.visited;
    this->stats_.legal += ranked_space_.legal;
  }

  bool ranked_ = false;
  RankedCandidates<Op> ranked_space_;
  std::size_t next_ = 0;
};

}  // namespace isaac::search
