// ModelGuidedTopK: the paper's §6 runtime recipe as an explicit, budgeted
// strategy. Rank the whole legal space with the trained regressor (cheap:
// batched MLP forward passes in parallel), then spend the measurement budget
// on the k best predictions only — the re-timing that "smooths out the
// inherent noise of our predictive model".
//
// The ranking itself — enumerate/probe X̂, filter to the legal space, score
// with the model, order best-first — is factored out as a reusable core:
// `rank_legal_space` (dense, what the strategy drives) and
// `rank_strided_probe` (bounded-work, what the zero-measurement dispatch
// fast path in core::predict<Op>() takes on cold shapes).
//
// Ranking cost is bounded by SearchConfig::max_candidates: oversized legal
// spaces are deterministically strided and the op's seed grid re-appended so
// subsampling can never lose the well-known-good region.
#pragma once

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "search/random.hpp"  // choice_hash

namespace isaac::search {

/// A model-ranked slice of the legal space. `order` indexes `candidates`/
/// `scores` best-first and is truncated to the requested k; `visited`/`legal`
/// account the X̂ traffic the ranking spent so callers can merge it into
/// their own stats.
template <typename Op>
struct RankedCandidates {
  std::vector<Choice> candidates;  // legal (possibly subsampled), seed grid kept
  std::vector<double> scores;      // predicted GFLOPS, aligned with candidates
  std::vector<std::size_t> order;  // best-first indices into candidates, ≤ k
  std::size_t visited = 0;         // X̂ points legality-checked
  std::size_t legal = 0;           // subset that passed validation
};

/// Decode a flat lexicographic index into a choice vector (dimension 0 least
/// significant — the same order advance_choice walks).
inline Choice choice_from_flat(std::size_t flat,
                               const std::vector<tuning::ParameterDomain>& domains) {
  Choice c(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    c[d] = flat % domains[d].values.size();
    flat /= domains[d].values.size();
  }
  return c;
}

namespace detail {

/// Append the op's seed grid to `candidates` (legality-checked, de-duplicated
/// against what is already there) so no subsampled ranking can lose the
/// well-known-good region.
template <typename Op>
void append_seed_grid(const SearchProblem<Op>& problem, std::vector<Choice>& candidates,
                      std::unordered_set<std::uint64_t>& present) {
  using Traits = typename SearchProblem<Op>::Traits;
  for (const auto& t : Traits::seed_grid()) {
    Choice c;
    if (!problem.space->encode(t, c)) continue;  // value outside this space's domains
    if (!problem.legal(c)) continue;
    if (present.insert(choice_hash(c)).second) candidates.push_back(std::move(c));
  }
}

/// Score `out.candidates` with the model and fill `out.order` with the
/// best-first top k (predicted GFLOPS, deterministic choice tie-break).
template <typename Op>
void score_and_order(const SearchProblem<Op>& problem, const SearchConfig& config,
                     std::size_t top_k, RankedCandidates<Op>& out) {
  if (out.candidates.empty()) return;
  std::vector<std::vector<double>> rows(out.candidates.size());
  ThreadPool::global().parallel_for_each(out.candidates.size(), [&](std::size_t i) {
    rows[i] = problem.featurize(problem.space->decode(out.candidates[i]));
  });
  const std::size_t batch = config.batch > 0 ? config.batch : 8192;
  out.scores = problem.model->predict_gflops_chunked(rows, batch);

  // Only the first k ranks are ever consumed, so a partial sort suffices —
  // O(n log k) on the latency-critical dispatch path.
  out.order.resize(out.candidates.size());
  for (std::size_t i = 0; i < out.order.size(); ++i) out.order[i] = i;
  const std::size_t k =
      std::min<std::size_t>(std::max<std::size_t>(top_k, 1), out.order.size());
  std::partial_sort(out.order.begin(), out.order.begin() + static_cast<std::ptrdiff_t>(k),
                    out.order.end(), [&](std::size_t a, std::size_t b) {
                      if (out.scores[a] != out.scores[b]) return out.scores[a] > out.scores[b];
                      return out.candidates[a] < out.candidates[b];  // deterministic tie-break
                    });
  out.order.resize(k);
}

}  // namespace detail

/// Dense ranking — the strategy's path: enumerate all of X̂, keep the legal
/// points, stride oversized sets down to config.max_candidates (re-appending
/// the seed grid), then model-score and order the top k. Requires
/// problem.model.
template <typename Op>
RankedCandidates<Op> rank_legal_space(const SearchProblem<Op>& problem,
                                      const SearchConfig& config, std::size_t top_k) {
  RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();

  // ---- enumerate the legal space ----------------------------------------
  Choice odometer(domains.size(), 0);
  do {
    ++out.visited;
    if (problem.legal(odometer)) {
      ++out.legal;
      out.candidates.push_back(odometer);
    }
  } while (advance_choice(odometer, domains));
  if (out.candidates.empty()) return out;

  // ---- subsample oversized spaces, keeping the seed grid ----------------
  const std::size_t cap = config.max_candidates;
  if (cap > 0 && out.candidates.size() > cap) {
    std::vector<Choice> kept;
    kept.reserve(cap + 64);
    std::unordered_set<std::uint64_t> in_kept;
    const double step =
        static_cast<double>(out.candidates.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      Choice& c = out.candidates[static_cast<std::size_t>(i * step)];
      if (in_kept.insert(choice_hash(c)).second) kept.push_back(std::move(c));
    }
    // Probe uncounted: the odometer sweep above already visited (and
    // counted) every point of X̂, this only re-selects from it.
    detail::append_seed_grid(problem, kept, in_kept);
    out.candidates = std::move(kept);
  }

  detail::score_and_order(problem, config, top_k, out);
  return out;
}

/// Bounded-work ranking — the dispatch fast path: instead of sweeping all of
/// X̂, probe at most config.max_candidates points by deterministic flat-index
/// striding, filter those to the legal space, and always re-append the seed
/// grid. Total work is O(cap) legality checks plus one batched model pass, no
/// matter how large X̂ is — this is what lets a cold `select()` answer in
/// microseconds-to-milliseconds rather than sweep-the-space time. The
/// returned `order` may be empty for degenerate shapes whose sparse legal set
/// the stride misses; callers fall back to `rank_legal_space` (and from
/// there, to reporting "no legal configuration").
template <typename Op>
RankedCandidates<Op> rank_strided_probe(const SearchProblem<Op>& problem,
                                        const SearchConfig& config, std::size_t top_k) {
  RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();
  const std::size_t total = problem.space->size();
  const std::size_t cap =
      config.max_candidates > 0 ? std::min(config.max_candidates, total) : total;

  std::unordered_set<std::uint64_t> present;
  const double step = static_cast<double>(total) / static_cast<double>(std::max<std::size_t>(cap, 1));
  for (std::size_t i = 0; i < cap; ++i) {
    Choice c = choice_from_flat(static_cast<std::size_t>(i * step), domains);
    ++out.visited;
    if (!problem.legal(c)) continue;
    ++out.legal;
    if (present.insert(choice_hash(c)).second) out.candidates.push_back(std::move(c));
  }
  detail::append_seed_grid(problem, out.candidates, present);

  detail::score_and_order(problem, config, top_k, out);
  return out;
}

template <typename Op>
class ModelGuidedTopK final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  ModelGuidedTopK(const SearchProblem<Op>& problem, const SearchConfig& config)
      : Base(problem, config) {
    if (this->problem_.model == nullptr) {
      throw std::invalid_argument("model_topk: this strategy requires a trained model");
    }
  }

  const char* name() const override { return "model_topk"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    if (!ranked_) rank();
    std::vector<Proposal<Tuning>> out;
    while (out.size() < max_batch && next_ < ranked_space_.order.size()) {
      const std::size_t i = ranked_space_.order[next_++];
      out.push_back(
          this->make_proposal(ranked_space_.candidates[i], ranked_space_.scores[i]));
    }
    return out;
  }

 private:
  void rank() {
    ranked_ = true;
    // Only the first `budget` ranks can ever be proposed.
    ranked_space_ = rank_legal_space(this->problem_, this->config_,
                                     std::max<std::size_t>(this->config_.budget, 1));
    this->stats_.visited += ranked_space_.visited;
    this->stats_.legal += ranked_space_.legal;
  }

  bool ranked_ = false;
  RankedCandidates<Op> ranked_space_;
  std::size_t next_ = 0;
};

}  // namespace isaac::search
