// GeneticSearch: a generational GA over per-parameter choice indices.
// Tournament selection on measured GFLOPS, uniform crossover, per-gene
// mutation to a random domain index. Offspring are legality-checked (and
// de-duplicated) before they are proposed, so crossover products that land
// outside X never consume measurement budget.
#pragma once

#include <deque>
#include <optional>
#include <unordered_set>

#include "search/random.hpp"  // choice_hash

namespace isaac::search {

template <typename Op>
class GeneticSearch final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  using Base::Base;

  const char* name() const override { return "genetic"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    std::vector<Proposal<Tuning>> out;
    while (out.size() < max_batch) {
      if (pending_.empty() && !refill()) break;
      out.push_back(this->make_proposal(std::move(pending_.front())));
      pending_.pop_front();
    }
    return out;
  }

  void observe(const Choice& choice, double measured_gflops) override {
    evaluated_.push_back({choice, measured_gflops});
  }

 private:
  static constexpr std::size_t kPopulation = 24;
  static constexpr int kTournament = 3;
  static constexpr double kMutationRate = 0.15;
  static constexpr int kMaxStaleGenerations = 4;

  /// Queue up the next generation; false when nothing can be proposed right
  /// now (no legal individual found, or the seed generation is still out
  /// being measured — proposing less than max_batch makes the driver come
  /// back with observations instead of flooding the first rounds with
  /// selection-free random individuals).
  bool refill() {
    const std::size_t before = pending_.size();
    if (evaluated_.empty()) {
      if (seeded_) return false;  // wait for the seed generation's fitness
      seeded_ = true;
      // Seed generation: unique random legal individuals.
      for (std::size_t i = 0; i < kPopulation; ++i) {
        if (auto c = random_unseen_legal()) pending_.push_back(std::move(*c));
      }
    } else {
      bool any_new = false;
      for (std::size_t i = 0; i < kPopulation; ++i) {
        if (auto c = breed(any_new)) pending_.push_back(std::move(*c));
      }
      // Saturation: generations made only of re-proposed duplicates mean the
      // reachable space is explored — stop instead of burning an unlimited
      // budget re-measuring known points.
      if (any_new) {
        stale_generations_ = 0;
      } else if (++stale_generations_ >= kMaxStaleGenerations) {
        return false;
      }
    }
    return pending_.size() > before;
  }

  const Choice& tournament_pick() {
    const auto n = static_cast<std::int64_t>(evaluated_.size());
    std::size_t best = static_cast<std::size_t>(this->rng_.uniform_int(0, n - 1));
    for (int i = 1; i < kTournament; ++i) {
      const auto idx = static_cast<std::size_t>(this->rng_.uniform_int(0, n - 1));
      if (evaluated_[idx].fitness > evaluated_[best].fitness) best = idx;
    }
    return evaluated_[best].choice;
  }

  /// Sets `any_new` when the child is a never-proposed point (as opposed to
  /// the re-proposal fallbacks) — the saturation signal refill() watches.
  std::optional<Choice> breed(bool& any_new) {
    const auto& domains = this->problem_.space->domains();
    Choice fallback;  // last legal-but-seen child, reused if nothing new shows up
    for (int attempt = 0; attempt < 64; ++attempt) {
      const Choice& a = tournament_pick();
      const Choice& b = tournament_pick();
      Choice child(a.size());
      for (std::size_t d = 0; d < child.size(); ++d) {
        child[d] = this->rng_.bernoulli(0.5) ? a[d] : b[d];
        if (this->rng_.uniform() < kMutationRate) {
          child[d] = static_cast<std::size_t>(this->rng_.uniform_int(
              0, static_cast<std::int64_t>(domains[d].values.size()) - 1));
        }
      }
      if (!this->check(child)) continue;
      if (seen_.insert(choice_hash(child)).second) {
        any_new = true;
        return child;
      }
      fallback = std::move(child);
    }
    if (auto c = random_unseen_legal()) {
      any_new = true;
      return c;
    }
    // Saturated neighborhood: re-evaluating a known-legal point keeps the
    // generation full (and the budget honest) instead of stalling the search.
    if (!fallback.empty()) return fallback;
    return std::nullopt;
  }

  std::optional<Choice> random_unseen_legal() {
    for (int attempt = 0; attempt < 2048; ++attempt) {
      Choice c = this->random_choice();
      if (!seen_.insert(choice_hash(c)).second) continue;
      if (this->check(c)) return c;
    }
    // Sparse legal space: fall back to the guaranteed repair — the
    // constraint-propagating pruned walk, so it costs the plausible space,
    // not |X̂|. A repair that only finds an already-seen point reports
    // failure — there is nothing *new* within reach, and the caller treats
    // re-proposals separately.
    auto c = this->scan_for_legal(this->random_choice());
    if (c && !seen_.insert(choice_hash(*c)).second) return std::nullopt;
    return c;
  }

  struct Evaluated {
    Choice choice;
    double fitness;
  };

  std::deque<Choice> pending_;
  std::vector<Evaluated> evaluated_;
  std::unordered_set<std::uint64_t> seen_;
  bool seeded_ = false;
  int stale_generations_ = 0;
};

}  // namespace isaac::search
