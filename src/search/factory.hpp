// Strategy registry: name -> SearchStrategy<Op> instance. The names are the
// public contract — they appear in SearchConfig::strategy, in profile-cache
// provenance columns, and in the bench sweep's JSON output.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "search/annealing.hpp"
#include "search/exhaustive.hpp"
#include "search/genetic.hpp"
#include "search/model_topk.hpp"
#include "search/random.hpp"

namespace isaac::search {

/// All registered strategy names (registry.cpp). Kept in sync with
/// make_strategy by the round-trip test in tests/test_search.cpp.
const std::vector<std::string>& strategy_names();

/// True when `name` is a registered strategy.
bool strategy_is_known(const std::string& name);

/// True for strategies that run without a trained regressor (everything but
/// model_topk) — the set offline collection may use before a model exists.
/// Unknown names are NOT model-free: check strategy_is_known first.
bool strategy_is_model_free(const std::string& name);

template <typename Op>
std::unique_ptr<SearchStrategy<Op>> make_strategy(const SearchProblem<Op>& problem,
                                                  const SearchConfig& config) {
  const std::string& name = config.strategy;
  if (name == "exhaustive") return std::make_unique<ExhaustiveSearch<Op>>(problem, config);
  if (name == "random") return std::make_unique<RandomSearch<Op>>(problem, config);
  if (name == "genetic") return std::make_unique<GeneticSearch<Op>>(problem, config);
  if (name == "annealing") return std::make_unique<SimulatedAnnealing<Op>>(problem, config);
  if (name == "model_topk") return std::make_unique<ModelGuidedTopK<Op>>(problem, config);
  throw std::invalid_argument("make_strategy: unknown search strategy '" + name + "'");
}

}  // namespace isaac::search
