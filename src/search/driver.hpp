// drive(): the one budgeted propose → measure → observe loop every consumer
// of the search subsystem runs — runtime inference (core/inference.cpp) and
// adaptive offline data collection (tuning/collector.cpp) differ only in
// their measure/sink callbacks.
//
// Budget semantics are exact: at most `budget` calls to `measure`, and
// exactly `budget` whenever the strategy can keep supplying fresh legal
// candidates. Anytime semantics fall out of the loop shape — every measured
// candidate reaches `sink` before the next proposal round, so aborting after
// any iteration leaves a usable best-so-far.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "search/strategy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac::search {

/// Run `strategy` until `budget` measured evaluations (SIZE_MAX = until the
/// strategy is exhausted). `measure(tuning) -> double` is the expensive
/// oracle; `sink(proposal, measured_gflops)` receives every result. Returns
/// the number of evaluations performed.
///
/// A proposal batch is measured in parallel on the global thread pool (the
/// strategy already committed to the whole batch, so no intra-batch feedback
/// is lost) — `measure` must be thread-safe. `observe` and `sink` run
/// sequentially in proposal order afterwards, so strategies and result
/// accumulation stay single-threaded and deterministic. Inherently
/// sequential strategies (simulated annealing) simply propose one candidate
/// per round.
///
/// A `measure` throw propagates to the caller (the pool rethrows the
/// lowest-index failure, so equal runs fail identically); results of the
/// failing batch never reach `observe`/`sink`, keeping anytime state
/// consistent with what the caller was told.
///
/// Model lifetime: any model the strategy's problem references must stay
/// alive and unchanged for the whole drive() — under the online model
/// lifecycle (DESIGN.md) the caller pins one Context::model_snapshot() per
/// search, which also keeps the search.measure results (the sink's
/// (proposal, gflops) stream, surfaced as TuneResult::top) attributable to
/// exactly one model version in the observation log.
template <typename Op, typename MeasureFn, typename SinkFn>
std::size_t drive(SearchStrategy<Op>& strategy, std::size_t budget, const MeasureFn& measure,
                  const SinkFn& sink) {
  // Proposal batch: big enough to amortize parallel measurement, small
  // enough that adaptive strategies get frequent feedback.
  constexpr std::size_t kBatch = 64;
  // Clamp to |X̂|: measuring more evaluations than the space has distinct
  // points is never useful, and it bounds "unlimited" budgets for strategies
  // that never return an empty batch (genetic fallbacks, annealing restarts).
  const std::size_t target =
      std::min<std::size_t>(budget, std::max<std::size_t>(strategy.space_points(), 1));
  // Schedule-dependent strategies (annealing's temperature decay) pace
  // themselves against the clamped target, not the raw request — an
  // "unlimited" SIZE_MAX budget would otherwise leave their schedule frozen
  // at its starting point for the whole run.
  strategy.set_effective_budget(target);
  std::size_t measured = 0;
  std::vector<double> scores;
  while (measured < target) {
    const std::size_t want = std::min<std::size_t>(kBatch, target - measured);
    const std::uint64_t t_propose = telemetry::enabled() ? telemetry::now_us() : 0;
    auto proposals = [&] {
      telemetry::Span propose_span("search.propose");
      return strategy.propose(want);
    }();
    if (t_propose) {
      ISAAC_TM_RECORD("search.propose_us", telemetry::now_us() - t_propose);
      ISAAC_TM_COUNT_N("search.proposed", proposals.size());
    }
    if (proposals.empty()) break;
    if (proposals.size() > want) proposals.resize(want);  // never overspend
    scores.assign(proposals.size(), 0.0);
    const std::uint64_t t_measure = telemetry::enabled() ? telemetry::now_us() : 0;
    {
      telemetry::Span measure_span("search.measure");
      if (proposals.size() > 1) {
        ThreadPool::global().parallel_for_each(
            proposals.size(), [&](std::size_t i) { scores[i] = measure(proposals[i].tuning); });
      } else {
        scores[0] = measure(proposals[0].tuning);
      }
    }
    if (t_measure) {
      ISAAC_TM_RECORD("search.measure_us", telemetry::now_us() - t_measure);
      ISAAC_TM_COUNT_N("search.measured", proposals.size());
    }
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      strategy.observe(proposals[i].choice, scores[i]);
      sink(proposals[i], scores[i]);
      ++measured;
    }
  }
  return measured;
}

}  // namespace isaac::search
